#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation.

Walks the markdown files (or directories of them) given on the command
line, extracts every inline link and image reference, and verifies that
relative targets resolve to real files. External links (http/https/
mailto) are recorded but not fetched — the checker must work offline —
and pure in-page anchors (``#section``) are validated against the
headings of the containing file.

Usage::

    python tools/check_links.py README.md DESIGN.md EXPERIMENTS.md docs

Exits non-zero listing every broken link, so it can gate CI.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: Inline links/images: [text](target) or ![alt](target). Titles after
#: the target ("[x](y "title")") are stripped by the target parser.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Reference-style definitions: [label]: target
_REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)

#: Fenced code blocks are stripped before link extraction — command
#: examples like ``ls [a](b)`` must not be parsed as links.
_FENCE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)

_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def _anchor_of(heading: str) -> str:
    """GitHub-style anchor slug for a markdown heading line."""
    text = heading.lstrip("#").strip().lower()
    text = re.sub(r"[`*_~]", "", text)
    text = re.sub(r"[^\w\s-]", "", text)
    return re.sub(r"\s+", "-", text).strip("-")


def _headings(path: Path) -> List[str]:
    out = []
    body = _FENCE.sub("", path.read_text(encoding="utf-8"))
    for line in body.splitlines():
        if line.startswith("#"):
            out.append(_anchor_of(line))
    return out


def _targets(path: Path) -> List[str]:
    body = _FENCE.sub("", path.read_text(encoding="utf-8"))
    found = _LINK.findall(body)
    found.extend(_REF_DEF.findall(body))
    return found


def _expand(args: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for arg in args:
        path = Path(arg)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.suffix == ".md":
            files.append(path)
        else:
            raise SystemExit(f"not a markdown file or directory: {arg}")
    return files


def check(paths: Iterable[str]) -> Tuple[int, int, List[str]]:
    """Check every link; returns (files, links, broken-descriptions)."""
    files = _expand(paths)
    broken: List[str] = []
    links = 0
    for md in files:
        for target in _targets(md):
            links += 1
            if target.startswith(_EXTERNAL):
                continue
            base, _, fragment = target.partition("#")
            if not base:  # in-page anchor
                if fragment and _anchor_of("# " + fragment) not in _headings(md):
                    broken.append(f"{md}: broken anchor #{fragment}")
                continue
            resolved = (md.parent / base).resolve()
            if not resolved.exists():
                broken.append(f"{md}: missing target {target}")
            elif fragment and resolved.suffix == ".md":
                if fragment not in _headings(resolved):
                    broken.append(f"{md}: {base} has no anchor #{fragment}")
    return len(files), links, broken


def main(argv: List[str]) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 2
    files, links, broken = check(argv[1:])
    for line in broken:
        print(f"BROKEN  {line}", file=sys.stderr)
    status = "FAIL" if broken else "ok"
    print(f"checked {links} links across {files} markdown files: "
          f"{len(broken)} broken [{status}]")
    return 1 if broken else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
