#!/usr/bin/env python3
"""Profile the simulator's hot paths: ``make profile``.

Runs a scaled-down E16 (the scale-out data plane, the busiest workload
in the suite — sharded KV ops through RPC, links, telemetry, and the
event loop) under cProfile and prints the top cumulative hot spots, so
perf work starts from data instead of guesses.

Usage::

    PYTHONPATH=src python tools/profile_sim.py            # top 20
    PYTHONPATH=src python tools/profile_sim.py --top 40
    PYTHONPATH=src python tools/profile_sim.py --sort tottime
    PYTHONPATH=src python tools/profile_sim.py --dump prof.out

``--dump`` writes the raw stats for ``snakeviz``/``pstats`` digging.
The workload is two sweep points (1 and 2 DPUs) instead of the full
E16 sweep: the same code paths, a fraction of the wall clock.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="cProfile a scaled-down E16 scale-out run")
    parser.add_argument("--top", type=int, default=20,
                        help="rows of the profile to print (default: 20)")
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"],
                        help="pstats sort key (default: cumulative)")
    parser.add_argument("--seed", type=int, default=16,
                        help="workload seed (default: 16, the E16 default)")
    parser.add_argument("--dump", metavar="PATH", default=None,
                        help="also write raw cProfile stats to PATH")
    args = parser.parse_args(argv)

    try:
        from repro.eval.scaleout import run_scaleout
    except ImportError:
        print("run with PYTHONPATH=src (see 'make profile')",
              file=sys.stderr)
        return 2

    profiler = cProfile.Profile()
    profiler.enable()
    report = run_scaleout(seed=args.seed, dpu_counts=(1, 2))
    profiler.disable()

    ops = sum(point.ops for point in report.points)
    print(f"profiled: E16 scale-out, dpu_counts=(1, 2), "
          f"seed={args.seed}, {ops} client ops\n")
    stats = pstats.Stats(profiler)
    if args.dump:
        stats.dump_stats(args.dump)
        print(f"raw stats written to {args.dump}\n")
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
