"""E4: the L4 load balancer with DRAM->SSD state overflow (ablation)."""

from conftest import emit

from repro.eval.loadbalancer import format_loadbalancer, run_loadbalancer


def test_bench_loadbalancer(benchmark):
    results = benchmark.pedantic(
        run_loadbalancer,
        kwargs={"packet_count": 3000, "flow_count": 500, "dram_entries": 64},
        rounds=1,
        iterations=1,
    )
    emit(format_loadbalancer(results))
    overflow, drop = results
    # Overflow keeps every returning flow on its backend; drop breaks flows.
    assert overflow.broken_connections == 0
    assert drop.broken_connections > 0
    # The price of correctness: flash-latency cold hits.
    assert overflow.cold_hits > 0
    assert overflow.mean_latency > drop.mean_latency
    # But the hot path still dominates (most packets never touch flash).
    assert overflow.hot_hit_rate > 0.5
    # The state that would have been lost is sitting on the DPU's own SSD.
    assert overflow.flash_state_bytes > 0
    assert drop.flash_state_bytes == 0
