"""E5: segment translation vs page-based virtual memory (paper §2.1)."""

from conftest import emit

from repro.eval.translation import format_translation, run_translation


def test_bench_translation(benchmark):
    points = benchmark.pedantic(
        run_translation,
        kwargs={
            "working_sets": (1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20),
            "accesses": 10_000,
        },
        rounds=1,
        iterations=1,
    )
    emit(format_translation(points))
    # Segments always win on raw translation latency...
    for point in points:
        assert point.segment_translation_time <= point.page_translation_time
    # ...and the gap explodes once the working set outruns TLB reach
    # (1536 entries x 4 KiB = 6 MiB).
    small, large = points[0], points[-1]
    assert small.tlb_hit_rate > 0.9
    assert large.tlb_hit_rate < 0.2
    assert large.segment_advantage > 10 * small.segment_advantage
    # Huge-page ablation: 2 MiB pages rescue the mid-range but also fall
    # off once the working set outruns the huge-TLB's reach, while the
    # object-granular segment table stays flat.
    assert large.huge_page_translation_time > 10 * points[-2].huge_page_translation_time
    assert large.segment_translation_time < large.huge_page_translation_time
