"""E3: fail2ban middleware, Hyperion inline path vs CPU-centric server."""

from conftest import emit

from repro.eval.fail2ban import format_fail2ban, run_fail2ban


def test_bench_fail2ban(benchmark):
    results = benchmark.pedantic(
        run_fail2ban, kwargs={"packet_count": 1500}, rounds=1, iterations=1
    )
    emit(format_fail2ban(results))
    dpu, server = results
    # Same verified program -> identical verdicts.
    assert dpu.banned == server.banned
    # Deleting interrupts/syscalls/copies/interpreter jitter must win by a
    # clear integer factor (the paper's Amdahl argument).
    assert server.total_time / dpu.total_time > 2.0
    assert dpu.throughput_pps > server.throughput_pps
