"""E12: the KV-SSD over specialized transports (Willow-style RPC)."""

from conftest import emit

from repro.eval.kvssd import format_kvssd, run_kvssd


def test_bench_kvssd(benchmark):
    points = benchmark.pedantic(
        run_kvssd, kwargs={"operations": 60}, rounds=1, iterations=1
    )
    emit(format_kvssd(points))
    by_name = {p.transport: p for p in points}
    # Datagram transports beat TCP's per-segment ACK discipline on small ops.
    assert by_name["udp"].mean_get < by_name["tcp"].mean_get
    assert by_name["homa"].mean_get < by_name["tcp"].mean_get
    # One-sided RDMA reads skip the KV request engine entirely.
    assert by_name["rdma(read)"].mean_get < by_name["udp"].mean_get
    # Puts are flash-bound everywhere (WAL program dominates).
    put_times = [p.mean_put for p in points]
    assert max(put_times) / min(put_times) < 1.5
