"""E20 bench: the traffic plane closes the loop — telemetry to topology.

The paper's fleet argument (§2's "CPUs spend cycles shuffling bytes";
§3's blueprint of DPUs as first-class, individually provisionable
servers) only pays off if capacity can follow demand without a host in
the loop. Expected shape: under a compressed diurnal day, a static
trough-sized fleet breaches its p99 objective for a sizeable slice of
the day; a static peak-sized fleet holds the SLO but burns idle
DPU-seconds overnight; and the SLO-driven autoscaler tracks the curve —
scale-out on sustained breach, drain on sustained idle — landing within
2x of static-peak's worst-window p99 at materially fewer DPU-seconds.
"""

from conftest import emit

from repro.eval.autoscale import P99_FACTOR, format_autoscale, run_autoscale


def test_bench_autoscale_tracks_the_daily_curve(benchmark):
    report = benchmark.pedantic(run_autoscale, rounds=1, iterations=1)
    emit(format_autoscale(report))
    auto = report.variant("autoscaled")
    peak = report.variant("static-peak")
    low = report.variant("static-min")
    # All three strategies served the identical arrival stream.
    assert auto.offered == peak.offered == low.offered > 0
    # Under-provisioning shows: static-min breaches much more than peak.
    assert low.breach_fraction > 5 * peak.breach_fraction
    assert low.failed > peak.failed
    # The autoscaler actually moved the fleet, both directions.
    assert auto.scale_outs >= 1
    assert auto.drains >= 1
    assert auto.dpus_max > auto.dpus_start
    # The acceptance claim: cheaper than peak, p99 within the factor.
    assert report.capacity_ratio < 1.0
    assert report.p99_ratio <= P99_FACTOR
    assert report.accepted
    # Event log is present and canonical (decide precedes done).
    log = report.autoscale_log.decode()
    assert log.index("decide scale-out") < log.index("scale-out done")


def test_bench_autoscale_report_is_deterministic(benchmark):
    report = benchmark.pedantic(run_autoscale, rounds=1, iterations=1)
    emit(format_autoscale(report))
    again = run_autoscale(seed=report.seed)
    assert again.canonical_bytes() == report.canonical_bytes()
    assert again.telemetry == report.telemetry
