"""Table 1: the state-of-the-art capability matrix."""

from conftest import emit

from repro.eval.table1 import only_complete_category, run_table1


def test_bench_table1(benchmark):
    table = benchmark(run_table1)
    emit(table.render())
    # The table's argument: every surveyed category misses a leg; only the
    # unified design is complete.
    assert only_complete_category() == "Hyperion (this work)"
    assert len(table.rows) == 7
