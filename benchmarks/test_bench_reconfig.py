"""E7: ICAP partial-reconfiguration multiplexing (10-100 ms timescales)."""

from conftest import emit

from repro.eval.reconfig import format_reconfig, run_reconfig


def test_bench_reconfig(benchmark):
    report = benchmark.pedantic(
        run_reconfig, kwargs={"tenants": 10}, rounds=1, iterations=1
    )
    emit(format_reconfig(report))
    # Every tenant eventually lands.
    assert report.granted == 10
    # Paper §2: coarse-grained spatial multiplexing "with longer
    # time-scales (10-100 msecs, partial reconfiguration)".
    assert report.in_band_fraction == 1.0
    assert 10e-3 <= report.min_reconfig
    assert report.max_reconfig <= 100e-3
