"""E6: predictability + energy, hardware pipeline vs CPU software."""

from conftest import emit

from repro.eval.predictability import format_predictability, run_predictability


def test_bench_predictability(benchmark):
    results = benchmark.pedantic(
        run_predictability, kwargs={"runs": 500}, rounds=1, iterations=1
    )
    emit(format_predictability(results))
    hw, cpu = results
    # "the circuit runs a certain clock frequency without any outside
    # interference": one latency, no tail.
    assert hw.jitter_ratio < 1.000001
    assert hw.stddev_latency < 1e-15
    # The CPU shows a real tail (jitter + preemptions).
    assert cpu.jitter_ratio > 1.05
    assert cpu.stddev_latency > 0
    # Energy per op favors the DPU by a wide margin (TDP x time).
    assert cpu.energy_per_op_j / hw.energy_per_op_j > 5
