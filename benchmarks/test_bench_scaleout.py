"""E16 bench: the sharded data plane actually scales, live.

The paper's multi-DPU story (§2.4 "applications span many DPUs"; §3's
blueprint of a host-free data plane) needs more than a static ring: the
cluster must grow without dropping requests. Expected shape: goodput
climbs with DPU count; batching + the hot-key cache buy a >=4x speedup at
8 DPUs over one naive DPU; and a mid-run scale-out event moves keys over
the simulated fabric with zero failed client operations while the tracer
shows the migration spans.
"""

from conftest import emit

from repro.eval.scaleout import format_scaleout, run_scaleout


def test_bench_scaleout_speedup(benchmark):
    report = benchmark.pedantic(run_scaleout, rounds=1, iterations=1)
    emit(format_scaleout(report))
    # Goodput is monotone in DPU count within each configuration.
    for optimized in (False, True):
        series = [p.goodput for p in report.points if p.optimized is optimized]
        assert series == sorted(series)
    # The acceptance bar: 8 optimized DPUs >= 4x one naive DPU.
    assert report.speedup_8dpu >= 4.0
    # Batching + cache beat the naive path at the same scale.
    assert report.batching_gain_8dpu > 1.0
    # The cache is actually serving hot keys on the optimized path.
    top = max(report.points, key=lambda p: (p.optimized, p.dpus))
    assert top.cache_hit_rate > 0.0
    # Closed-loop clients never see a failed op in the steady-state sweep.
    assert all(p.failures == 0 for p in report.points)


def test_bench_scaleout_live_migration(benchmark):
    report = benchmark.pedantic(run_scaleout, rounds=1, iterations=1)
    emit(format_scaleout(report))
    event = report.event
    # The cluster grew mid-run and the migration actually moved data.
    assert event.dpus_after == event.dpus_before + 1
    assert event.keys_moved > 0
    assert event.epoch > 1
    # Zero failed ops across the whole scale-out window.
    assert event.failures == 0
    assert event.ops > 0
    # The span trace captured the migration and its per-source handoffs.
    assert event.migrate_spans == 1
    assert event.handoff_spans >= 1
    # Forwarding stubs served in-flight keys instead of failing them.
    assert event.forwarded_ops > 0
    # The tail inflates while segments hand off, then recovers: bounded.
    assert event.p99_inflation < 50.0
    assert event.p99_after < event.p99_during
