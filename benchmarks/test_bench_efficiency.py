"""E1: the 5-10x volume and 4-8x energy-efficiency claims (paper §2)."""

from conftest import emit

from repro.eval.efficiency import format_efficiency, run_efficiency


def test_bench_efficiency(benchmark):
    report = benchmark(run_efficiency)
    emit(format_efficiency(report))
    # Paper: "approx. 230 Watts vs 1,600 Watts".
    assert abs(report.hyperion_tdp_w - 230.0) < 1.0
    assert abs(report.server_tdp_w - 1600.0) < 1.0
    # Paper bands: 4-8x energy, 5-10x volume.
    assert report.energy_in_band
    assert report.volume_in_band
