"""E8: the Corfu shared log on network-attached flash."""

from conftest import emit

from repro.eval.corfu import format_corfu, run_corfu


def test_bench_corfu(benchmark):
    points = benchmark.pedantic(
        run_corfu,
        kwargs={"client_counts": (1, 2, 4, 8), "appends_per_client": 25},
        rounds=1,
        iterations=1,
    )
    emit(format_corfu(points))
    # Append throughput scales with concurrent clients (independent
    # positions; flash dies absorb the parallelism).
    throughputs = [p.throughput for p in points]
    assert throughputs == sorted(throughputs)
    assert throughputs[-1] > 4 * throughputs[0]
    # Chain replication: the log survives losing the head replica.
    assert all(p.failover_reads_ok for p in points)
