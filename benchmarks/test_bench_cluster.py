"""Extension bench: multi-DPU scaling with client-driven routing (§2.4 C1).

Not a numbered artifact in the paper — it answers discussion question 3
("how should one build distributed CPU-free applications?") with the MICA
pattern the paper cites: clients hash keys to owner DPUs, shared-nothing.
Expected shape: aggregate throughput grows with DPU count because
partitions serve independently; the key spread stays balanced.
"""

from conftest import emit

from repro.dpu.cluster import DpuKvCluster, RoutingClient
from repro.eval.report import Table
from repro.hw.net import Network
from repro.sim import Simulator

OPS_PER_CLIENT = 60


def run_cluster_scaling(dpu_counts=(1, 2, 4)):
    rows = []
    for count in dpu_counts:
        sim = Simulator()
        net = Network(sim)
        cluster = DpuKvCluster(sim, net, dpu_count=count, ssd_blocks=16384)
        clients = [
            RoutingClient(sim, net, f"client-{i}", cluster) for i in range(count)
        ]

        def worker(client, base):
            for i in range(OPS_PER_CLIENT):
                yield from client.put(f"{base}:key:{i}".encode(), b"v" * 32)

        start = sim.now
        for index, client in enumerate(clients):
            sim.process(worker(client, f"c{index}"))
        sim.run()
        elapsed = sim.now - start
        total_ops = count * OPS_PER_CLIENT
        rows.append(
            {
                "dpus": count,
                "ops": total_ops,
                "elapsed": elapsed,
                "throughput": total_ops / elapsed,
                "balance": cluster.balance(),
            }
        )
    return rows


def test_bench_cluster_scaling(benchmark):
    rows = benchmark.pedantic(run_cluster_scaling, rounds=1, iterations=1)
    table = Table(
        "EXT: multi-DPU KV cluster, client-driven routing (MICA pattern)",
        ["DPUs", "ops", "elapsed", "ops/s", "balance (max/mean)"],
    )
    for row in rows:
        table.add_row(
            row["dpus"], row["ops"], f"{row['elapsed'] * 1e3:.1f} ms",
            f"{row['throughput']:.0f}", f"{row['balance']:.2f}",
        )
    emit(table.render())
    throughputs = [row["throughput"] for row in rows]
    # Shared-nothing partitions scale aggregate throughput with DPU count.
    assert throughputs == sorted(throughputs)
    assert throughputs[-1] > 2.5 * throughputs[0]
    # Hashing keeps partitions balanced.
    assert all(row["balance"] < 1.8 for row in rows)
