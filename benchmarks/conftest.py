"""Shared helpers for the benchmark suite.

Every benchmark regenerates one paper artifact (table, figure, or claim),
prints the reproduced rows, and asserts the expected *shape* (who wins, by
roughly what factor). Run with ``pytest benchmarks/ --benchmark-only -s``
to see the tables.
"""


def emit(text: str) -> None:
    """Print a reproduced artifact with a separator (visible under -s)."""
    print()
    print(text)
