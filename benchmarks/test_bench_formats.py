"""E9: end-to-end Parquet/Arrow access over FS + NVMe without a CPU."""

from conftest import emit

from repro.eval.analytics import format_analytics, run_analytics


def test_bench_formats(benchmark):
    points = benchmark.pedantic(
        run_analytics,
        kwargs={"row_counts": (1_000, 20_000, 100_000)},
        rounds=1,
        iterations=1,
    )
    emit(format_analytics(points))
    # Both stacks compute the same answer from the same bytes on flash.
    assert all(p.answers_agree for p in points)
    # The DPU's advantage grows with the data (metadata walk amortizes;
    # the software copy+decode+scan terms grow linearly while the hardware
    # kernel's per-row time is 10x smaller). Small files cross over the
    # other way — the honest cost of the walker's metadata round trips.
    speedups = [p.speedup for p in points]
    assert speedups == sorted(speedups)
    assert speedups[-1] > 2.0
