"""Ablation: static placement vs hint/access-driven promotion (paper §2.1).

DESIGN.md ablation 2. A hot object allocated on flash (static placement
keeps it there forever) is accessed repeatedly; with the tiering policy it
is promoted to DRAM after one epoch and later accesses run at DRAM latency.
Expected shape: mean access latency drops by orders of magnitude once
promotion kicks in; durable objects never move.
"""

from conftest import emit

from repro.eval.report import Table
from repro.hw.fpga.fabric import MemoryBank
from repro.hw.nvme import Namespace, NvmeController
from repro.memory import DramBackend, NvmeBackend, PlacementHint, SingleLevelStore
from repro.memory.segments import SegmentLocation
from repro.memory.tiering import TieringPolicy
from repro.sim import Simulator

EPOCHS = 4
ACCESSES_PER_EPOCH = 20


def _make_store(sim):
    dram = DramBackend(sim, MemoryBank("ddr4-0", 1 << 20, 19.2e9, 80e-9), 1 << 20)
    controller = NvmeController(sim, "tier-flash")
    controller.add_namespace(Namespace(1, 8192))
    qp = controller.create_queue_pair()
    controller.start()
    return SingleLevelStore(sim, dram, NvmeBackend(sim, controller, qp))


def run_tiering_ablation():
    results = {}
    for policy_name in ("static", "hints"):
        sim = Simulator()
        store = _make_store(sim)
        policy = TieringPolicy(store, hot_threshold=5) if policy_name == "hints" else None
        hot = store.allocate(256, hint=PlacementHint.COLD)
        store.write(hot.oid, b"h" * 256)
        epoch_latencies = []

        def workload():
            for _ in range(EPOCHS):
                epoch_start = sim.now
                for _ in range(ACCESSES_PER_EPOCH):
                    yield from store.timed_read(hot.oid, 64)
                epoch_latencies.append(
                    (sim.now - epoch_start) / ACCESSES_PER_EPOCH
                )
                if policy is not None:
                    policy.run_epoch()

        sim.run_process(workload())
        results[policy_name] = {
            "epoch_latencies": epoch_latencies,
            "final_location": store.table.lookup(hot.oid).location,
        }
    return results


def test_bench_tiering(benchmark):
    results = benchmark.pedantic(run_tiering_ablation, rounds=1, iterations=1)
    table = Table(
        "EXT/ablation: static vs hint-driven segment placement (E4 companion)",
        ["policy"] + [f"epoch {i} mean" for i in range(EPOCHS)] + ["final tier"],
    )
    for name, data in results.items():
        table.add_row(
            name,
            *[f"{lat * 1e6:.1f} us" for lat in data["epoch_latencies"]],
            data["final_location"].value,
        )
    emit(table.render())
    static = results["static"]
    hints = results["hints"]
    # Static placement: flash latency forever.
    assert static["final_location"] is SegmentLocation.NVME
    assert min(static["epoch_latencies"]) > 50e-6
    # Hints: promoted after epoch 0, then DRAM-fast.
    assert hints["final_location"] is SegmentLocation.DRAM
    assert hints["epoch_latencies"][0] > 50e-6  # started on flash
    assert hints["epoch_latencies"][-1] < 1e-6  # finished in DRAM
    speedup = static["epoch_latencies"][-1] / hints["epoch_latencies"][-1]
    assert speedup > 50
