"""E17 bench: region-scale disaster recovery holds its promises, live.

The geo layer's contract (DESIGN.md §10): async log shipping keeps the
write path at local cost while bounding the RPO exposure; a full region
loss under live Zipfian traffic is detected and survived by client-driven
failover with zero lost *acknowledged* writes; and the heal reconverges
every region via LWW re-shipping. Expected shape: async acks are an
order of magnitude cheaper than sync; RTO (detect and steady-state) fits
well inside the partition window; the post-drill sweep finds no lost or
diverged keys.
"""

from conftest import emit

from repro.eval.georep import T_HEAL, T_KILL, format_georep, run_georep


def test_bench_georep_drill(benchmark):
    report = benchmark.pedantic(run_georep, rounds=1, iterations=1)
    emit(format_georep(report))
    drill = report.drill
    # The headline promise: no acknowledged write was lost, and the
    # regions reconverged after the heal.
    assert drill.lost_acked_writes == 0
    assert drill.diverged_keys == 0
    assert drill.acked_writes > 0
    assert drill.failed_ops == 0
    # Recovery objectives fit inside the partition window.
    outage = T_HEAL - T_KILL
    assert 0.0 < drill.rto_detect < outage
    assert drill.rto_detect <= drill.rto_steady < outage
    # RPO exposure at the kill instant was bounded and measured.
    assert drill.rpo_entries >= 0
    assert drill.rpo_seconds < outage
    # The failover machinery actually engaged.
    assert drill.failovers > 0
    assert drill.replayed_writes > 0
    # Brownout-fed stale reads served during the squeeze, within bound.
    assert drill.stale_reads_served > 0
    assert drill.max_staleness_served > 0.0
    assert drill.brownout_transitions >= 2
    # Traffic kept flowing through the outage.
    assert drill.goodput_during > 0.0
    assert drill.retention_during > 0.0


def test_bench_georep_consistency_sweep(benchmark):
    report = benchmark.pedantic(run_georep, rounds=1, iterations=1)
    emit(format_georep(report))
    by_mode = {point.mode: point for point in report.modes}
    assert set(by_mode) == {"async", "quorum", "sync"}
    # Stronger modes pay more per write: async < quorum < sync at p99.
    assert by_mode["async"].put_p99 < by_mode["quorum"].put_p99
    assert by_mode["quorum"].put_p99 < by_mode["sync"].put_p99
    # Async's cheap acks come with nonzero replication exposure; sync's
    # acked writes are already at every peer, so no lag remains.
    assert by_mode["async"].peak_lag > 0.0
    assert by_mode["sync"].peak_lag == 0.0
    # Followers stay heartbeat-fresh in every mode.
    assert all(p.follower_staleness < 0.05 for p in report.modes)
