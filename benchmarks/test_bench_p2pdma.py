"""Extension bench: NIC->SSD movement, bounce vs P2P DMA vs Hyperion (§2)."""

from conftest import emit

from repro.eval.p2pdma import format_p2pdma, run_p2pdma


def test_bench_p2pdma(benchmark):
    points = benchmark.pedantic(
        run_p2pdma, kwargs={"sizes": (4096, 65536, 1 << 20), "transfers": 50},
        rounds=1, iterations=1,
    )
    emit(format_p2pdma(points))
    by_key = {(p.transfer_size, p.path): p for p in points}
    # Small transfers: the serialized CPU coordination is the bottleneck,
    # so removing it strictly orders the three paths.
    small = 4096
    assert (
        by_key[(small, "hyperion")].goodput
        > by_key[(small, "p2p-dma")].goodput
        > by_key[(small, "bounce")].goodput
    )
    assert by_key[(small, "hyperion")].goodput > 1.5 * by_key[(small, "bounce")].goodput
    # Large transfers: every path converges on the PCIe/flash bandwidth
    # (the paper's point: P2P DMA helps data, not control).
    large = 1 << 20
    goodputs = [by_key[(large, path)].goodput
                for path in ("bounce", "p2p-dma", "hyperion")]
    assert max(goodputs) / min(goodputs) < 1.05
    # Hyperion never loses at any size.
    for size in (4096, 65536, 1 << 20):
        assert by_key[(size, "hyperion")].per_transfer <= min(
            by_key[(size, "bounce")].per_transfer,
            by_key[(size, "p2p-dma")].per_transfer,
        ) * 1.001
