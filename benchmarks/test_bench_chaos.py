"""E13 bench: the replicated KV cluster rides out a scripted fault storm.

The paper's availability argument (§2.1 "boot, recover, and serve without a
host"; §2.4 multi-DPU applications) only holds if a dead DPU is a latency
event, not an outage. Expected shape: with RF=2 and one of three DPUs
killed mid-run, client-driven failover keeps request availability >= 99%
while p99 inflates by the retry/backoff cost; and the same FaultPlan seed
reproduces a byte-identical fault schedule — chaos, but deterministic.
"""

from conftest import emit

from repro.eval.chaos import format_chaos, run_chaos


def test_bench_chaos_failover(benchmark):
    report = benchmark.pedantic(run_chaos, rounds=1, iterations=1)
    emit(format_chaos(report))
    # One DPU of three died mid-run and stayed dead...
    assert report.kill_time is not None
    assert report.faults_injected >= 1
    # ...yet availability holds: every key keeps a live replica under RF=2.
    assert report.availability >= 0.99
    assert report.failovers > 0
    # Survival is not free: the storm shows up in the tail.
    assert report.p99_inflation > 1.0
    # The client recovered within a few RPC timeouts of the kill.
    assert report.recovery_time is not None
    assert report.recovery_time < 20e-3


def test_bench_chaos_schedule_reproducible(benchmark):
    first = benchmark.pedantic(
        run_chaos, kwargs={"ops": 80, "preload": 16}, rounds=1, iterations=1
    )
    second = run_chaos(ops=80, preload=16)
    # Same seed, same workload: the fired-fault log is byte-identical.
    assert first.schedule == second.schedule
    assert len(first.schedule) > 0
    assert first.availability == second.availability
