"""E15 bench: overload controls turn congestion collapse into brownout.

The blueprint's wimpy-core datapath has no spare capacity to hide behind:
once offered load passes the service rate, an unbounded queue plus
at-least-once retransmission is a metastable failure — goodput collapses
even though the server never idles. Expected shape: the uncontrolled
variant collapses well below half of its peak goodput at 3x capacity,
while the controlled variant (bounded CoDel queue, AIMD admission,
retry budget, SLO-driven brownout) holds >= 90% of its peak goodput at
2x capacity with p99 bounded by the client timeout budget — and the
whole report, brownout transition log included, is byte-identical per
seed.
"""

from conftest import emit

from repro.eval.overload import format_overload, run_overload


def test_bench_overload_brownout(benchmark):
    report = benchmark.pedantic(run_overload, rounds=1, iterations=1)
    emit(format_overload(report))
    # Uncontrolled: goodput collapses past saturation.
    assert report.uncontrolled_collapse_ratio < 0.5
    # Controlled: flat goodput at 2x the service capacity...
    assert report.goodput_retention_at_2x >= 0.90
    # ...with the tail bounded by the client's retry budget, not the queue.
    p99_at_2x = next(
        p.p99_latency for p in report.controlled if p.multiple == 2.0
    )
    assert p99_at_2x < 5e-3
    # The protection actually engaged: shedding and brownout both fired.
    assert any(p.server_shed > 0 for p in report.controlled)
    assert report.brownout_transitions > 0


def test_bench_overload_sheds_scrub_before_user(benchmark):
    report = benchmark.pedantic(run_overload, rounds=1, iterations=1)
    top = report.controlled[-1]
    # Priority classes: at top load, scrub traffic is shed at a higher
    # rate than user traffic (60/20/20 arrival split, so compare rates).
    assert top.shed_scrub > 0
    assert top.shed_scrub * 3 > top.shed_user


def test_bench_overload_reproducible(benchmark):
    first = benchmark.pedantic(run_overload, rounds=1, iterations=1)
    second = run_overload()
    assert first.canonical_bytes() == second.canonical_bytes()
    assert len(first.brownout_log) > 0
    assert first.telemetry == second.telemetry
    assert first.series == second.series
