"""E10: the eBPF->HDL compiler over a corpus, fusion ablation."""

from conftest import emit

from repro.eval.compiler import format_compiler, run_compiler


def test_bench_compiler(benchmark):
    rows = benchmark(run_compiler)
    emit(format_compiler(rows))
    # The verifier accepts exactly the safe programs.
    for row in rows:
        assert row.verified == row.expected_ok, row.name
    compiled = [r for r in rows if r.verified]
    # Fusion: never deeper, never more pipeline registers, sometimes
    # strictly better — at a bounded f_max cost.
    assert any(r.depth_fused < r.depth_unfused for r in compiled)
    for row in compiled:
        assert row.depth_fused <= row.depth_unfused
        assert row.ffs_fused <= row.ffs_unfused
        assert row.fmax_fused >= 0.7 * row.fmax_unfused
        assert row.ii >= 1
        # The warping passes never grow a program...
        assert row.insns_after_opt <= row.insns_before_opt
    # ...and genuinely shrink constant-heavy ones.
    assert any(r.insns_after_opt < r.insns_before_opt for r in compiled)
