"""E2: disaggregated B+ tree pointer chasing, client-side vs offloaded."""

from conftest import emit

from repro.eval.pointer_chase import format_pointer_chase, run_pointer_chase


def test_bench_pointer_chase(benchmark):
    points = benchmark.pedantic(
        run_pointer_chase,
        kwargs={"key_counts": (16, 256, 4096), "propagations": (1e-6, 10e-6)},
        rounds=1,
        iterations=1,
    )
    emit(format_pointer_chase(points))
    # Offload always wins; client-side pays ~height RTTs.
    for point in points:
        assert point.offload_latency < point.client_side_latency
        assert point.client_side_rtts == point.tree_height + 1
    # The win grows with tree depth (the paper's degradation argument)...
    slow = [p for p in points if p.propagation == 10e-6]
    assert slow[-1].speedup > slow[0].speedup
    # ...and shrinks as the network gets faster.
    fast = [p for p in points if p.propagation == 1e-6]
    assert fast[-1].speedup < slow[-1].speedup * 1.5  # same order, smaller gap


def test_bench_single_lookup_latency(benchmark):
    """Microbenchmark: one offloaded lookup end to end (wall-clock cost of
    simulating it, for pytest-benchmark's timing)."""
    from repro.eval.pointer_chase import _measure

    point = benchmark.pedantic(
        _measure, args=(1024, 10e-6), kwargs={"lookups": 5},
        rounds=1, iterations=1,
    )
    assert point.offload_latency < point.client_side_latency
