"""Extension bench: graph traversal on network-attached storage (§4(2)).

The paper's "killer workloads" discussion names graph analytics as a
candidate. BFS generalizes the E2 pointer-chase shape from a chain of
nodes to an expanding frontier: client-side traversal pays a round trip
per expanded vertex, so the offload factor grows with graph size.
"""

from conftest import emit

from repro.apps.graph import (
    CsrGraph,
    GraphService,
    client_side_bfs,
    offloaded_bfs,
    random_graph,
)
from repro.dpu import HyperionDpu
from repro.eval.report import Table
from repro.hw.net import Network
from repro.sim import Simulator
from repro.transport import RpcClient, RpcServer, UdpSocket


def run_graph_bfs(vertex_counts=(20, 80, 320)):
    rows = []
    for count in vertex_counts:
        sim = Simulator()
        net = Network(sim, propagation=10e-6)
        dpu = HyperionDpu(sim, net, ssd_blocks=16384)
        sim.run_process(dpu.boot())
        graph = CsrGraph(dpu, count, random_graph(count))
        GraphService(
            sim, RpcServer(sim, UdpSocket(sim, net.endpoint("graph-dpu"))), graph
        )
        client = RpcClient(sim, UdpSocket(sim, net.endpoint("analyst")))
        target = count - 2

        def timed(fn):
            start = sim.now

            def proc():
                distance, rtts = yield from fn(client, "graph-dpu", 0, target)
                return sim.now - start, distance, rtts

            return sim.run_process(proc())

        chase_time, chase_distance, chase_rtts = timed(client_side_bfs)
        offload_time, offload_distance, __ = timed(offloaded_bfs)
        assert chase_distance == offload_distance
        rows.append(
            {
                "vertices": count,
                "edges": graph.edge_count,
                "distance": chase_distance,
                "chase_time": chase_time,
                "chase_rtts": chase_rtts,
                "offload_time": offload_time,
                "speedup": chase_time / offload_time,
            }
        )
    return rows


def test_bench_graph(benchmark):
    rows = benchmark.pedantic(run_graph_bfs, rounds=1, iterations=1)
    table = Table(
        "EXT: BFS over a DPU-resident CSR graph (killer-workload candidate)",
        ["vertices", "edges", "hops", "client-side", "RTTs",
         "offloaded", "speedup"],
    )
    for row in rows:
        table.add_row(
            row["vertices"], row["edges"], row["distance"],
            f"{row['chase_time'] * 1e3:.2f} ms", row["chase_rtts"],
            f"{row['offload_time'] * 1e3:.2f} ms", f"{row['speedup']:.0f}x",
        )
    emit(table.render())
    speedups = [row["speedup"] for row in rows]
    # The offload factor grows with the frontier (unlike E2's fixed height).
    assert speedups == sorted(speedups)
    assert speedups[-1] > 20
