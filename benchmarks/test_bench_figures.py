"""Figures 1 and 2: prototype bill of materials and schematic graph."""

from conftest import emit

from repro.eval.figures import FIGURE1_EXPECTED, format_figures, run_figures


def test_bench_figures(benchmark):
    report = benchmark.pedantic(run_figures, rounds=1, iterations=1)
    emit(format_figures(report))
    assert report.ok, report.mismatches
    for key, expected in FIGURE1_EXPECTED.items():
        assert report.inventory[key] == expected
    assert report.end_to_end_path_ok  # QSFP -> slots -> NVMe without a CPU
    assert report.config_path_ok
