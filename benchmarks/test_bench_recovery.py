"""E11: segment-table persistence and power-loss recovery."""

from conftest import emit

from repro.eval.recovery import format_recovery, run_recovery


def test_bench_recovery(benchmark):
    points = benchmark.pedantic(
        run_recovery, kwargs={"durable_counts": (10, 100, 1000)},
        rounds=1, iterations=1,
    )
    emit(format_recovery(points))
    for point in points:
        # Everything durable survives with its bytes; everything ephemeral
        # is gone — exactly the §2.1 contract.
        assert point.recovered_segments == point.durable_segments
        assert point.data_intact
        assert point.ephemeral_gone
    # The persisted image grows linearly (40 B/record + 16 B header).
    assert points[-1].persist_bytes == 16 + 40 * points[-1].durable_segments
