"""Tests for weighted AXIS arbitration (tenant isolation, paper §4(4))."""

import pytest

from repro.common.errors import ConfigurationError
from repro.hw.fpga.arbiter import WeightedAxisArbiter
from repro.sim import Simulator


def make_arbiter(sim, bandwidth=1e9, quantum=4096):
    return WeightedAxisArbiter(sim, bandwidth, quantum_bytes=quantum)


class TestBasics:
    def test_single_tenant_full_bandwidth(self):
        sim = Simulator()
        arbiter = make_arbiter(sim, bandwidth=1e9)
        arbiter.register_tenant("a")

        def scenario():
            yield from arbiter.transfer("a", 1_000_000)
            return sim.now

        # 1 MB at 1 GB/s = 1 ms.
        assert sim.run_process(scenario()) == pytest.approx(1e-3)

    def test_unknown_tenant(self):
        sim = Simulator()
        arbiter = make_arbiter(sim)
        with pytest.raises(ConfigurationError):
            sim.run_process(arbiter.transfer("ghost", 100))

    def test_duplicate_registration(self):
        arbiter = make_arbiter(Simulator())
        arbiter.register_tenant("a")
        with pytest.raises(ConfigurationError):
            arbiter.register_tenant("a")

    def test_bad_weight(self):
        with pytest.raises(ConfigurationError):
            make_arbiter(Simulator()).register_tenant("a", weight=0)

    def test_sequential_transfers(self):
        sim = Simulator()
        arbiter = make_arbiter(sim)
        arbiter.register_tenant("a")

        def scenario():
            yield from arbiter.transfer("a", 1000)
            yield from arbiter.transfer("a", 1000)
            return sim.now

        assert sim.run_process(scenario()) == pytest.approx(2000 / 1e9)


class TestIsolation:
    def test_equal_weights_equal_shares(self):
        sim = Simulator()
        arbiter = make_arbiter(sim)
        arbiter.register_tenant("a", weight=1)
        arbiter.register_tenant("b", weight=1)
        size = 1_000_000

        sim.process(arbiter.transfer("a", size))
        sim.process(arbiter.transfer("b", size))
        sim.run()
        assert arbiter.share_of("a") == pytest.approx(0.5, abs=0.05)

    def test_weights_enforce_shares(self):
        """A 3:1 weighting yields ~3:1 bytes served under saturation."""
        sim = Simulator()
        arbiter = make_arbiter(sim)
        arbiter.register_tenant("premium", weight=3)
        arbiter.register_tenant("basic", weight=1)
        finish = {}

        def tenant(name, size):
            yield from arbiter.transfer(name, size)
            finish[name] = sim.now

        sim.process(tenant("premium", 3_000_000))
        sim.process(tenant("basic", 1_000_000))
        sim.run()
        # Equal proportional demand: both finish together (fair by weight).
        assert finish["premium"] == pytest.approx(finish["basic"], rel=0.05)

    def test_victim_latency_bounded_under_attack(self):
        """A bursty neighbour cannot starve a weighted tenant — the
        microarchitectural-isolation question of paper §4(4)."""
        def victim_latency(with_attacker):
            sim = Simulator()
            arbiter = make_arbiter(sim)
            arbiter.register_tenant("victim", weight=1)
            arbiter.register_tenant("attacker", weight=1)
            if with_attacker:
                # The attacker floods the interconnect.
                for _ in range(10):
                    sim.process(arbiter.transfer("attacker", 10_000_000))
            done = {}

            def victim():
                yield sim.timeout(1e-6)
                start = sim.now
                yield from arbiter.transfer("victim", 100_000)
                done["latency"] = sim.now - start

            sim.process(victim())
            sim.run()
            return done["latency"]

        alone = victim_latency(False)
        contended = victim_latency(True)
        # With a 50% guaranteed share, the slowdown is bounded near 2x
        # (plus one quantum of head-of-line blocking), not unbounded.
        assert contended < alone * 2.6

    def test_idle_tenant_capacity_reused(self):
        """Work-conserving: when B is idle, A gets the whole bus."""
        sim = Simulator()
        arbiter = make_arbiter(sim, bandwidth=1e9)
        arbiter.register_tenant("a", weight=1)
        arbiter.register_tenant("b", weight=1)

        def scenario():
            yield from arbiter.transfer("a", 1_000_000)
            return sim.now

        assert sim.run_process(scenario()) == pytest.approx(1e-3, rel=0.01)
