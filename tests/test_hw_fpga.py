"""Tests for the FPGA fabric, bitstreams, ICAP, and AXI interconnect."""

import pytest

from repro.common.errors import CapacityError, ConfigurationError
from repro.common.units import MSEC
from repro.hw.fpga import (
    ALVEO_U280,
    AddressRange,
    AxiStreamInterconnect,
    Bitstream,
    BitstreamAuthority,
    Fabric,
    FabricResources,
    Icap,
)
from repro.sim import Simulator


def small_bitstream(name="accel", luts=1000, size=8 * 1024 * 1024):
    return Bitstream(name, FabricResources(luts=luts), size_bytes=size)


class TestFabricResources:
    def test_add_sub(self):
        a = FabricResources(luts=10, brams=2)
        b = FabricResources(luts=5, dsps=3)
        assert (a + b).luts == 15
        assert (a + b).dsps == 3
        assert (a - b).luts == 5

    def test_fits_within(self):
        small = FabricResources(luts=10)
        big = FabricResources(luts=100, brams=5)
        assert small.fits_within(big)
        assert not big.fits_within(small)

    def test_scaled(self):
        half = ALVEO_U280.scaled(0.5)
        assert half.luts == ALVEO_U280.luts // 2

    def test_u280_datasheet_numbers(self):
        assert ALVEO_U280.luts == 1_304_000
        assert ALVEO_U280.urams == 960


class TestFabric:
    def test_default_carving(self):
        fabric = Fabric(num_slots=5, shell_fraction=0.25)
        assert len(fabric.slots) == 5
        total_slot_luts = sum(s.budget.luts for s in fabric.slots)
        assert total_slot_luts + fabric.shell.luts <= ALVEO_U280.luts

    def test_memory_banks(self):
        fabric = Fabric()
        assert fabric.hbm.bandwidth > fabric.dram.bandwidth

    def test_slot_load_unload(self):
        fabric = Fabric()
        bs = small_bitstream()
        slot = fabric.free_slot()
        slot.load(bs, tenant="alice")
        assert slot.occupied
        assert fabric.slot_for("accel") is slot
        assert fabric.utilization() == pytest.approx(1 / 5)
        assert slot.unload() is bs
        assert not slot.occupied

    def test_double_load_rejected(self):
        slot = Fabric().free_slot()
        slot.load(small_bitstream("a"))
        with pytest.raises(CapacityError):
            slot.load(small_bitstream("b"))

    def test_oversized_bitstream_rejected(self):
        fabric = Fabric()
        huge = small_bitstream("huge", luts=ALVEO_U280.luts)
        with pytest.raises(CapacityError):
            fabric.slots[0].load(huge)

    def test_bad_shell_fraction(self):
        with pytest.raises(ConfigurationError):
            Fabric(shell_fraction=1.5)

    def test_unload_empty_slot(self):
        with pytest.raises(ConfigurationError):
            Fabric().slots[0].unload()


class TestBitstreamAuthority:
    def test_sign_and_verify(self):
        authority = BitstreamAuthority(b"secret")
        signed = authority.sign(small_bitstream())
        assert authority.verify(signed)

    def test_tampered_signature_rejected(self):
        authority = BitstreamAuthority(b"secret")
        signed = authority.sign(small_bitstream())
        other = BitstreamAuthority(b"wrong-key").sign(signed.bitstream)
        assert not authority.verify(other)

    def test_empty_key_rejected(self):
        with pytest.raises(ConfigurationError):
            BitstreamAuthority(b"")

    def test_bad_bitstream_params(self):
        with pytest.raises(ConfigurationError):
            Bitstream("x", FabricResources(), size_bytes=0)


class TestIcap:
    def test_latency_in_paper_band(self):
        """Typical partial bitstreams reconfigure in 10-100 ms (paper §2)."""
        sim = Simulator()
        icap = Icap(sim)
        for size_mib in (8, 16, 32, 64):
            bs = small_bitstream(size=size_mib * 1024 * 1024)
            latency = icap.reconfiguration_latency(bs)
            assert 10 * MSEC <= latency <= 100 * MSEC, (size_mib, latency)

    def test_load_evicts_and_records(self):
        sim = Simulator()
        icap = Icap(sim)
        fabric = Fabric()
        slot = fabric.slots[0]

        def scenario():
            yield from icap.load(slot, small_bitstream("first"))
            latency = yield from icap.load(slot, small_bitstream("second"))
            return latency

        latency = sim.run_process(scenario())
        assert slot.loaded.name == "second"
        assert slot.load_count == 2
        assert len(icap.history) == 2
        assert latency == pytest.approx(icap.history[1].latency)

    def test_reconfigurations_serialize(self):
        sim = Simulator()
        icap = Icap(sim)
        fabric = Fabric()
        bs = small_bitstream()

        def load_one(slot):
            yield from icap.load(slot, bs)
            return sim.now

        procs = [
            sim.process(load_one(fabric.slots[0])),
            sim.process(load_one(fabric.slots[1])),
        ]
        sim.run()
        single = icap.reconfiguration_latency(bs)
        assert procs[0].value == pytest.approx(single)
        assert procs[1].value == pytest.approx(2 * single)


class TestAxiInterconnect:
    def test_route(self):
        axi = AxiStreamInterconnect()
        axi.add_range(AddressRange(0, 1024, "dram", "dram"))
        axi.add_range(AddressRange(1024, 1024, "nvme", "nvme-bar"))
        window, offset = axi.route(1030)
        assert window.target == "nvme"
        assert offset == 6

    def test_unmapped_address(self):
        axi = AxiStreamInterconnect()
        with pytest.raises(ConfigurationError):
            axi.route(0)

    def test_overlap_rejected(self):
        axi = AxiStreamInterconnect()
        axi.add_range(AddressRange(0, 1024, "a", "a"))
        with pytest.raises(ConfigurationError):
            axi.add_range(AddressRange(512, 1024, "b", "b"))

    def test_ranges_sorted(self):
        axi = AxiStreamInterconnect()
        axi.add_range(AddressRange(2048, 10, "b", "b"))
        axi.add_range(AddressRange(0, 10, "a", "a"))
        assert [r.name for r in axi.ranges] == ["a", "b"]
