"""Tests for segment descriptors and the translation table."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.common.ids import ObjectId
from repro.memory import Segment, SegmentLocation, SegmentTranslationTable


def seg(oid_value, size=64, location=SegmentLocation.DRAM, durable=False, bus=0):
    return Segment(ObjectId(oid_value), size, location, bus, durable=durable)


class TestSegment:
    def test_invalid_size(self):
        with pytest.raises(ValueError):
            seg(1, size=0)

    def test_invalid_bus_address(self):
        with pytest.raises(ValueError):
            Segment(ObjectId(1), 10, SegmentLocation.DRAM, -5)

    def test_record_roundtrip(self):
        original = seg(
            0xDEAD, size=12345, location=SegmentLocation.NVME, durable=True, bus=0x999
        )
        restored = Segment.from_record(original.to_record())
        assert restored.oid == original.oid
        assert restored.size == original.size
        assert restored.location == original.location
        assert restored.durable == original.durable
        assert restored.bus_address == original.bus_address

    def test_record_size_fixed(self):
        assert len(seg(7).to_record()) == Segment.RECORD_SIZE

    def test_bad_record_length(self):
        with pytest.raises(ValueError):
            Segment.from_record(b"\x00" * 39)


@given(
    oid=st.integers(min_value=0, max_value=(1 << 128) - 1),
    size=st.integers(min_value=1, max_value=1 << 60),
    bus=st.integers(min_value=0, max_value=1 << 60),
    location=st.sampled_from(list(SegmentLocation)),
    durable=st.booleans(),
)
def test_segment_record_roundtrip_property(oid, size, bus, location, durable):
    original = Segment(ObjectId(oid), size, location, bus, durable=durable)
    restored = Segment.from_record(original.to_record())
    assert (restored.oid, restored.size, restored.bus_address) == (
        original.oid,
        original.size,
        original.bus_address,
    )
    assert restored.location is location
    assert restored.durable is durable


class TestTranslationTable:
    def test_insert_lookup(self):
        table = SegmentTranslationTable()
        segment = seg(42)
        table.insert(segment)
        assert table.lookup(ObjectId(42)) is segment
        assert table.lookups == 1

    def test_duplicate_insert_rejected(self):
        table = SegmentTranslationTable()
        table.insert(seg(1))
        with pytest.raises(ConfigurationError):
            table.insert(seg(1))

    def test_missing_lookup(self):
        with pytest.raises(KeyError):
            SegmentTranslationTable().lookup(ObjectId(9))

    def test_remove(self):
        table = SegmentTranslationTable()
        table.insert(seg(5))
        table.remove(ObjectId(5))
        assert ObjectId(5) not in table

    def test_durable_filter(self):
        table = SegmentTranslationTable()
        table.insert(seg(1, durable=True, location=SegmentLocation.NVME))
        table.insert(seg(2, durable=False))
        assert [s.oid.value for s in table.durable_segments()] == [1]

    def test_serialize_durable_only(self):
        table = SegmentTranslationTable()
        table.insert(seg(1, durable=True, location=SegmentLocation.NVME))
        table.insert(seg(2))
        restored = SegmentTranslationTable.deserialize(table.serialize())
        assert len(restored) == 1
        assert ObjectId(1) in restored

    def test_serialize_all(self):
        table = SegmentTranslationTable()
        table.insert(seg(1))
        table.insert(seg(2))
        restored = SegmentTranslationTable.deserialize(
            table.serialize(durable_only=False)
        )
        assert len(restored) == 2

    def test_bad_magic(self):
        with pytest.raises(ConfigurationError):
            SegmentTranslationTable.deserialize(b"garbage!" + b"\x00" * 8)

    def test_truncated_image(self):
        table = SegmentTranslationTable()
        table.insert(seg(1, durable=True, location=SegmentLocation.NVME))
        image = table.serialize()
        with pytest.raises(ConfigurationError):
            SegmentTranslationTable.deserialize(image[:-10])

    def test_empty_table_roundtrip(self):
        restored = SegmentTranslationTable.deserialize(
            SegmentTranslationTable().serialize()
        )
        assert len(restored) == 0


@given(
    st.lists(
        st.integers(min_value=0, max_value=(1 << 128) - 1),
        unique=True,
        max_size=50,
    )
)
def test_table_roundtrip_property(oids):
    table = SegmentTranslationTable()
    for value in oids:
        table.insert(seg(value, durable=True, location=SegmentLocation.NVME))
    restored = SegmentTranslationTable.deserialize(table.serialize())
    assert {s.oid for s in restored} == {ObjectId(v) for v in oids}
