"""Tests for the warping-style optimizer (constant folding + DCE)."""

import pytest
from hypothesis import given, settings

from repro.ebpf import BpfVm, assemble
from repro.hdl import compile_program
from repro.hdl.optimize import optimize_program, optimize_straightline
from tests.test_hdl_equivalence import straight_line_program


class TestConstantFolding:
    def test_chain_folds_to_constant(self):
        program = assemble("""
            mov r0, 10
            add r0, 32
            exit
        """)
        optimized = optimize_straightline(program)
        # add folds into a mov; DCE removes the now-dead first mov.
        assert len(optimized.instructions) == 2
        assert BpfVm(optimized).run().return_value == 42

    def test_register_copy_propagates(self):
        program = assemble("""
            mov r3, 6
            mov r4, 7
            mov r0, r3
            mul r0, r4
            exit
        """)
        optimized = optimize_straightline(program)
        assert BpfVm(optimized).run().return_value == 42
        assert len(optimized.instructions) < len(program.instructions)

    def test_div_by_zero_folds_to_zero(self):
        program = assemble("""
            mov r0, 99
            mov r3, 0
            div r0, r3
            exit
        """)
        optimized = optimize_straightline(program)
        assert BpfVm(optimized).run().return_value == 0

    def test_unknown_input_not_folded(self):
        program = assemble("""
            ldxw r3, [r1+0]
            mov r0, r3
            add r0, 1
            exit
        """)
        optimized = optimize_straightline(program)
        context = (41).to_bytes(4, "little")
        assert BpfVm(optimized).run(context).return_value == 42

    def test_huge_constant_not_forced_into_mov(self):
        program = assemble("""
            lddw r0, 0x7fffffffffffffff
            add r0, 0
            exit
        """)
        optimized = optimize_straightline(program)
        assert BpfVm(optimized).run().return_value == 0x7FFFFFFFFFFFFFFF


class TestDeadCodeElimination:
    def test_unused_result_removed(self):
        program = assemble("""
            mov r3, 123
            mov r4, 456
            mul r4, r3
            mov r0, 7
            exit
        """)
        optimized = optimize_straightline(program)
        assert len(optimized.instructions) == 2  # mov r0 + exit
        assert BpfVm(optimized).run().return_value == 7

    def test_overwritten_value_removed(self):
        program = assemble("""
            mov r0, 1
            mov r0, 2
            exit
        """)
        optimized = optimize_straightline(program)
        assert len(optimized.instructions) == 2
        assert BpfVm(optimized).run().return_value == 2

    def test_stores_never_removed(self):
        program = assemble("""
            mov r3, 9
            stxdw [r10-8], r3
            ldxdw r0, [r10-8]
            exit
        """)
        optimized = optimize_straightline(program)
        assert any(i.opcode.value.startswith("stx") for i in optimized.instructions)
        assert BpfVm(optimized).run().return_value == 9

    def test_branchy_program_conservative(self):
        """Multi-block programs keep branch offsets valid."""
        source = """
            ldxw r3, [r1+0]
            mov r0, 0
            jeq r3, 5, five
            mov r0, 1
            exit
        five:
            mov r0, 2
            exit
        """
        program = assemble(source)
        optimized = optimize_program(program)
        for value, expected in ((5, 2), (6, 1)):
            ctx = value.to_bytes(4, "little")
            assert BpfVm(optimized).run(ctx).return_value == expected


class TestCompileIntegration:
    def test_optimized_pipeline_smaller(self):
        source = "\n".join(
            ["mov r0, 0"]
            + [f"add r0, {i}" for i in range(1, 11)]  # folds to one constant
            + ["exit"]
        )
        plain = compile_program(assemble(source), optimize=False, fuse=False)
        optimized = compile_program(assemble(source), optimize=True, fuse=False)
        assert optimized.schedule.depth < plain.schedule.depth
        assert optimized.area.resources.luts < plain.area.resources.luts

    def test_semantics_preserved_through_compile(self):
        source = "mov r3, 21\nmov r0, r3\nadd r0, r3\nexit"
        plain = compile_program(assemble(source), optimize=False)
        optimized = compile_program(assemble(source), optimize=True)
        from repro.sim import Simulator
        from repro.hdl import HardwarePipeline

        assert (
            HardwarePipeline(Simulator(), plain).execute_now().return_value
            == HardwarePipeline(Simulator(), optimized).execute_now().return_value
            == 42
        )


@settings(max_examples=60, deadline=None)
@given(program=straight_line_program())
def test_optimizer_preserves_semantics_property(program):
    """For arbitrary straight-line programs, optimization is invisible."""
    original = BpfVm(program).run().return_value
    optimized = optimize_straightline(program)
    assert BpfVm(optimized).run().return_value == original
    assert len(optimized.instructions) <= len(program.instructions)
