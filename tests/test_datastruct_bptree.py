"""Tests for the B+ tree (including property-based invariants)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.datastruct import BPlusTree, InMemoryNodeStore


class TestBasics:
    def test_empty_get(self):
        assert BPlusTree().get(5) is None

    def test_insert_get(self):
        tree = BPlusTree()
        tree.insert(1, "one")
        assert tree.get(1) == "one"
        assert tree.size == 1

    def test_overwrite(self):
        tree = BPlusTree()
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.get(1) == "b"
        assert tree.size == 1

    def test_contains(self):
        tree = BPlusTree()
        tree.insert(3, "x")
        assert 3 in tree
        assert 4 not in tree

    def test_min_order(self):
        with pytest.raises(ConfigurationError):
            BPlusTree(order=2)

    def test_delete(self):
        tree = BPlusTree()
        tree.insert(1, "a")
        assert tree.delete(1)
        assert tree.get(1) is None
        assert not tree.delete(1)
        assert tree.size == 0


class TestSplitsAndHeight:
    def test_many_inserts_split(self):
        tree = BPlusTree(order=4)
        for key in range(100):
            tree.insert(key, key * 10)
        for key in range(100):
            assert tree.get(key) == key * 10
        assert tree.height >= 3

    def test_height_grows_logarithmically(self):
        tree = BPlusTree(order=8)
        for key in range(1000):
            tree.insert(key, key)
        assert tree.height <= 5

    def test_reverse_insertion(self):
        tree = BPlusTree(order=4)
        for key in reversed(range(50)):
            tree.insert(key, key)
        assert [k for k, __ in tree.items()] == list(range(50))

    def test_random_insertion(self):
        tree = BPlusTree(order=5)
        keys = list(range(200))
        random.Random(3).shuffle(keys)
        for key in keys:
            tree.insert(key, -key)
        assert [k for k, __ in tree.items()] == list(range(200))


class TestSearchPath:
    def test_path_length_equals_height(self):
        tree = BPlusTree(order=4)
        for key in range(100):
            tree.insert(key, key)
        path = tree.search_path(50)
        assert len(path) == tree.height
        assert path[0] == tree.root_id

    def test_single_leaf_path(self):
        tree = BPlusTree()
        tree.insert(1, 1)
        assert tree.search_path(1) == [tree.root_id]

    def test_fetch_counting(self):
        store = InMemoryNodeStore()
        tree = BPlusTree(order=4, store=store)
        for key in range(100):
            tree.insert(key, key)
        before = store.fetches
        tree.get(42)
        assert store.fetches - before == tree.height


class TestRangeScan:
    def test_range(self):
        tree = BPlusTree(order=4)
        for key in range(50):
            tree.insert(key, key * 2)
        got = list(tree.range(10, 20))
        assert got == [(k, k * 2) for k in range(10, 20)]

    def test_range_across_leaves(self):
        tree = BPlusTree(order=4)
        for key in range(200):
            tree.insert(key, key)
        got = [k for k, __ in tree.range(50, 150)]
        assert got == list(range(50, 150))

    def test_empty_range(self):
        tree = BPlusTree()
        tree.insert(1, 1)
        assert list(tree.range(5, 10)) == []


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=0, max_size=300))
def test_matches_dict_semantics(keys):
    tree = BPlusTree(order=5)
    reference = {}
    for key in keys:
        tree.insert(key, key * 3)
        reference[key] = key * 3
    for key in reference:
        assert tree.get(key) == reference[key]
    assert tree.size == len(reference)
    assert [k for k, __ in tree.items()] == sorted(reference)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=200),
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=0, max_value=500),
)
def test_range_scan_property(keys, low, high):
    low, high = min(low, high), max(low, high)
    tree = BPlusTree(order=4)
    for key in keys:
        tree.insert(key, key)
    expected = sorted(k for k in set(keys) if low <= k < high)
    assert [k for k, __ in tree.range(low, high)] == expected
