"""Tests for the DPU-served remote file system (virtio-fs/DPFS pattern)."""

import pytest

from repro.fs import HyperExtFs
from repro.hw.net import Network
from repro.hw.nvme import Namespace, NvmeController
from repro.sim import Simulator
from repro.storage.remotefs import RemoteFsClient, RemoteFsServer
from repro.transport import RpcClient, RpcServer, UdpSocket
from repro.transport.rpc import RpcError


def make_remote_fs(sim, with_controller=True):
    net = Network(sim)
    controller = NvmeController(sim, "fs-flash")
    controller.add_namespace(Namespace(1, 8192))
    fs = HyperExtFs.mkfs(controller.namespaces[1])
    fs.mkdir("/home")
    fs.create_file("/home/notes.txt", b"dpu-served bytes")
    server = RemoteFsServer(
        sim,
        RpcServer(sim, UdpSocket(sim, net.endpoint("fs-dpu"))),
        fs,
        controller=controller if with_controller else None,
    )
    client = RemoteFsClient(
        RpcClient(sim, UdpSocket(sim, net.endpoint("workstation"))), "fs-dpu"
    )
    return fs, server, client


class TestRemoteFs:
    def test_read_whole_file(self):
        sim = Simulator()
        __, server, client = make_remote_fs(sim)

        def scenario():
            data = yield from client.read("/home/notes.txt")
            return data

        assert sim.run_process(scenario()) == b"dpu-served bytes"
        assert server.reads_served == 1

    def test_partial_read(self):
        sim = Simulator()
        __, ___, client = make_remote_fs(sim)

        def scenario():
            data = yield from client.read("/home/notes.txt", offset=4, length=6)
            return data

        assert sim.run_process(scenario()) == b"served"

    def test_missing_file(self):
        sim = Simulator()
        __, ___, client = make_remote_fs(sim)

        def scenario():
            yield from client.read("/home/ghost")

        with pytest.raises(RpcError, match="no such file"):
            sim.run_process(scenario())

    def test_readdir_and_stat(self):
        sim = Simulator()
        __, ___, client = make_remote_fs(sim)

        def scenario():
            entries = yield from client.readdir("/home")
            meta = yield from client.stat("/home/notes.txt")
            return entries, meta

        entries, meta = sim.run_process(scenario())
        assert entries == ["notes.txt"]
        assert meta["size"] == len(b"dpu-served bytes")

    def test_write_then_read_back(self):
        sim = Simulator()
        fs, __, client = make_remote_fs(sim)

        def scenario():
            yield from client.mkdir("/home/projects")
            yield from client.write("/home/projects/a.txt", b"created remotely")
            data = yield from client.read("/home/projects/a.txt")
            return data

        assert sim.run_process(scenario()) == b"created remotely"
        # And it is genuinely on the DPU's file system.
        assert fs.read_file("/home/projects/a.txt") == b"created remotely"

    def test_read_charges_device_time(self):
        sim = Simulator()
        __, ___, client = make_remote_fs(sim, with_controller=True)

        def scenario():
            yield from client.read("/home/notes.txt")
            return sim.now

        elapsed = sim.run_process(scenario())
        # At least one flash read (80 us) plus network time.
        assert elapsed > 80e-6

    def test_client_holds_no_fs_state(self):
        """The client object only knows the server address."""
        sim = Simulator()
        __, ___, client = make_remote_fs(sim)
        assert not hasattr(client, "fs")
        assert client.server == "fs-dpu"
