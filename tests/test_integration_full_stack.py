"""Full-stack integration: the complete CPU-free lifecycle in one scenario.

Boot -> sign + remotely load a verified eBPF accelerator through the
OS-shell -> run packets through the slot's hardware pipeline -> keep
durable state in the single-level store -> persist -> power-cycle ->
recover -> keep serving. Every hop crosses module boundaries the unit
tests exercise in isolation.
"""

import pytest

from repro.apps.fail2ban import BAN_MAP_FD, build_fail2ban_program
from repro.common.ids import ObjectId
from repro.dpu import HyperionDpu, OsShell
from repro.ebpf.maps import HashMap
from repro.hdl import HardwarePipeline, compile_program
from repro.hw.fpga.bitstream import BitstreamAuthority
from repro.hw.net import Network
from repro.sim import Simulator
from repro.transport import RpcClient, RpcServer, UdpSocket


@pytest.fixture
def stack():
    sim = Simulator()
    net = Network(sim)
    dpu = HyperionDpu(sim, net, ssd_blocks=16384)
    sim.run_process(dpu.boot())
    authority = BitstreamAuthority(b"integration-key")
    shell = OsShell(
        sim, dpu, RpcServer(sim, UdpSocket(sim, net.endpoint("shell"))), authority
    )
    operator = RpcClient(sim, UdpSocket(sim, net.endpoint("operator")))
    return sim, net, dpu, authority, shell, operator


def test_full_lifecycle(stack):
    sim, net, dpu, authority, shell, operator = stack

    # 1. Compile + verify the accelerator, sign it, load it over the network.
    compiled = compile_program(build_fail2ban_program(threshold=2))
    assert compiled.verifier_report.ok
    signed = authority.sign(compiled.to_bitstream(name="fail2ban"))

    def load():
        slot_index = yield from operator.call(
            "shell", "shell.load", signed, "netops",
            request_size=signed.bitstream.size_bytes, response_size=16,
        )
        return slot_index

    slot_index = sim.run_process(load())
    slot = dpu.fabric.slots[slot_index]
    assert slot.loaded.name == "fail2ban"
    assert slot.loaded.kernel is compiled  # the executable model traveled

    # 2. Instantiate the pipeline from the *loaded slot's* kernel and
    #    stream packets through it.
    ban_map = HashMap(key_size=8, value_size=8, max_entries=1024)
    pipeline = HardwarePipeline(
        sim, slot.loaded.kernel, maps={BAN_MAP_FD: ban_map}
    )
    attacker = (0xBADBEEF).to_bytes(4, "little") + b"\x01"

    def attack():
        verdicts = []
        for _ in range(5):
            result = yield from pipeline.execute(attacker)
            verdicts.append(result.return_value)
        return verdicts

    verdicts = sim.run_process(attack())
    assert verdicts[:2] == [1, 1]  # first two failures pass
    assert set(verdicts[2:]) == {0}  # then the source is banned

    # 3. Persist the ban state into a durable segment + the table.
    state_oid = ObjectId(0xFEED)
    segment = dpu.store.allocate(4096, durable=True, oid=state_oid)
    exported = b"".join(key + bytes(value) for key, value in ban_map.items())
    dpu.store.write(state_oid, exported)
    dpu.store.persist_table()

    # 4. Power loss. DRAM (and the loaded slot) are gone; flash survives.
    twin = dpu.power_cycle()
    report = sim.run_process(twin.boot(recover_store=True))
    assert report.recovered_segments == 1
    assert twin.fabric.free_slot() is not None  # slots came back empty
    recovered = twin.store.read(state_oid, len(exported))
    assert recovered == exported

    # 5. Reload the accelerator (same signed image) and keep serving: the
    #    recovered state seeds the new map, so the ban persists.
    recovered_map = HashMap(key_size=8, value_size=8, max_entries=1024)
    for at in range(0, len(recovered), 16):
        recovered_map.update(recovered[at : at + 8], recovered[at + 8 : at + 16])
    pipeline2 = HardwarePipeline(
        sim, compiled, maps={BAN_MAP_FD: recovered_map}
    )
    result = pipeline2.execute_now(attacker)
    assert result.return_value == 0  # still banned after the power cut


def test_lifecycle_rejects_unsigned_reload(stack):
    sim, net, dpu, authority, shell, operator = stack
    compiled = compile_program(build_fail2ban_program())
    forged = BitstreamAuthority(b"other-key").sign(compiled.to_bitstream())

    def load():
        yield from operator.call(
            "shell", "shell.load", forged, "mallory",
            request_size=1024, response_size=16,
        )

    with pytest.raises(Exception, match="signature"):
        sim.run_process(load())
    assert all(not slot.occupied for slot in dpu.fabric.slots)
