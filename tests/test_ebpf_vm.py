"""Tests for the eBPF interpreter, maps, and helpers."""

import pytest

from repro.common.errors import CapacityError, ProtocolError
from repro.ebpf import ArrayMap, BpfVm, HashMap, ProgramBuilder, assemble
from repro.ebpf.helpers import (
    HELPER_GET_PRANDOM_U32,
    HELPER_KTIME_GET_NS,
    HELPER_MAP_DELETE,
    HELPER_MAP_LOOKUP,
    HELPER_MAP_UPDATE,
)


def run(source, context=b"", **kwargs):
    return BpfVm(assemble(source), **kwargs).run(context)


class TestArithmetic:
    def test_mov_and_exit(self):
        assert run("mov r0, 42\nexit").return_value == 42

    def test_add_sub_mul(self):
        assert run("mov r0, 10\nadd r0, 5\nexit").return_value == 15
        assert run("mov r0, 10\nsub r0, 3\nexit").return_value == 7
        assert run("mov r0, 6\nmul r0, 7\nexit").return_value == 42

    def test_register_source(self):
        assert run("mov r1, 8\nmov r0, 4\nadd r0, r1\nexit").return_value == 12

    def test_div_by_zero_yields_zero(self):
        assert run("mov r1, 0\nmov r0, 10\ndiv r0, r1\nexit").return_value == 0

    def test_mod(self):
        assert run("mov r0, 17\nmod r0, 5\nexit").return_value == 2

    def test_bitwise(self):
        assert run("mov r0, 0b1100\nand r0, 0b1010\nexit").return_value == 0b1000
        assert run("mov r0, 0b1100\nor r0, 0b0011\nexit").return_value == 0b1111
        assert run("mov r0, 0b1100\nxor r0, 0b1010\nexit").return_value == 0b0110

    def test_shifts(self):
        assert run("mov r0, 1\nlsh r0, 10\nexit").return_value == 1024
        assert run("mov r0, 1024\nrsh r0, 3\nexit").return_value == 128

    def test_arsh_sign_extends(self):
        result = run("mov r0, 0\nsub r0, 8\narsh r0, 1\nexit")
        assert result.return_value == (-4) & ((1 << 64) - 1)

    def test_neg(self):
        assert run("mov r0, 5\nneg r0\nexit").return_value == (-5) & ((1 << 64) - 1)

    def test_wraparound_64bit(self):
        result = run("lddw r0, 0xffffffffffffffff\nadd r0, 1\nexit")
        assert result.return_value == 0

    def test_lddw_large_imm(self):
        assert run("lddw r0, 0x1122334455667788\nexit").return_value == 0x1122334455667788


class TestControlFlow:
    def test_taken_branch(self):
        source = """
            mov r1, 5
            mov r0, 0
            jeq r1, 5, yes
            mov r0, 1
            exit
        yes:
            mov r0, 2
            exit
        """
        assert run(source).return_value == 2

    def test_not_taken_branch(self):
        source = """
            mov r1, 4
            mov r0, 0
            jeq r1, 5, yes
            mov r0, 1
            exit
        yes:
            mov r0, 2
            exit
        """
        assert run(source).return_value == 1

    def test_signed_compare(self):
        source = """
            mov r1, 0
            sub r1, 1      ; r1 = -1
            mov r0, 0
            jslt r1, 0, neg
            exit
        neg:
            mov r0, 99
            exit
        """
        assert run(source).return_value == 99

    def test_unsigned_compare_treats_neg_as_big(self):
        source = """
            mov r1, 0
            sub r1, 1
            mov r0, 0
            jgt r1, 100, big
            exit
        big:
            mov r0, 1
            exit
        """
        assert run(source).return_value == 1

    def test_loop_with_counter(self):
        source = """
            mov r1, 10
            mov r0, 0
        top:
            add r0, r1
            sub r1, 1
            jne r1, 0, top
            exit
        """
        assert run(source).return_value == 55

    def test_instruction_budget(self):
        source = """
        top:
            mov r0, 1
            ja top
        """
        with pytest.raises(ProtocolError, match="budget"):
            run(source, max_instructions=1000)


class TestMemory:
    def test_stack_store_load(self):
        source = """
            mov r1, 777
            stxdw [r10-8], r1
            ldxdw r0, [r10-8]
            exit
        """
        assert run(source).return_value == 777

    def test_byte_granularity(self):
        source = """
            stb [r10-1], 0xAB
            ldxb r0, [r10-1]
            exit
        """
        assert run(source).return_value == 0xAB

    def test_context_read(self):
        source = """
            ldxw r0, [r1+0]
            exit
        """
        context = (1234).to_bytes(4, "little")
        assert run(source, context=context).return_value == 1234

    def test_context_write_visible_in_result(self):
        source = """
            stw [r1+0], 99
            mov r0, 0
            exit
        """
        result = run(source, context=b"\x00" * 4)
        assert int.from_bytes(result.context[:4], "little") == 99

    def test_context_length_in_r2(self):
        source = "mov r0, r2\nexit"
        assert run(source, context=b"x" * 17).return_value == 17

    def test_out_of_bounds_stack_faults(self):
        with pytest.raises(ProtocolError, match="out-of-bounds"):
            run("ldxdw r0, [r10+0]\nexit")

    def test_out_of_bounds_context_faults(self):
        with pytest.raises(ProtocolError, match="out-of-bounds"):
            run("ldxw r0, [r1+100]\nexit", context=b"abcd")

    def test_invalid_pointer_faults(self):
        with pytest.raises(ProtocolError, match="invalid pointer"):
            run("mov r1, 0\nldxw r0, [r1+0]\nexit")


class TestHelpersAndMaps:
    def make_vm(self, source, maps):
        return BpfVm(assemble(source), maps=maps)

    def test_map_update_and_lookup(self):
        source = f"""
            ; key = 7 at [r10-8]
            mov r1, 7
            stxdw [r10-8], r1
            ; value = 1234 at [r10-16]
            mov r1, 1234
            stxdw [r10-16], r1
            ; map_update(fd=1, key, value, 0)
            mov r1, 1
            mov r2, r10
            sub r2, 8
            mov r3, r10
            sub r3, 16
            mov r4, 0
            call {HELPER_MAP_UPDATE}
            ; r0 = *map_lookup(fd=1, key)
            mov r1, 7
            stxdw [r10-8], r1
            mov r1, 1
            mov r2, r10
            sub r2, 8
            call {HELPER_MAP_LOOKUP}
            jne r0, 0, found
            mov r0, 0
            exit
        found:
            ldxdw r0, [r0+0]
            exit
        """
        table = HashMap(key_size=8, value_size=8)
        vm = self.make_vm(source, {1: table})
        assert vm.run().return_value == 1234
        assert len(table) == 1

    def test_lookup_miss_returns_zero(self):
        source = f"""
            mov r1, 9
            stxdw [r10-8], r1
            mov r1, 1
            mov r2, r10
            sub r2, 8
            call {HELPER_MAP_LOOKUP}
            exit
        """
        vm = self.make_vm(source, {1: HashMap(key_size=8, value_size=8)})
        assert vm.run().return_value == 0

    def test_write_through_map_pointer(self):
        """Stores through a looked-up value pointer mutate the map."""
        table = HashMap(key_size=8, value_size=8)
        table.update((5).to_bytes(8, "little"), (0).to_bytes(8, "little"))
        source = f"""
            mov r1, 5
            stxdw [r10-8], r1
            mov r1, 1
            mov r2, r10
            sub r2, 8
            call {HELPER_MAP_LOOKUP}
            jeq r0, 0, miss
            mov r1, 42
            stxdw [r0+0], r1
            mov r0, 1
            exit
        miss:
            mov r0, 0
            exit
        """
        vm = self.make_vm(source, {1: table})
        assert vm.run().return_value == 1
        stored = table.lookup((5).to_bytes(8, "little"))
        assert int.from_bytes(stored, "little") == 42

    def test_map_delete(self):
        table = HashMap(key_size=8, value_size=8)
        table.update((3).to_bytes(8, "little"), (1).to_bytes(8, "little"))
        source = f"""
            mov r1, 3
            stxdw [r10-8], r1
            mov r1, 1
            mov r2, r10
            sub r2, 8
            call {HELPER_MAP_DELETE}
            exit
        """
        vm = self.make_vm(source, {1: table})
        vm.run()
        assert len(table) == 0

    def test_ktime_monotonic(self):
        source = f"call {HELPER_KTIME_GET_NS}\nmov r6, r0\ncall {HELPER_KTIME_GET_NS}\nsub r0, r6\nexit"
        assert run(source).return_value >= 1

    def test_prandom(self):
        result = run(f"call {HELPER_GET_PRANDOM_U32}\nexit")
        assert 0 <= result.return_value < (1 << 32)

    def test_unknown_helper_faults(self):
        with pytest.raises(ProtocolError, match="unknown helper"):
            run("call 999\nexit")

    def test_call_clobbers_caller_saved(self):
        source = f"""
            mov r1, 55
            call {HELPER_KTIME_GET_NS}
            mov r0, r1
            exit
        """
        assert run(source).return_value == 0


class TestMaps:
    def test_hashmap_capacity(self):
        table = HashMap(key_size=1, value_size=1, max_entries=1)
        table.update(b"a", b"x")
        with pytest.raises(CapacityError):
            table.update(b"b", b"y")
        table.update(b"a", b"z")  # overwrite is fine

    def test_hashmap_key_size_enforced(self):
        with pytest.raises(ProtocolError):
            HashMap(key_size=4, value_size=4).lookup(b"too-long-key")

    def test_arraymap_lookup_index(self):
        array = ArrayMap(value_size=8, max_entries=4)
        array.update((2).to_bytes(4, "little"), (99).to_bytes(8, "little"))
        assert int.from_bytes(array.lookup_index(2), "little") == 99

    def test_arraymap_out_of_range(self):
        array = ArrayMap(value_size=8, max_entries=4)
        with pytest.raises(CapacityError):
            array.lookup((7).to_bytes(4, "little"))

    def test_arraymap_delete_zeroes(self):
        array = ArrayMap(value_size=4, max_entries=2)
        key = (0).to_bytes(4, "little")
        array.update(key, b"\x01\x02\x03\x04")
        array.delete(key)
        assert bytes(array.lookup(key)) == b"\x00" * 4

    def test_hashmap_items(self):
        table = HashMap(key_size=1, value_size=1)
        table.update(b"a", b"1")
        table.update(b"b", b"2")
        assert dict(table.items()) == {b"a": b"1", b"b": b"2"}


class TestBuilder:
    def test_builder_matches_assembler(self):
        built = (
            ProgramBuilder()
            .mov("r0", 0)
            .jeq("r1", 0, "done")
            .add("r0", 1)
            .label("done")
            .exit()
            .build()
        )
        assembled = assemble("""
            mov r0, 0
            jeq r1, 0, done
            add r0, 1
        done:
            exit
        """)
        assert built.encode() == assembled.encode()

    def test_builder_runs(self):
        program = (
            ProgramBuilder()
            .mov("r6", 21)
            .mov("r0", "r6")
            .add("r0", "r6")
            .exit()
            .build()
        )
        assert BpfVm(program).run().return_value == 42

    def test_undefined_label_rejected(self):
        builder = ProgramBuilder().jump("nowhere").exit()
        with pytest.raises(ProtocolError):
            builder.build()

    def test_builder_memory_ops(self):
        program = (
            ProgramBuilder()
            .mov("r1", 7)
            .store(8, "r10", -8, "r1")
            .load(8, "r0", "r10", -8)
            .exit()
            .build()
        )
        assert BpfVm(program).run().return_value == 7
