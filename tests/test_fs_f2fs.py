"""Tests for the log-structured (F2FS-like) file system."""

import pytest

from repro.common.errors import ProtocolError
from repro.fs import LogStructuredFs
from repro.hw.nvme import Namespace


def make_fs(blocks=1024):
    return LogStructuredFs.mkfs(Namespace(1, blocks))


class TestBasics:
    def test_write_read(self):
        fs = make_fs()
        fs.write_file("/log.txt", b"append-only world")
        assert fs.read_file("/log.txt") == b"append-only world"

    def test_overwrite_appends_new_version(self):
        fs = make_fs()
        fs.write_file("/f", b"v1")
        inode1, block1 = fs.nat_entry("/f")
        fs.write_file("/f", b"v2")
        inode2, block2 = fs.nat_entry("/f")
        assert inode1 == inode2  # same file
        assert block2 > block1  # new log record, no overwrite
        assert fs.read_file("/f") == b"v2"

    def test_missing_file(self):
        with pytest.raises(FileNotFoundError):
            make_fs().read_file("/nope")

    def test_listdir(self):
        fs = make_fs()
        fs.write_file("/b", b"")
        fs.write_file("/a", b"")
        assert fs.listdir() == ["/a", "/b"]

    def test_multi_block_file(self):
        fs = make_fs()
        data = b"Z" * 10_000
        fs.write_file("/big", data)
        assert fs.read_file("/big") == data


class TestRecovery:
    def test_recover_from_checkpoint(self):
        namespace = Namespace(1, 1024)
        fs = LogStructuredFs.mkfs(namespace)
        fs.write_file("/durable", b"checkpointed data")
        fs.checkpoint()
        recovered = LogStructuredFs.recover(namespace)
        assert recovered.read_file("/durable") == b"checkpointed data"

    def test_roll_forward_past_checkpoint(self):
        """Records appended after the last checkpoint are replayed."""
        namespace = Namespace(1, 1024)
        fs = LogStructuredFs.mkfs(namespace)
        fs.write_file("/before", b"old")
        fs.checkpoint()
        fs.write_file("/after", b"newer than checkpoint")
        # crash without checkpoint
        recovered = LogStructuredFs.recover(namespace)
        assert recovered.read_file("/before") == b"old"
        assert recovered.read_file("/after") == b"newer than checkpoint"

    def test_roll_forward_sees_latest_version(self):
        namespace = Namespace(1, 1024)
        fs = LogStructuredFs.mkfs(namespace)
        fs.write_file("/f", b"v1")
        fs.checkpoint()
        fs.write_file("/f", b"v2")
        recovered = LogStructuredFs.recover(namespace)
        assert recovered.read_file("/f") == b"v2"

    def test_recover_without_checkpoint_fails(self):
        with pytest.raises(ProtocolError):
            LogStructuredFs.recover(Namespace(1, 64))

    def test_alternating_checkpoint_slots(self):
        namespace = Namespace(1, 1024)
        fs = LogStructuredFs.mkfs(namespace)  # gen 1 -> slot 1
        fs.write_file("/a", b"1")
        fs.checkpoint()  # gen 2 -> slot 0
        fs.write_file("/b", b"2")
        fs.checkpoint()  # gen 3 -> slot 1
        recovered = LogStructuredFs.recover(namespace)
        assert recovered.read_file("/a") == b"1"
        assert recovered.read_file("/b") == b"2"

    def test_writes_continue_after_recovery(self):
        namespace = Namespace(1, 1024)
        fs = LogStructuredFs.mkfs(namespace)
        fs.write_file("/a", b"1")
        fs.checkpoint()
        recovered = LogStructuredFs.recover(namespace)
        recovered.write_file("/new", b"post-recovery")
        assert recovered.read_file("/new") == b"post-recovery"
        assert recovered.read_file("/a") == b"1"
