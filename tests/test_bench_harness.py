"""The continuous-benchmark harness: canonical artifacts, numbering,
and direction-aware regression detection."""

import json

from repro.bench import (
    BenchRun,
    Delta,
    Metric,
    SPECS,
    compare_payloads,
    discover_artifacts,
    publish,
    run_suite,
)


def _payload(**metric_values):
    """A minimal one-experiment payload with the given tracked metrics.

    A metric spec is ``(value, better)`` or ``(value, better, volatile)``.
    """
    metrics = {}
    for name, spec in metric_values.items():
        value, better = spec[0], spec[1]
        metric = {"value": value, "better": better, "unit": ""}
        if len(spec) > 2 and spec[2]:
            metric["volatile"] = True
        metrics[name] = metric
    return {
        "format": 1,
        "seed": None,
        "experiments": {
            "ex": {"title": "example", "metrics": metrics},
        },
    }


class TestSuite:
    def test_registry_covers_at_least_ten_experiments(self):
        assert len(SPECS) >= 10
        assert len({spec.key for spec in SPECS}) == len(SPECS)

    def test_same_seed_same_canonical_bytes(self):
        first = run_suite(keys=["e1", "e3"])
        second = run_suite(keys=["e1", "e3"])
        assert first.canonical_bytes() == second.canonical_bytes()
        # The seed enters the payload, so a different seed is a
        # different artifact even when every metric happens to agree.
        reseeded = run_suite(seed=99, keys=["e1", "e3"])
        assert reseeded.canonical_bytes() != first.canonical_bytes()

    def test_wall_clock_never_enters_the_artifact(self):
        run = run_suite(keys=["e1"])
        assert run.wall_clock  # measured...
        text = run.canonical_bytes().decode()
        payload = json.loads(text)
        assert "wall_clock" not in text
        assert set(payload) == {"format", "seed", "experiments"}

    def test_canonical_json_is_sorted(self):
        run = BenchRun(seed=None, payload=_payload(m=(1.0, "lower")))
        text = run.canonical_bytes().decode()
        assert json.loads(text) == run.payload
        assert text == json.dumps(
            run.payload, sort_keys=True, indent=2
        ) + "\n"


class TestArtifactHistory:
    def test_numbering_and_unchanged_detection(self, tmp_path):
        run = BenchRun(seed=None, payload=_payload(m=(1.0, "lower")))
        first = publish(run, tmp_path)
        assert first.written == tmp_path / "BENCH_1.json"
        assert first.compared_against is None
        # Identical payload: nothing written, compared against BENCH_1.
        again = publish(run, tmp_path)
        assert again.unchanged
        assert again.written is None
        assert again.compared_against == tmp_path / "BENCH_1.json"
        assert discover_artifacts(tmp_path) == [
            (1, tmp_path / "BENCH_1.json")
        ]
        # A changed payload gets the next number.
        moved = BenchRun(seed=None, payload=_payload(m=(1.1, "lower")))
        third = publish(moved, tmp_path)
        assert third.written == tmp_path / "BENCH_2.json"
        assert [n for n, __ in discover_artifacts(tmp_path)] == [1, 2]

    def test_regression_flags_latency_up_and_throughput_down(self, tmp_path):
        baseline = BenchRun(seed=None, payload=_payload(
            latency=(1.0, "lower"), throughput=(100.0, "higher"),
            note=(5.0, "info"),
        ))
        publish(baseline, tmp_path)
        regressed = BenchRun(seed=None, payload=_payload(
            latency=(1.5, "lower"),       # +50% on lower-is-better
            throughput=(70.0, "higher"),  # -30% on higher-is-better
            note=(50.0, "info"),          # info metrics never regress
        ))
        outcome = publish(regressed, tmp_path)
        assert {(d.metric, d.regressed) for d in outcome.deltas} == {
            ("latency", True), ("throughput", True),
        }
        assert len(outcome.regressions) == 2

    def test_small_moves_and_improvements_do_not_flag(self, tmp_path):
        baseline = BenchRun(seed=None, payload=_payload(
            latency=(1.0, "lower"), throughput=(100.0, "higher"),
        ))
        publish(baseline, tmp_path)
        improved = BenchRun(seed=None, payload=_payload(
            latency=(0.5, "lower"),        # big improvement
            throughput=(115.0, "higher"),  # +15%: inside the band
        ))
        outcome = publish(improved, tmp_path)
        assert outcome.regressions == []
        latency = next(d for d in outcome.deltas if d.metric == "latency")
        assert latency.improved and not latency.regressed


class TestCompare:
    def test_new_experiments_and_metrics_are_skipped(self):
        old = _payload(kept=(1.0, "lower"))
        new = _payload(kept=(1.0, "lower"), added=(9.0, "lower"))
        new["experiments"]["brand-new"] = {
            "title": "n", "metrics": {"x": {
                "value": 1.0, "better": "lower", "unit": ""}},
        }
        deltas = compare_payloads(old, new)
        assert [d.metric for d in deltas] == ["kept"]

    def test_zero_baseline_is_not_a_division_crash(self):
        delta = Delta("ex", "m", old=0.0, new=0.0, better="lower", unit="")
        assert delta.relative == 0.0 and not delta.regressed
        grew = Delta("ex", "m", old=0.0, new=1.0, better="lower", unit="")
        assert grew.relative == float("inf") and grew.regressed

    def test_metric_payload_shape(self):
        assert Metric(3.0, "lower", "s").payload() == {
            "value": 3.0, "better": "lower", "unit": "s",
        }

    def test_volatile_key_only_serialized_when_set(self):
        # Pre-existing artifacts must stay byte-identical: the key is
        # absent unless the metric opts in.
        assert "volatile" not in Metric(3.0, "higher", "x").payload()
        assert Metric(3.0, "higher", "x", volatile=True).payload() == {
            "value": 3.0, "better": "higher", "unit": "x", "volatile": True,
        }


class TestVolatileNoiseTolerance:
    """Wall-clock (volatile) metrics: within-gate jitter must not churn
    the append-only history, while real movement still lands."""

    def _publish_baseline(self, tmp_path):
        baseline = BenchRun(seed=None, payload=_payload(
            rate=(100.0, "higher", True), count=(7.0, "info"),
        ))
        publish(baseline, tmp_path)

    def test_within_gate_jitter_writes_nothing(self, tmp_path):
        self._publish_baseline(tmp_path)
        jittered = BenchRun(seed=None, payload=_payload(
            rate=(109.0, "higher", True), count=(7.0, "info"),
        ))
        outcome = publish(jittered, tmp_path)
        assert outcome.unchanged and outcome.within_noise
        assert outcome.written is None
        assert [n for n, __ in discover_artifacts(tmp_path)] == [1]

    def test_drift_past_gate_is_published_and_flagged(self, tmp_path):
        self._publish_baseline(tmp_path)
        slowed = BenchRun(seed=None, payload=_payload(
            rate=(70.0, "higher", True), count=(7.0, "info"),
        ))
        outcome = publish(slowed, tmp_path)
        assert not outcome.unchanged
        assert outcome.written == tmp_path / "BENCH_2.json"
        assert [d.metric for d in outcome.regressions] == ["rate"]

    def test_deterministic_change_always_published(self, tmp_path):
        self._publish_baseline(tmp_path)
        # The volatile value jitters within the gate, but an info count
        # moved: that is a semantics change and must enter the history.
        changed = BenchRun(seed=None, payload=_payload(
            rate=(101.0, "higher", True), count=(8.0, "info"),
        ))
        outcome = publish(changed, tmp_path)
        assert not outcome.unchanged
        assert outcome.written == tmp_path / "BENCH_2.json"

    def test_non_volatile_drift_always_published(self, tmp_path):
        baseline = BenchRun(seed=None, payload=_payload(
            rate=(100.0, "higher"),
        ))
        publish(baseline, tmp_path)
        moved = BenchRun(seed=None, payload=_payload(
            rate=(101.0, "higher"),
        ))
        outcome = publish(moved, tmp_path)
        assert not outcome.unchanged and outcome.written is not None
