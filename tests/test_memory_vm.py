"""Tests for the baseline virtual-memory model and the segment comparison."""

import random

from repro.memory.vm import (
    PAGE_SIZE,
    TlbModel,
    VirtualMemoryModel,
    segment_translation_result,
)


class TestTlb:
    def test_first_access_misses(self):
        tlb = TlbModel(entries=4)
        assert not tlb.lookup(0)
        assert tlb.lookup(0)

    def test_same_page_hits(self):
        tlb = TlbModel(entries=4)
        tlb.lookup(0)
        assert tlb.lookup(PAGE_SIZE - 1)

    def test_lru_eviction(self):
        tlb = TlbModel(entries=2)
        tlb.lookup(0 * PAGE_SIZE)
        tlb.lookup(1 * PAGE_SIZE)
        tlb.lookup(2 * PAGE_SIZE)  # evicts page 0
        assert not tlb.lookup(0 * PAGE_SIZE)

    def test_lru_touch_refreshes(self):
        tlb = TlbModel(entries=2)
        tlb.lookup(0 * PAGE_SIZE)
        tlb.lookup(1 * PAGE_SIZE)
        tlb.lookup(0 * PAGE_SIZE)  # refresh page 0
        tlb.lookup(2 * PAGE_SIZE)  # evicts page 1, not 0
        assert tlb.lookup(0 * PAGE_SIZE)

    def test_hit_rate(self):
        tlb = TlbModel(entries=8)
        for _ in range(10):
            tlb.lookup(0)
        assert tlb.hit_rate == 0.9


class TestVirtualMemoryModel:
    def test_miss_costs_four_accesses(self):
        vm = VirtualMemoryModel()
        result = vm.translate(0)
        assert not result.hit
        assert result.memory_accesses == 4

    def test_hit_costs_nothing(self):
        vm = VirtualMemoryModel()
        vm.translate(0)
        result = vm.translate(64)
        assert result.hit
        assert result.memory_accesses == 0

    def test_large_working_set_thrashes(self):
        """Working sets beyond TLB reach miss almost always — the overhead
        the paper's segment model avoids."""
        vm = VirtualMemoryModel(tlb_entries=64)
        rng = random.Random(1)
        pages = 10_000
        misses = 0
        for _ in range(5_000):
            vaddr = rng.randrange(pages) * PAGE_SIZE
            if not vm.translate(vaddr).hit:
                misses += 1
        assert misses / 5_000 > 0.95

    def test_small_working_set_hits(self):
        vm = VirtualMemoryModel(tlb_entries=64)
        rng = random.Random(1)
        for _ in range(2_000):
            vm.translate(rng.randrange(32) * PAGE_SIZE)
        assert vm.tlb.hit_rate > 0.9


class TestSegmentComparison:
    def test_segment_lookup_is_single_access(self):
        result = segment_translation_result()
        assert result.memory_accesses == 1

    def test_segment_cheaper_than_walk(self):
        vm = VirtualMemoryModel()
        walk = vm.translate(0)
        assert segment_translation_result().latency < walk.latency
