"""Tests for eBPF instruction encoding/decoding and the assembler."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ProtocolError
from repro.ebpf import Instruction, Opcode, Program, assemble, disassemble


class TestInstruction:
    def test_bad_register(self):
        with pytest.raises(ProtocolError):
            Instruction(Opcode.MOV, dst=11)

    def test_bad_offset(self):
        with pytest.raises(ProtocolError):
            Instruction(Opcode.JA, offset=1 << 15)

    def test_lddw_takes_two_slots(self):
        assert Instruction(Opcode.LDDW, dst=1, imm=1 << 40).slots == 2
        assert Instruction(Opcode.MOV, dst=1).slots == 1

    def test_encode_length(self):
        assert len(Instruction(Opcode.MOV, dst=1, imm=5).encode()) == 8
        assert len(Instruction(Opcode.LDDW, dst=1, imm=5).encode()) == 16

    def test_classification(self):
        assert Instruction(Opcode.ADD, dst=0, imm=1).is_alu
        assert Instruction(Opcode.LDXW, dst=0, src=1).is_load
        assert Instruction(Opcode.STXB, dst=1, src=0).is_store
        assert Instruction(Opcode.JEQ, dst=0, imm=0, offset=1).is_cond_jump
        assert Instruction(Opcode.EXIT).is_jump


ENCODABLE_OPS = [
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.OR, Opcode.AND,
    Opcode.LSH, Opcode.RSH, Opcode.MOD, Opcode.XOR, Opcode.MOV, Opcode.ARSH,
    Opcode.LDXB, Opcode.LDXH, Opcode.LDXW, Opcode.LDXDW,
    Opcode.STXB, Opcode.STXH, Opcode.STXW, Opcode.STXDW,
    Opcode.STB, Opcode.STH, Opcode.STW, Opcode.STDW,
    Opcode.JA, Opcode.JEQ, Opcode.JNE, Opcode.JGT, Opcode.JGE, Opcode.JLT,
    Opcode.JLE, Opcode.JSET, Opcode.JSGT, Opcode.JSGE, Opcode.JSLT,
    Opcode.JSLE, Opcode.CALL, Opcode.EXIT,
]


@given(
    op=st.sampled_from(ENCODABLE_OPS),
    dst=st.integers(min_value=0, max_value=10),
    src=st.integers(min_value=0, max_value=10),
    offset=st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1),
    imm=st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
    reg_src=st.booleans(),
)
def test_encode_decode_roundtrip(op, dst, src, offset, imm, reg_src):
    original = Instruction(op, dst=dst, src=src, offset=offset, imm=imm,
                           uses_reg_src=reg_src)
    decoded = Instruction.decode(original.encode())
    assert decoded.opcode == original.opcode
    assert decoded.dst == original.dst
    assert decoded.src == original.src
    assert decoded.offset == original.offset
    assert decoded.imm == original.imm


@given(imm=st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_lddw_roundtrip(imm):
    original = Instruction(Opcode.LDDW, dst=3, imm=imm)
    decoded = Instruction.decode(original.encode())
    assert decoded.opcode is Opcode.LDDW
    assert decoded.imm == imm


class TestProgram:
    def test_slot_indexing_with_lddw(self):
        program = Program([
            Instruction(Opcode.LDDW, dst=1, imm=99),
            Instruction(Opcode.EXIT),
        ])
        assert len(program) == 3
        assert program.at_slot(0).opcode is Opcode.LDDW
        assert program.at_slot(2).opcode is Opcode.EXIT
        with pytest.raises(ProtocolError):
            program.at_slot(1)  # middle of LDDW

    def test_binary_roundtrip(self):
        program = Program([
            Instruction(Opcode.MOV, dst=0, imm=7),
            Instruction(Opcode.LDDW, dst=1, imm=1 << 40),
            Instruction(Opcode.ADD, dst=0, src=1, uses_reg_src=True),
            Instruction(Opcode.EXIT),
        ])
        restored = Program.decode(program.encode())
        assert len(restored.instructions) == 4
        assert restored.instructions[1].imm == 1 << 40

    def test_decode_bad_length(self):
        with pytest.raises(ProtocolError):
            Program.decode(b"\x00" * 7)


class TestAssembler:
    def test_simple_program(self):
        program = assemble("""
            mov r0, 42
            exit
        """)
        assert [i.opcode for i in program] == [Opcode.MOV, Opcode.EXIT]
        assert program.instructions[0].imm == 42

    def test_labels(self):
        program = assemble("""
            mov r0, 0
            jeq r1, 0, done
            add r0, 1
        done:
            exit
        """)
        jeq = program.instructions[1]
        assert jeq.offset == 1  # skips the add

    def test_backward_label(self):
        program = assemble("""
        top:
            add r0, 1
            ja top
        """)
        assert program.instructions[1].offset == -2

    def test_lddw_slot_accounting_with_labels(self):
        program = assemble("""
            lddw r1, 0x1122334455667788
            jeq r1, 0, out
            mov r0, 1
        out:
            exit
        """)
        jeq = program.instructions[1]
        # Slots: lddw=0,1; jeq=2; mov=3; exit=4. Offset from 3 to 4 is 1.
        assert jeq.offset == 1

    def test_memory_operands(self):
        program = assemble("""
            ldxdw r2, [r1+8]
            stxw [r10-4], r2
            stw [r10-8], 7
            exit
        """)
        load = program.instructions[0]
        assert (load.src, load.offset) == (1, 8)
        store = program.instructions[1]
        assert (store.dst, store.offset, store.src) == (10, -4, 2)
        imm_store = program.instructions[2]
        assert imm_store.imm == 7

    def test_register_vs_imm_source(self):
        program = assemble("add r0, r1\nadd r0, 5\nexit")
        assert program.instructions[0].uses_reg_src
        assert not program.instructions[1].uses_reg_src

    def test_comments_and_blanks_ignored(self):
        program = assemble("""
            ; a comment

            mov r0, 1  ; trailing
            exit
        """)
        assert len(program.instructions) == 2

    def test_unknown_mnemonic(self):
        with pytest.raises(ProtocolError):
            assemble("bogus r0, r1")

    def test_unknown_label(self):
        with pytest.raises(ProtocolError):
            assemble("ja nowhere")

    def test_duplicate_label(self):
        with pytest.raises(ProtocolError):
            assemble("x:\nx:\nexit")

    def test_call_and_exit(self):
        program = assemble("call 1\nexit")
        assert program.instructions[0].imm == 1


class TestDisassembler:
    def test_roundtrip_through_text(self):
        source = """
            mov r0, 0
            lddw r1, 0xdeadbeef
            ldxdw r2, [r1+16]
            jeq r2, 0, +1
            add r0, r2
            exit
        """
        program = assemble(source)
        text = disassemble(program)
        reassembled = assemble(text)
        assert reassembled.encode() == program.encode()

    def test_readable_output(self):
        program = assemble("mov r3, 9\nexit")
        text = disassemble(program)
        assert "mov r3, 9" in text
        assert "exit" in text
