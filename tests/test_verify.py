"""Tests for repro.verify: client-observed histories, the per-key
linearizability checker, the cheap whole-history invariants, schedule
shrinking, the nemesis plan generators, and a bounded slice of the E19
harness (one chaos-search schedule plus the planted-bug demonstration).
"""

import math
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.common.errors import ConfigurationError
from repro.eval.verify import (
    PB_KEY,
    PB_T_HEAL,
    PB_T_KILL,
    PRIMARY,
    REGIONS,
    _planted_mode,
    _run_sharded_schedule,
)
from repro.faults import FaultKind, FaultPlan
from repro.georep import Consistency
from repro.verify import (
    HistoryRecorder,
    Op,
    OpStatus,
    bounded_staleness,
    check_history,
    check_register,
    final_state_check,
    shrink_plan,
    zero_lost_acks,
)
from repro.verify.linearizability import BudgetExceeded
from repro.verify.nemesis import geo_plan, primary_kill_plan, sharded_plan


# ---------------------------------------------------------------------------
# histories
# ---------------------------------------------------------------------------

class _Clock:
    def __init__(self):
        self.now = 0.0


class TestHistoryRecorder:
    def test_invoke_resolve_and_counts(self):
        clock = _Clock()
        recorder = HistoryRecorder(clock)
        write = recorder.invoke("c1", "w", b"k", b"v")
        clock.now = 1.0
        write.ok()
        read = recorder.invoke("c1", "r", b"k")
        clock.now = 2.0
        read.ok(b"v")
        lost = recorder.invoke("c2", "w", b"k", b"w")
        lost.indeterminate()
        refused = recorder.invoke("c2", "r", b"k")
        refused.fail()
        assert recorder.counts() == {"ok": 2, "fail": 1, "indeterminate": 1}
        ops = sorted(recorder.ops, key=lambda op: op.index)
        assert [op.index for op in ops] == [0, 1, 2, 3]
        assert ops[0].status is OpStatus.OK
        assert ops[0].invoked == 0.0 and ops[0].completed == 1.0
        assert ops[1].value == b"v"  # reads capture the observed value
        assert ops[2].completed == math.inf  # lost ack never completes
        assert list(recorder.by_key()) == [b"k"]

    def test_double_resolution_rejected(self):
        recorder = HistoryRecorder(_Clock())
        pending = recorder.invoke("c", "w", b"k", b"v")
        pending.ok()
        with pytest.raises(ConfigurationError):
            pending.fail()

    def test_unknown_action_rejected(self):
        with pytest.raises(ConfigurationError):
            HistoryRecorder(_Clock()).invoke("c", "x", b"k")

    def test_close_open_ops_marks_indeterminate(self):
        recorder = HistoryRecorder(_Clock())
        recorder.invoke("c", "w", b"k", b"v")
        recorder.invoke("c", "r", b"k")
        assert recorder.close_open_ops() == 2
        assert all(
            op.status is OpStatus.INDETERMINATE and op.completed == math.inf
            for op in recorder.ops
        )

    def test_canonical_bytes_stable(self):
        def build():
            recorder = HistoryRecorder(_Clock())
            recorder.invoke("c", "w", b"k", b"v").ok(stamp=0.5)
            recorder.invoke("c", "r", b"k").ok(b"v", staleness=1e-3)
            return recorder

        assert build().canonical_bytes() == build().canonical_bytes()
        assert build().digest() == build().digest()
        assert b"stamp=0.5" in build().canonical_bytes()


# ---------------------------------------------------------------------------
# the linearizability checker
# ---------------------------------------------------------------------------

def _op(index, action, value, inv, ret, status=OpStatus.OK, *,
        key=b"k", client="c", stamp=None, staleness=None):
    completed = math.inf if status is OpStatus.INDETERMINATE else ret
    return Op(index, client, action, key, value, status, inv, completed,
              stamp, staleness)


class TestCheckRegister:
    def test_sequential_history_linearizable(self):
        result = check_register([
            _op(0, "w", b"a", 0.0, 1.0),
            _op(1, "r", b"a", 2.0, 3.0),
            _op(2, "w", b"b", 4.0, 5.0),
            _op(3, "r", b"b", 6.0, 7.0),
        ])
        assert result.ok
        assert result.linearization == [0, 1, 2, 3]

    def test_stale_read_flagged_with_witness(self):
        # The read returns a value overwritten strictly before it was
        # invoked — the canonical non-linearizable register history.
        result = check_register([
            _op(0, "w", b"a", 0.0, 1.0),
            _op(1, "w", b"b", 2.0, 3.0),
            _op(2, "r", b"a", 4.0, 5.0),
        ])
        assert not result.ok
        assert result.witness is not None and result.witness.index == 2

    def test_concurrent_writes_may_order_either_way(self):
        # Both writes overlap the read; either serialization is legal.
        ops = [
            _op(0, "w", b"a", 0.0, 10.0),
            _op(1, "w", b"b", 1.0, 3.0),
            _op(2, "r", b"b", 4.0, 5.0),
        ]
        assert check_register(ops).ok
        ops[2] = _op(2, "r", b"a", 4.0, 5.0)
        assert check_register(ops).ok

    def test_indeterminate_write_may_take_effect_or_never(self):
        base = [
            _op(0, "w", b"a", 0.0, 1.0),
            _op(1, "w", b"b", 2.0, None, OpStatus.INDETERMINATE),
        ]
        took_effect = base + [_op(2, "r", b"b", 5.0, 6.0)]
        never_landed = base + [_op(2, "r", b"a", 5.0, 6.0)]
        phantom = base + [_op(2, "r", b"c", 5.0, 6.0)]
        assert check_register(took_effect).ok
        assert check_register(never_landed).ok
        assert not check_register(phantom).ok

    def test_indeterminate_write_cannot_land_before_invocation(self):
        # The lost-ack write was invoked *after* the read completed, so
        # the read can never legally observe it.
        result = check_register([
            _op(0, "r", b"b", 0.0, 1.0),
            _op(1, "w", b"b", 2.0, None, OpStatus.INDETERMINATE),
        ])
        assert not result.ok

    def test_failed_ops_are_excluded(self):
        result = check_register([
            _op(0, "w", b"a", 0.0, 1.0),
            _op(1, "w", b"b", 2.0, 3.0, OpStatus.FAIL),
            _op(2, "r", b"a", 4.0, 5.0),
        ])
        assert result.ok

    def test_delete_reads_back_as_miss(self):
        result = check_register([
            _op(0, "w", b"a", 0.0, 1.0),
            _op(1, "d", None, 2.0, 3.0),
            _op(2, "r", None, 4.0, 5.0),
        ])
        assert result.ok

    def test_stale_tagged_reads_are_exempt(self):
        # A follower read served under an explicit staleness bound is
        # checked against the bound, not against linearizability.
        ops = [
            _op(0, "w", b"a", 0.0, 1.0),
            _op(1, "w", b"b", 2.0, 3.0),
            _op(2, "r", b"a", 4.0, 5.0, staleness=4e-3),
        ]
        assert check_register(ops).ok

    def test_budget_exhaustion_raises(self):
        ops = [
            _op(0, "w", b"a", 0.0, 1.0),
            _op(1, "r", b"a", 2.0, 3.0),
        ]
        with pytest.raises(BudgetExceeded):
            check_register(ops, max_states=0)


class TestCheckHistory:
    def test_per_key_composition(self):
        ops = [
            _op(0, "w", b"a", 0.0, 1.0, key=b"good"),
            _op(1, "r", b"a", 2.0, 3.0, key=b"good"),
            _op(2, "w", b"a", 0.0, 1.0, key=b"bad"),
            _op(3, "w", b"b", 2.0, 3.0, key=b"bad"),
            _op(4, "r", b"a", 4.0, 5.0, key=b"bad"),
        ]
        result = check_history(ops)
        assert not result.ok
        assert [r.key for r in result.violations] == [b"bad"]
        assert result.states > 0

    def test_recorder_accepted_directly(self):
        clock = _Clock()
        recorder = HistoryRecorder(clock)
        recorder.invoke("c", "w", b"k", b"v").ok()
        clock.now = 1.0
        recorder.invoke("c", "r", b"k").ok(b"v")
        assert check_history(recorder).ok


# ---------------------------------------------------------------------------
# cheap invariants
# ---------------------------------------------------------------------------

def _recorded(ops):
    recorder = HistoryRecorder(_Clock())
    recorder.ops.extend(ops)
    return recorder


class TestInvariants:
    def test_lost_acked_write_detected(self):
        history = _recorded([_op(0, "w", b"v", 0.0, 1.0)])
        result = zero_lost_acks(history, {})
        assert not result.ok and len(result.lost) == 1
        assert "lost-ack" in result.lost[0]

    def test_matching_final_state_passes(self):
        history = _recorded([_op(0, "w", b"v", 0.0, 1.0)])
        result = zero_lost_acks(history, {b"k": b"v"})
        assert result.ok and result.checked == 1

    def test_indeterminate_write_makes_key_nonbinding(self):
        # The unacked overwrite may have landed after the acked one —
        # either final value is legal, so the key is skipped, not judged.
        history = _recorded([
            _op(0, "w", b"v", 0.0, 1.0),
            _op(1, "w", b"w", 2.0, None, OpStatus.INDETERMINATE),
        ])
        result = zero_lost_acks(history, {})
        assert result.ok and result.skipped == 1 and result.checked == 0

    def test_winner_ranks_by_server_stamp(self):
        # Server LWW stamps outrank invocation order: the op the system
        # stamped later is the write the sweep must hold.
        history = _recorded([
            _op(0, "w", b"late", 0.0, 1.0, stamp=0.9),
            _op(1, "w", b"early", 2.0, 3.0, stamp=0.4),
        ])
        assert zero_lost_acks(history, {b"k": b"late"}).ok
        assert not zero_lost_acks(history, {b"k": b"early"}).ok

    def test_divergence_after_heal_detected(self):
        history = _recorded([_op(0, "w", b"v", 0.0, 1.0)])
        result = final_state_check(
            history, {"r1": {b"k": b"v"}, "r2": {b"k": b"stale"}},
        )
        assert result.diverged and not result.ok

    def test_bounded_staleness(self):
        history = _recorded([
            _op(0, "r", b"v", 0.0, 1.0, staleness=2e-3),
            _op(1, "r", b"v", 2.0, 3.0, staleness=9e-3),
        ])
        assert bounded_staleness(history, 10e-3) == []
        violations = bounded_staleness(history, 5e-3)
        assert len(violations) == 1 and "op=1" in violations[0]


# ---------------------------------------------------------------------------
# schedule shrinking
# ---------------------------------------------------------------------------

def _noisy_plan():
    plan = FaultPlan(seed=5)
    plan.windowed("culprit", "wan.a->b", FaultKind.WAN_PARTITION, 0.0, 10.0)
    plan.windowed("noise-a", "link0", FaultKind.LINK_DOWN, 1.0, 2.0)
    plan.once("noise-b", "dpu-1", FaultKind.POWER_LOSS, at=3.0)
    plan.probabilistic("noise-c", "uplink", FaultKind.FRAME_DROP,
                       probability=0.5, window=(0.0, 4.0))
    return plan


def _culprit_covers(candidate, at=5.0):
    for spec in candidate.specs:
        if spec.name == "culprit" and spec.window is not None:
            start, end = spec.window
            if start <= at <= end:
                return True
    return False


class TestShrink:
    def test_ddmin_isolates_the_culprit_and_narrows_its_window(self):
        result = shrink_plan(_noisy_plan(), _culprit_covers,
                             min_window=0.5)
        assert [spec.name for spec in result.plan.specs] == ["culprit"]
        assert result.removed_specs == 3
        assert result.narrowed_windows >= 1  # counts accepted halvings
        start, end = result.plan.specs[0].window
        assert start <= 5.0 <= end
        assert 0.5 <= end - start <= 1.0  # locally tight, not degenerate
        assert _culprit_covers(result.plan)  # still violates

    def test_shrink_is_deterministic(self):
        first = shrink_plan(_noisy_plan(), _culprit_covers, min_window=0.5)
        second = shrink_plan(_noisy_plan(), _culprit_covers, min_window=0.5)
        assert first.plan.describe() == second.plan.describe()
        assert first.runs == second.runs

    def test_max_runs_caps_the_search(self):
        result = shrink_plan(_noisy_plan(), _culprit_covers, max_runs=1)
        assert result.runs == 1

    def test_subplan_replays_surviving_spec_draws(self):
        # The injector keys each spec's RNG on {seed}/{name}, so a
        # shrunk plan must not perturb the surviving specs' schedules.
        full = _noisy_plan()
        shrunk = shrink_plan(full, _culprit_covers, min_window=20.0).plan
        by_name = {spec.name: spec for spec in full.specs}
        for spec in shrunk.specs:
            assert spec == by_name[spec.name]


# ---------------------------------------------------------------------------
# the nemesis
# ---------------------------------------------------------------------------

ADDRESSES = ["shard-dpu-0", "shard-dpu-1", "shard-dpu-2"]


class TestNemesis:
    def test_same_seed_same_schedule(self):
        kwargs = dict(horizon=0.25, migration_at=0.1)
        assert (sharded_plan(7, ADDRESSES, **kwargs).describe()
                == sharded_plan(7, ADDRESSES, **kwargs).describe())
        assert (geo_plan(7, REGIONS, PRIMARY, horizon=0.3).describe()
                == geo_plan(7, REGIONS, PRIMARY, horizon=0.3).describe())

    def test_different_seeds_differ(self):
        assert (sharded_plan(7, ADDRESSES, horizon=0.25).describe()
                != sharded_plan(8, ADDRESSES, horizon=0.25).describe())

    def test_geo_plan_cuts_only_primary_edges_symmetrically(self):
        plan = geo_plan(23, REGIONS, PRIMARY, horizon=0.3)
        assert plan.specs, "expected at least one kill window"
        components = {spec.component for spec in plan.specs}
        for spec in plan.specs:
            assert spec.kind is FaultKind.WAN_PARTITION
            assert PRIMARY in spec.component
            src, dst = spec.component.removeprefix("wan.").split("->")
            assert f"wan.{dst}->{src}" in components  # symmetric cut

    def test_primary_kill_plan_covers_every_primary_edge(self):
        plan = primary_kill_plan(3, REGIONS, PRIMARY, 0.1, 0.2)
        assert len(plan.specs) == 2 * (len(REGIONS) - 1)
        assert all(spec.window == (0.1, 0.2) for spec in plan.specs)

    def test_plans_identical_across_hash_seeds(self):
        # String-seeded RNGs hash with SHA-512, so the composed
        # schedules must not depend on PYTHONHASHSEED.
        src = Path(__file__).resolve().parents[1] / "src"
        code = (
            "from repro.verify.nemesis import geo_plan, sharded_plan\n"
            "print(sharded_plan(7, ['a', 'b', 'c'], horizon=0.25,"
            " migration_at=0.1).describe())\n"
            "print(geo_plan(7, ('r1', 'r2', 'r3'), 'r1',"
            " horizon=0.3).describe())\n"
        )
        outputs = []
        for hashseed in ("0", "1"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = str(src) + os.pathsep + env.get(
                "PYTHONPATH", "")
            done = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.append(done.stdout)
        assert outputs[0] == outputs[1]


# ---------------------------------------------------------------------------
# the E19 harness, bounded
# ---------------------------------------------------------------------------

class TestHarness:
    def test_sharded_schedule_clean_and_deterministic(self):
        first = _run_sharded_schedule(23, 0)
        second = _run_sharded_schedule(23, 0)
        assert first == second  # frozen dataclass: byte-identical rerun
        assert first.clean
        assert first.ops > 0 and first.ok_ops > 0

    def test_planted_bug_caught_only_under_async(self):
        plan = primary_kill_plan(23, REGIONS, PRIMARY, PB_T_KILL, PB_T_HEAL)
        outcomes = {
            mode.value: _planted_mode(plan, mode, 23)
            for mode in (Consistency.ASYNC, Consistency.QUORUM,
                         Consistency.SYNC)
        }
        assert not outcomes["async"].linearizable
        assert outcomes["async"].violating_keys >= 1
        assert PB_KEY.hex() in outcomes["async"].witness
        assert outcomes["quorum"].linearizable
        assert outcomes["sync"].linearizable
