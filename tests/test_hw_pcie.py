"""Tests for the PCIe substrate: links, enumeration, DMA."""

import pytest

from repro.common.errors import ConfigurationError
from repro.hw.pcie import (
    Bar,
    DmaEngine,
    PcieBridge,
    PcieDevice,
    PcieLink,
    RootComplex,
)
from repro.sim import Simulator


def build_hyperion_tree(sim):
    """The Figure 2 topology: x16 bifurcated into 4 x4 bridges, one SSD each."""
    root = RootComplex()
    ssds = []
    for i in range(4):
        bridge = PcieBridge(f"bridge-{i}")
        link = PcieLink(sim, lanes=4)
        ssd = PcieDevice(f"nvme-{i}", bars=[Bar(16 * 1024)])
        bridge.attach(ssd, link)
        root.add_root_port(bridge, PcieLink(sim, lanes=4))
        ssds.append(ssd)
    return root, ssds


class TestPcieLink:
    def test_bandwidth_scales_with_lanes(self):
        sim = Simulator()
        assert PcieLink(sim, lanes=16).bandwidth == 4 * PcieLink(sim, lanes=4).bandwidth

    def test_invalid_lanes(self):
        with pytest.raises(ConfigurationError):
            PcieLink(Simulator(), lanes=3)

    def test_tlp_overhead(self):
        link = PcieLink(Simulator(), lanes=4)
        assert link.wire_bytes(256) == 256 + 26
        assert link.wire_bytes(257) == 257 + 2 * 26

    def test_transfer_advances_time(self):
        sim = Simulator()
        link = PcieLink(sim, lanes=4)

        def scenario():
            yield from link.transfer(4096)
            return sim.now

        elapsed = sim.run_process(scenario())
        assert elapsed == pytest.approx(link.transfer_latency(4096))
        assert link.bytes_transferred == 4096

    def test_transfers_serialize(self):
        sim = Simulator()
        link = PcieLink(sim, lanes=4)
        finish_times = []

        def one():
            yield from link.transfer(64 * 1024)
            finish_times.append(sim.now)

        sim.process(one())
        sim.process(one())
        sim.run()
        assert finish_times[1] == pytest.approx(2 * finish_times[0])


class TestEnumeration:
    def test_hyperion_topology(self):
        sim = Simulator()
        root, ssds = build_hyperion_tree(sim)
        found = root.enumerate()
        assert len(found) == 4
        bdfs = [record.bdf for record in found]
        assert len(set(bdfs)) == 4
        for ssd in ssds:
            assert ssd.enumerated
            assert ssd.bars[0].base is not None

    def test_bar_windows_disjoint_and_aligned(self):
        sim = Simulator()
        root, __ = build_hyperion_tree(sim)
        root.enumerate()
        windows = sorted(
            (bar.base, bar.base + bar.size)
            for record in root.devices.values()
            for bar in record.device.bars
        )
        for (start, end), (next_start, __) in zip(windows, windows[1:]):
            assert end <= next_start
        for start, __ in windows:
            assert start % (16 * 1024) == 0

    def test_address_decode(self):
        sim = Simulator()
        root, ssds = build_hyperion_tree(sim)
        root.enumerate()
        bar = ssds[2].bars[0]
        assert root.device_for_address(bar.base + 8) is ssds[2]

    def test_unclaimed_address(self):
        sim = Simulator()
        root, __ = build_hyperion_tree(sim)
        root.enumerate()
        with pytest.raises(ConfigurationError):
            root.device_for_address(0)

    def test_double_enumeration_rejected(self):
        sim = Simulator()
        root, __ = build_hyperion_tree(sim)
        root.enumerate()
        with pytest.raises(ConfigurationError):
            root.enumerate()

    def test_bdf_before_enumeration(self):
        with pytest.raises(ConfigurationError):
            PcieDevice("d").bdf()

    def test_bar_size_power_of_two(self):
        with pytest.raises(ConfigurationError):
            Bar(size=1000)


class TestDma:
    def test_copy_charges_setup_and_transfer(self):
        sim = Simulator()
        link = PcieLink(sim, lanes=4)
        dma = DmaEngine(sim, link, channels=1)

        def scenario():
            yield from dma.copy(4096)
            return sim.now

        elapsed = sim.run_process(scenario())
        assert elapsed == pytest.approx(dma.setup_latency + link.transfer_latency(4096))
        assert dma.copies_completed == 1

    def test_channels_limit_concurrency(self):
        sim = Simulator()
        link = PcieLink(sim, lanes=16)
        dma = DmaEngine(sim, link, channels=2)
        done = []

        def one():
            yield from dma.copy(4096)
            done.append(sim.now)

        for _ in range(3):
            sim.process(one())
        sim.run()
        # With 2 channels the setup of the first two overlaps; the third
        # waits for a free channel.
        assert done[2] > done[1] >= done[0]
