"""Tests for NVMe-oF, the KV-SSD, and the Corfu shared log."""

import pytest

from repro.common.errors import ProtocolError
from repro.hw.net import Network
from repro.hw.nvme import Namespace, NvmeController
from repro.sim import Simulator
from repro.storage import (
    CorfuClient,
    CorfuLogUnit,
    CorfuSequencer,
    KvSsd,
    KvSsdClient,
    KvSsdService,
    NvmeOfInitiator,
    NvmeOfTarget,
)
from repro.transport import RpcClient, RpcServer, UdpSocket


def make_rpc(sim, net, name):
    return RpcServer(sim, UdpSocket(sim, net.endpoint(name)))


def make_client(sim, net, name):
    return RpcClient(sim, UdpSocket(sim, net.endpoint(name)))


def make_controller(sim, name="ssd", blocks=65536):
    controller = NvmeController(sim, name)
    controller.add_namespace(Namespace(1, blocks))
    return controller


class TestNvmeOf:
    def setup_target(self, sim):
        net = Network(sim)
        server = make_rpc(sim, net, "dpu")
        target = NvmeOfTarget(sim, server, make_controller(sim))
        initiator = NvmeOfInitiator(make_client(sim, net, "host"), "dpu")
        return target, initiator

    def test_remote_write_read(self):
        sim = Simulator()
        target, initiator = self.setup_target(sim)

        def scenario():
            yield from initiator.write(10, b"remote block data")
            data = yield from initiator.read(10)
            return data

        data = sim.run_process(scenario())
        assert data[:17] == b"remote block data"
        assert target.commands_served == 2

    def test_remote_flush(self):
        sim = Simulator()
        __, initiator = self.setup_target(sim)

        def scenario():
            yield from initiator.flush()

        sim.run_process(scenario())

    def test_remote_read_slower_than_local(self):
        """The network adds RTT on top of device latency."""
        sim = Simulator()
        __, initiator = self.setup_target(sim)

        def remote():
            yield from initiator.read(0)
            return sim.now

        remote_time = sim.run_process(remote())

        sim2 = Simulator()
        controller = make_controller(sim2)
        qp = controller.create_queue_pair()
        controller.start()

        def local():
            from repro.hw.nvme import NvmeCommand, NvmeOpcode
            yield qp.submit(NvmeCommand(NvmeOpcode.READ, lba=0))
            return sim2.now

        local_time = sim2.run_process(local())
        assert remote_time > local_time


class TestKvSsd:
    def make_device(self, sim):
        return KvSsd(sim, make_controller(sim), memtable_limit=8)

    def test_put_get(self):
        sim = Simulator()
        device = self.make_device(sim)

        def scenario():
            yield from device.put(b"user:1", b"alice")
            value = yield from device.get(b"user:1")
            return value

        assert sim.run_process(scenario()) == b"alice"

    def test_get_missing(self):
        sim = Simulator()
        device = self.make_device(sim)

        def scenario():
            value = yield from device.get(b"ghost")
            return value

        assert sim.run_process(scenario()) is None

    def test_delete(self):
        sim = Simulator()
        device = self.make_device(sim)

        def scenario():
            yield from device.put(b"k", b"v")
            yield from device.delete(b"k")
            value = yield from device.get(b"k")
            return value

        assert sim.run_process(scenario()) is None

    def test_flush_persists_sstable_to_flash(self):
        sim = Simulator()
        device = self.make_device(sim)

        def scenario():
            for i in range(20):  # exceeds memtable_limit=8 -> flushes
                yield from device.put(f"key{i:02d}".encode(), b"value")
            restored = yield from device.recover_sstables()
            return restored

        restored = sim.run_process(scenario())
        assert len(restored) >= 1
        assert sum(len(t) for t in restored) >= 8

    def test_scan(self):
        sim = Simulator()
        device = self.make_device(sim)

        def scenario():
            for i in range(5):
                yield from device.put(f"k{i}".encode(), str(i).encode())
            results = yield from device.scan(b"k1", b"k4")
            return results

        results = sim.run_process(scenario())
        assert [k for k, __ in results] == [b"k1", b"k2", b"k3"]

    def test_remote_service(self):
        sim = Simulator()
        net = Network(sim)
        device = self.make_device(sim)
        KvSsdService(make_rpc(sim, net, "kv-dpu"), device)
        stub = KvSsdClient(make_client(sim, net, "app"), "kv-dpu")

        def scenario():
            yield from stub.put(b"color", b"green")
            value = yield from stub.get(b"color")
            yield from stub.delete(b"color")
            gone = yield from stub.get(b"color")
            return value, gone

        assert sim.run_process(scenario()) == (b"green", None)


class TestCorfu:
    def setup_log(self, sim, replicas=2):
        net = Network(sim)
        CorfuSequencer(make_rpc(sim, net, "sequencer"))
        units = []
        for i in range(replicas):
            unit = CorfuLogUnit(
                sim, make_rpc(sim, net, f"unit{i}"), make_controller(sim, f"ssd{i}")
            )
            units.append(unit)
        client = CorfuClient(
            make_client(sim, net, "writer"),
            "sequencer",
            [f"unit{i}" for i in range(replicas)],
        )
        return client, units, net

    def test_append_assigns_positions(self):
        sim = Simulator()
        client, __, __ = self.setup_log(sim)

        def scenario():
            first = yield from client.append(b"entry-0")
            second = yield from client.append(b"entry-1")
            return first, second

        assert sim.run_process(scenario()) == (0, 1)

    def test_read_back(self):
        sim = Simulator()
        client, __, __ = self.setup_log(sim)

        def scenario():
            position = yield from client.append(b"hello log")
            data = yield from client.read(position)
            return data

        assert sim.run_process(scenario())[:9] == b"hello log"

    def test_write_once_enforced(self):
        sim = Simulator()
        client, units, net = self.setup_log(sim, replicas=1)
        rogue = CorfuClient(make_client(sim, net, "rogue"), "sequencer", ["unit0"])

        def scenario():
            position = yield from client.append(b"first")
            # Bypass the sequencer and try to overwrite position 0.
            yield from rogue.client.call(
                "unit0", "corfu.write", position, b"overwrite",
                request_size=64, response_size=16,
            )

        with pytest.raises(Exception, match="already written"):
            sim.run_process(scenario())

    def test_failover_to_replica(self):
        sim = Simulator()
        client, units, __ = self.setup_log(sim, replicas=2)

        def scenario():
            position = yield from client.append(b"replicated")
            units[0].fail()
            data = yield from client.read(position)
            return data

        assert sim.run_process(scenario())[:10] == b"replicated"

    def test_all_replicas_down(self):
        sim = Simulator()
        client, units, __ = self.setup_log(sim, replicas=2)

        def scenario():
            position = yield from client.append(b"x")
            for unit in units:
                unit.fail()
            yield from client.read(position)

        with pytest.raises(ProtocolError, match="no replica"):
            sim.run_process(scenario())

    def test_tail_tracks_appends(self):
        sim = Simulator()
        client, __, __ = self.setup_log(sim)

        def scenario():
            for i in range(5):
                yield from client.append(f"e{i}".encode())
            tail = yield from client.tail()
            return tail

        assert sim.run_process(scenario()) == 5

    def test_concurrent_appenders_get_unique_positions(self):
        sim = Simulator()
        client, units, net = self.setup_log(sim)
        other = CorfuClient(
            make_client(sim, net, "writer2"), "sequencer", ["unit0", "unit1"]
        )
        positions = []

        def appender(corfu, count):
            for i in range(count):
                position = yield from corfu.append(b"data")
                positions.append(position)

        sim.process(appender(client, 5))
        sim.process(appender(other, 5))
        sim.run()
        assert sorted(positions) == list(range(10))
