"""Tests for the graph-analytics killer workload (paper §4(2))."""

import pytest

from repro.apps.graph import (
    CsrGraph,
    GraphService,
    client_side_bfs,
    offloaded_bfs,
    random_graph,
    _bfs_distance,
)
from repro.dpu import HyperionDpu
from repro.hw.net import Network
from repro.sim import Simulator
from repro.transport import RpcClient, RpcServer, UdpSocket


def booted_dpu(sim, net):
    dpu = HyperionDpu(sim, net, ssd_blocks=16384)
    sim.run_process(dpu.boot())
    return dpu


def make_service(sim, vertex_count=50, edges=None):
    net = Network(sim)
    dpu = booted_dpu(sim, net)
    edges = edges if edges is not None else random_graph(vertex_count)
    graph = CsrGraph(dpu, vertex_count, edges)
    service = GraphService(
        sim, RpcServer(sim, UdpSocket(sim, net.endpoint("graph-dpu"))), graph
    )
    client = RpcClient(sim, UdpSocket(sim, net.endpoint("analyst")))
    return graph, service, client


class TestCsrGraph:
    def test_neighbors_from_segments(self):
        sim = Simulator()
        net = Network(sim)
        dpu = booted_dpu(sim, net)
        graph = CsrGraph(dpu, 4, [(0, 1), (0, 2), (2, 3)])
        assert graph.neighbors(0) == [1, 2]
        assert graph.neighbors(1) == []
        assert graph.neighbors(2) == [3]
        assert graph.edge_count == 3

    def test_unknown_vertex(self):
        sim = Simulator()
        net = Network(sim)
        dpu = booted_dpu(sim, net)
        graph = CsrGraph(dpu, 2, [(0, 1)])
        with pytest.raises(KeyError):
            graph.neighbors(5)

    def test_segments_are_durable(self):
        sim = Simulator()
        net = Network(sim)
        dpu = booted_dpu(sim, net)
        graph = CsrGraph(dpu, 3, [(0, 1), (1, 2)])
        assert graph.offsets_segment.durable
        assert graph.edges_segment.durable

    def test_graph_survives_power_loss(self):
        """The CSR segments are durable: BFS works after recovery."""
        sim = Simulator()
        net = Network(sim)
        dpu = booted_dpu(sim, net)
        graph = CsrGraph(dpu, 5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        dpu.store.persist_table()
        twin = dpu.power_cycle()
        sim.run_process(twin.boot(recover_store=True))
        recovered = object.__new__(CsrGraph)
        recovered.dpu = twin
        recovered.vertex_count = 5
        recovered.offsets_segment = twin.store.table.lookup(CsrGraph.OFFSETS_OID)
        recovered.edges_segment = twin.store.table.lookup(CsrGraph.EDGES_OID)
        assert recovered.neighbors(2) == [3]
        assert _bfs_distance(recovered, 0, 4)[0] == 4


class TestBfs:
    def test_distance_on_path(self):
        sim = Simulator()
        graph, __, ___ = make_service(
            sim, vertex_count=6, edges=[(i, i + 1) for i in range(5)]
        )
        assert _bfs_distance(graph, 0, 5)[0] == 5
        assert _bfs_distance(graph, 0, 0)[0] == 0

    def test_unreachable(self):
        sim = Simulator()
        graph, __, ___ = make_service(sim, vertex_count=4, edges=[(0, 1)])
        assert _bfs_distance(graph, 0, 3)[0] == -1

    def test_client_and_offload_agree(self):
        sim = Simulator()
        __, service, client = make_service(sim, vertex_count=40)

        def scenario():
            chased, chase_rtts = yield from client_side_bfs(
                client, "graph-dpu", 0, 35
            )
            offloaded, __ = yield from offloaded_bfs(client, "graph-dpu", 0, 35)
            return chased, chase_rtts, offloaded

        chased, chase_rtts, offloaded = sim.run_process(scenario())
        assert chased == offloaded
        assert chase_rtts > 1

    def test_offload_is_much_faster(self):
        sim = Simulator()
        __, service, client = make_service(sim, vertex_count=100)

        def timed(fn):
            start = sim.now

            def proc():
                yield from fn(client, "graph-dpu", 0, 95)
                return sim.now - start

            return sim.run_process(proc())

        chase_time = timed(client_side_bfs)
        offload_time = timed(offloaded_bfs)
        # Frontier expansion over the network pays RTTs per vertex.
        assert offload_time < chase_time / 10

    def test_khop_counts(self):
        sim = Simulator()
        __, service, client = make_service(
            sim, vertex_count=7,
            edges=[(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (4, 6)],
        )

        def scenario():
            one = yield from client.call("graph-dpu", "graph.khop", 0, 1)
            two = yield from client.call("graph-dpu", "graph.khop", 0, 2)
            return one, two

        one_hop, two_hop = sim.run_process(scenario())
        assert one_hop == 3  # {0,1,2}
        assert two_hop == 5  # + {3,4}
