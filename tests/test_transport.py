"""Tests for UDP, TCP, RDMA, HOMA, and the RPC layer."""

import pytest

from repro.common.errors import ProtocolError
from repro.hw.net import Network
from repro.sim import Simulator
from repro.transport import (
    HomaSocket,
    RdmaNic,
    RpcClient,
    RpcError,
    RpcServer,
    TcpStack,
    UdpSocket,
)


def make_net(sim):
    return Network(sim)


class TestUdp:
    def test_small_datagram(self):
        sim = Simulator()
        net = make_net(sim)
        a = UdpSocket(sim, net.endpoint("a"))
        b = UdpSocket(sim, net.endpoint("b"))

        def scenario():
            yield from a.sendto("b", {"op": "ping"}, 64)
            src, payload, size = yield b.recvfrom()
            return src, payload["op"], size

        assert sim.run_process(scenario()) == ("a", "ping", 64)

    def test_large_datagram_fragments(self):
        sim = Simulator()
        net = make_net(sim)
        a = UdpSocket(sim, net.endpoint("a"))
        b = UdpSocket(sim, net.endpoint("b"))

        def scenario():
            yield from a.sendto("b", "big-payload", 100_000)
            src, payload, size = yield b.recvfrom()
            return payload, size

        payload, size = sim.run_process(scenario())
        assert payload == "big-payload"
        assert size == 100_000

    def test_larger_messages_take_longer(self):
        def elapsed(size):
            sim = Simulator()
            net = make_net(sim)
            a = UdpSocket(sim, net.endpoint("a"))
            b = UdpSocket(sim, net.endpoint("b"))

            def scenario():
                yield from a.sendto("b", None, size)
                yield b.recvfrom()
                return sim.now

            return sim.run_process(scenario())

        assert elapsed(100_000) > elapsed(100)


class TestTcp:
    def test_connect_and_send(self):
        sim = Simulator()
        net = make_net(sim)
        client_stack = TcpStack(sim, net.endpoint("client"))
        server_stack = TcpStack(sim, net.endpoint("server"))
        got = []

        def server():
            connection = yield server_stack.accept()
            payload, size = yield connection.recv()
            got.append((payload, size))

        def client():
            connection = yield from client_stack.connect("server")
            yield from connection.send({"hello": True}, 500)

        sim.process(server())
        sim.process(client())
        sim.run()
        assert got == [({"hello": True}, 500)]

    def test_multi_segment_message(self):
        sim = Simulator()
        net = make_net(sim)
        client_stack = TcpStack(sim, net.endpoint("client"))
        server_stack = TcpStack(sim, net.endpoint("server"))
        got = []

        def server():
            connection = yield server_stack.accept()
            payload, size = yield connection.recv()
            got.append(size)

        def client():
            connection = yield from client_stack.connect("server")
            yield from connection.send("bulk", 50_000)

        sim.process(server())
        sim.process(client())
        sim.run()
        assert got == [50_000]

    def test_handshake_makes_first_message_slower_than_udp(self):
        # TCP pays connect + per-segment ACKs; UDP just fires.
        sim = Simulator()
        net = make_net(sim)
        client_stack = TcpStack(sim, net.endpoint("client"))
        server_stack = TcpStack(sim, net.endpoint("server"))
        tcp_done = []

        def server():
            connection = yield server_stack.accept()
            yield connection.recv()
            tcp_done.append(sim.now)

        def client():
            connection = yield from client_stack.connect("server")
            yield from connection.send(None, 64)

        sim.process(server())
        sim.process(client())
        sim.run()

        sim2 = Simulator()
        net2 = make_net(sim2)
        a = UdpSocket(sim2, net2.endpoint("a"))
        b = UdpSocket(sim2, net2.endpoint("b"))

        def scenario():
            yield from a.sendto("b", None, 64)
            yield b.recvfrom()
            return sim2.now

        udp_time = sim2.run_process(scenario())
        assert tcp_done[0] > 2 * udp_time


class TestTcpRto:
    """The retransmission timeout is tunable per stack (WAN support)."""

    def test_default_rto_unchanged(self):
        sim = Simulator()
        net = make_net(sim)
        assert TcpStack(sim, net.endpoint("x")).rto == 200e-6

    def test_non_positive_rto_rejected(self):
        sim = Simulator()
        net = make_net(sim)
        with pytest.raises(ProtocolError):
            TcpStack(sim, net.endpoint("x"), rto=0.0)
        with pytest.raises(ProtocolError):
            TcpStack(sim, net.endpoint("y"), rto=-1e-3)

    def test_default_rto_gives_up_on_millisecond_rtt(self):
        """Regression for the hardwired 200 us RTO: on a ~4 ms-RTT path
        the SYN timer expires 16 times before the SYN-ACK can possibly
        arrive, so connect() must fail rather than hang."""
        sim = Simulator()
        net = Network(sim, propagation=1e-3)  # two 1 ms hops each way
        client_stack = TcpStack(sim, net.endpoint("client"))
        TcpStack(sim, net.endpoint("server"))
        outcome = []

        def client():
            try:
                yield from client_stack.connect("server")
            except ProtocolError:
                outcome.append(sim.now)

        sim.process(client())
        sim.run()
        # Gave up (16 SYNs x 200 us ~ 3.4 ms), did not hang.
        assert len(outcome) == 1
        assert outcome[0] < 5e-3

    def test_raised_rto_carries_millisecond_rtt(self):
        sim = Simulator()
        net = Network(sim, propagation=1e-3)
        client_stack = TcpStack(sim, net.endpoint("client"), rto=10e-3)
        server_stack = TcpStack(sim, net.endpoint("server"), rto=10e-3)
        got = []
        sent = []

        def server():
            connection = yield server_stack.accept()
            payload, size = yield connection.recv()
            got.append((payload, size))

        def client():
            connection = yield from client_stack.connect("server")
            yield from connection.send("wan-hello", 500)
            sent.append(connection)

        sim.process(server())
        sim.process(client())
        sim.run()
        assert got == [("wan-hello", 500)]
        # The RTO now exceeds the RTT, so nothing retransmits spuriously.
        assert sent[0].retransmissions == 0


class TestRdma:
    def test_one_sided_read(self):
        sim = Simulator()
        net = make_net(sim)
        client = RdmaNic(sim, net.endpoint("client"))
        server = RdmaNic(sim, net.endpoint("server"))
        region = server.register_region(bytearray(b"remote memory contents"))

        def scenario():
            data = yield from client.read("server", region.rkey, 7, 6)
            return data

        assert sim.run_process(scenario()) == b"memory"

    def test_one_sided_write(self):
        sim = Simulator()
        net = make_net(sim)
        client = RdmaNic(sim, net.endpoint("client"))
        server = RdmaNic(sim, net.endpoint("server"))
        region = server.register_region(bytearray(16))

        def scenario():
            yield from client.write("server", region.rkey, 4, b"DATA")

        sim.run_process(scenario())
        assert bytes(region.buffer[4:8]) == b"DATA"

    def test_bad_rkey_fails(self):
        sim = Simulator()
        net = make_net(sim)
        client = RdmaNic(sim, net.endpoint("client"))
        RdmaNic(sim, net.endpoint("server"))

        def scenario():
            yield from client.read("server", 999, 0, 4)

        with pytest.raises(Exception):
            sim.run_process(scenario())

    def test_out_of_bounds_read_fails(self):
        sim = Simulator()
        net = make_net(sim)
        client = RdmaNic(sim, net.endpoint("client"))
        server = RdmaNic(sim, net.endpoint("server"))
        region = server.register_region(bytearray(8))

        def scenario():
            yield from client.read("server", region.rkey, 4, 100)

        with pytest.raises(Exception):
            sim.run_process(scenario())


class TestHoma:
    def test_short_message_single_flight(self):
        sim = Simulator()
        net = make_net(sim)
        a = HomaSocket(sim, net.endpoint("a"))
        b = HomaSocket(sim, net.endpoint("b"))

        def send():
            yield from a.send("b", "short", 200)

        def recv():
            src, payload, size = yield b.recv()
            return src, payload, size

        sim.process(send())
        proc = sim.process(recv())
        sim.run()
        assert proc.value == ("a", "short", 200)
        assert a.unscheduled_only == 1

    def test_long_message_needs_grant(self):
        sim = Simulator()
        net = make_net(sim)
        a = HomaSocket(sim, net.endpoint("a"))
        b = HomaSocket(sim, net.endpoint("b"))

        def send():
            yield from a.send("b", "long", 100_000)

        def recv():
            __, payload, size = yield b.recv()
            return payload, size

        sim.process(send())
        proc = sim.process(recv())
        sim.run()
        assert proc.value == ("long", 100_000)
        assert a.unscheduled_only == 0

    def test_short_beats_long_latency_disproportionately(self):
        def homa_latency(size):
            sim = Simulator()
            net = make_net(sim)
            a = HomaSocket(sim, net.endpoint("a"))
            b = HomaSocket(sim, net.endpoint("b"))

            def scenario():
                sim.process(a.send("b", None, size))
                yield b.recv()
                return sim.now

            return sim.run_process(scenario())

        # The grant round-trip penalizes messages beyond RTT_BYTES.
        assert homa_latency(50_000) > 3 * homa_latency(5_000)


class TestRpc:
    def make_pair(self, sim):
        net = make_net(sim)
        server_sock = UdpSocket(sim, net.endpoint("server"))
        client_sock = UdpSocket(sim, net.endpoint("client"))
        return RpcServer(sim, server_sock), RpcClient(sim, client_sock)

    def test_plain_handler(self):
        sim = Simulator()
        server, client = self.make_pair(sim)
        server.register("add", lambda a, b: a + b)

        def scenario():
            result = yield from client.call("server", "add", 2, 3)
            return result

        assert sim.run_process(scenario()) == 5

    def test_generator_handler_runs_in_sim_time(self):
        sim = Simulator()
        server, client = self.make_pair(sim)

        def slow_handler(x):
            yield sim.timeout(1e-3)
            return x * 10

        server.register("slow", slow_handler)

        def scenario():
            result = yield from client.call("server", "slow", 7)
            return result, sim.now

        result, elapsed = sim.run_process(scenario())
        assert result == 70
        assert elapsed > 1e-3

    def test_unknown_method(self):
        sim = Simulator()
        server, client = self.make_pair(sim)

        def scenario():
            yield from client.call("server", "nope")

        with pytest.raises(RpcError, match="no method"):
            sim.run_process(scenario())

    def test_handler_exception_marshalled(self):
        sim = Simulator()
        server, client = self.make_pair(sim)

        def bad():
            raise ValueError("handler blew up")

        server.register("bad", bad)

        def scenario():
            yield from client.call("server", "bad")

        with pytest.raises(RpcError, match="handler blew up"):
            sim.run_process(scenario())

    def test_concurrent_calls_matched_by_id(self):
        sim = Simulator()
        server, client = self.make_pair(sim)

        def delay_echo(x, delay):
            yield sim.timeout(delay)
            return x

        server.register("echo", delay_echo)
        results = []

        def one(x, delay):
            result = yield from client.call("server", "echo", x, delay)
            results.append(result)

        sim.process(one("slow", 5e-3))
        sim.process(one("fast", 1e-3))
        sim.run()
        assert results == ["fast", "slow"]

    def test_rpc_over_homa(self):
        sim = Simulator()
        net = make_net(sim)
        server = RpcServer(sim, HomaSocket(sim, net.endpoint("server")))
        client = RpcClient(sim, HomaSocket(sim, net.endpoint("client")))
        server.register("ping", lambda: "pong")

        def scenario():
            result = yield from client.call("server", "ping")
            return result

        assert sim.run_process(scenario()) == "pong"
