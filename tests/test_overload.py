"""Tests for the overload-protection stack (bounded queues, admission,
circuit breakers, brownout) and its integrations into the RPC server,
the NVMe submission path, the tiering policy, and the failover client."""

import pytest

from repro.common.errors import ConfigurationError
from repro.dpu.cluster import FailoverKvClient, ReplicatedDpuKvCluster
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.hw.fpga.fabric import MemoryBank
from repro.hw.net import Network
from repro.hw.net.link import Link
from repro.hw.net.port import NetworkPort
from repro.hw.nvme import (
    Namespace,
    NvmeCommand,
    NvmeController,
    NvmeOpcode,
    NvmeQueuePair,
    NvmeStatus,
)
from repro.memory import (
    DramBackend,
    NvmeBackend,
    PlacementHint,
    SegmentLocation,
    SingleLevelStore,
)
from repro.memory.tiering import TieringPolicy
from repro.overload import (
    AdmissionController,
    BoundedQueue,
    BreakerState,
    BrownoutController,
    BrownoutMode,
    CircuitBreaker,
    Priority,
    QueuePolicy,
    TokenBucket,
)
from repro.sim import Simulator
from repro.telemetry import (
    Sampler,
    SloMonitor,
    SloRule,
    parse_prometheus_text,
    prometheus_text,
)
from repro.transport import (
    RetryBudget,
    RpcClient,
    RpcError,
    RpcServer,
    UdpSocket,
)


def advance(sim, dt):
    """Run the simulator forward by ``dt`` of simulated time."""
    def waiter():
        yield sim.timeout(dt)
    sim.run_process(waiter())


def make_queue(sim, capacity=4, policy=QueuePolicy.FIFO, **kwargs):
    drops = []
    queue = BoundedQueue(
        sim, sim.telemetry.unique_scope("q"), capacity, policy=policy,
        on_drop=lambda item, reason: drops.append((item, reason)), **kwargs
    )
    return queue, drops


class TestBoundedQueue:
    def test_fifo_and_lifo_ordering(self):
        sim = Simulator()
        fifo, __ = make_queue(sim, policy=QueuePolicy.FIFO)
        lifo, __ = make_queue(sim, policy=QueuePolicy.LIFO)
        for queue in (fifo, lifo):
            for item in ("a", "b", "c"):
                assert queue.try_put(item)
        assert [fifo.poll() for __ in range(3)] == ["a", "b", "c"]
        assert [lifo.poll() for __ in range(3)] == ["c", "b", "a"]

    def test_full_queue_rejects_at_enqueue(self):
        sim = Simulator()
        queue, drops = make_queue(sim, capacity=2)
        assert queue.try_put(1) and queue.try_put(2)
        assert not queue.try_put(3)  # full: rejected, never buffered
        assert queue.depth == 2
        assert queue.dropped_full == 1
        assert drops == [(3, "full")]
        assert queue.saturation == 1.0

    def test_direct_handoff_to_waiting_getter(self):
        sim = Simulator()
        queue, __ = make_queue(sim, capacity=1)

        def consumer():
            item = yield queue.get()  # queue empty: waits
            return item, sim.now

        def producer():
            yield sim.timeout(1e-3)
            assert queue.try_put("direct")

        sim.process(producer())
        item, at = sim.run_process(consumer())
        assert item == "direct"
        assert at == pytest.approx(1e-3)
        assert queue.depth == 0  # handed off, never buffered

    def test_codel_drops_stale_entries_at_dequeue(self):
        sim = Simulator()
        queue, drops = make_queue(
            sim, capacity=8, policy=QueuePolicy.CODEL,
            codel_target=1e-3, codel_interval=5e-3,
        )
        for item in ("a", "b", "c"):
            queue.try_put(item)
        # First dequeue above target: interval clock starts, but the
        # entry is still served.
        advance(sim, 2e-3)
        assert queue.poll() == "a"
        # Sojourn has now been above target for a full interval: the
        # stale entries are shed oldest-first.
        advance(sim, 6e-3)
        assert queue.poll() is None
        assert queue.dropped_deadline == 2
        assert drops == [("b", "deadline"), ("c", "deadline")]
        # A fresh entry (below target) resets the interval clock.
        queue.try_put("d")
        advance(sim, 0.5e-3)
        assert queue.poll() == "d"
        assert queue.dropped_deadline == 2

    def test_depth_gauges_match_telemetry_snapshot(self):
        sim = Simulator()
        queue, __ = make_queue(sim, capacity=4)
        queue.try_put("x")
        queue.try_put("y")
        assert sim.telemetry.gauge("q.depth").value == queue.depth == 2
        assert sim.telemetry.gauge("q.saturation").value == pytest.approx(0.5)
        snapshot = sim.telemetry.snapshot_bytes().decode()
        assert "q.depth" in snapshot
        queue.poll()
        assert sim.telemetry.gauge("q.depth").value == 1

    def test_invalid_configs_rejected(self):
        sim = Simulator()
        scope = sim.telemetry.unique_scope("bad")
        with pytest.raises(ConfigurationError):
            BoundedQueue(sim, scope, 0)
        with pytest.raises(ConfigurationError):
            BoundedQueue(sim, scope, 4, codel_target=0.0)


class TestTokenBucket:
    def test_deterministic_lazy_refill(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=1000.0, capacity=10.0)
        for __ in range(10):
            assert bucket.try_take()
        assert not bucket.try_take()  # drained, clock unchanged
        advance(sim, 5e-3)  # 1000/s * 5ms = 5 tokens
        assert bucket.tokens == pytest.approx(5.0)
        assert bucket.level == pytest.approx(0.5)
        for __ in range(5):
            assert bucket.try_take()
        assert not bucket.try_take()

    def test_set_rate_settles_accrual_at_old_rate(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=1000.0, capacity=10.0)
        for __ in range(10):
            bucket.try_take()
        advance(sim, 2e-3)  # 2 tokens accrue at the old rate
        bucket.set_rate(1.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_invalid_configs_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            TokenBucket(sim, rate=0.0, capacity=1.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(sim, rate=1.0, capacity=0.0)


def make_admission(sim, rate=1000.0, burst=10.0, **kwargs):
    return AdmissionController(
        sim, sim.telemetry.unique_scope("adm"), rate, burst=burst, **kwargs
    )


class TestAdmissionController:
    def test_sheds_scrub_then_background_then_user(self):
        sim = Simulator()  # clock pinned at 0: no refill between admits
        adm = make_admission(sim)
        assert adm.admit(Priority.SCRUB)  # full bucket admits everyone
        for __ in range(5):
            assert adm.admit(Priority.USER)
        # 4/10 tokens left: scrub (needs >= 0.50) is shed first...
        assert not adm.admit(Priority.SCRUB)
        # ...while background (needs >= 0.25) still gets through.
        assert adm.admit(Priority.BACKGROUND)
        for __ in range(2):
            assert adm.admit(Priority.USER)
        # 1/10 left: background now shed too, user still admitted.
        assert not adm.admit(Priority.BACKGROUND)
        assert adm.admit(Priority.USER)
        # Empty: even user is refused.
        assert not adm.admit(Priority.USER)
        assert adm.admitted(Priority.USER) == 8
        assert adm.shed(Priority.SCRUB) == 1
        assert adm.shed(Priority.BACKGROUND) == 1
        assert adm.shed(Priority.USER) == 1

    def test_aimd_decrease_and_climb_back(self):
        sim = Simulator()
        adm = make_admission(sim, rate=1000.0)
        adm.record_overload()
        assert adm.tick() == pytest.approx(500.0)  # multiplicative halving
        # The overload flag is one-shot: the next window is healthy.
        assert adm.tick() == pytest.approx(550.0)  # + 5% of initial rate
        assert adm.tick(overloaded=True) == pytest.approx(275.0)

    def test_aimd_respects_rate_clamps(self):
        sim = Simulator()
        adm = make_admission(sim, rate=1000.0, min_rate=100.0, max_rate=1200.0)
        for __ in range(20):
            adm.tick(overloaded=True)
        assert adm.rate == pytest.approx(100.0)
        for __ in range(50):
            adm.tick()
        assert adm.rate == pytest.approx(1200.0)

    def test_invalid_configs_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            make_admission(sim, multiplicative_decrease=1.0)
        with pytest.raises(ConfigurationError):
            make_admission(sim, additive_increase=0.0)


def make_breaker(sim, **kwargs):
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("reset_timeout", 10e-3)
    return CircuitBreaker(sim, sim.telemetry.unique_scope("brk"), **kwargs)


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        sim = Simulator()
        breaker = make_breaker(sim)
        for __ in range(2):
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert breaker.rejected == 1

    def test_success_resets_the_failure_streak(self):
        sim = Simulator()
        breaker = make_breaker(sim)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # streak broken
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN

    def test_half_open_admits_a_single_probe(self):
        """One probe in flight at a time: the storm of callers queued up
        behind an open breaker must not rush the recovering backend all
        at once and re-trip it off its own traffic."""
        sim = Simulator()
        breaker = make_breaker(sim, success_threshold=2)
        for __ in range(3):
            breaker.record_failure()
        advance(sim, 10e-3)
        # The reset timeout admits exactly one probe...
        assert breaker.allow()
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow()  # the probe slot is taken
        assert not breaker.allow()
        assert breaker.rejected == 2
        # ...its outcome frees the slot for the next sequential probe...
        breaker.record_success()
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()
        assert not breaker.allow()
        # ...and enough successes close the circuit again.
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_failed_probe_frees_the_slot_for_the_next_half_open(self):
        sim = Simulator()
        breaker = make_breaker(sim)
        for __ in range(3):
            breaker.record_failure()
        advance(sim, 10e-3)
        assert breaker.allow()
        breaker.record_failure()  # probe failed -> OPEN again
        assert breaker.state is BreakerState.OPEN
        advance(sim, 10e-3)
        # The next half-open round gets a fresh probe slot.
        assert breaker.allow()
        assert not breaker.allow()

    def test_failed_probe_reopens(self):
        sim = Simulator()
        breaker = make_breaker(sim)
        for __ in range(3):
            breaker.record_failure()
        advance(sim, 10e-3)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()  # the reset clock restarted
        advance(sim, 10e-3)
        assert breaker.allow()

    def test_out_of_band_success_closes_an_open_circuit(self):
        """A verified health probe that bypassed the breaker is proof
        the backend is back — no half-open dance needed."""
        sim = Simulator()
        breaker = make_breaker(sim)
        for __ in range(3):
            breaker.record_failure()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_transition_log_is_deterministic(self):
        def scripted():
            sim = Simulator()
            breaker = make_breaker(sim)
            for __ in range(3):
                breaker.record_failure()
            advance(sim, 10e-3)
            breaker.allow()
            breaker.record_failure()
            advance(sim, 10e-3)
            breaker.allow()
            breaker.record_success()
            return breaker

        first, second = scripted(), scripted()
        log = first.transition_log_bytes()
        assert log == second.transition_log_bytes()
        assert log.decode().splitlines() == [
            "breaker closed->open at=0.0",
            "breaker open->half-open at=0.01",
            "breaker half-open->open at=0.01",
            "breaker open->half-open at=0.02",
            "breaker half-open->closed at=0.02",
        ]

    def test_invalid_configs_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            make_breaker(sim, failure_threshold=0)
        with pytest.raises(ConfigurationError):
            make_breaker(sim, reset_timeout=0.0)
        with pytest.raises(ConfigurationError):
            make_breaker(sim, success_threshold=0)


def make_brownout(sim, dwell=2e-3, recovery=4e-3, rules=None):
    """A pressure gauge, a sampler, an SLO rule on it, and a controller."""
    pressure = sim.telemetry.gauge("press.level")
    sampler = Sampler(sim.telemetry, sim, period=1e-3)
    sampler.watch("press.level")
    monitor = SloMonitor(
        sampler, [SloRule.parse("press.level value <= 0.5", name="pressure")]
    )
    controller = BrownoutController(
        monitor, sim.telemetry.scope("bo"), dwell=dwell, recovery=recovery,
        rules=rules,
    )
    return pressure, sampler, controller


class TestOverloadPrometheusExport:
    """Breaker transitions and retry-budget exhaustion are scrapable."""

    def test_breaker_transition_counters_are_scrapable(self):
        sim = Simulator()
        breaker = make_breaker(sim)
        for __ in range(3):
            breaker.record_failure()  # closed -> open
        advance(sim, 11e-3)
        assert breaker.allow()  # open -> half-open probe
        breaker.record_success()  # half-open -> closed
        families = parse_prometheus_text(prometheus_text(sim.telemetry))

        def edge(name):
            family = families[f"repro_brk_transitions_{name}"]
            assert family.kind == "counter"
            __, labels, value = family.samples[0]
            assert labels["path"] == f"brk.transitions.{name}"
            return value

        assert edge("closed_to_open") == 1.0
        assert edge("open_to_half_open") == 1.0
        assert edge("half_open_to_closed") == 1.0

    def test_retry_budget_exhaustion_is_scrapable(self):
        sim = Simulator()
        budget = RetryBudget(
            sim, budget=1, window=1.0,
            metrics=sim.telemetry.unique_scope("rpc.retry_budget"),
        )
        assert budget.try_spend() is True
        assert budget.try_spend() is False
        assert budget.try_spend() is False
        families = parse_prometheus_text(prometheus_text(sim.telemetry))
        granted = families["repro_rpc_retry_budget_granted"]
        exhausted = families["repro_rpc_retry_budget_exhausted"]
        assert granted.kind == "counter"
        assert granted.samples[0][2] == 1.0
        assert exhausted.samples[0][2] == 2.0
        assert exhausted.samples[0][1]["path"] == "rpc.retry_budget.exhausted"


def tick(sim, sampler):
    advance(sim, sampler.period)
    sampler.sample()


class TestBrownout:
    def test_escalates_while_firing_and_recovers_after(self):
        sim = Simulator()
        pressure, sampler, brownout = make_brownout(sim)
        pressure.set(1.0)  # objective violated from the first sample
        tick(sim, sampler)
        assert brownout.level == 1  # first firing tick escalates
        assert brownout.batch_scale == 0.5
        tick(sim, sampler)
        assert brownout.level == 1  # dwell not yet elapsed
        tick(sim, sampler)
        assert brownout.level == 2
        assert not brownout.compaction_enabled
        tick(sim, sampler)
        tick(sim, sampler)
        assert brownout.level == 3  # the ladder's last rung
        assert brownout.serve_stale
        tick(sim, sampler)
        assert brownout.level == 3  # never past the last mode
        pressure.set(0.0)  # overload clears
        for __ in range(5):
            tick(sim, sampler)
        assert brownout.level == 2  # one step back per recovery period
        for __ in range(8):
            tick(sim, sampler)
        assert brownout.level == 0
        directions = [t[3] for t in brownout.transitions]
        assert directions == ["escalate"] * 3 + ["deescalate"] * 3

    def test_transition_log_is_deterministic(self):
        def scripted():
            sim = Simulator()
            pressure, sampler, brownout = make_brownout(sim)
            pressure.set(1.0)
            for __ in range(6):
                tick(sim, sampler)
            pressure.set(0.0)
            for __ in range(12):
                tick(sim, sampler)
            return brownout

        first, second = scripted(), scripted()
        assert first.transition_log_bytes() == second.transition_log_bytes()
        assert len(first.transition_log_bytes()) > 0

    def test_rule_filter_ignores_other_firings(self):
        sim = Simulator()
        pressure, sampler, brownout = make_brownout(
            sim, rules=["some-other-rule"]
        )
        pressure.set(1.0)
        for __ in range(6):
            tick(sim, sampler)
        assert brownout.level == 0  # "pressure" fires but is not watched

    def test_invalid_configs_rejected(self):
        sim = Simulator()
        pressure, sampler, __ = make_brownout(sim)
        monitor = SloMonitor(sampler)
        scope = sim.telemetry.scope("bo2")
        with pytest.raises(ConfigurationError):
            BrownoutController(monitor, scope, modes=(BrownoutMode("only"),))
        with pytest.raises(ConfigurationError):
            BrownoutController(monitor, scope, dwell=0.0)


def rpc_pair(sim, **server_kwargs):
    """A clean client/server RPC pair over symmetric links."""
    client_port = NetworkPort(sim, "client")
    server_port = NetworkPort(sim, "server")
    to_server = Link(sim)
    to_client = Link(sim)
    client_port.add_route("*", to_server)
    server_port.attach_rx(to_server)
    server_port.add_route("*", to_client)
    client_port.attach_rx(to_client)
    server = RpcServer(sim, UdpSocket(sim, server_port), **server_kwargs)
    client = RpcClient(sim, UdpSocket(sim, client_port))
    return server, client


class TestRpcServerOverload:
    def test_bounded_queue_rejects_overflow_fast(self):
        sim = Simulator()
        server, client = rpc_pair(sim, queue_capacity=1, workers=1)

        def slow(x):
            yield sim.timeout(1e-3)
            return x

        server.register("slow", slow)
        outcomes = []

        def one(index):
            try:
                result = yield from client.call(
                    "server", "slow", index, timeout=20e-3, retries=0
                )
                outcomes.append(("ok", result, sim.now))
            except RpcError as error:
                outcomes.append(("err", str(error), sim.now))

        def scenario():
            procs = [sim.process(one(i)) for i in range(3)]
            yield sim.all_of(procs)

        sim.run_process(scenario())
        served = [o for o in outcomes if o[0] == "ok"]
        rejected = [o for o in outcomes if o[0] == "err"]
        # One in service, one queued, the third rejected immediately.
        assert len(served) == 2 and len(rejected) == 1
        assert "overload: dropped (full)" in rejected[0][1]
        assert rejected[0][2] < 1e-3  # refused long before a service time
        assert server.requests_shed == 1

    def test_admission_sheds_by_priority_class(self):
        sim = Simulator()
        admission = AdmissionController(
            sim, sim.telemetry.unique_scope("adm"), rate=100.0, burst=2.0
        )
        server, client = rpc_pair(
            sim, admission=admission, queue_capacity=8
        )
        server.register("echo", lambda x: x)

        def scenario():
            # A full bucket admits user calls...
            for index in range(2):
                result = yield from client.call(
                    "server", "echo", index, timeout=10e-3,
                    priority=Priority.USER,
                )
                assert result == index
            # ...but the drained bucket sheds scrub traffic outright.
            with pytest.raises(RpcError, match="admission shed"):
                yield from client.call(
                    "server", "echo", 2, timeout=10e-3,
                    priority=Priority.SCRUB,
                )

        sim.run_process(scenario())
        assert admission.admitted(Priority.USER) == 2
        assert admission.shed(Priority.SCRUB) == 1
        assert server.requests_shed == 1


class TestNvmeBoundedSubmission:
    def test_full_submission_queue_completes_queue_full(self):
        sim = Simulator()
        ssd = NvmeController(
            sim, "nvme-ov", queue_depth=2, queue_policy=QueuePolicy.FIFO
        )
        ssd.add_namespace(Namespace(1, 256))
        qp = ssd.create_queue_pair()  # controller never started: no drain
        first = qp.submit(NvmeCommand(NvmeOpcode.READ, lba=0))
        second = qp.submit(NvmeCommand(NvmeOpcode.READ, lba=1))
        third = qp.submit(NvmeCommand(NvmeOpcode.READ, lba=2))
        # The overflowing submit completes immediately — backpressure,
        # not a blocked submitter.
        assert third.triggered
        assert third.value.status is NvmeStatus.QUEUE_FULL
        assert not first.triggered and not second.triggered
        assert qp.queue.dropped_full == 1

    def test_codel_aborts_stale_commands(self):
        sim = Simulator()
        scope = sim.telemetry.unique_scope("qp-codel")
        qp = NvmeQueuePair(
            sim, qid=0, depth=16, policy=QueuePolicy.CODEL, metrics=scope,
            codel_target=200e-6, codel_interval=1e-3,
        )
        commands = [NvmeCommand(NvmeOpcode.READ, lba=i) for i in range(3)]
        completions = [qp.submit(command) for command in commands]

        def scenario():
            yield sim.timeout(2e-3)
            first = yield qp.next_command()  # first stale head is served
            yield sim.timeout(2e-3)
            pending = qp.next_command()  # sheds the rest, then waits
            qp.submit(NvmeCommand(NvmeOpcode.READ, lba=9))
            fresh = yield pending
            return first, fresh

        first, fresh = sim.run_process(scenario())
        assert first is commands[0]
        assert fresh.lba == 9
        for stale in completions[1:]:
            assert stale.triggered
            assert stale.value.status is NvmeStatus.COMMAND_ABORTED
        assert qp.queue.dropped_deadline == 2

    def test_bounded_controller_still_serves_io(self):
        sim = Simulator()
        ssd = NvmeController(
            sim, "nvme-ov-live", queue_policy=QueuePolicy.FIFO
        )
        ssd.add_namespace(Namespace(1, 256))
        qp = ssd.create_queue_pair()
        ssd.start()

        def scenario():
            done = yield qp.submit(
                NvmeCommand(NvmeOpcode.WRITE, lba=3, data=b"bounded")
            )
            assert done.ok
            completion = yield qp.submit(
                NvmeCommand(NvmeOpcode.READ, lba=3, block_count=1)
            )
            return completion

        completion = sim.run_process(scenario())
        assert completion.status is NvmeStatus.SUCCESS
        assert completion.data[:7] == b"bounded"


def make_tiered_store(dram_capacity=1 << 16):
    sim = Simulator()
    dram = DramBackend(
        sim, MemoryBank("ddr4-0", dram_capacity, 19.2e9, 80e-9), dram_capacity
    )
    controller = NvmeController(sim, "tier-ssd-ov")
    controller.add_namespace(Namespace(1, 4096))
    qp = controller.create_queue_pair()
    controller.start()
    return SingleLevelStore(sim, dram, NvmeBackend(sim, controller, qp))


class TestTieringOverload:
    def test_backlog_drains_across_epochs_without_reheating(self):
        store = make_tiered_store()
        policy = TieringPolicy(store, hot_threshold=5, max_moves_per_epoch=2)
        oids = []
        for __ in range(5):
            segment = store.allocate(64, hint=PlacementHint.COLD)
            store.write(segment.oid, b"x" * 64)
            for __ in range(10):
                store.read(segment.oid, 8)
            oids.append(segment.oid)
        assert len(policy.run_epoch()) == 2  # move budget caps the epoch
        assert policy.promotion_queue.depth == 3  # backlog is explicit
        # The backlog drains in later epochs with no further accesses.
        assert len(policy.run_epoch()) == 2
        assert len(policy.run_epoch()) == 1
        for oid in oids:
            assert store.table.lookup(oid).location is SegmentLocation.DRAM

    def test_promotion_queue_gauges_are_published(self):
        store = make_tiered_store()
        policy = TieringPolicy(store, hot_threshold=5, max_moves_per_epoch=1)
        for __ in range(3):
            segment = store.allocate(64, hint=PlacementHint.COLD)
            store.write(segment.oid, b"y" * 64)
            for __ in range(10):
                store.read(segment.oid, 8)
        policy.run_epoch()
        depth = store.sim.telemetry.gauge("memory.tiering.queue.depth")
        assert depth.value == policy.promotion_queue.depth == 2

    def test_capacity_breaker_opens_and_holds_the_backlog(self):
        store = make_tiered_store(dram_capacity=100)  # room for one segment
        policy = TieringPolicy(
            store, hot_threshold=5, breaker_failure_threshold=1,
            breaker_reset_timeout=100e-3,
        )
        segments = []
        for __ in range(2):
            segment = store.allocate(64, hint=PlacementHint.COLD)
            store.write(segment.oid, b"z" * 64)
            for __ in range(10):
                store.read(segment.oid, 8)
            segments.append(segment)
        decisions = policy.run_epoch()
        # The first promotion fills DRAM; the second trips the breaker.
        assert len(decisions) == 1
        breaker = policy.breakers[SegmentLocation.DRAM]
        assert breaker.state is BreakerState.OPEN
        assert policy.stats.degraded == 1
        # While open, new hot candidates are held, not re-attempted.
        for __ in range(10):
            store.read(segments[1].oid, 8)
        policy.run_epoch()
        assert policy.stats.degraded == 2
        assert policy.promotion_queue.depth == 1  # backlog held
        # After the reset timeout, a half-open probe re-attempts — DRAM
        # is still full, so the probe fails and the circuit re-opens.
        advance(store.sim, 150e-3)
        policy.run_epoch()
        assert breaker.state is BreakerState.OPEN
        assert policy.stats.degraded == 3
        log = breaker.transition_log_bytes().decode()
        assert "open->half-open" in log
        assert "half-open->open" in log


class TestFailoverBreaker:
    def test_open_circuit_gives_immediate_failover_during_blackhole(self):
        """Satellite regression: once the dead head's circuit opens, ops
        stop paying the per-call timeout chain and fail over instantly."""
        sim = Simulator()
        network = Network(sim)
        cluster = ReplicatedDpuKvCluster(
            sim, network, dpu_count=3, replication=2, ssd_blocks=8192
        )
        plan = FaultPlan(seed=5)
        plan.windowed("head-outage", "kv-dpu-0", FaultKind.NODE_DOWN, 0.0, 1.0)
        injector = FaultInjector(sim, plan)
        client = FailoverKvClient(sim, network, "ov-client", cluster)
        dead = "kv-dpu-0"
        key = next(
            f"k{i}".encode() for i in range(64)
            if cluster.replicas_of(f"k{i}".encode())[0] == dead
        )

        def scenario():
            # The chaos-controller idiom: NODE_DOWN windows map onto
            # switch blackholes.
            for index, address in enumerate(cluster.addresses):
                if injector.active(address, FaultKind.NODE_DOWN):
                    cluster.kill(index)
            durations = []
            for __ in range(8):
                started = sim.now
                yield from client.put(key, b"value")
                durations.append(sim.now - started)
            value = yield from client.get(key)
            return durations, value

        durations, value = sim.run_process(scenario())
        assert value == b"value"
        breaker = client.breakers[dead]
        assert breaker.state is BreakerState.OPEN
        assert breaker.rejected > 0
        # The first puts each burned the head's timeout+retry budget...
        assert durations[0] > client.timeout
        # ...but once the circuit opened, every put completes in well
        # under a single RPC timeout.
        assert all(d < client.timeout for d in durations[3:])

        def recover():
            cluster.revive(0)
            ok = yield from client.probe(dead)
            acked = yield from client.put(key, b"value2")
            return ok, acked

        ok, acked = sim.run_process(recover())
        # A verified probe success closes the circuit on the spot, and
        # the next put reaches the whole chain again.
        assert ok
        assert breaker.state is BreakerState.CLOSED
        assert acked == 2
