"""Tests for the LSM tree and SSTables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ProtocolError
from repro.datastruct import LsmTree, SsTable


class TestSsTable:
    def test_sorted_required(self):
        with pytest.raises(ProtocolError):
            SsTable([(b"b", b"1"), (b"a", b"2")])

    def test_unique_keys_required(self):
        with pytest.raises(ProtocolError):
            SsTable([(b"a", b"1"), (b"a", b"2")])

    def test_get(self):
        table = SsTable([(b"a", b"1"), (b"b", b"2")])
        assert table.get(b"a") == b"1"
        assert table.get(b"zz") is None

    def test_key_range(self):
        table = SsTable([(b"a", b"1"), (b"m", b"2"), (b"z", b"3")])
        assert table.key_range == (b"a", b"z")

    def test_serialize_roundtrip(self):
        table = SsTable([(b"alpha", b"one"), (b"beta", b"two")])
        restored = SsTable.deserialize(table.serialize())
        assert list(restored.items()) == list(table.items())

    def test_bad_image(self):
        with pytest.raises(ProtocolError):
            SsTable.deserialize(b"JUNK" + b"\x00" * 8)


class TestLsmBasics:
    def test_put_get(self):
        lsm = LsmTree()
        lsm.put(b"k", b"v")
        assert lsm.get(b"k") == b"v"

    def test_missing_key(self):
        assert LsmTree().get(b"nope") is None

    def test_overwrite_in_memtable(self):
        lsm = LsmTree()
        lsm.put(b"k", b"old")
        lsm.put(b"k", b"new")
        assert lsm.get(b"k") == b"new"

    def test_delete(self):
        lsm = LsmTree()
        lsm.put(b"k", b"v")
        lsm.delete(b"k")
        assert lsm.get(b"k") is None

    def test_flush_preserves_reads(self):
        lsm = LsmTree(memtable_limit=1000)
        for i in range(100):
            lsm.put(f"key{i:03d}".encode(), f"val{i}".encode())
        lsm.flush()
        assert lsm.get(b"key050") == b"val50"
        assert lsm.stats.flushes == 1

    def test_auto_flush_at_limit(self):
        lsm = LsmTree(memtable_limit=10)
        for i in range(25):
            lsm.put(f"k{i:02d}".encode(), b"v")
        assert lsm.stats.flushes >= 2


class TestShadowingAndCompaction:
    def test_newer_value_wins_across_levels(self):
        lsm = LsmTree(memtable_limit=1000)
        lsm.put(b"k", b"v1")
        lsm.flush()
        lsm.put(b"k", b"v2")
        lsm.flush()
        assert lsm.get(b"k") == b"v2"

    def test_delete_shadows_flushed_value(self):
        lsm = LsmTree(memtable_limit=1000)
        lsm.put(b"k", b"v")
        lsm.flush()
        lsm.delete(b"k")
        assert lsm.get(b"k") is None

    def test_compaction_merges_and_drops_tombstones(self):
        lsm = LsmTree(memtable_limit=1000, l0_limit=2)
        lsm.put(b"a", b"1")
        lsm.flush()
        lsm.put(b"b", b"2")
        lsm.delete(b"a")
        lsm.flush()
        lsm.put(b"c", b"3")
        lsm.flush()  # exceeds l0_limit -> compacts
        assert lsm.stats.compactions == 1
        assert lsm.l0 == []
        assert lsm.get(b"a") is None
        assert lsm.get(b"b") == b"2"
        assert lsm.get(b"c") == b"3"

    def test_search_cost_grows_with_runs(self):
        lsm = LsmTree(memtable_limit=1000, l0_limit=100)
        lsm.put(b"deep", b"v")
        lsm.flush()
        for i in range(3):
            lsm.put(f"filler{i}".encode(), b"x")
            lsm.flush()
        # 'deep' now sits under several newer runs.
        assert lsm.search_cost(b"deep") >= 4

    def test_items_sorted_and_deduped(self):
        lsm = LsmTree(memtable_limit=1000)
        lsm.put(b"b", b"2")
        lsm.put(b"a", b"1")
        lsm.flush()
        lsm.put(b"a", b"1-new")
        assert list(lsm.items()) == [(b"a", b"1-new"), (b"b", b"2")]


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.binary(min_size=1, max_size=8),
            st.one_of(st.binary(min_size=1, max_size=8), st.none()),
        ),
        max_size=200,
    )
)
def test_lsm_matches_dict(operations):
    lsm = LsmTree(memtable_limit=16, l0_limit=3)
    reference = {}
    for key, value in operations:
        if value is None:
            lsm.delete(key)
            reference.pop(key, None)
        else:
            lsm.put(key, value)
            reference[key] = value
    for key, value in reference.items():
        assert lsm.get(key) == value
    assert dict(lsm.items()) == reference
