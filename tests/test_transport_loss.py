"""Failure injection: transports over lossy links.

TCP must retransmit and still deliver; UDP loses datagrams silently —
the reliability split the RPC layer's users choose between.
"""

import random

import pytest

from repro.hw.net.frames import Frame
from repro.hw.net.link import Link
from repro.hw.net.port import NetworkPort
from repro.sim import Simulator
from repro.transport.tcp import TcpStack
from repro.transport.udp import UdpSocket


def lossy_pair(sim, loss_fn):
    """Two ports wired directly with a lossy A->B link and a clean B->A."""
    a = NetworkPort(sim, "a")
    b = NetworkPort(sim, "b")
    a_to_b = Link(sim, loss_fn=loss_fn)
    b_to_a = Link(sim)
    a.add_route("*", a_to_b)
    b.attach_rx(a_to_b)
    b.add_route("*", b_to_a)
    a.attach_rx(b_to_a)
    return a, b


class TestTcpUnderLoss:
    def test_retransmission_delivers(self):
        sim = Simulator()
        rng = random.Random(4)
        # Drop 30% of frames a->b (data direction).
        a_port, b_port = lossy_pair(sim, lambda f: rng.random() < 0.3)
        client = TcpStack(sim, a_port)
        server = TcpStack(sim, b_port)
        got = []

        def server_side():
            connection = yield server.accept()
            for _ in range(5):
                payload, size = yield connection.recv()
                got.append(payload)

        def client_side():
            connection = yield from client.connect("b")
            for i in range(5):
                yield from connection.send(f"msg-{i}", 20_000)
            return connection

        sim.process(server_side())
        proc = sim.process(client_side())
        sim.run(until=5.0)
        assert got == [f"msg-{i}" for i in range(5)]
        assert proc.value.retransmissions > 0

    def test_loss_costs_time(self):
        def run(loss):
            sim = Simulator()
            rng = random.Random(11)
            a_port, b_port = lossy_pair(
                sim, (lambda f: rng.random() < loss) if loss else None
            )
            client = TcpStack(sim, a_port)
            server = TcpStack(sim, b_port)
            done = []

            def server_side():
                connection = yield server.accept()
                yield connection.recv()
                done.append(sim.now)

            def client_side():
                connection = yield from client.connect("b")
                yield from connection.send("bulk", 50_000)

            sim.process(server_side())
            sim.process(client_side())
            sim.run(until=5.0)
            return done[0]

        assert run(0.3) > run(0.0)


class TestUdpUnderLoss:
    def test_datagrams_silently_lost(self):
        sim = Simulator()
        counter = [0]

        def drop_every_other(frame):
            counter[0] += 1
            return counter[0] % 2 == 0

        a_port, b_port = lossy_pair(sim, drop_every_other)
        a = UdpSocket(sim, a_port)
        b = UdpSocket(sim, b_port)

        def sender():
            for i in range(10):
                yield from a.sendto("b", i, 100)

        sim.process(sender())
        sim.run()
        assert a.datagrams_sent == 10
        assert b.datagrams_received == 5

    def test_fragmented_datagram_dies_on_one_lost_fragment(self):
        sim = Simulator()
        counter = [0]

        def drop_third_frame(frame):
            counter[0] += 1
            return counter[0] == 3

        a_port, b_port = lossy_pair(sim, drop_third_frame)
        a = UdpSocket(sim, a_port)
        b = UdpSocket(sim, b_port)

        def sender():
            yield from a.sendto("b", "big", 50_000)  # many fragments

        sim.process(sender())
        sim.run()
        assert b.datagrams_received == 0  # the whole datagram is gone
