"""Unit tests for repro.common.units."""

import pytest

from repro.common import units
from repro.common.units import (
    GIB,
    KIB,
    MIB,
    MSEC,
    USEC,
    format_bytes,
    format_time,
)


class TestSizes:
    def test_binary_ladder(self):
        assert KIB == 1024
        assert MIB == 1024 * KIB
        assert GIB == 1024 * MIB
        assert units.TIB == 1024 * GIB


class TestBandwidth:
    def test_gbps_is_bytes_per_second(self):
        assert units.gbps(8) == pytest.approx(1e9)

    def test_transfer_time_100gbe(self):
        # A 1500-byte frame at 100 Gbit/s serializes in 120 ns.
        t = units.transfer_time(1500, units.gbps(100))
        assert t == pytest.approx(120e-9)

    def test_transfer_time_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            units.transfer_time(100, 0)


class TestFormatBytes:
    def test_plain_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kib(self):
        assert format_bytes(1536) == "1.5 KiB"

    def test_mib(self):
        assert format_bytes(3 * MIB) == "3.0 MiB"

    def test_huge(self):
        assert "TiB" in format_bytes(5 * units.TIB)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)


class TestFormatTime:
    def test_zero(self):
        assert format_time(0) == "0 s"

    def test_nanoseconds(self):
        assert format_time(500e-9) == "500.0 ns"

    def test_microseconds(self):
        assert format_time(12.3 * USEC) == "12.3 us"

    def test_milliseconds(self):
        assert format_time(4 * MSEC) == "4.0 ms"

    def test_seconds(self):
        assert format_time(2.5) == "2.500 s"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_time(-1.0)
