"""Tests for the eBPF verifier (simplified symbolic execution)."""

import pytest

from repro.ebpf import Verifier, assemble
from repro.ebpf.helpers import HELPER_MAP_LOOKUP


def verify(source, **kwargs):
    return Verifier(**kwargs).verify(assemble(source))


class TestAcceptance:
    def test_minimal_program(self):
        report = verify("mov r0, 0\nexit")
        assert report.ok
        assert report.instructions_covered == 2

    def test_branches_both_explored(self):
        report = verify("""
            mov r0, 0
            jeq r1, 0, done
            add r0, 1
        done:
            exit
        """)
        assert report.ok
        assert report.instructions_covered == 4

    def test_stack_roundtrip(self):
        report = verify("""
            mov r1, 5
            stxdw [r10-8], r1
            ldxdw r0, [r10-8]
            exit
        """)
        assert report.ok

    def test_copied_stack_pointer_with_offset(self):
        """The standard map-key pattern: mov r2, r10; add r2, -8."""
        report = verify("""
            mov r1, 1
            stxdw [r10-8], r1
            mov r2, r10
            add r2, -8
            ldxdw r0, [r2+0]
            exit
        """)
        assert report.ok

    def test_checked_map_lookup(self):
        report = verify(f"""
            mov r1, 7
            stxdw [r10-8], r1
            mov r1, 1
            mov r2, r10
            sub r2, 8
            call {HELPER_MAP_LOOKUP}
            jeq r0, 0, miss
            ldxdw r0, [r0+0]
            exit
        miss:
            mov r0, 0
            exit
        """)
        assert report.ok

    def test_context_read(self):
        assert verify("ldxw r0, [r1+0]\nexit").ok


class TestRejection:
    def test_empty_program(self):
        report = Verifier().verify(assemble(""))
        assert not report.ok

    def test_uninitialized_register_read(self):
        report = verify("mov r0, r3\nexit")
        assert not report.ok
        assert "uninitialized" in report.reject_reason()

    def test_exit_without_r0(self):
        report = verify("exit")
        assert not report.ok
        assert "r0" in report.reject_reason()

    def test_fall_off_the_end(self):
        report = verify("mov r0, 1")
        assert not report.ok
        assert "fall off" in report.reject_reason()

    def test_jump_out_of_range(self):
        report = verify("mov r0, 0\nja +10\nexit")
        assert not report.ok
        assert "out of range" in report.reject_reason()

    def test_jump_into_lddw(self):
        report = verify("""
            mov r0, 0
            ja +1
            lddw r1, 0x1122334455667788
            exit
        """)
        assert not report.ok
        assert "LDDW" in report.reject_reason()

    def test_unknown_helper(self):
        report = verify("call 1234\nexit")
        assert not report.ok
        assert "unknown helper" in report.reject_reason()

    def test_div_by_zero_imm(self):
        report = verify("mov r0, 1\ndiv r0, 0\nexit")
        assert not report.ok
        assert "division" in report.reject_reason()

    def test_unchecked_map_value_deref(self):
        report = verify(f"""
            mov r1, 1
            stxdw [r10-8], r1
            mov r1, 1
            mov r2, r10
            sub r2, 8
            call {HELPER_MAP_LOOKUP}
            ldxdw r0, [r0+0]
            exit
        """)
        assert not report.ok
        assert "null check" in report.reject_reason()

    def test_stack_overflow_access(self):
        report = verify("ldxdw r0, [r10-520]\nexit")
        assert not report.ok
        assert "stack access" in report.reject_reason()

    def test_stack_positive_access(self):
        report = verify("mov r1, 1\nstxdw [r10+8], r1\nmov r0, 0\nexit")
        assert not report.ok

    def test_memory_access_via_scalar(self):
        report = verify("mov r1, 1000\nldxdw r0, [r1+0]\nexit")
        assert not report.ok
        assert "non-pointer" in report.reject_reason()

    def test_pointer_multiplication(self):
        report = verify("mov r1, r10\nmul r1, 2\nmov r0, 0\nexit")
        assert not report.ok
        assert "pointer arithmetic" in report.reject_reason()

    def test_pointer_with_unknown_offset_access(self):
        report = verify("""
            ldxw r2, [r1+0]
            mov r3, r10
            add r3, r2
            ldxdw r0, [r3+0]
            exit
        """)
        assert not report.ok
        assert "unknown offset" in report.reject_reason()

    def test_loop_rejected_by_default(self):
        report = verify("""
            mov r0, 10
        top:
            sub r0, 1
            jne r0, 0, top
            exit
        """)
        assert not report.ok
        assert "back-edge" in report.reject_reason()

    def test_negative_context_offset(self):
        report = verify("ldxw r0, [r1-4]\nexit")
        assert not report.ok


class TestBoundedLoops:
    def test_loop_allowed_with_flag(self):
        report = verify(
            """
            mov r0, 10
        top:
            sub r0, 1
            jne r0, 0, top
            exit
        """,
            allow_bounded_loops=True,
        )
        assert report.ok

    def test_state_budget_catches_exploding_programs(self):
        # A loop whose state keeps changing would exhaust the budget; with
        # our coarse abstraction the state converges, so exploration ends.
        report = verify(
            """
        top:
            mov r0, 1
            ja top
        """,
            allow_bounded_loops=True,
        )
        # The abstract state converges: explored, no error, but also no exit
        # requirement violated (the exit is unreachable, which is legal).
        assert report.ok
        assert report.states_explored < 10


class TestReportMetadata:
    def test_states_explored_counts(self):
        report = verify("mov r0, 0\nexit")
        assert report.states_explored == 2

    def test_reject_reason_none_when_ok(self):
        assert verify("mov r0, 0\nexit").reject_reason() is None
