"""eBPF semantics conformance: edge cases of the 64-bit ISA.

These pin down behaviours the kernel spec defines precisely (wraparound,
unsigned vs signed comparisons, shift masking, division conventions) so
that both execution environments — the interpreter and the hardware
pipeline, which share semantics — match real eBPF.
"""

import pytest

from repro.ebpf import BpfVm, assemble

U64 = (1 << 64) - 1


def run(source, context=b""):
    return BpfVm(assemble(source)).run(context).return_value


class TestArithmeticEdges:
    def test_add_wraps_at_64_bits(self):
        assert run("lddw r0, 0xffffffffffffffff\nadd r0, 2\nexit") == 1

    def test_sub_underflow_wraps(self):
        assert run("mov r0, 0\nsub r0, 1\nexit") == U64

    def test_mul_overflow_keeps_low_bits(self):
        assert run(
            "lddw r0, 0x100000000\nlddw r3, 0x100000000\nmul r0, r3\nexit"
        ) == 0

    def test_div_is_unsigned(self):
        # -8 as u64 divided by 2 is a huge number, not -4.
        result = run("mov r0, 0\nsub r0, 8\nmov r3, 2\ndiv r0, r3\nexit")
        assert result == ((U64 - 7) // 2)

    def test_mod_by_zero_keeps_dst(self):
        assert run("mov r0, 17\nmov r3, 0\nmod r0, r3\nexit") == 17

    def test_shift_amount_masked_to_6_bits(self):
        # lsh by 65 behaves as lsh by 1 (6-bit mask), kernel semantics.
        assert run("mov r0, 1\nmov r3, 65\nlsh r0, r3\nexit") == 2
        assert run("mov r0, 4\nmov r3, 66\nrsh r0, r3\nexit") == 1

    def test_arsh_keeps_sign(self):
        result = run("mov r0, 0\nsub r0, 16\narsh r0, 2\nexit")
        assert result == (-4) & U64

    def test_rsh_is_logical(self):
        result = run("mov r0, 0\nsub r0, 16\nrsh r0, 2\nexit")
        assert result == ((U64 - 15) >> 2)

    def test_neg_of_zero(self):
        assert run("mov r0, 0\nneg r0\nexit") == 0

    def test_mov_imm_sign_extends(self):
        # mov with a negative immediate sign-extends to 64 bits.
        assert run("mov r0, -1\nexit") == U64


class TestComparisonEdges:
    def test_jgt_unsigned_wraps(self):
        source = """
            mov r3, 0
            sub r3, 1      ; r3 = u64 max
            mov r0, 0
            jgt r3, 0, big
            exit
        big:
            mov r0, 1
            exit
        """
        assert run(source) == 1

    def test_jsgt_signed(self):
        source = """
            mov r3, 0
            sub r3, 1      ; r3 = -1 signed
            mov r0, 0
            jsgt r3, 0, positive
            mov r0, 2
            exit
        positive:
            mov r0, 1
            exit
        """
        assert run(source) == 2

    def test_jset_bit_test(self):
        source = """
            mov r3, 0b1010
            mov r0, 0
            jset r3, 0b0010, hit
            exit
        hit:
            mov r0, 1
            exit
        """
        assert run(source) == 1

    def test_jset_miss(self):
        source = """
            mov r3, 0b1010
            mov r0, 0
            jset r3, 0b0101, hit
            exit
        hit:
            mov r0, 1
            exit
        """
        assert run(source) == 0

    def test_jsle_boundary(self):
        source = """
            mov r3, 5
            mov r0, 0
            jsle r3, 5, le
            exit
        le:
            mov r0, 1
            exit
        """
        assert run(source) == 1


class TestMemoryEdges:
    def test_partial_width_loads(self):
        context = (0x1122334455667788).to_bytes(8, "little")
        assert run("ldxb r0, [r1+0]\nexit", context) == 0x88
        assert run("ldxh r0, [r1+0]\nexit", context) == 0x7788
        assert run("ldxw r0, [r1+0]\nexit", context) == 0x55667788
        assert run("ldxdw r0, [r1+0]\nexit", context) == 0x1122334455667788

    def test_store_truncates_to_width(self):
        source = """
            lddw r3, 0x1122334455667788
            stxb [r10-1], r3
            ldxb r0, [r10-1]
            exit
        """
        assert run(source) == 0x88

    def test_little_endian_layout(self):
        source = """
            mov r3, 0x0102
            stxh [r10-2], r3
            ldxb r0, [r10-2]
            exit
        """
        assert run(source) == 0x02

    def test_stack_slots_independent(self):
        source = """
            mov r3, 1
            mov r4, 2
            stxdw [r10-8], r3
            stxdw [r10-16], r4
            ldxdw r0, [r10-8]
            exit
        """
        assert run(source) == 1
