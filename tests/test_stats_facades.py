"""Every legacy *Stats facade must keep mirroring the registry while a
sampler is live on the same registry — sampling is read-only and must
never perturb (or lag) what the facades report."""

import pytest

from repro.datastruct.lsm import LsmTree
from repro.dpu.cluster import (
    DpuKvCluster,
    FailoverStats,
    RoutingClient,
)
from repro.formats.parquet import ReadStats
from repro.hw.net import Frame, Network
from repro.memory.store import StoreStats
from repro.memory.tiering import TieringStats
from repro.sim import ManualClock, Simulator
from repro.telemetry import MetricsRegistry, Sampler


def _sampled(registry, clock, *prefixes):
    sampler = Sampler(registry, clock)
    for prefix in prefixes:
        sampler.watch_prefix(prefix)
    return sampler


def _tick(clock, sampler):
    clock.advance(1e-3)
    sampler.sample()


class TestScopeBackedFacades:
    """Facades that hold live counters: mutate, sample, compare."""

    def test_store_stats(self):
        reg = MetricsRegistry()
        clock = ManualClock()
        sampler = _sampled(reg, clock, "memory.store")
        stats = StoreStats(reg.scope("memory.store"))
        stats.allocations += 2
        stats.reads += 3
        stats.writes += 1
        _tick(clock, sampler)
        assert stats.allocations == \
            reg.counter("memory.store.allocations").value == 2
        assert sampler.series("memory.store.reads").last[1] == 3.0
        stats.reads += 1  # mutation after sampling still reads through
        assert reg.counter("memory.store.reads").value == 4

    def test_lsm_stats(self):
        reg = MetricsRegistry()
        clock = ManualClock()
        sampler = _sampled(reg, clock, "lsm")
        tree = LsmTree(memtable_limit=4, metrics=reg.scope("lsm"))
        for index in range(16):
            tree.put(f"k{index:02d}".encode(), b"v")
        _tick(clock, sampler)
        assert tree.stats.flushes == reg.counter("lsm.flushes").value > 0
        assert tree.stats.compactions == reg.counter("lsm.compactions").value
        assert tree.stats.bytes_compacted == \
            reg.counter("lsm.bytes_compacted").value
        assert sampler.series("lsm.flushes").last[1] == \
            float(tree.stats.flushes)

    def test_failover_stats(self):
        reg = MetricsRegistry()
        clock = ManualClock()
        sampler = _sampled(reg, clock, "dpu.failover")
        stats = FailoverStats(reg.scope("dpu.failover"))
        stats.reads += 5
        stats.failovers += 1
        stats.replica_failures += 2
        stats.marked_down.add("kv-dpu-1")
        _tick(clock, sampler)
        assert stats.reads == reg.counter("dpu.failover.reads").value == 5
        assert stats.failovers == \
            reg.counter("dpu.failover.failovers").value == 1
        # The marked-down set mirrors its size into a gauge the sampler sees.
        assert reg.gauge("dpu.failover.marked_down").value == 1.0
        assert sampler.series("dpu.failover.marked_down").last[1] == 1.0
        stats.marked_down.discard("kv-dpu-1")
        assert reg.gauge("dpu.failover.marked_down").value == 0.0

    def test_tiering_stats(self):
        reg = MetricsRegistry()
        clock = ManualClock()
        sampler = _sampled(reg, clock, "memory.tiering")
        stats = TieringStats(reg.scope("memory.tiering"))
        stats.epochs += 2
        stats.promotions += 4
        stats.demotions += 1
        _tick(clock, sampler)
        assert stats.epochs == reg.counter("memory.tiering.epochs").value == 2
        assert stats.promotions == \
            reg.counter("memory.tiering.promotions").value == 4
        assert sampler.series("memory.tiering.demotions").last[1] == 1.0

    def test_read_stats(self):
        reg = MetricsRegistry()
        clock = ManualClock()
        sampler = _sampled(reg, clock, "formats.read")
        stats = ReadStats(reg.scope("formats.read"))
        stats.bytes_read += 4096
        stats.chunks_read += 2
        stats.row_groups_skipped += 1
        _tick(clock, sampler)
        assert stats.bytes_read == \
            reg.counter("formats.read.bytes_read").value == 4096
        assert sampler.series("formats.read.bytes_read").last[1] == 4096.0


class TestSnapshotFacades:
    """Facades assembled from the registry at stats() time, exercised
    through their real subsystems with a sampler running alongside."""

    def test_link_and_port_stats(self):
        sim = Simulator()
        sampler = _sampled(sim.telemetry, sim, "net")
        network = Network(sim)
        a = network.endpoint("a")
        network.endpoint("b")

        def send():
            for __ in range(3):
                yield from a.send(Frame("a", "b", None, payload_size=100))
            sampler.sample()

        sim.run_process(send())
        stats = a.stats()
        assert stats.tx.frames_sent == 3
        assert stats.tx.frames_sent == \
            sim.telemetry.counter("net.link.a.up.frames_sent").value
        assert stats.tx.bytes_sent == \
            sim.telemetry.counter("net.link.a.up.bytes_sent").value
        sent = sampler.series("net.link.a.up.frames_sent")
        assert sent is not None and sent.last[1] == 3.0

    def test_cluster_stats(self):
        sim = Simulator()
        sampler = _sampled(sim.telemetry, sim, "kvssd")
        network = Network(sim)
        cluster = DpuKvCluster(sim, network, dpu_count=2, ssd_blocks=4096)
        client = RoutingClient(sim, network, "host", cluster)

        def workload():
            for index in range(6):
                key = f"key:{index}".encode()
                yield from client.put(key, b"v")
                value = yield from client.get(key)
                assert value == b"v"
            sampler.sample()

        sim.run_process(workload())
        stats = cluster.stats()
        assert stats.routed_ops == 12
        registry_total = sum(
            sim.telemetry.counter(f"kvssd.{address}-flash.{op}").value
            for address in cluster.addresses
            for op in ("gets", "puts")
        )
        assert stats.routed_ops == registry_total
        assert sum(stats.per_dpu_ops.values()) == registry_total
        sampled_total = sum(
            sampler.series(name).last[1]
            for name in sampler.names()
            if name.endswith(".gets") or name.endswith(".puts")
        )
        assert sampled_total == pytest.approx(float(registry_total))
