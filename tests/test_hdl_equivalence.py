"""Property test: the hardware pipeline computes exactly what the VM does.

The §2.2 pipeline is only sound if lowering to hardware preserves program
semantics. Hypothesis generates random straight-line eBPF programs; each
must produce identical results on the interpreter and on the compiled
pipeline model (which shares semantics via the VM but exercises the whole
verify->schedule->estimate path).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ebpf.builder import ProgramBuilder
from repro.ebpf.vm import BpfVm
from repro.ebpf.verifier import Verifier
from repro.hdl import compile_program, HardwarePipeline
from repro.sim import Simulator

#: Registers the generator may use freely (r0 is the result).
SCRATCH_REGS = ["r0", "r3", "r4", "r5"]

_alu_op = st.sampled_from(["add", "sub", "mul", "and_", "or_", "xor", "lsh", "rsh"])


@st.composite
def straight_line_program(draw):
    """A random sequence of ALU ops over initialized registers."""
    builder = ProgramBuilder("random")
    # Initialize every scratch register first so the verifier accepts.
    for reg in SCRATCH_REGS:
        builder.mov(reg, draw(st.integers(min_value=0, max_value=2**31 - 1)))
    for _ in range(draw(st.integers(min_value=0, max_value=12))):
        op = draw(_alu_op)
        dst = draw(st.sampled_from(SCRATCH_REGS))
        if draw(st.booleans()):
            src = draw(st.sampled_from(SCRATCH_REGS))
        else:
            src = draw(st.integers(min_value=0, max_value=2**31 - 1))
            if op in ("lsh", "rsh"):
                src = src % 64
        getattr(builder, op)(dst, src)
    builder.exit()
    return builder.build()


@settings(max_examples=60, deadline=None)
@given(program=straight_line_program())
def test_pipeline_matches_interpreter(program):
    assert Verifier().verify(program).ok
    vm_result = BpfVm(program).run()
    for fuse in (True, False):
        compiled = compile_program(program, fuse=fuse)
        sim = Simulator()
        pipeline = HardwarePipeline(sim, compiled)
        assert pipeline.execute_now().return_value == vm_result.return_value


@settings(max_examples=40, deadline=None)
@given(program=straight_line_program())
def test_compile_metadata_consistent(program):
    """Schedule/area invariants hold for arbitrary programs."""
    compiled = compile_program(program)
    schedule = compiled.schedule
    # Every instruction is placed exactly once.
    placed = sum(
        len(op.instructions) for stage in schedule.stages for op in stage
    )
    assert placed == len(program.instructions)
    assert schedule.depth >= 1
    assert schedule.initiation_interval >= 1
    assert compiled.area.fmax_hz > 0
    assert compiled.area.resources.ffs > 0
    # Encoded Verilog mentions every stage.
    for index in range(schedule.depth):
        assert f"stage {index}" in compiled.verilog


@st.composite
def branchy_program(draw):
    """Random program with forward conditional branches over ctx fields.

    Structure: load two context words, then a cascade of compare/branch
    blocks each setting r0 differently, all exits verified reachable.
    """
    builder = ProgramBuilder("branchy")
    builder.load(4, "r3", "r1", 0)
    builder.load(4, "r4", "r1", 4)
    builder.mov("r0", 0)
    block_count = draw(st.integers(min_value=1, max_value=4))
    jump_ops = ["jeq", "jne", "jgt", "jge", "jlt", "jle"]
    for index in range(block_count):
        op = draw(st.sampled_from(jump_ops))
        reg = draw(st.sampled_from(["r3", "r4"]))
        threshold = draw(st.integers(min_value=0, max_value=100))
        label = f"taken_{index}"
        getattr(builder, op)(reg, threshold, label)
        builder.add("r0", draw(st.integers(min_value=0, max_value=50)))
        builder.label(label)
        builder.add("r0", draw(st.integers(min_value=0, max_value=50)))
    builder.exit()
    return builder.build()


@settings(max_examples=40, deadline=None)
@given(
    program=branchy_program(),
    a=st.integers(min_value=0, max_value=200),
    b=st.integers(min_value=0, max_value=200),
)
def test_branchy_pipeline_matches_interpreter(program, a, b):
    context = a.to_bytes(4, "little") + b.to_bytes(4, "little")
    assert Verifier().verify(program).ok
    vm_result = BpfVm(program).run(context)
    compiled = compile_program(program)
    sim = Simulator()
    pipeline = HardwarePipeline(sim, compiled)
    assert pipeline.execute_now(context).return_value == vm_result.return_value


@settings(max_examples=40, deadline=None)
@given(program=straight_line_program())
def test_binary_roundtrip_preserves_semantics(program):
    """encode -> decode -> run gives the same result (ISA correctness)."""
    from repro.ebpf.isa import Program

    restored = Program.decode(program.encode(), name="restored")
    assert BpfVm(restored).run().return_value == BpfVm(program).run().return_value
