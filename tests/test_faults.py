"""Tests for the unified fault-injection subsystem (repro.faults).

Covers the four contracts ISSUE 1 asks for: deterministic schedules from a
seed, NVMe read errors recovered by the backend retry policy, replicated
cluster reads surviving a dead DPU, and SEU repair through the ICAP — plus
the substrate hooks (links, PCIe, tiering, power) the plans drive.
"""

import pytest

from repro.common.errors import (
    ConfigurationError,
    DegradedError,
    PowerLossError,
)
from repro.dpu import FailoverKvClient, HyperionDpu, ReplicatedDpuKvCluster
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    ManualClock,
)
from repro.hw.fpga import Bitstream, ConfigScrubber, Fabric, FabricResources, Icap
from repro.hw.fpga.fabric import MemoryBank
from repro.hw.net import Frame, Link, Network
from repro.hw.nvme import Namespace, NvmeController
from repro.hw.pcie.link import PcieLink
from repro.memory import (
    DramBackend,
    NvmeBackend,
    PlacementHint,
    SegmentLocation,
    SingleLevelStore,
)
from repro.memory.tiering import TieringPolicy
from repro.sim import Simulator


class TestFaultPlan:
    def test_exactly_one_timing_mode_required(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("f", "c", FaultKind.FRAME_DROP)
        with pytest.raises(ConfigurationError):
            FaultSpec("f", "c", FaultKind.FRAME_DROP, at=1.0, probability=0.5)

    def test_probability_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("f", "c", FaultKind.FRAME_DROP, probability=0.0)
        with pytest.raises(ConfigurationError):
            FaultSpec("f", "c", FaultKind.FRAME_DROP, probability=1.5)

    def test_empty_window_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("f", "c", FaultKind.NODE_DOWN, window=(2.0, 1.0))

    def test_duplicate_names_rejected(self):
        plan = FaultPlan()
        plan.once("seu", "slot0", FaultKind.SEU, at=1.0)
        with pytest.raises(ConfigurationError):
            plan.once("seu", "slot1", FaultKind.SEU, at=2.0)

    def test_describe_is_stable(self):
        def build():
            plan = FaultPlan(seed=3)
            plan.once("a", "c1", FaultKind.READ_ERROR, at=1e-3)
            plan.probabilistic("b", "c2", FaultKind.FRAME_DROP, 0.5)
            return plan

        assert build().describe() == build().describe()

    def test_merge_is_order_independent(self):
        # Name-sorting the union makes a.merge(b) and b.merge(a) the
        # same schedule (up to the kept seed) — the property the
        # nemesis leans on when layering plans.
        def operands(seed):
            a = FaultPlan(seed=seed)
            a.once("b-power", "dpu-1", FaultKind.POWER_LOSS, at=1.0)
            a.windowed("d-down", "dpu-2", FaultKind.NODE_DOWN, 2.0, 3.0)
            b = FaultPlan(seed=seed)
            b.once("a-seu", "slot0", FaultKind.SEU, at=0.5)
            b.probabilistic("c-drop", "uplink", FaultKind.FRAME_DROP, 0.5)
            return a, b

        a, b = operands(9)
        merged = a.merge(b)
        assert [spec.name for spec in merged.specs] == [
            "a-seu", "b-power", "c-drop", "d-down",
        ]
        a2, b2 = operands(9)
        assert merged.describe() == b2.merge(a2).describe()

    def test_merge_keeps_left_seed_and_rejects_duplicates(self):
        a = FaultPlan(seed=1)
        a.once("x", "c", FaultKind.SEU, at=1.0)
        b = FaultPlan(seed=2)
        b.once("y", "c", FaultKind.SEU, at=2.0)
        assert a.merge(b).seed == 1
        assert b.merge(a).seed == 2
        dup = FaultPlan(seed=3)
        dup.once("x", "other", FaultKind.SEU, at=3.0)
        with pytest.raises(ConfigurationError):
            a.merge(dup)


def consult_storm(seed):
    """Drive one plan through a scripted consult sequence; return the log."""
    plan = FaultPlan(seed=seed)
    plan.once("bad-read", "ssd.flash", FaultKind.READ_ERROR, at=5e-3)
    plan.probabilistic("lossy", "uplink", FaultKind.FRAME_DROP, 0.3,
                       max_fires=10)
    plan.windowed("outage", "kv-dpu-1", FaultKind.NODE_DOWN, 10e-3, 20e-3)
    clock = ManualClock()
    injector = FaultInjector(clock, plan)
    for _ in range(100):
        clock.advance(0.5e-3)
        injector.fires("uplink", FaultKind.FRAME_DROP)
        injector.fires("ssd.flash", FaultKind.READ_ERROR)
        injector.active("kv-dpu-1", FaultKind.NODE_DOWN)
    return injector


class TestDeterminism:
    def test_same_seed_byte_identical_schedule(self):
        assert consult_storm(7).schedule_bytes() == consult_storm(7).schedule_bytes()

    def test_different_seed_different_draws(self):
        assert consult_storm(7).schedule_bytes() != consult_storm(8).schedule_bytes()

    def test_unrelated_spec_does_not_perturb_draws(self):
        """Per-spec RNGs: adding a spec must not move another's fires."""
        def lossy_times(extra):
            plan = FaultPlan(seed=1)
            plan.probabilistic("lossy", "uplink", FaultKind.FRAME_DROP, 0.3)
            if extra:
                plan.probabilistic("noise", "other", FaultKind.FRAME_CORRUPT, 0.9)
            clock = ManualClock()
            injector = FaultInjector(clock, plan)
            for _ in range(50):
                clock.advance(1e-3)
                injector.fires("uplink", FaultKind.FRAME_DROP)
                if extra:
                    injector.fires("other", FaultKind.FRAME_CORRUPT)
            return [r.time for r in injector.log if r.name == "lossy"]

        assert lossy_times(extra=False) == lossy_times(extra=True)

    def test_once_fires_exactly_once(self):
        plan = FaultPlan()
        plan.once("seu", "slot0", FaultKind.SEU, at=1.0)
        clock = ManualClock()
        injector = FaultInjector(clock, plan)
        assert not injector.fires("slot0", FaultKind.SEU)  # before `at`
        clock.advance(2.0)
        assert injector.fires("slot0", FaultKind.SEU)
        assert not injector.fires("slot0", FaultKind.SEU)
        assert injector.fired("seu") == 1
        assert not injector.pending("slot0", FaultKind.SEU)

    def test_window_active_semantics(self):
        plan = FaultPlan()
        plan.windowed("outage", "dpu", FaultKind.NODE_DOWN, 1.0, 2.0)
        clock = ManualClock()
        injector = FaultInjector(clock, plan)
        assert not injector.active("dpu", FaultKind.NODE_DOWN)
        clock.advance(1.5)
        assert injector.active("dpu", FaultKind.NODE_DOWN)
        assert injector.active("dpu", FaultKind.NODE_DOWN)
        assert len(injector.log) == 1  # only the falling edge is logged
        clock.advance(1.0)
        assert not injector.active("dpu", FaultKind.NODE_DOWN)
        assert not injector.pending("dpu", FaultKind.NODE_DOWN)

    def test_max_fires_bounds_probabilistic_spec(self):
        plan = FaultPlan()
        plan.probabilistic("drops", "link", FaultKind.FRAME_DROP, 1.0,
                           max_fires=3)
        clock = ManualClock()
        injector = FaultInjector(clock, plan)
        fired = sum(
            injector.fires("link", FaultKind.FRAME_DROP) for _ in range(10)
        )
        assert fired == 3
        assert not injector.pending("link", FaultKind.FRAME_DROP)


class TestLinkFaults:
    def test_injected_drop_counted_in_stats(self):
        sim = Simulator()
        plan = FaultPlan()
        plan.probabilistic("drops", "uplink", FaultKind.FRAME_DROP, 1.0,
                           max_fires=1)
        link = Link(sim).attach_faults(FaultInjector(sim, plan), "uplink")

        def scenario():
            yield from link.transmit(Frame("a", "b", None, 100))
            yield from link.transmit(Frame("a", "b", None, 100))

        sim.run_process(scenario())
        stats = link.stats()
        assert stats.frames_sent == 2
        assert stats.frames_dropped == 1
        assert stats.frames_delivered == 1

    def test_corruption_discards_frame(self):
        sim = Simulator()
        plan = FaultPlan()
        plan.probabilistic("emi", "uplink", FaultKind.FRAME_CORRUPT, 1.0,
                           max_fires=1)
        link = Link(sim).attach_faults(FaultInjector(sim, plan), "uplink")
        sim.run_process(link.transmit(Frame("a", "b", None, 100)))
        assert link.stats().frames_corrupted == 1
        assert len(link.rx_queue) == 0

    def test_link_down_window_flaps(self):
        sim = Simulator()
        plan = FaultPlan()
        plan.windowed("flap", "uplink", FaultKind.LINK_DOWN, 0.0, 1e-3)
        link = Link(sim, propagation=0).attach_faults(
            FaultInjector(sim, plan), "uplink"
        )

        def scenario():
            yield from link.transmit(Frame("a", "b", "lost", 100))
            yield sim.timeout(2e-3)  # window closes; link back up
            yield from link.transmit(Frame("a", "b", "ok", 100))
            got = yield link.receive()
            return got.payload

        assert sim.run_process(scenario()) == "ok"
        assert link.stats().frames_dropped == 1


def faulty_nvme(plan, blocks=64, read_retries=2):
    sim = Simulator()
    controller = NvmeController(sim, "ssd")
    controller.add_namespace(Namespace(1, blocks))
    qp = controller.create_queue_pair()
    controller.start()
    controller.attach_faults(FaultInjector(sim, plan))
    backend = NvmeBackend(sim, controller, qp, read_retries=read_retries)
    return sim, controller, backend


class TestNvmeReadRetry:
    def test_injected_read_error_is_retried(self):
        """One uncorrectable read surfaces as UNRECOVERED_READ_ERROR and the
        backend's FTL-style retry recovers the data transparently."""
        plan = FaultPlan(seed=2)
        plan.once("bad-read", "ssd.flash", FaultKind.READ_ERROR, at=0.0)
        sim, controller, backend = faulty_nvme(plan)
        backend.write(0, b"survives the media error")

        def scenario():
            data = yield from backend.timed_read(0, 24)
            return data

        assert sim.run_process(scenario()) == b"survives the media error"
        assert backend.retried_reads == 1
        assert controller.media_errors == 1

    def test_persistent_errors_exhaust_retries(self):
        plan = FaultPlan(seed=2)
        plan.probabilistic("dead-media", "ssd.flash", FaultKind.READ_ERROR, 1.0)
        sim, __, backend = faulty_nvme(plan, read_retries=1)
        backend.write(0, b"unreachable")

        def scenario():
            yield from backend.timed_read(0, 8)

        with pytest.raises(DegradedError, match="after 2 attempts"):
            sim.run_process(scenario())

    def test_command_timeout_aborts_after_watchdog(self):
        plan = FaultPlan(seed=2)
        plan.once("hung-cmd", "ssd", FaultKind.COMMAND_TIMEOUT, at=0.0)
        sim, controller, backend = faulty_nvme(plan)
        backend.write(0, b"eventually")

        def scenario():
            data = yield from backend.timed_read(0, 10)
            return data, sim.now

        data, elapsed = sim.run_process(scenario())
        assert data == b"eventually"  # retried after the abort
        assert controller.commands_aborted == 1
        assert elapsed >= 10e-3  # the watchdog latency was paid


class TestPcieFaults:
    def test_completion_timeout_pays_replay_penalty(self):
        sim = Simulator()
        plan = FaultPlan()
        plan.once("cto", "pcie0", FaultKind.COMPLETION_TIMEOUT, at=0.0)
        link = PcieLink(sim).attach_faults(FaultInjector(sim, plan), "pcie0")

        def transfer():
            yield from link.transfer(4096)
            return sim.now

        with_fault = sim.run_process(transfer())
        clean_sim = Simulator()
        clean_link = PcieLink(clean_sim)

        def clean_transfer():
            yield from clean_link.transfer(4096)
            return clean_sim.now

        clean = clean_sim.run_process(clean_transfer())
        assert link.completion_timeouts == 1
        assert with_fault == pytest.approx(clean + 50e-6)


class TestClusterFailover:
    def test_reads_survive_one_dead_dpu(self):
        """RF=2: with one DPU blackholed, every key keeps a live replica and
        reads keep succeeding via client-driven failover."""
        sim = Simulator()
        network = Network(sim)
        cluster = ReplicatedDpuKvCluster(
            sim, network, dpu_count=3, replication=2, ssd_blocks=16384
        )
        client = FailoverKvClient(sim, network, "client", cluster)
        keys = [f"k{i}".encode() for i in range(12)]

        def scenario():
            for key in keys:
                yield from client.put(key, b"v" * 32)
            cluster.kill(1)
            values = []
            for key in keys:
                value = yield from client.get(key)
                values.append(value)
            return values

        values = sim.run_process(scenario())
        assert all(value == b"v" * 32 for value in values)
        assert client.stats.failed_ops == 0
        # Some keys are headed by the dead DPU; those reads failed over.
        assert client.stats.failovers >= 1
        assert "kv-dpu-1" in client.stats.marked_down

    def test_revive_and_probe_restores_health(self):
        sim = Simulator()
        network = Network(sim)
        cluster = ReplicatedDpuKvCluster(
            sim, network, dpu_count=3, replication=2, ssd_blocks=16384
        )
        client = FailoverKvClient(sim, network, "client", cluster)

        def scenario():
            cluster.kill(1)
            yield from client.probe("kv-dpu-1")
            down = client.health["kv-dpu-1"]
            cluster.revive(1)
            yield from client.probe("kv-dpu-1")
            return down, client.health["kv-dpu-1"]

        down, up = sim.run_process(scenario())
        assert down is False
        assert up is True

    def test_asymmetric_partition_write_lands_but_ack_is_lost(self):
        """One-directional partition: kv-dpu-0 -> client is blackholed
        while client -> kv-dpu-0 still flows. Writes *land* at the head
        replica but their acks vanish, so the client must fail over —
        and must not count the op as lost."""
        sim = Simulator()
        network = Network(sim)
        cluster = ReplicatedDpuKvCluster(
            sim, network, dpu_count=3, replication=2, ssd_blocks=16384
        )
        client = FailoverKvClient(sim, network, "client", cluster)
        key = next(
            k for k in (f"k{i}".encode() for i in range(256))
            if cluster.replicas_of(k)[0] == "kv-dpu-0"
        )
        network.switch.blackhole_pair("kv-dpu-0", "client")

        def scenario():
            yield from client.put(key, b"payload")
            value = yield from client.get(key)
            return value

        value = sim.run_process(scenario())
        # The op succeeded via the tail replica; nothing was lost.
        assert value == b"payload"
        assert client.stats.failed_ops == 0
        assert client.stats.failovers >= 1
        assert "kv-dpu-0" in client.stats.marked_down
        # The request direction was never cut: the head replica applied
        # the write even though the client never saw its ack.
        head_value = sim.run_process(cluster.devices[0].get(key))
        assert head_value == b"payload"
        # Healing the direction makes the head probeable again.
        network.switch.restore_pair("kv-dpu-0", "client")
        assert sim.run_process(client.probe("kv-dpu-0")) is True
        assert client.health["kv-dpu-0"] is True

    def test_replica_chain_is_consecutive(self):
        sim = Simulator()
        cluster = ReplicatedDpuKvCluster(
            sim, Network(sim), dpu_count=4, replication=3, ssd_blocks=16384
        )
        chain = cluster.replicas_of(b"some-key")
        assert len(chain) == 3
        assert len(set(chain)) == 3
        start = cluster.addresses.index(chain[0])
        expected = [
            cluster.addresses[(start + i) % 4] for i in range(3)
        ]
        assert chain == expected


class TestSeuScrub:
    def test_seu_triggers_slot_reconfiguration(self):
        """An injected SEU is repaired by rewriting the slot's bitstream,
        within the ICAP latency model (plus one scrubber poll)."""
        sim = Simulator()
        fabric = Fabric()
        icap = Icap(sim)
        bitstream = Bitstream(
            "accel", FabricResources(luts=1000), size_bytes=1 * 1024 * 1024
        )
        slot = fabric.slots[0]
        sim.run_process(icap.load(slot, bitstream, tenant="t0"))
        loaded_at = sim.now

        hit_at = loaded_at + 5e-3
        plan = FaultPlan(seed=4)
        plan.once("seu-0", "fabric.slot0", FaultKind.SEU, at=hit_at)
        injector = FaultInjector(sim, plan)
        scrubber = ConfigScrubber(
            sim, fabric, icap, injector, poll_interval=1e-3
        )
        sim.run()  # drains once the plan has no pending SEU specs

        assert icap.scrubs == 1
        assert slot.seu_count == 1
        assert slot.occupied and slot.loaded is bitstream
        (index, completed_at, latency), = scrubber.repairs
        assert index == 0
        assert latency == pytest.approx(
            icap.reconfiguration_latency(bitstream)
        )
        # Detection within one poll, repair within the ICAP model.
        assert completed_at - hit_at <= 1e-3 + latency + 1e-9

    def test_fault_free_plan_never_wedges_the_sim(self):
        sim = Simulator()
        fabric = Fabric()
        icap = Icap(sim)
        ConfigScrubber(sim, fabric, icap, FaultInjector(sim, FaultPlan()))
        sim.run()  # returns immediately: nothing pending
        assert icap.scrubs == 0


class TestPowerLossMonitor:
    def test_injected_power_loss_trips_with_twin(self):
        sim = Simulator()
        dpu = HyperionDpu(sim, Network(sim), ssd_blocks=4096)
        sim.run_process(dpu.boot())
        plan = FaultPlan(seed=5)
        plan.once("blackout", "hyperion", FaultKind.POWER_LOSS,
                  at=sim.now + 5e-3)
        injector = FaultInjector(sim, plan)

        with pytest.raises(PowerLossError) as excinfo:
            sim.run_process(dpu.monitor_power(injector, poll_interval=1e-3))
        assert dpu.power_failed
        assert dpu.power_failed_at == pytest.approx(sim.now)
        assert not excinfo.value.twin.booted  # cold spare, ready to re-boot


class TestTieringDegradation:
    def make_policy(self, plan):
        sim = Simulator()
        dram = DramBackend(
            sim, MemoryBank("ddr4-0", 1 << 16, 19.2e9, 80e-9), 1 << 16
        )
        controller = NvmeController(sim, "tier-ssd")
        controller.add_namespace(Namespace(1, 4096))
        qp = controller.create_queue_pair()
        controller.start()
        store = SingleLevelStore(sim, dram, NvmeBackend(sim, controller, qp))
        injector = FaultInjector(sim, plan)
        return sim, store, TieringPolicy(
            store, hot_threshold=5, injector=injector
        )

    def test_promotion_skipped_while_dram_down(self):
        plan = FaultPlan()
        plan.windowed("brownout", "tiering.dram", FaultKind.BACKEND_DOWN,
                      0.0, 10.0)
        sim, store, policy = self.make_policy(plan)
        seg = store.allocate(64, hint=PlacementHint.COLD)
        store.write(seg.oid, b"x" * 64)
        for _ in range(10):
            store.read(seg.oid, 8)
        decisions = policy.run_epoch()
        assert decisions == []
        assert policy.stats.degraded == 1
        assert store.table.lookup(seg.oid).location is SegmentLocation.NVME

    def test_promotion_resumes_after_window(self):
        plan = FaultPlan()
        plan.windowed("brownout", "tiering.dram", FaultKind.BACKEND_DOWN,
                      0.0, 1e-9)
        sim, store, policy = self.make_policy(plan)
        sim.run_process(self.advance(sim, 1e-3))
        seg = store.allocate(64, hint=PlacementHint.COLD)
        store.write(seg.oid, b"x" * 64)
        for _ in range(10):
            store.read(seg.oid, 8)
        policy.run_epoch()
        assert store.table.lookup(seg.oid).location is SegmentLocation.DRAM

    @staticmethod
    def advance(sim, delta):
        yield sim.timeout(delta)
