"""Tests for the hint/access-driven tiering policy (paper §2.1)."""

import pytest

from repro.hw.fpga.fabric import MemoryBank
from repro.hw.nvme import Namespace, NvmeController
from repro.memory import (
    DramBackend,
    NvmeBackend,
    PlacementHint,
    SegmentLocation,
    SingleLevelStore,
)
from repro.memory.tiering import TieringPolicy
from repro.sim import Simulator


def make_store(dram_capacity=1 << 16, with_hbm=False):
    sim = Simulator()
    dram = DramBackend(
        sim, MemoryBank("ddr4-0", dram_capacity, 19.2e9, 80e-9), dram_capacity
    )
    controller = NvmeController(sim, "tier-ssd")
    controller.add_namespace(Namespace(1, 4096))
    qp = controller.create_queue_pair()
    controller.start()
    hbm = None
    if with_hbm:
        hbm = DramBackend(sim, MemoryBank("hbm", 1 << 16, 460e9, 120e-9), 1 << 16)
    return SingleLevelStore(sim, dram, NvmeBackend(sim, controller, qp), hbm=hbm)


class TestPromotion:
    def test_hot_flash_segment_promoted(self):
        store = make_store()
        policy = TieringPolicy(store, hot_threshold=5)
        cold = store.allocate(64, hint=PlacementHint.COLD)
        store.write(cold.oid, b"x" * 64)
        for _ in range(10):
            store.read(cold.oid, 8)
        decisions = policy.run_epoch()
        assert len(decisions) == 1
        assert decisions[0].moved_to is SegmentLocation.DRAM
        assert store.table.lookup(cold.oid).location is SegmentLocation.DRAM
        assert store.read(cold.oid, 3) == b"xxx"  # bytes moved with it

    def test_idle_flash_segment_stays(self):
        store = make_store()
        policy = TieringPolicy(store, hot_threshold=5)
        cold = store.allocate(64, hint=PlacementHint.COLD)
        store.read(cold.oid, 8)  # a single access: below threshold
        assert policy.run_epoch() == []
        assert store.table.lookup(cold.oid).location is SegmentLocation.NVME

    def test_durable_segment_never_promoted(self):
        store = make_store()
        policy = TieringPolicy(store, hot_threshold=1)
        durable = store.allocate(64, durable=True)
        store.write(durable.oid, b"pinned")
        for _ in range(20):
            store.read(durable.oid, 6)
        assert policy.run_epoch() == []
        assert store.table.lookup(durable.oid).location is SegmentLocation.NVME

    def test_promotion_to_hbm_when_preferred(self):
        store = make_store(with_hbm=True)
        policy = TieringPolicy(store, hot_threshold=2, prefer_hbm=True)
        cold = store.allocate(64, hint=PlacementHint.COLD)
        for _ in range(5):
            store.read(cold.oid, 4)
        decisions = policy.run_epoch()
        assert decisions[0].moved_to is SegmentLocation.HBM

    def test_epoch_counters_reset(self):
        """Accesses counted in epoch 1 must not re-trigger in epoch 2."""
        store = make_store()
        policy = TieringPolicy(store, hot_threshold=5)
        a = store.allocate(64, hint=PlacementHint.COLD)
        b = store.allocate(64, hint=PlacementHint.COLD)
        for _ in range(10):
            store.read(a.oid, 4)
        policy.run_epoch()
        # b gets 4 accesses across two epochs: never hot within one.
        for _ in range(4):
            store.read(b.oid, 4)
        policy.run_epoch()
        for _ in range(4):
            store.read(b.oid, 4)
        decisions = policy.run_epoch()
        assert decisions == []

    def test_move_budget_respected(self):
        store = make_store()
        policy = TieringPolicy(store, hot_threshold=1, max_moves_per_epoch=2)
        for _ in range(5):
            segment = store.allocate(32, hint=PlacementHint.COLD)
            store.read(segment.oid, 4)
            store.read(segment.oid, 4)
        assert len(policy.run_epoch()) == 2


class TestDemotion:
    def test_cold_dram_demoted_under_pressure(self):
        store = make_store(dram_capacity=1024)
        policy = TieringPolicy(store, dram_high_watermark=0.5)
        idle = store.allocate(256)
        store.write(idle.oid, b"i" * 256)
        busy = store.allocate(512)
        store.write(busy.oid, b"b" * 512)
        policy.run_epoch()  # epoch 0: counters snapshot
        for _ in range(5):
            store.read(busy.oid, 8)
        decisions = policy.run_epoch()
        demoted = [d for d in decisions
                   if d.moved_to is SegmentLocation.NVME]
        assert [d.oid for d in demoted] == [idle.oid]
        assert store.read(idle.oid, 4) == b"iiii"
        assert store.table.lookup(busy.oid).location is SegmentLocation.DRAM

    def test_no_demotion_without_pressure(self):
        store = make_store(dram_capacity=1 << 16)
        policy = TieringPolicy(store, dram_high_watermark=0.9)
        idle = store.allocate(64)
        policy.run_epoch()
        assert policy.run_epoch() == []
        assert store.table.lookup(idle.oid).location is SegmentLocation.DRAM

    def test_stats_accumulate(self):
        store = make_store()
        policy = TieringPolicy(store, hot_threshold=1)
        hot = store.allocate(64, hint=PlacementHint.COLD)
        store.read(hot.oid, 4)
        store.read(hot.oid, 4)
        policy.run_epoch()
        assert policy.stats.epochs == 1
        assert policy.stats.promotions == 1
        assert len(policy.stats.decisions) == 1
