"""Tests for the traffic plane: Zipf key popularity, workload specs and
arrival curves, the open/closed-loop generators' determinism contract,
the SLO-driven autoscaler's hysteresis, and the hook surfaces it rides
on (``ShardMigrator.on_migration``, ``SloMonitor.on_alert``)."""

import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.common.errors import ConfigurationError
from repro.hw.net import Network
from repro.sharding import ShardedKvClient, ShardedKvCluster, ShardMigrator
from repro.sim import ManualClock, Simulator
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.slo import SloMonitor, SloRule
from repro.telemetry.timeseries import Sampler
from repro.workload import (
    Autoscaler,
    AutoscalerPolicy,
    BurstCurve,
    ClosedLoopTraffic,
    DiurnalCurve,
    OpenLoopTraffic,
    OpMix,
    StepCurve,
    TenantSpec,
    WorkloadSpec,
    ZipfKeys,
    arrival_preview,
)
from repro.workload.generator import _draw_op
from repro.workload.spec import SteadyCurve, parse_quantity


# ---------------------------------------------------------------------------
# Zipf popularity
# ---------------------------------------------------------------------------


def test_zipf_keys_are_bytes_in_rank_order():
    keys = ZipfKeys(32, skew=1.0)
    assert keys.key(0) == b"key-00000"
    assert keys.keys() == [f"key-{i:05d}".encode() for i in range(32)]
    assert keys.span(30, 4) == [
        b"key-00030", b"key-00031", b"key-00000", b"key-00001",
    ]


def test_zipf_hot_mass_grows_with_skew():
    # skew=0 is uniform: the top-8 of 128 carry exactly 8/128 of the
    # mass; each extra unit of skew concentrates strictly more load
    # onto the head.
    uniform = ZipfKeys(128, skew=0.0)
    assert uniform.hot_mass(8) == pytest.approx(8 / 128)
    masses = [ZipfKeys(128, skew=s).hot_mass(8) for s in (0.0, 0.5, 1.0, 1.5)]
    assert masses == sorted(masses)
    assert 0.4 < masses[2] < 0.6  # the documented skew-1.0 sanity band
    assert masses[3] > 0.75


def test_zipf_hot_mass_edges_and_validation():
    keys = ZipfKeys(16)
    assert keys.hot_mass(0) == 0.0
    assert keys.hot_mass(16) == 1.0
    assert keys.hot_mass(99) == 1.0
    with pytest.raises(ConfigurationError):
        ZipfKeys(0)
    with pytest.raises(ConfigurationError):
        ZipfKeys(8, skew=-0.1)


def test_zipf_draws_match_weights_roughly():
    keys = ZipfKeys(128, skew=1.0)
    rng = random.Random("test/zipf-mass")
    draws = [keys.pick_index(rng) for _ in range(4000)]
    observed_hot = sum(1 for d in draws if d < 8) / len(draws)
    assert observed_hot == pytest.approx(keys.hot_mass(8), abs=0.05)


# ---------------------------------------------------------------------------
# specs, mixes, curves
# ---------------------------------------------------------------------------


def test_parse_quantity_suffixes():
    assert parse_quantity("2ms") == pytest.approx(2e-3)
    assert parse_quantity("150us") == pytest.approx(1.5e-4)
    assert parse_quantity("3s") == 3.0
    assert parse_quantity("0.25") == 0.25
    with pytest.raises(ConfigurationError):
        parse_quantity("fast")


def test_op_mix_fractions_must_sum_to_one():
    with pytest.raises(ConfigurationError):
        OpMix(get=0.5, put=0.4)
    with pytest.raises(ConfigurationError):
        OpMix(get=1.2, put=-0.2)
    mix = OpMix(get=0.78, put=0.22)
    assert mix.describe() == "get=0.78,put=0.22"


def test_op_mix_pick_covers_exactly_the_nonzero_kinds():
    mix = OpMix(scan=0.7, analytics=0.3)
    rng = random.Random("test/mix")
    kinds = {mix.pick(rng) for _ in range(200)}
    assert kinds == {"scan", "analytics"}


def test_diurnal_curve_shape():
    curve = DiurnalCurve(trough=1000, peak=5000, period=0.2)
    assert curve.rate(0.0) == pytest.approx(1000)
    assert curve.rate(0.1) == pytest.approx(5000)  # midday
    assert curve.rate(0.2) == pytest.approx(1000)  # next midnight
    assert curve.peak_rate == 5000
    shifted = DiurnalCurve(trough=1000, peak=5000, period=0.2, phase=0.25)
    assert shifted.rate(0.15) == pytest.approx(5000)


def test_burst_and_step_curves():
    burst = BurstCurve(base=100, burst=900, at=0.05, duration=0.01)
    assert burst.rate(0.049) == 100
    assert burst.rate(0.05) == 900
    assert burst.rate(0.0599) == 900
    assert burst.rate(0.061) == 100
    assert burst.peak_rate == 900
    step = StepCurve(steps=((0.0, 200.0), (0.1, 800.0), (0.2, 400.0)))
    assert step.rate(0.05) == 200
    assert step.rate(0.15) == 800
    assert step.rate(0.95) == 400
    assert step.peak_rate == 800


def test_curve_validation():
    with pytest.raises(ConfigurationError):
        DiurnalCurve(trough=0, peak=100, period=1.0)
    with pytest.raises(ConfigurationError):
        DiurnalCurve(trough=200, peak=100, period=1.0)
    with pytest.raises(ConfigurationError):
        BurstCurve(base=100, burst=50, at=0.0, duration=0.1)
    with pytest.raises(ConfigurationError):
        StepCurve(steps=((0.1, 100.0),))  # must start at t=0
    with pytest.raises(ConfigurationError):
        SteadyCurve(steady=0)


SPEC_TEXT = """
# the demo scenario from docs/WORKLOADS.md
keys 64
zipf 1.2
tenant web   mix get=0.78,put=0.22 curve diurnal trough=4000 peak=28000 period=240ms
tenant batch mix scan=0.7,analytics=0.3 curve steady rate=800 scan_span=8 weight=2
"""


def test_workload_spec_parse():
    spec = WorkloadSpec.parse(SPEC_TEXT)
    assert spec.key_count == 64
    assert spec.zipf_skew == 1.2
    web, batch = spec.tenants
    assert web.name == "web" and web.mix.put == 0.22
    assert isinstance(web.curve, DiurnalCurve)
    assert web.curve.period == pytest.approx(0.240)
    assert batch.scan_span == 8 and batch.weight == 2.0
    assert spec.peak_rate() == pytest.approx(28800)
    assert spec.rate(0.120) == pytest.approx(28800)


def test_workload_spec_describe_reparses_identically():
    spec = WorkloadSpec.parse(SPEC_TEXT)
    echoed = WorkloadSpec.parse(spec.describe())
    assert echoed.key_count == spec.key_count
    assert echoed.zipf_skew == spec.zipf_skew
    assert [t.name for t in echoed.tenants] == ["web", "batch"]
    assert echoed.tenants[0].curve == spec.tenants[0].curve
    assert echoed.tenants[0].mix == spec.tenants[0].mix


def test_workload_spec_parse_errors():
    with pytest.raises(ConfigurationError):
        WorkloadSpec.parse("bogus 12")
    with pytest.raises(ConfigurationError):
        WorkloadSpec.parse("tenant a mix fly=1.0 curve steady rate=10")
    with pytest.raises(ConfigurationError):
        WorkloadSpec.parse("tenant a mix get=1.0 curve sinusoid rate=10")
    with pytest.raises(ConfigurationError):
        WorkloadSpec.parse(
            "tenant a mix get=1.0 curve steady rate=10\n"
            "tenant a mix get=1.0 curve steady rate=20"
        )
    with pytest.raises(ConfigurationError):
        WorkloadSpec.parse("")  # no tenants


# ---------------------------------------------------------------------------
# generators: determinism and accounting
# ---------------------------------------------------------------------------

RUN_SPEC = WorkloadSpec.parse(
    """
    keys 64
    zipf 1.0
    tenant web   mix get=0.8,put=0.2 curve steady rate=2000
    tenant batch mix scan=1.0 curve steady rate=200 scan_span=4
    """
)


def _drive(seed, dpus, horizon=0.05):
    sim = Simulator()
    network = Network(sim)
    cluster = ShardedKvCluster(sim, network, dpu_count=dpus)
    clients = {
        tenant.name: ShardedKvClient(sim, cluster, name=f"t-{tenant.name}")
        for tenant in RUN_SPEC.tenants
    }
    traffic = OpenLoopTraffic(sim, RUN_SPEC, clients, seed, horizon)
    traffic.start()
    sim.run(until=horizon + 0.02)
    return traffic


def _arrival_stream(traffic):
    """(started, tenant, kind, op-count) in arrival order — the part of
    an outcome that must be a pure function of the seed."""
    return sorted((s, t, k, n) for s, _, _, n, t, k in traffic.outcomes)


def test_open_loop_stream_is_independent_of_fleet_size():
    # Same seed, different cluster shapes: latencies differ, but the
    # arrival times and drawn operations must be identical — cluster
    # behaviour cannot perturb the offered stream.
    small = _drive(seed=11, dpus=2)
    large = _drive(seed=11, dpus=4)
    assert small.offered == large.offered > 0
    assert _arrival_stream(small) == _arrival_stream(large)
    assert _drive(seed=12, dpus=2).offered != small.offered or \
        _arrival_stream(_drive(seed=12, dpus=2)) != _arrival_stream(small)


def test_open_loop_accounting_consistent():
    traffic = _drive(seed=3, dpus=3)
    assert traffic.offered == len(traffic.outcomes)
    assert traffic.served + traffic.failed == traffic.offered
    assert traffic.failed == 0  # unloaded fleet: nothing sheds
    assert traffic.good <= traffic.served
    assert len(traffic.latencies()) == traffic.served
    assert all(lat >= 0 for lat in traffic.latencies())


def test_open_loop_requires_a_client_per_tenant():
    sim = Simulator()
    network = Network(sim)
    cluster = ShardedKvCluster(sim, network, dpu_count=2)
    with pytest.raises(ValueError, match="batch"):
        OpenLoopTraffic(sim, RUN_SPEC, {"web": object()}, 1, 0.1)


def test_put_keys_are_uniform_while_reads_stay_zipfian():
    # Reads follow the Zipf head; puts spread uniformly so no single
    # DPU's WAL becomes an unsplittable hot shard (generator docstring).
    zipf = ZipfKeys(128, skew=1.0)
    tenant = TenantSpec(name="t", mix=OpMix(get=0.5, put=0.5),
                        curve=SteadyCurve(steady=100))
    rng = random.Random("test/uniform-puts")
    hot = zipf.key(0)
    hits = {"get": 0, "put": 0, "get_n": 0, "put_n": 0}
    for _ in range(6000):
        kind, keys = _draw_op(zipf, tenant, rng)
        hits[f"{kind}_n"] += 1
        hits[kind] += keys[0] == hot
    get_hot = hits["get"] / hits["get_n"]
    put_hot = hits["put"] / hits["put_n"]
    assert get_hot == pytest.approx(zipf.hot_mass(1), abs=0.03)
    assert put_hot == pytest.approx(1 / 128, abs=0.01)


def test_closed_loop_population_split_and_self_limiting():
    sim = Simulator()
    network = Network(sim)
    cluster = ShardedKvCluster(sim, network, dpu_count=2)
    clients = {
        tenant.name: ShardedKvClient(sim, cluster, name=f"t-{tenant.name}")
        for tenant in RUN_SPEC.tenants
    }
    traffic = ClosedLoopTraffic(sim, RUN_SPEC, clients, 9, 0.03,
                                population=6, think=0.001)
    web, batch = RUN_SPEC.tenants
    assert traffic.workers_for(web) == 3  # equal weights -> even split
    assert traffic.workers_for(batch) == 3
    traffic.start()
    sim.run(until=0.05)
    assert traffic.offered == traffic.served + traffic.failed > 0
    # Closed loop: never more outstanding ops than workers.
    assert traffic.offered <= 6 * (0.03 / 0.001) * 2


def test_closed_loop_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        ClosedLoopTraffic(sim, RUN_SPEC, {}, 1, 0.1, population=1)


def test_arrival_preview_replays_the_generator_stream():
    lines = list(arrival_preview(RUN_SPEC, seed=11, limit=40))
    assert len(lines) == 40
    assert all(line.startswith("t=") for line in lines)
    # Merged stream is time-ordered.
    times = [float(line.split("ms", 1)[0][2:]) for line in lines]
    assert times == sorted(times)
    # Pure function of the seed.
    assert lines == list(arrival_preview(RUN_SPEC, seed=11, limit=40))
    assert lines != list(arrival_preview(RUN_SPEC, seed=12, limit=40))


def test_preview_cli_is_byte_identical_across_hash_seeds():
    # The workload CLI prints the spec echo and the arrival/key stream;
    # both must be byte-identical across PYTHONHASHSEED (same contract
    # the E20 report diff in CI enforces end to end).
    src = Path(__file__).resolve().parents[1] / "src"
    outputs = []
    for hashseed in ("0", "1"):
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        done = subprocess.run(
            [sys.executable, "-m", "repro.workload",
             "--seed", "5", "--limit", "16"],
            capture_output=True, text=True, env=env, check=True,
        )
        outputs.append(done.stdout)
    assert outputs[0] == outputs[1]
    assert "tenant web" in outputs[0]


# ---------------------------------------------------------------------------
# autoscaler: policy + hysteresis
# ---------------------------------------------------------------------------


class _StubSampler:
    def __init__(self):
        self.on_sample = []


class _StubMonitor:
    """Feeds the Autoscaler a test-controlled ``firing`` set."""

    def __init__(self):
        self.sampler = _StubSampler()
        self.on_alert = []
        self.firing = []


def _scaler(dpus=3, **policy):
    sim = Simulator()
    network = Network(sim)
    cluster = ShardedKvCluster(sim, network, dpu_count=dpus)
    migrator = ShardMigrator(sim, cluster, segment_keys=8)
    monitor = _StubMonitor()
    scaler = Autoscaler(
        sim, monitor, migrator,
        AutoscalerPolicy(min_dpus=2, max_dpus=4, cooldown=0.01, **policy),
    )
    return sim, monitor, scaler


def test_policy_validation():
    with pytest.raises(ConfigurationError):
        AutoscalerPolicy(min_dpus=0)
    with pytest.raises(ConfigurationError):
        AutoscalerPolicy(min_dpus=4, max_dpus=2)
    with pytest.raises(ConfigurationError):
        AutoscalerPolicy(breach_rule="same", idle_rule="same")
    with pytest.raises(ConfigurationError):
        AutoscalerPolicy(cooldown=-1.0)


def test_fleet_must_start_at_or_above_min():
    sim = Simulator()
    network = Network(sim)
    cluster = ShardedKvCluster(sim, network, dpu_count=1)
    migrator = ShardMigrator(sim, cluster)
    with pytest.raises(ConfigurationError):
        Autoscaler(sim, _StubMonitor(), migrator, AutoscalerPolicy(min_dpus=2))


def test_breach_firing_scales_out_once_per_migration():
    sim, monitor, scaler = _scaler(dpus=3)
    monitor.firing = ["p99-breach"]
    scaler.check(sim.now)
    assert scaler.busy  # decision made, migration in flight
    scaler.check(sim.now)  # busy latch: no double-launch
    sim.run(until=0.2)
    assert scaler.fleet == 4
    assert scaler.scale_outs == 1
    decisions = [e for e in scaler.events if "decide" in e]
    assert decisions == [f"autoscale decide scale-out at={0.0!r} fleet=3"]


def test_scale_out_clamped_at_max_dpus():
    sim, monitor, scaler = _scaler(dpus=4)  # already at max
    monitor.firing = ["p99-breach"]
    scaler.check(sim.now)
    assert not scaler.busy
    assert scaler.events == []


def test_drain_clamped_at_min_dpus():
    sim, monitor, scaler = _scaler(dpus=2)  # already at min
    monitor.firing = ["fleet-idle"]
    scaler.check(sim.now)
    assert not scaler.busy
    assert scaler.fleet == 2


def test_drain_vetoed_while_breach_fires():
    # Both objectives violated at once (a breach during low offered
    # load, e.g. mid-migration): capacity wins, the drain never runs.
    sim, monitor, scaler = _scaler(dpus=4)  # at max: breach can't act
    monitor.firing = ["fleet-idle", "p99-breach"]
    scaler.check(sim.now)
    assert not scaler.busy
    assert scaler.drains == 0


def test_cooldown_defers_the_next_action():
    sim, monitor, scaler = _scaler(dpus=3)
    monitor.firing = ["p99-breach"]
    scaler.check(sim.now)
    sim.run(until=0.2)  # migration completes, cooldown clock starts
    assert scaler.fleet == 4
    finished = float(scaler.events[-1].rsplit("at=", 1)[1].split()[0])
    # Recovery flips straight to idle: within the cooldown the drain
    # must NOT launch (no scale-out/drain flapping across the
    # breach/recover boundary)...
    monitor.firing = ["fleet-idle"]
    scaler.check(finished + 0.005)
    assert not scaler.busy
    assert scaler.drains == 0
    # ...but after the dwell it does.
    scaler.check(finished + 0.011)
    assert scaler.busy
    sim.run(until=sim.now + 0.2)
    assert scaler.fleet == 3
    assert scaler.drains == 1


def test_drain_removes_the_newest_member():
    sim, monitor, scaler = _scaler(dpus=3)
    members_before = list(scaler.cluster.members())
    monitor.firing = ["fleet-idle"]
    scaler.check(sim.now)
    sim.run(until=0.2)
    assert scaler.cluster.members() == members_before[:-1]


def test_dpu_seconds_integrates_fleet_over_time():
    sim, monitor, scaler = _scaler(dpus=3)
    sim.run(until=0.1)
    assert scaler.dpu_seconds() == pytest.approx(3 * 0.1)
    monitor.firing = ["p99-breach"]
    scaler.check(sim.now)
    sim.run(until=0.3)
    # 3 DPUs until the migration completed, 4 after: strictly between
    # the static-3 and static-4 integrals.
    assert 3 * 0.3 < scaler.dpu_seconds() < 4 * 0.3


def test_event_log_bytes_is_canonical():
    sim, monitor, scaler = _scaler(dpus=3)
    monitor.firing = ["p99-breach"]
    scaler.check(sim.now)
    sim.run(until=0.2)
    log = scaler.event_log_bytes()
    assert isinstance(log, bytes)
    assert log.startswith(b"autoscale decide scale-out")
    assert b"autoscale scale-out done node=" in log


# ---------------------------------------------------------------------------
# hook surfaces: migrator completions, SLO alert fan-out
# ---------------------------------------------------------------------------


def test_migrator_on_migration_hook_receives_reports():
    sim = Simulator()
    network = Network(sim)
    cluster = ShardedKvCluster(sim, network, dpu_count=2)
    migrator = ShardMigrator(sim, cluster, segment_keys=8)
    reports = []
    migrator.on_migration.append(reports.append)
    added = sim.run_process(migrator.add_dpu())
    assert [r.node for r in reports] == [added.node]
    assert reports[0].keys_moved == added.keys_moved
    sim.run_process(migrator.remove_dpu(added.node))
    assert len(reports) == 2 and reports[1].node == added.node


def test_slo_monitor_on_alert_hook_sees_firing_and_resolved():
    reg = MetricsRegistry()
    clock = ManualClock()
    sampler = Sampler(reg, clock)
    sampler.watch("lat")
    monitor = SloMonitor(
        sampler, [SloRule.parse("lat p99 < 2.0 for 2s", name="lat-p99")]
    )
    seen = []
    monitor.on_alert.append(
        lambda alert: seen.append((alert.rule, alert.state))
    )
    hist = reg.histogram("lat")
    for _ in range(4):  # sustained violation -> firing
        hist.observe(5.0)
        clock.advance(1.0)
        sampler.sample()
    assert ("lat-p99", "firing") in seen
    for _ in range(2):  # recovery -> resolved
        hist.observe(0.5)
        clock.advance(1.0)
        sampler.sample()
    assert seen[-1] == ("lat-p99", "resolved")
    assert seen == [(a.rule, a.state) for a in monitor.alerts]
