"""Tests for ZNS-backed Corfu log units (ZONE_APPEND placement)."""

import pytest

from repro.hw.net import Network
from repro.hw.nvme import NvmeController, ZonedNamespace
from repro.sim import Simulator
from repro.storage import CorfuClient, CorfuLogUnit, CorfuSequencer
from repro.transport import RpcClient, RpcServer, UdpSocket


def make_zns_log(sim, zones=4, zone_blocks=64):
    net = Network(sim)
    CorfuSequencer(RpcServer(sim, UdpSocket(sim, net.endpoint("sequencer"))))
    controller = NvmeController(sim, "zns-flash")
    controller.add_namespace(ZonedNamespace(1, zones, zone_blocks))
    unit = CorfuLogUnit(
        sim,
        RpcServer(sim, UdpSocket(sim, net.endpoint("unit0"))),
        controller,
        use_zone_append=True,
    )
    client = CorfuClient(
        RpcClient(sim, UdpSocket(sim, net.endpoint("writer"))),
        "sequencer",
        ["unit0"],
    )
    return unit, client, controller


class TestZnsCorfu:
    def test_append_and_read_back(self):
        sim = Simulator()
        unit, client, __ = make_zns_log(sim)

        def scenario():
            p0 = yield from client.append(b"zns entry zero")
            p1 = yield from client.append(b"zns entry one")
            d0 = yield from client.read(p0)
            d1 = yield from client.read(p1)
            return p0, p1, d0, d1

        p0, p1, d0, d1 = sim.run_process(scenario())
        assert (p0, p1) == (0, 1)
        assert d0[:14] == b"zns entry zero"
        assert d1[:13] == b"zns entry one"

    def test_device_assigns_sequential_lbas(self):
        sim = Simulator()
        unit, client, controller = make_zns_log(sim)

        def scenario():
            for i in range(5):
                yield from client.append(f"e{i}".encode())

        sim.run_process(scenario())
        # ZONE_APPEND placed entries at the zone's write pointer in order.
        assert sorted(unit._written.values()) == list(unit._written.values())
        zns = controller.namespaces[1]
        assert zns.zones[0].write_pointer == 5

    def test_write_once_still_enforced(self):
        sim = Simulator()
        unit, client, __ = make_zns_log(sim)

        def scenario():
            position = yield from client.append(b"first")
            yield from client.client.call(
                "unit0", "corfu.write", position, b"again",
                request_size=64, response_size=16,
            )

        with pytest.raises(Exception, match="already written"):
            sim.run_process(scenario())

    def test_rolls_to_next_zone_when_full(self):
        sim = Simulator()
        unit, client, controller = make_zns_log(sim, zones=3, zone_blocks=2)

        def scenario():
            positions = []
            for i in range(5):  # 5 entries > 2 per zone
                position = yield from client.append(f"e{i}".encode())
                positions.append(position)
            data = yield from client.read(positions[4])
            return data

        data = sim.run_process(scenario())
        assert data[:2] == b"e4"
        zns = controller.namespaces[1]
        assert zns.zones[0].write_pointer == 2
        assert zns.zones[1].write_pointer == 2
        assert zns.zones[2].write_pointer == 1
        assert unit._active_zone == 2

    def test_namespace_full(self):
        sim = Simulator()
        unit, client, __ = make_zns_log(sim, zones=1, zone_blocks=2)

        def scenario():
            yield from client.append(b"a")
            yield from client.append(b"b")
            yield from client.append(b"c")  # nowhere left

        with pytest.raises(Exception, match="namespace full"):
            sim.run_process(scenario())
