"""Tests for the HyperExt (ext4-like) file system."""

import pytest

from repro.common.errors import ConfigurationError, ProtocolError
from repro.fs import HyperExtFs
from repro.hw.nvme import Namespace


def make_fs(blocks=1024):
    return HyperExtFs.mkfs(Namespace(1, blocks))


class TestMkfs:
    def test_superblock(self):
        fs = make_fs()
        sb = fs.superblock()
        assert sb["magic"] == 0x48595045
        assert sb["data_start"] == 5

    def test_mount_rejects_garbage(self):
        namespace = Namespace(1, 64)
        fs = HyperExtFs(namespace)
        with pytest.raises(ProtocolError):
            fs.superblock()

    def test_too_small(self):
        with pytest.raises(Exception):
            HyperExtFs.mkfs(Namespace(1, 2))


class TestFiles:
    def test_create_and_read(self):
        fs = make_fs()
        fs.create_file("/hello.txt", b"hello world")
        assert fs.read_file("/hello.txt") == b"hello world"

    def test_multi_block_file(self):
        fs = make_fs()
        data = bytes(range(256)) * 64  # 16 KiB
        fs.create_file("/big.bin", data)
        assert fs.read_file("/big.bin") == data

    def test_empty_file(self):
        fs = make_fs()
        fs.create_file("/empty", b"")
        assert fs.read_file("/empty") == b""

    def test_missing_file(self):
        fs = make_fs()
        with pytest.raises(FileNotFoundError):
            fs.read_file("/ghost")

    def test_duplicate_rejected(self):
        fs = make_fs()
        fs.create_file("/a", b"1")
        with pytest.raises(ConfigurationError):
            fs.create_file("/a", b"2")

    def test_several_files_isolated(self):
        fs = make_fs()
        for i in range(10):
            fs.create_file(f"/file{i}", f"content-{i}".encode())
        for i in range(10):
            assert fs.read_file(f"/file{i}") == f"content-{i}".encode()

    def test_file_extents_physical(self):
        fs = make_fs()
        fs.create_file("/data", b"x" * 10_000)
        extents = fs.file_extents("/data")
        assert sum(e.length for e in extents) == 3  # ceil(10000/4096)
        assert all(e.physical >= fs.superblock()["data_start"] for e in extents)


class TestUpdateAndUnlink:
    def test_write_file_replaces_content(self):
        fs = make_fs()
        fs.create_file("/f", b"version one")
        fs.write_file("/f", b"version two, which is rather longer than one")
        assert fs.read_file("/f") == b"version two, which is rather longer than one"

    def test_write_file_keeps_inode(self):
        fs = make_fs()
        fs.create_file("/f", b"old")
        inode_before = fs.lookup("/f")
        fs.write_file("/f", b"new")
        assert fs.lookup("/f") == inode_before

    def test_write_file_shrink(self):
        fs = make_fs()
        fs.create_file("/f", b"x" * 10_000)
        fs.write_file("/f", b"tiny")
        assert fs.read_file("/f") == b"tiny"

    def test_write_missing_file(self):
        with pytest.raises(FileNotFoundError):
            make_fs().write_file("/ghost", b"x")

    def test_write_file_on_directory_rejected(self):
        fs = make_fs()
        fs.mkdir("/d")
        with pytest.raises(ProtocolError):
            fs.write_file("/d", b"x")

    def test_unlink(self):
        fs = make_fs()
        fs.create_file("/doomed", b"bye")
        fs.unlink("/doomed")
        with pytest.raises(FileNotFoundError):
            fs.read_file("/doomed")
        assert fs.listdir("/") == []

    def test_unlink_frees_inode_for_reuse(self):
        fs = make_fs()
        fs.create_file("/a", b"1")
        freed = fs.lookup("/a")
        fs.unlink("/a")
        fs.create_file("/b", b"2")
        assert fs.lookup("/b") == freed

    def test_unlink_missing(self):
        with pytest.raises(FileNotFoundError):
            make_fs().unlink("/ghost")

    def test_unlink_nonempty_dir_rejected(self):
        fs = make_fs()
        fs.mkdir("/d")
        fs.create_file("/d/child", b"")
        with pytest.raises(ProtocolError, match="not empty"):
            fs.unlink("/d")

    def test_unlink_empty_dir(self):
        fs = make_fs()
        fs.mkdir("/d")
        fs.unlink("/d")
        assert fs.listdir("/") == []


class TestDirectories:
    def test_mkdir_and_nested_files(self):
        fs = make_fs()
        fs.mkdir("/data")
        fs.mkdir("/data/warehouse")
        fs.create_file("/data/warehouse/table.parquet", b"columns")
        assert fs.read_file("/data/warehouse/table.parquet") == b"columns"

    def test_listdir(self):
        fs = make_fs()
        fs.mkdir("/a")
        fs.create_file("/b", b"")
        fs.create_file("/a/c", b"")
        assert fs.listdir("/") == ["a", "b"]
        assert fs.listdir("/a") == ["c"]

    def test_read_dir_as_file_fails(self):
        fs = make_fs()
        fs.mkdir("/d")
        with pytest.raises(ProtocolError):
            fs.read_file("/d")

    def test_missing_parent(self):
        fs = make_fs()
        with pytest.raises(FileNotFoundError):
            fs.create_file("/no/such/file", b"")

    def test_lookup_root(self):
        fs = make_fs()
        assert fs.lookup("/") == 0

    def test_persistence_across_remount(self):
        namespace = Namespace(1, 1024)
        fs = HyperExtFs.mkfs(namespace)
        fs.create_file("/persisted", b"still here")
        remounted = HyperExtFs(namespace)  # no mkfs: read from disk
        assert remounted.read_file("/persisted") == b"still here"
