"""Tests for Verilog code generation across the full opcode surface."""

import pytest

from repro.ebpf import assemble
from repro.ebpf.builder import ProgramBuilder
from repro.ebpf.isa import Instruction, Opcode, Program
from repro.hdl import generate_verilog, schedule_pipeline


def verilog_for(source, **kwargs):
    return generate_verilog(schedule_pipeline(assemble(source), **kwargs))


class TestModuleShape:
    def test_ports(self):
        text = verilog_for("mov r0, 1\nexit")
        for port in ("clk", "rst_n", "s_axis_tdata", "s_axis_tvalid",
                     "s_axis_tready", "m_axis_tdata", "m_axis_tvalid"):
            assert port in text

    def test_metadata_comment(self):
        text = verilog_for("mov r0, 1\nexit")
        assert "depth=" in text
        assert "II=" in text

    def test_stage_register_banks_match_depth(self):
        schedule = schedule_pipeline(assemble("mov r0, 1\nadd r0, r0\nexit"),
                                     fuse=False)
        text = generate_verilog(schedule)
        for index in range(schedule.depth):
            assert f"s{index}_r0" in text

    def test_custom_module_name(self):
        schedule = schedule_pipeline(assemble("mov r0, 1\nexit"))
        text = generate_verilog(schedule, module_name="my_accel")
        assert "module my_accel (" in text


class TestExpressionRendering:
    def test_alu_operators(self):
        text = verilog_for(
            "mov r0, 1\nadd r0, 2\nsub r0, 3\nmul r0, 4\nand r0, 5\n"
            "or r0, 6\nxor r0, 7\nlsh r0, 1\nrsh r0, 1\nexit",
            fuse=False,
        )
        for operator in ("+", "-", "*", "&", "|", "^", "<<", ">>"):
            assert operator in text

    def test_load_store_comments(self):
        text = verilog_for(
            "ldxdw r3, [r1+8]\nstxdw [r10-8], r3\nmov r0, 0\nexit",
            fuse=False,
        )
        assert "load [r1+8]" in text
        assert "store [r10-8]" in text
        assert "mem_rdata" in text
        assert "mem_wdata" in text

    def test_branch_rendering(self):
        text = verilog_for("mov r0, 0\njeq r1, 5, t\nexit\nt:\nexit", fuse=False)
        assert "branch_taken" in text
        assert "==" in text

    def test_call_rendering(self):
        text = verilog_for("call 5\nexit", fuse=False)
        assert "helper_id <= 32'd5" in text
        assert "helper_req" in text

    def test_exit_drives_output(self):
        text = verilog_for("mov r0, 9\nexit")
        assert "out_valid" in text

    def test_lddw_constant(self):
        text = verilog_for("lddw r0, 0xdeadbeef\nexit", fuse=False)
        assert "64'hdeadbeef" in text

    def test_neg_rendering(self):
        text = verilog_for("mov r0, 5\nneg r0\nexit", fuse=False)
        assert "-s" in text  # -sN_r0

    def test_signed_compare_rendering(self):
        text = verilog_for("mov r0, 0\njslt r1, 0, t\nexit\nt:\nexit",
                           fuse=False)
        assert "<" in text

    def test_ja_rendering(self):
        builder = ProgramBuilder("jatest")
        builder.mov("r0", 1).jump("end").label("end").exit()
        text = generate_verilog(schedule_pipeline(builder.build(), fuse=False))
        assert "branch_taken <= 1'b1" in text
