"""Direct tests for the DRAM and NVMe segment backends."""

import pytest

from repro.common.errors import CapacityError
from repro.hw.fpga.fabric import MemoryBank
from repro.hw.nvme import Namespace, NvmeController
from repro.hw.nvme.namespace import LBA_SIZE
from repro.memory import DramBackend, NvmeBackend
from repro.sim import Simulator


def make_backends(sim=None, blocks=64):
    sim = sim if sim is not None else Simulator()
    dram = DramBackend(sim, MemoryBank("ddr4-0", 1 << 16, 19.2e9, 80e-9), 1 << 16)
    controller = NvmeController(sim, "ssd")
    controller.add_namespace(Namespace(1, blocks))
    qp = controller.create_queue_pair()
    controller.start()
    return dram, NvmeBackend(sim, controller, qp), sim


class TestDramBackend:
    def test_roundtrip(self):
        dram, __, ___ = make_backends()
        dram.write(100, b"dram bytes")
        assert dram.read(100, 10) == b"dram bytes"

    def test_zero_fill(self):
        dram, __, ___ = make_backends()
        assert dram.read(0, 4) == b"\x00\x00\x00\x00"

    def test_capacity_enforced(self):
        dram, __, ___ = make_backends()
        with pytest.raises(CapacityError):
            dram.write(dram.capacity - 2, b"overflow")

    def test_timed_read_charges_bank_latency(self):
        dram, __, sim = make_backends()

        def scenario():
            yield from dram.timed_write(0, b"abc")
            data = yield from dram.timed_read(0, 3)
            return data, sim.now

        data, elapsed = sim.run_process(scenario())
        assert data == b"abc"
        assert elapsed >= 2 * dram.bank.access_latency


class TestNvmeBackend:
    def test_sub_block_rmw(self):
        """Writes below LBA granularity must read-modify-write."""
        __, nvme, ___ = make_backends()
        nvme.write(0, b"A" * LBA_SIZE)
        nvme.write(100, b"patch")  # inside the first block
        data = nvme.read(0, LBA_SIZE)
        assert data[100:105] == b"patch"
        assert data[:100] == b"A" * 100
        assert data[105:] == b"A" * (LBA_SIZE - 105)

    def test_cross_block_write(self):
        __, nvme, ___ = make_backends()
        payload = bytes(range(256)) * 40  # 10240 bytes: spans 3 blocks
        nvme.write(LBA_SIZE - 100, payload)
        assert nvme.read(LBA_SIZE - 100, len(payload)) == payload

    def test_empty_read_write(self):
        __, nvme, ___ = make_backends()
        nvme.write(0, b"")
        assert nvme.read(0, 0) == b""

    def test_window_bounds(self):
        __, nvme, ___ = make_backends(blocks=4)
        with pytest.raises(CapacityError):
            nvme.read(nvme.capacity - 2, 10)
        with pytest.raises(CapacityError):
            NvmeBackend(
                nvme.sim, nvme.controller, nvme.qp, base_lba=3, block_count=10
            )

    def test_base_lba_offsets_window(self):
        sim = Simulator()
        controller = NvmeController(sim, "ssd")
        controller.add_namespace(Namespace(1, 64))
        qp = controller.create_queue_pair()
        controller.start()
        low = NvmeBackend(sim, controller, qp, base_lba=0, block_count=8)
        high = NvmeBackend(sim, controller, qp, base_lba=8, block_count=8)
        low.write(0, b"low")
        high.write(0, b"high")
        assert low.read(0, 3) == b"low"
        assert high.read(0, 4) == b"high"
        # They are disjoint windows of the same namespace.
        assert controller.namespaces[1].read_blocks(0, 1)[:3] == b"low"
        assert controller.namespaces[1].read_blocks(8, 1)[:4] == b"high"

    def test_timed_ops_charge_flash(self):
        __, nvme, sim = make_backends()

        def scenario():
            yield from nvme.timed_write(0, b"x" * 100)
            yield from nvme.timed_read(0, 100)
            return sim.now

        elapsed = sim.run_process(scenario())
        timing = nvme.controller.flash.timing
        assert elapsed >= timing.program_latency + timing.read_latency


class TestEvalMain:
    def test_list(self, capsys):
        from repro.eval.__main__ import main

        assert main(["prog", "--list"]) == 0
        out = capsys.readouterr().out
        assert "e12" in out

    def test_unknown_id(self, capsys):
        from repro.eval.__main__ import main

        assert main(["prog", "e99"]) == 2

    def test_run_selected(self, capsys):
        from repro.eval.__main__ import main

        assert main(["prog", "e1"]) == 0
        out = capsys.readouterr().out
        assert "energy efficiency" in out
        assert "230" in out
