"""Tests for the evaluation harness (small configurations)."""

import pytest

from repro.eval.analytics import format_analytics, run_analytics
from repro.eval.compiler import format_compiler, run_compiler
from repro.eval.corfu import format_corfu, run_corfu
from repro.eval.efficiency import format_efficiency, run_efficiency
from repro.eval.fail2ban import format_fail2ban, run_fail2ban
from repro.eval.figures import format_figures, run_figures
from repro.eval.kvssd import format_kvssd, run_kvssd
from repro.eval.loadbalancer import format_loadbalancer, run_loadbalancer
from repro.eval.pointer_chase import format_pointer_chase, run_pointer_chase
from repro.eval.predictability import format_predictability, run_predictability
from repro.eval.recovery import format_recovery, run_recovery
from repro.eval.reconfig import format_reconfig, run_reconfig
from repro.eval.report import Table
from repro.eval.table1 import only_complete_category, run_table1, table1_categories
from repro.eval.translation import format_translation, run_translation


class TestReportTable:
    def test_render(self):
        table = Table("Demo", ["a", "b"])
        table.add_row(1, 2.5)
        table.add_row("x", True)
        text = table.render()
        assert "Demo" in text
        assert "2.50" in text
        assert "yes" in text

    def test_wrong_width(self):
        with pytest.raises(ValueError):
            Table("t", ["a"]).add_row(1, 2)


class TestTable1:
    def test_seven_rows(self):
        assert len(table1_categories()) == 7

    def test_hyperion_is_only_complete(self):
        assert only_complete_category() == "Hyperion (this work)"

    def test_every_surveyed_category_misses_something(self):
        for category in table1_categories():
            if "Hyperion" not in category.name:
                assert category.missing_legs(), category.name

    def test_commercial_dpus_cpu_centric(self):
        dpus = next(c for c in table1_categories() if "Commercial" in c.name)
        assert "CPU mediates" in "; ".join(dpus.missing_legs())

    def test_render(self):
        text = run_table1().render()
        assert "GPU-with-network" in text
        assert "Hyperion (this work)" in text


class TestFiguresAndEfficiency:
    def test_figures_ok(self):
        report = run_figures()
        assert report.ok, report.mismatches
        assert "nvme-host-ip" in format_figures(report)

    def test_efficiency_bands(self):
        report = run_efficiency()
        assert report.energy_in_band
        assert report.volume_in_band
        assert report.hyperion_tdp_w == pytest.approx(230.0)
        assert "4-8x" in format_efficiency(report)


class TestPointerChaseShape:
    def test_offload_wins_and_scales_with_depth(self):
        points = run_pointer_chase(key_counts=(16, 1024), propagations=(10e-6,))
        shallow, deep = points
        assert deep.tree_height > shallow.tree_height
        assert deep.speedup > shallow.speedup
        assert all(p.offload_latency < p.client_side_latency for p in points)

    def test_client_rtts_track_height(self):
        points = run_pointer_chase(key_counts=(256,), propagations=(1e-6,))
        assert points[0].client_side_rtts == points[0].tree_height + 1

    def test_format(self):
        text = format_pointer_chase(
            run_pointer_chase(key_counts=(16,), propagations=(1e-6,))
        )
        assert "speedup" in text


class TestFail2BanShape:
    def test_dpu_wins_with_identical_verdicts(self):
        dpu, base = run_fail2ban(packet_count=300)
        assert dpu.banned == base.banned
        assert dpu.total_time < base.total_time
        assert "speedup" in format_fail2ban([dpu, base])


class TestLoadBalancerShape:
    def test_overflow_prevents_breakage(self):
        overflow, drop = run_loadbalancer(packet_count=1000, flow_count=300,
                                          dram_entries=32)
        assert overflow.broken_connections == 0
        assert drop.broken_connections > 0
        assert overflow.cold_hits > 0
        assert drop.flash_state_bytes == 0
        assert "overflow" in format_loadbalancer([overflow, drop])


class TestTranslationShape:
    def test_gap_grows_with_working_set(self):
        small, large = run_translation(
            working_sets=(1 << 20, 128 << 20), accesses=4000
        )
        assert large.segment_advantage > small.segment_advantage
        assert large.tlb_hit_rate < small.tlb_hit_rate
        assert "advantage" in format_translation([small, large])


class TestPredictabilityShape:
    def test_pipeline_has_zero_jitter(self):
        hw, cpu = run_predictability(runs=200)
        # effectively zero: only float rounding noise, ~14 orders below ns
        assert hw.stddev_latency < 1e-15
        assert hw.jitter_ratio == pytest.approx(1.0)
        assert cpu.stddev_latency > 0
        assert cpu.jitter_ratio > 1.0
        assert hw.energy_per_op_j < cpu.energy_per_op_j
        assert "p99/p50" in format_predictability([hw, cpu])


class TestReconfigShape:
    def test_latencies_in_band(self):
        report = run_reconfig(tenants=6)
        assert report.granted == 6
        assert report.in_band_fraction == 1.0
        assert 10e-3 <= report.mean_reconfig <= 100e-3
        assert "ICAP" in format_reconfig(report)


class TestCorfuShape:
    def test_throughput_scales_and_failover_works(self):
        points = run_corfu(client_counts=(1, 4), appends_per_client=10)
        assert points[1].throughput > points[0].throughput * 2
        assert all(p.failover_reads_ok for p in points)
        assert "appends/s" in format_corfu(points)


class TestAnalyticsShape:
    def test_dpu_advantage_grows_with_size(self):
        small, large = run_analytics(row_counts=(1000, 50000))
        assert small.answers_agree and large.answers_agree
        assert large.speedup > small.speedup
        assert large.speedup > 1.5
        assert "agree" in format_analytics([small, large])


class TestCompilerShape:
    def test_verifier_splits_corpus_correctly(self):
        rows = run_compiler()
        for row in rows:
            assert row.verified == row.expected_ok, row.name

    def test_fusion_never_hurts_depth_or_ffs(self):
        for row in run_compiler():
            if row.verified:
                assert row.depth_fused <= row.depth_unfused
                assert row.ffs_fused <= row.ffs_unfused

    def test_fusion_helps_somewhere(self):
        rows = [r for r in run_compiler() if r.verified]
        assert any(r.depth_fused < r.depth_unfused for r in rows)
        assert "fusion" in format_compiler(rows)


class TestRecoveryShape:
    def test_recovery_correct_at_all_sizes(self):
        points = run_recovery(durable_counts=(5, 50))
        for p in points:
            assert p.recovered_segments == p.durable_segments
            assert p.data_intact
            assert p.ephemeral_gone
        assert points[1].persist_bytes > points[0].persist_bytes
        assert "persistence" in format_recovery(points)


class TestKvssdShape:
    def test_transport_ordering(self):
        points = {p.transport: p for p in run_kvssd(operations=30)}
        assert points["udp"].mean_get < points["tcp"].mean_get
        assert points["homa"].mean_get < points["tcp"].mean_get
        assert points["rdma(read)"].mean_get < points["udp"].mean_get
        assert "transport" in format_kvssd(list(points.values()))
