"""Unit and property tests for 128-bit ObjectIds."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.ids import BOOT_AREA_ID, ObjectId


class TestObjectId:
    def test_range_enforced(self):
        with pytest.raises(ValueError):
            ObjectId(-1)
        with pytest.raises(ValueError):
            ObjectId(1 << 128)

    def test_boundaries_accepted(self):
        assert ObjectId(0).value == 0
        assert ObjectId((1 << 128) - 1).value == (1 << 128) - 1

    def test_equality_and_hash(self):
        a, b = ObjectId(42), ObjectId(42)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_ordering(self):
        assert ObjectId(1) < ObjectId(2) < ObjectId(3)

    def test_random_uses_rng(self):
        rng1 = random.Random(7)
        rng2 = random.Random(7)
        assert ObjectId.random(rng1) == ObjectId.random(rng2)

    def test_str_is_32_hex_chars(self):
        assert str(ObjectId(0xDEADBEEF)) == f"{0xDEADBEEF:032x}"

    def test_boot_area_is_one(self):
        assert BOOT_AREA_ID.value == 1

    def test_from_bytes_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            ObjectId.from_bytes(b"\x00" * 15)


@given(st.integers(min_value=0, max_value=(1 << 128) - 1))
def test_bytes_roundtrip(value):
    oid = ObjectId(value)
    assert ObjectId.from_bytes(oid.to_bytes()) == oid


@given(st.integers(min_value=0, max_value=(1 << 128) - 1))
def test_str_roundtrip(value):
    oid = ObjectId(value)
    assert ObjectId(int(str(oid), 16)) == oid
