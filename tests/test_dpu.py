"""Tests for the composed Hyperion DPU, schematic, OS-shell, and tenancy."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.ids import ObjectId
from repro.dpu import (
    HyperionDpu,
    OsShell,
    SlotScheduler,
    build_schematic,
    schematic_table,
)
from repro.ebpf import assemble
from repro.hdl import compile_program
from repro.hw.fpga.bitstream import Bitstream, BitstreamAuthority
from repro.hw.fpga.resources import FabricResources
from repro.hw.net import Network
from repro.sim import Simulator
from repro.transport import RpcClient, RpcServer, UdpSocket


def booted_dpu(sim, net=None, **kwargs):
    net = net if net is not None else Network(sim)
    dpu = HyperionDpu(sim, net, ssd_blocks=8192, **kwargs)
    sim.run_process(dpu.boot())
    return dpu, net


class TestSchematic:
    def test_figure2_inventory(self):
        s = build_schematic()
        assert len(s.nodes_of_kind("accelerator-slot")) == 5
        assert len(s.nodes_of_kind("ssd")) == 4
        assert len(s.nodes_of_kind("pcie-bridge")) == 4
        assert len(s.nodes_of_kind("network-port")) == 2

    def test_network_reaches_storage(self):
        """The end-to-end hardware path: QSFP -> slots -> NVMe, no CPU."""
        s = build_schematic()
        reachable = s.reachable_from("qsfp0")
        assert "ehdl-slot-0" in reachable
        assert "nvme-ssd-3" in reachable

    def test_config_engine_reaches_all_slots(self):
        s = build_schematic()
        reachable = s.reachable_from("runtime-config-engine")
        for i in range(5):
            assert f"ehdl-slot-{i}" in reachable

    def test_table_rendering(self):
        text = schematic_table(build_schematic())
        assert "nvme-host-ip" in text
        assert "qsfp0" in text

    def test_duplicate_node_rejected(self):
        s = build_schematic()
        with pytest.raises(ConfigurationError):
            s.add("qsfp0", "network-port")


class TestBoot:
    def test_boot_report(self):
        sim = Simulator()
        dpu, __ = booted_dpu(sim)
        report = dpu.boot_report
        assert report.jtag_ok
        assert len(report.enumerated_ssds) == 4
        assert report.boot_time >= 0.16  # JTAG + shell config
        assert dpu.booted

    def test_double_boot_rejected(self):
        sim = Simulator()
        dpu, __ = booted_dpu(sim)
        with pytest.raises(ConfigurationError):
            sim.run_process(dpu.boot())

    def test_store_usable_after_boot(self):
        sim = Simulator()
        dpu, __ = booted_dpu(sim)
        segment = dpu.store.allocate(128, durable=True)
        dpu.store.write(segment.oid, b"via the DPU store")
        assert dpu.store.read(segment.oid, 17) == b"via the DPU store"

    def test_axi_routes_both_windows(self):
        sim = Simulator()
        dpu, __ = booted_dpu(sim)
        from repro.memory.store import DRAM_WINDOW_BASE, NVME_WINDOW_BASE
        assert dpu.axi.route(DRAM_WINDOW_BASE)[0].name == "fpga-dram"
        assert dpu.axi.route(NVME_WINDOW_BASE)[0].name == "nvme-bar-window"

    def test_inventory(self):
        sim = Simulator()
        dpu, __ = booted_dpu(sim)
        inventory = dpu.inventory()
        assert inventory["nvme_ssds"] == 4
        assert inventory["qsfp_ports"] == 2
        assert inventory["tdp_watts"] == pytest.approx(230.0)


class TestPowerCycle:
    def test_durable_segments_survive(self):
        sim = Simulator()
        dpu, __ = booted_dpu(sim)
        segment = dpu.store.allocate(64, durable=True, oid=ObjectId(1234))
        dpu.store.write(segment.oid, b"must survive")
        ephemeral = dpu.store.allocate(64)
        dpu.store.write(ephemeral.oid, b"will vanish")
        dpu.store.persist_table()

        twin = dpu.power_cycle()
        report = sim.run_process(twin.boot(recover_store=True))
        assert report.segment_table_recovered
        assert report.recovered_segments == 1
        assert twin.store.read(ObjectId(1234), 12) == b"must survive"
        assert ephemeral.oid not in twin.store.table


class TestOsShell:
    def make_shell(self, sim):
        net = Network(sim)
        dpu, __ = booted_dpu(sim, net=net)
        authority = BitstreamAuthority(b"fleet-key")
        shell_server = RpcServer(sim, UdpSocket(sim, net.endpoint("shell")))
        shell = OsShell(sim, dpu, shell_server, authority)
        client = RpcClient(sim, UdpSocket(sim, net.endpoint("operator")))
        return dpu, shell, client, authority

    def compiled_bitstream(self, name="accel"):
        return compile_program(
            assemble("mov r0, 1\nexit", name=name)
        ).to_bitstream()

    def test_load_signed_bitstream(self):
        sim = Simulator()
        dpu, shell, client, authority = self.make_shell(sim)
        signed = authority.sign(self.compiled_bitstream())

        def scenario():
            slot = yield from client.call(
                "shell", "shell.load", signed, "tenant-a",
                request_size=signed.bitstream.size_bytes, response_size=16,
            )
            return slot

        slot = sim.run_process(scenario())
        assert dpu.fabric.slots[slot].loaded.name == "accel"
        assert dpu.fabric.slots[slot].tenant == "tenant-a"
        assert shell.loads_accepted == 1

    def test_bad_signature_rejected(self):
        sim = Simulator()
        dpu, shell, client, __ = self.make_shell(sim)
        rogue = BitstreamAuthority(b"wrong-key").sign(self.compiled_bitstream())

        def scenario():
            yield from client.call(
                "shell", "shell.load", rogue, "tenant-x",
                request_size=1024, response_size=16,
            )

        with pytest.raises(Exception, match="signature"):
            sim.run_process(scenario())
        assert shell.loads_rejected == 1

    def test_unencrypted_rejected(self):
        sim = Simulator()
        __, shell, client, authority = self.make_shell(sim)
        plain = authority.sign(self.compiled_bitstream(), encrypt=False)

        def scenario():
            yield from client.call(
                "shell", "shell.load", plain, "t",
                request_size=1024, response_size=16,
            )

        with pytest.raises(Exception, match="encrypted"):
            sim.run_process(scenario())

    def test_unload_wrong_tenant_rejected(self):
        sim = Simulator()
        dpu, __, client, authority = self.make_shell(sim)
        signed = authority.sign(self.compiled_bitstream())

        def scenario():
            slot = yield from client.call(
                "shell", "shell.load", signed, "owner",
                request_size=1024, response_size=16,
            )
            yield from client.call(
                "shell", "shell.unload", slot, "thief",
                request_size=64, response_size=16,
            )

        with pytest.raises(Exception, match="another tenant"):
            sim.run_process(scenario())

    def test_slots_listing_and_persist(self):
        sim = Simulator()
        dpu, __, client, authority = self.make_shell(sim)
        dpu.store.allocate(64, durable=True)

        def scenario():
            slots = yield from client.call("shell", "shell.slots")
            written = yield from client.call("shell", "shell.persist")
            return slots, written

        slots, written = sim.run_process(scenario())
        assert len(slots) == 5
        assert all(not entry["occupied"] for entry in slots)
        assert written == 16 + 40


class TestTenancy:
    def make_scheduler(self, sim, num_slots=2, **kwargs):
        dpu, __ = booted_dpu(sim, num_slots=num_slots)
        return dpu, SlotScheduler(sim, dpu.fabric, dpu.icap, **kwargs)

    def bitstream(self, name):
        return Bitstream(name, FabricResources(luts=100), size_bytes=16 * 1024 * 1024)

    def test_grants_up_to_capacity(self):
        sim = Simulator()
        dpu, scheduler = self.make_scheduler(sim, num_slots=2)
        requests = [scheduler.submit(f"t{i}", self.bitstream(f"b{i}")) for i in range(2)]
        sim.run()
        assert all(r.granted_at is not None for r in requests)
        assert scheduler.utilization() == 1.0

    def test_queueing_when_full(self):
        sim = Simulator()
        dpu, scheduler = self.make_scheduler(sim, num_slots=1)
        first = scheduler.submit("a", self.bitstream("a"))
        second = scheduler.submit("b", self.bitstream("b"))
        sim.run()
        assert first.granted_at is not None
        assert second.granted_at is None  # still waiting
        scheduler.release(first.slot_index)
        sim.run()
        assert second.granted_at is not None
        assert second.wait_time > 0

    def test_grant_latency_in_reconfig_band(self):
        """Slot multiplexing happens at the paper's 10-100 ms timescale."""
        sim = Simulator()
        dpu, scheduler = self.make_scheduler(sim, num_slots=1)
        request = scheduler.submit("t", self.bitstream("b"))
        sim.run()
        assert 10e-3 <= request.wait_time <= 100e-3

    def test_preemption_evicts(self):
        sim = Simulator()
        dpu, scheduler = self.make_scheduler(sim, num_slots=1, allow_preemption=True)
        first = scheduler.submit("a", self.bitstream("a"))
        second = scheduler.submit("b", self.bitstream("b"))
        sim.run()
        assert second.granted_at is not None
        assert dpu.fabric.slots[0].loaded.name == "b"
