"""Tests for the §2.4 application workloads."""

import pytest

from repro.apps import (
    AnalyticsQuery,
    Fail2BanBaseline,
    Fail2BanDpu,
    LoadBalancer,
    RemoteTreeService,
    build_fail2ban_program,
    client_side_lookup,
    cpu_scan,
    dpu_scan,
    generate_connections,
    generate_packet_trace,
    offloaded_lookup,
)
from repro.apps.fail2ban import BAN_MAP_FD, VERDICT_BAN, VERDICT_PASS, PacketRecord
from repro.baseline import CpuCentricDatapath, CpuModel, OsModel
from repro.dpu import HyperionDpu
from repro.ebpf import BpfVm, HashMap, Verifier
from repro.formats import RecordBatch, Schema, write_table
from repro.fs import HyperExtFs
from repro.hw.net import Network
from repro.hw.nvme import Namespace, NvmeController
from repro.sim import Simulator
from repro.transport import RpcClient, RpcServer, UdpSocket


def booted_dpu(sim, net=None):
    net = net if net is not None else Network(sim)
    dpu = HyperionDpu(sim, net, ssd_blocks=16384)
    sim.run_process(dpu.boot())
    return dpu


class TestFail2BanProgram:
    def test_passes_verifier(self):
        report = Verifier().verify(build_fail2ban_program())
        assert report.ok, report.reject_reason()

    def test_semantics_in_vm(self):
        program = build_fail2ban_program(threshold=2)
        vm = BpfVm(program, maps={BAN_MAP_FD: HashMap(8, 8, 1024)})
        attacker = PacketRecord(src_ip=99, auth_failed=True, size=100)
        verdicts = [vm.run(attacker.context()).return_value for _ in range(5)]
        # Counts 1,2 pass; from count 3 (> threshold 2) the source is banned.
        assert verdicts[:2] == [VERDICT_PASS, VERDICT_PASS]
        assert set(verdicts[2:]) == {VERDICT_BAN}

    def test_benign_source_never_banned(self):
        program = build_fail2ban_program(threshold=2)
        vm = BpfVm(program, maps={BAN_MAP_FD: HashMap(8, 8, 1024)})
        benign = PacketRecord(src_ip=5, auth_failed=False, size=100)
        for _ in range(20):
            assert vm.run(benign.context()).return_value == VERDICT_PASS


class TestFail2BanDeployments:
    def test_dpu_bans_attackers(self):
        sim = Simulator()
        dpu = booted_dpu(sim)
        app = Fail2BanDpu(sim, dpu, threshold=2)
        attacker = PacketRecord(src_ip=7, auth_failed=True, size=256)

        def scenario():
            verdicts = []
            for _ in range(5):
                verdict = yield from app.process_packet(attacker)
                verdicts.append(verdict)
            return verdicts

        verdicts = sim.run_process(scenario())
        assert VERDICT_BAN in verdicts
        assert app.banned_packets >= 1
        assert 7 in app.banned_sources()

    def test_dpu_persists_log(self):
        sim = Simulator()
        dpu = booted_dpu(sim)
        app = Fail2BanDpu(sim, dpu)

        def scenario():
            for packet in generate_packet_trace(300):  # >256 records/block
                yield from app.process_packet(packet)
            yield from app.flush_log()

        sim.run_process(scenario())
        log_namespace = app._log_ssd.namespaces[1]
        assert log_namespace.written_block_count() >= 2

    def test_baseline_agrees_with_dpu(self):
        trace = generate_packet_trace(200, seed=3)

        def run_dpu():
            sim = Simulator()
            app = Fail2BanDpu(sim, booted_dpu(sim), threshold=3)
            started = sim.now  # exclude one-time boot

            def scenario():
                for packet in trace:
                    yield from app.process_packet(packet)

            sim.run_process(scenario())
            return app.banned_packets, sim.now - started

        def run_baseline():
            sim = Simulator()
            cpu = CpuModel(sim)
            ssd = NvmeController(sim, "ssd")
            ssd.add_namespace(Namespace(1, 16384))
            path = CpuCentricDatapath(sim, cpu, OsModel(sim, cpu), ssd=ssd)
            app = Fail2BanBaseline(sim, path, threshold=3)

            def scenario():
                for packet in trace:
                    yield from app.process_packet(packet)

            sim.run_process(scenario())
            return app.banned_packets, sim.now

        dpu_banned, dpu_time = run_dpu()
        base_banned, base_time = run_baseline()
        assert dpu_banned == base_banned  # identical verdicts
        assert dpu_time < base_time  # the DPU path is faster end-to-end


class TestLoadBalancer:
    def test_flows_stick_with_overflow(self):
        sim = Simulator()
        dpu = booted_dpu(sim)
        lb = LoadBalancer(sim, dpu, dram_table_entries=16, policy="overflow")
        trace = generate_connections(2000, flow_count=200)

        def scenario():
            assignments = {}
            for packet in trace:
                backend = yield from lb.handle_packet(packet)
                if packet.flow_id in assignments:
                    assert assignments[packet.flow_id] == backend
                assignments[packet.flow_id] = backend

        sim.run_process(scenario())
        assert lb.broken_connections == 0
        assert lb.cold_hits > 0  # the overflow path was exercised

    def test_drop_policy_breaks_connections(self):
        sim = Simulator()
        dpu = booted_dpu(sim)
        lb = LoadBalancer(sim, dpu, dram_table_entries=16, policy="drop")
        trace = generate_connections(2000, flow_count=200)

        def scenario():
            for packet in trace:
                yield from lb.handle_packet(packet)

        sim.run_process(scenario())
        assert lb.broken_connections > 0

    def test_hot_flows_mostly_hit_dram(self):
        sim = Simulator()
        dpu = booted_dpu(sim)
        lb = LoadBalancer(sim, dpu, dram_table_entries=64, policy="overflow")
        trace = generate_connections(3000, flow_count=500, hot_probability=0.9)

        def scenario():
            for packet in trace:
                yield from lb.handle_packet(packet)

        sim.run_process(scenario())
        assert lb.hot_hits / lb.packets > 0.5

    def test_state_accumulates_on_flash(self):
        sim = Simulator()
        dpu = booted_dpu(sim)
        lb = LoadBalancer(sim, dpu, dram_table_entries=8, policy="overflow")

        def scenario():
            for packet in generate_connections(500, flow_count=300,
                                               hot_probability=0.1):
                yield from lb.handle_packet(packet)

        sim.run_process(scenario())
        assert lb.state_bytes_on_flash() > 0

    def test_unknown_policy(self):
        sim = Simulator()
        dpu = booted_dpu(sim)
        with pytest.raises(ValueError):
            LoadBalancer(sim, dpu, policy="magic")


class TestPointerChase:
    def setup_service(self, sim, keys=500):
        net = Network(sim)
        server = RpcServer(sim, UdpSocket(sim, net.endpoint("tree-dpu")))
        service = RemoteTreeService(sim, server, order=4)
        service.populate(keys)
        client = RpcClient(sim, UdpSocket(sim, net.endpoint("client")))
        return service, client

    def test_both_paths_return_same_value(self):
        sim = Simulator()
        service, client = self.setup_service(sim)

        def scenario():
            via_chase, chase_rtts = yield from client_side_lookup(
                client, "tree-dpu", 123
            )
            via_offload, offload_rtts = yield from offloaded_lookup(
                client, "tree-dpu", 123
            )
            return via_chase, chase_rtts, via_offload, offload_rtts

        chase_value, chase_rtts, offload_value, offload_rtts = sim.run_process(
            scenario()
        )
        assert chase_value == offload_value == "value-123"
        assert offload_rtts == 1
        assert chase_rtts == service.tree.height + 1

    def test_offload_is_faster(self):
        sim = Simulator()
        service, client = self.setup_service(sim)

        def timed(fn, key):
            start = sim.now

            def proc():
                yield from fn(client, "tree-dpu", key)
                return sim.now - start

            return sim.run_process(proc())

        chase_time = timed(client_side_lookup, 250)
        offload_time = timed(offloaded_lookup, 250)
        assert offload_time < chase_time / 2

    def test_missing_key(self):
        sim = Simulator()
        service, client = self.setup_service(sim, keys=10)

        def scenario():
            value, __ = yield from client_side_lookup(client, "tree-dpu", 9999)
            return value

        assert sim.run_process(scenario()) is None


class TestAnalytics:
    def make_dataset(self, rows=500):
        schema = Schema.of(id="int64", amount="float64", region="string")
        batch = RecordBatch.from_rows(
            schema,
            [(i, float(i), ["eu", "us"][i % 2]) for i in range(rows)],
        )
        return write_table(batch, rows_per_group=100)

    def query(self):
        return AnalyticsQuery(
            path="/data/sales.parquet",
            project=["amount"],
            aggregate_column="amount",
            aggregate="sum",
            predicate_column="id",
            predicate_low=100,
            predicate_high=199,
        )

    def test_dpu_and_cpu_agree(self):
        sim = Simulator()
        dpu = booted_dpu(sim)
        fs = HyperExtFs.mkfs(dpu.ssds[0].namespaces[1])
        fs.mkdir("/data")
        fs.create_file("/data/sales.parquet", self.make_dataset())

        def scenario():
            dpu_result = yield from dpu_scan(sim, dpu, fs, self.query())
            cpu = CpuModel(sim)
            cpu_result = yield from cpu_scan(
                sim, cpu, OsModel(sim, cpu), fs, self.query()
            )
            return dpu_result, cpu_result

        dpu_result, cpu_result = sim.run_process(scenario())
        expected = float(sum(range(100, 200)))
        assert dpu_result.value == pytest.approx(expected)
        assert cpu_result.value == pytest.approx(expected)

    def test_dpu_moves_fewer_bytes(self):
        """Projection + pushdown at the device vs whole-file host read."""
        sim = Simulator()
        dpu = booted_dpu(sim)
        fs = HyperExtFs.mkfs(dpu.ssds[0].namespaces[1])
        fs.mkdir("/data")
        fs.create_file("/data/sales.parquet", self.make_dataset(2000))

        def scenario():
            dpu_result = yield from dpu_scan(sim, dpu, fs, self.query())
            cpu = CpuModel(sim)
            cpu_result = yield from cpu_scan(
                sim, cpu, OsModel(sim, cpu), fs, self.query()
            )
            return dpu_result, cpu_result

        dpu_result, cpu_result = sim.run_process(scenario())
        assert dpu_result.rows_scanned <= cpu_result.rows_scanned
