"""Tests for the Ethernet substrate."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import gbps
from repro.hw.net import Frame, Link, Network, NetworkPort
from repro.sim import Simulator


class TestFrame:
    def test_wire_size_includes_overhead(self):
        frame = Frame("a", "b", payload=None, payload_size=1500)
        assert frame.wire_size == 1538

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Frame("a", "b", None, payload_size=-1)

    def test_frame_ids_unique(self):
        a = Frame("a", "b", None, 10)
        b = Frame("a", "b", None, 10)
        assert a.frame_id != b.frame_id


class TestLink:
    def test_serialization_delay_100g(self):
        sim = Simulator()
        link = Link(sim, bandwidth=gbps(100), propagation=0)
        frame = Frame("a", "b", None, payload_size=1500 - 38)
        assert link.serialization_delay(frame) == pytest.approx(1500 / gbps(100))

    def test_transmit_delivers(self):
        sim = Simulator()
        link = Link(sim, bandwidth=gbps(100), propagation=1e-6)

        def scenario():
            yield from link.transmit(Frame("a", "b", "hello", 100))
            got = yield link.receive()
            return got.payload, sim.now

        payload, now = sim.run_process(scenario())
        assert payload == "hello"
        assert now == pytest.approx(138 / gbps(100) + 1e-6)

    def test_back_to_back_serializes(self):
        sim = Simulator()
        link = Link(sim, bandwidth=gbps(100), propagation=0)
        arrivals = []

        def sender():
            for i in range(3):
                sim.process(link.transmit(Frame("a", "b", i, 1462)))
            if False:
                yield

        def receiver():
            for _ in range(3):
                yield link.receive()
                arrivals.append(sim.now)

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        gap = 1500 / gbps(100)
        assert arrivals[1] - arrivals[0] == pytest.approx(gap)
        assert arrivals[2] - arrivals[1] == pytest.approx(gap)

    def test_loss_function_drops(self):
        sim = Simulator()
        link = Link(sim, loss_fn=lambda f: True)

        def scenario():
            yield from link.transmit(Frame("a", "b", None, 100))

        sim.run_process(scenario())
        assert link.frames_dropped == 1
        assert len(link.rx_queue) == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Link(Simulator(), bandwidth=0)
        with pytest.raises(ValueError):
            Link(Simulator(), propagation=-1)

    def test_stats_expose_drops(self):
        sim = Simulator()
        drops = [True, False]
        link = Link(sim, loss_fn=lambda f: drops.pop(0))

        def scenario():
            yield from link.transmit(Frame("a", "b", None, 100))
            yield from link.transmit(Frame("a", "b", None, 100))

        sim.run_process(scenario())
        stats = link.stats()
        assert stats.frames_sent == 2
        assert stats.frames_dropped == 1
        assert stats.frames_corrupted == 0
        assert stats.frames_delivered == 1
        assert stats.bytes_sent == 2 * 138


class TestNetwork:
    def test_two_endpoints_roundtrip(self):
        sim = Simulator()
        net = Network(sim)
        client = net.endpoint("client")
        server = net.endpoint("server")

        def server_loop():
            request = yield server.receive()
            yield from server.send(
                Frame("server", request.src, f"re:{request.payload}", 64)
            )

        def client_req():
            yield from client.send(Frame("client", "server", "ping", 64))
            reply = yield client.receive()
            return reply.payload, sim.now

        sim.process(server_loop())
        proc = sim.process(client_req())
        sim.run()
        payload, rtt = proc.value
        assert payload == "re:ping"
        assert rtt == pytest.approx(net.min_rtt(64, 64), rel=0.01)

    def test_unknown_destination_dropped_by_switch(self):
        sim = Simulator()
        net = Network(sim)
        a = net.endpoint("a")

        def scenario():
            yield from a.send(Frame("a", "nowhere", None, 64))

        sim.run_process(scenario())
        assert net.switch.frames_forwarded == 0

    def test_port_without_route(self):
        sim = Simulator()
        port = NetworkPort(sim, "lonely")
        with pytest.raises(ConfigurationError):
            sim.run_process(port.send(Frame("lonely", "x", None, 10)))

    def test_min_rtt_scales_with_propagation(self):
        sim = Simulator()
        near = Network(sim, propagation=1e-6)
        far = Network(sim, propagation=100e-6)
        assert far.min_rtt(64, 64) > near.min_rtt(64, 64)

    def test_port_stats_aggregate_tx_and_rx(self):
        sim = Simulator()
        net = Network(sim)
        a = net.endpoint("a")
        b = net.endpoint("b")

        def sender():
            yield from a.send(Frame("a", "b", "one", 64))
            yield from a.send(Frame("a", "b", "two", 64))

        def receiver():
            yield b.receive()
            yield b.receive()

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert a.stats().tx.frames_sent == 2
        assert a.stats().frames_dropped == 0
        assert b.stats().frames_received == 2
