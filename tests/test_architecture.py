"""Architectural discipline checks.

The README promises: "the DPU datapaths are composed only of hardware
components ... and they never call into ``repro.baseline`` — the only place
where syscalls, interrupts, copies, and CPU jitter exist." These tests
enforce that statically, so a refactor cannot quietly put a CPU back into
the CPU-free paths.
"""

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: Packages that model the CPU-free side and must never touch the baseline.
CPU_FREE_PACKAGES = [
    "hw", "memory", "ebpf", "hdl", "transport", "storage",
    "datastruct", "fs", "formats", "dpu", "sim", "common", "telemetry",
]


def _imports_of(path: pathlib.Path):
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            yield node.module


def _package_files(package: str):
    return sorted((SRC / package).rglob("*.py"))


class TestCpuFreeDiscipline:
    @pytest.mark.parametrize("package", CPU_FREE_PACKAGES)
    def test_no_baseline_imports(self, package):
        for path in _package_files(package):
            for module in _imports_of(path):
                assert not module.startswith("repro.baseline"), (
                    f"{path.relative_to(SRC)} imports {module}: the CPU "
                    f"crept back into a CPU-free package"
                )

    def test_baseline_exists_and_is_isolated(self):
        assert _package_files("baseline"), "baseline package missing"

    def test_hw_never_imports_upward(self):
        """Hardware models must not depend on apps/eval layers."""
        for path in _package_files("hw"):
            for module in _imports_of(path):
                for forbidden in ("repro.apps", "repro.eval", "repro.dpu"):
                    assert not module.startswith(forbidden), (
                        f"{path.relative_to(SRC)} imports {module}"
                    )

    def test_sim_kernel_is_near_leaf(self):
        """The DES kernel depends only on the telemetry plane below it.

        The metrics registry and tracer sit *under* the simulator (every
        component reaches them through ``sim.telemetry`` / ``sim.tracer``),
        so ``repro.sim`` may import ``repro.telemetry`` — and nothing else.
        """
        for path in _package_files("sim"):
            for module in _imports_of(path):
                if module.startswith("repro."):
                    assert module.startswith(("repro.sim", "repro.telemetry")), (
                        f"sim kernel imports {module}"
                    )

    def test_telemetry_is_leaf(self):
        """The telemetry plane depends only on repro.common.

        It must stay importable from every layer (sim, hw, datastruct,
        formats) without cycles, so it can depend on nothing above the
        error types.
        """
        for path in _package_files("telemetry"):
            for module in _imports_of(path):
                if module.startswith("repro."):
                    assert module.startswith(
                        ("repro.telemetry", "repro.common")
                    ), f"telemetry imports {module}"


class TestDocstringsEverywhere:
    def test_every_module_has_a_docstring(self):
        missing = []
        for path in sorted(SRC.rglob("*.py")):
            tree = ast.parse(path.read_text())
            if not (
                tree.body
                and isinstance(tree.body[0], ast.Expr)
                and isinstance(tree.body[0].value, ast.Constant)
                and isinstance(tree.body[0].value.value, str)
            ):
                missing.append(str(path.relative_to(SRC)))
        assert not missing, f"modules without docstrings: {missing}"

    def test_every_public_class_documented(self):
        undocumented = []
        for path in sorted(SRC.rglob("*.py")):
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                    if ast.get_docstring(node) is None:
                        undocumented.append(
                            f"{path.relative_to(SRC)}::{node.name}"
                        )
        assert not undocumented, f"classes without docstrings: {undocumented}"
