"""Integration: columnar data on both file systems via annotation walkers.

Paper §2.3's full sentence: "Hyperion can access and process data that is
stored in Arrow/Parquet format, on the F2FS/ext4 file system on NVMe
storage without any host-side, or client-side CPU involvement." These tests
run the format pipeline over *both* layouts through their walkers.
"""

import pytest

from repro.formats import RecordBatch, Schema, parquet_to_batch, write_table
from repro.fs import (
    HyperExtFs,
    LayoutWalker,
    LogFsWalker,
    LogStructuredFs,
    ext4_annotation,
    f2fs_annotation,
)
from repro.hw.nvme import Namespace


def dataset(rows=200):
    schema = Schema.of(id="int64", score="float64", tag="string")
    return write_table(
        RecordBatch.from_rows(
            schema, [(i, i * 0.1, ["a", "b"][i % 2]) for i in range(rows)]
        ),
        rows_per_group=64,
    )


class TestParquetOnExt4:
    def test_end_to_end(self):
        namespace = Namespace(1, 2048)
        fs = HyperExtFs.mkfs(namespace)
        fs.mkdir("/tables")
        raw = dataset()
        fs.create_file("/tables/t.parquet", raw)
        # The walker knows nothing about HyperExtFs; only the annotation.
        walker = LayoutWalker(ext4_annotation(), namespace.read_blocks)
        fetched = walker.read_file("/tables/t.parquet")
        batch = parquet_to_batch(fetched, columns=["score"])
        assert batch.aggregate("score", "count") == 200
        assert batch.aggregate("score", "sum") == pytest.approx(
            sum(i * 0.1 for i in range(200))
        )


class TestParquetOnF2fs:
    def test_end_to_end(self):
        namespace = Namespace(1, 2048)
        fs = LogStructuredFs.mkfs(namespace)
        raw = dataset()
        fs.write_file("/t.parquet", raw)
        fs.checkpoint()
        walker = LogFsWalker(f2fs_annotation(), namespace.read_blocks)
        fetched = walker.read_file("/t.parquet")
        batch = parquet_to_batch(fetched, columns=["id", "tag"])
        assert batch.column("id").values == list(range(200))
        assert batch.column("tag").values[:2] == ["a", "b"]

    def test_update_then_rescan(self):
        """Log-structured overwrite: the walker sees the newest version."""
        namespace = Namespace(1, 2048)
        fs = LogStructuredFs.mkfs(namespace)
        fs.write_file("/t.parquet", dataset(50))
        fs.checkpoint()
        fs.write_file("/t.parquet", dataset(75))
        fs.checkpoint()
        walker = LogFsWalker(f2fs_annotation(), namespace.read_blocks)
        batch = parquet_to_batch(walker.read_file("/t.parquet"))
        assert len(batch) == 75
