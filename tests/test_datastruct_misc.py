"""Tests for the hash table and extent tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CapacityError, ConfigurationError
from repro.datastruct import BucketHashTable, Extent, ExtentTree


class TestHashTable:
    def test_put_get(self):
        table = BucketHashTable()
        table.put(b"key", b"value")
        assert table.get(b"key") == b"value"

    def test_missing(self):
        assert BucketHashTable().get(b"nope") is None

    def test_overwrite(self):
        table = BucketHashTable()
        table.put(b"k", b"1")
        table.put(b"k", b"2")
        assert table.get(b"k") == b"2"
        assert len(table) == 1

    def test_delete(self):
        table = BucketHashTable()
        table.put(b"k", b"v")
        assert table.delete(b"k")
        assert not table.delete(b"k")
        assert len(table) == 0

    def test_capacity(self):
        table = BucketHashTable(max_entries=2)
        table.put(b"a", b"1")
        table.put(b"b", b"2")
        with pytest.raises(CapacityError):
            table.put(b"c", b"3")

    def test_collisions_chain(self):
        table = BucketHashTable(bucket_count=1)
        for i in range(20):
            table.put(f"key{i}".encode(), str(i).encode())
        for i in range(20):
            assert table.get(f"key{i}".encode()) == str(i).encode()
        assert table.load_factor() == 20.0

    def test_serialize_roundtrip(self):
        table = BucketHashTable(bucket_count=8)
        for i in range(30):
            table.put(f"k{i}".encode(), f"v{i}".encode())
        restored = BucketHashTable.deserialize(table.serialize())
        assert dict(restored.items()) == dict(table.items())
        assert restored.bucket_count == 8


@settings(max_examples=30, deadline=None)
@given(
    st.dictionaries(
        st.binary(min_size=1, max_size=16), st.binary(max_size=16), max_size=100
    )
)
def test_hashtable_matches_dict(reference):
    table = BucketHashTable(bucket_count=16)
    for key, value in reference.items():
        table.put(key, value)
    assert dict(table.items()) == reference
    restored = BucketHashTable.deserialize(table.serialize())
    assert dict(restored.items()) == reference


class TestExtent:
    def test_translate(self):
        extent = Extent(logical=10, physical=100, length=5)
        assert extent.translate(12) == 102

    def test_translate_out_of_range(self):
        with pytest.raises(ConfigurationError):
            Extent(10, 100, 5).translate(20)

    def test_invalid_length(self):
        with pytest.raises(ConfigurationError):
            Extent(0, 0, 0)


class TestExtentTree:
    def test_insert_lookup(self):
        tree = ExtentTree()
        tree.insert(Extent(0, 1000, 10))
        tree.insert(Extent(10, 2000, 10))
        assert tree.translate(5) == 1005
        assert tree.translate(15) == 2005

    def test_gap_unmapped(self):
        tree = ExtentTree()
        tree.insert(Extent(0, 100, 5))
        tree.insert(Extent(10, 200, 5))
        assert tree.lookup(7) is None
        with pytest.raises(KeyError):
            tree.translate(7)

    def test_overlap_rejected(self):
        tree = ExtentTree()
        tree.insert(Extent(0, 100, 10))
        with pytest.raises(ConfigurationError):
            tree.insert(Extent(5, 500, 10))
        with pytest.raises(ConfigurationError):
            tree.insert(Extent(0, 500, 3))

    def test_out_of_order_insert(self):
        tree = ExtentTree()
        tree.insert(Extent(20, 300, 5))
        tree.insert(Extent(0, 100, 5))
        assert [e.logical for e in tree] == [0, 20]

    def test_translate_range_spans_extents(self):
        tree = ExtentTree()
        tree.insert(Extent(0, 100, 4))
        tree.insert(Extent(4, 500, 4))
        pieces = tree.translate_range(2, 4)
        assert pieces == [(102, 2), (500, 2)]

    def test_translate_range_hits_gap(self):
        tree = ExtentTree()
        tree.insert(Extent(0, 100, 2))
        with pytest.raises(KeyError):
            tree.translate_range(0, 5)
