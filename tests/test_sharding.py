"""Tests for the scale-out data plane: the consistent-hash ring, the
hot-key cache, batched RPC, the sharded cluster's forwarding stubs, and
live migration (join + drain) under concurrent client traffic."""

import random

import pytest

from repro.common.errors import ConfigurationError
from repro.hw.net import Network
from repro.sharding import (
    DEFAULT_VNODES,
    HashRing,
    HotKeyCache,
    ShardedKvClient,
    ShardedKvCluster,
    ShardMigrator,
)
from repro.sim import Simulator
from repro.transport import BatchOp, MAX_BATCH_OPS, RpcClient, RpcError, UdpSocket


# ---------------------------------------------------------------------------
# hash ring
# ---------------------------------------------------------------------------

KEYS = [f"key-{i:04d}".encode() for i in range(2000)]


def test_single_node_ring_owns_everything():
    ring = HashRing()
    ring.add_node("only")
    assert len(ring) == 1
    assert all(ring.owner_of(key) == "only" for key in KEYS[:100])
    assert ring.replicas_of(KEYS[0], 1) == ["only"]
    with pytest.raises(ConfigurationError):
        ring.replicas_of(KEYS[0], 3)
    assert ring.skew(KEYS[:100]) == 1.0


def test_empty_ring_refuses_lookup():
    with pytest.raises(ConfigurationError):
        HashRing().owner_of(b"k")


def test_duplicate_and_missing_nodes_rejected():
    ring = HashRing()
    ring.add_node("a")
    with pytest.raises(ConfigurationError):
        ring.add_node("a")
    with pytest.raises(ConfigurationError):
        ring.remove_node("b")


def test_placement_is_deterministic_and_hashseed_free():
    # blake2b placement: a fixed key/node set must map identically in
    # every process regardless of PYTHONHASHSEED.
    ring = HashRing(vnodes=DEFAULT_VNODES)
    for node in ("dpu-0", "dpu-1", "dpu-2"):
        ring.add_node(node)
    owners = [ring.owner_of(key) for key in KEYS[:20]]
    again = HashRing(vnodes=DEFAULT_VNODES)
    for node in ("dpu-2", "dpu-0", "dpu-1"):  # insertion order irrelevant
        again.add_node(node)
    assert owners == [again.owner_of(key) for key in KEYS[:20]]


def test_virtual_nodes_bound_skew():
    # The satellite's skew bound: with enough virtual nodes, max/mean
    # load stays near 1 even for adversarially regular key sets.
    ring = HashRing(vnodes=DEFAULT_VNODES)
    for index in range(8):
        ring.add_node(f"dpu-{index}")
    assert ring.skew(KEYS) < 1.6
    # And a ring with a single point per node is visibly worse.
    coarse = HashRing(vnodes=1)
    for index in range(8):
        coarse.add_node(f"dpu-{index}")
    assert coarse.skew(KEYS) > ring.skew(KEYS)


def test_node_removal_only_moves_the_removed_nodes_keys():
    ring = HashRing()
    for index in range(4):
        ring.add_node(f"dpu-{index}")
    before = {key: ring.owner_of(key) for key in KEYS}
    moved = HashRing.moved_keys(ring, ring.without_node("dpu-2"), KEYS)
    # Consistent hashing's contract: only keys owned by the removed
    # node change owner.
    assert moved
    assert all(old == "dpu-2" for __, old, __new in moved)
    survivors = [key for key in KEYS if before[key] != "dpu-2"]
    after = ring.without_node("dpu-2")
    assert all(after.owner_of(key) == before[key] for key in survivors)


def test_replicas_are_distinct_and_clockwise_stable():
    ring = HashRing()
    for index in range(5):
        ring.add_node(f"dpu-{index}")
    for key in KEYS[:50]:
        replicas = ring.replicas_of(key, 3)
        assert len(replicas) == 3
        assert len(set(replicas)) == 3
        assert replicas[0] == ring.owner_of(key)


# ---------------------------------------------------------------------------
# hot-key cache
# ---------------------------------------------------------------------------

class _Clock:
    def __init__(self):
        self.now = 0.0


def test_cache_hit_until_lease_expires():
    clock = _Clock()
    cache = HotKeyCache(clock, capacity=4, lease=1.0)
    cache.fill(b"k", b"v", epoch=1)
    assert cache.lookup(b"k", epoch=1) == b"v"
    clock.now = 0.999
    assert cache.lookup(b"k", epoch=1) == b"v"
    clock.now = 1.0
    assert cache.lookup(b"k", epoch=1) is None
    assert cache.hits == 2 and cache.misses == 1


def test_cache_epoch_mismatch_is_a_miss():
    cache = HotKeyCache(_Clock(), capacity=4, lease=1.0)
    cache.fill(b"k", b"v", epoch=1)
    assert cache.lookup(b"k", epoch=2) is None
    # The stale entry is gone for good, not resurrected at the old epoch.
    assert cache.lookup(b"k", epoch=1) is None


def test_cache_lru_eviction_and_invalidate():
    cache = HotKeyCache(_Clock(), capacity=2, lease=1.0)
    cache.fill(b"a", b"1", epoch=1)
    cache.fill(b"b", b"2", epoch=1)
    assert cache.lookup(b"a", epoch=1) == b"1"  # refreshes a's recency
    cache.fill(b"c", b"3", epoch=1)             # evicts b, the LRU entry
    assert cache.evicted == 1
    assert cache.lookup(b"b", epoch=1) is None
    assert cache.lookup(b"a", epoch=1) == b"1"
    cache.invalidate(b"a")
    assert cache.lookup(b"a", epoch=1) is None
    assert len(cache) == 1


def test_cache_rejects_bad_config():
    with pytest.raises(ConfigurationError):
        HotKeyCache(_Clock(), capacity=0)
    with pytest.raises(ConfigurationError):
        HotKeyCache(_Clock(), lease=0.0)


# ---------------------------------------------------------------------------
# batched RPC
# ---------------------------------------------------------------------------

def _rpc_pair():
    sim = Simulator()
    network = Network(sim)
    from repro.transport import RpcServer
    server = RpcServer(sim, UdpSocket(sim, network.endpoint("srv")))
    client = RpcClient(sim, UdpSocket(sim, network.endpoint("cli")))
    return sim, server, client


def test_call_batch_runs_every_op_in_one_round_trip():
    sim, server, client = _rpc_pair()
    server.register("add", lambda a, b: a + b)
    server.register("boom", lambda: 1 / 0)
    got = []

    def driver():
        responses = yield from client.call_batch("srv", [
            BatchOp("add", (1, 2)),
            BatchOp("boom"),
            BatchOp("add", (10, 20)),
        ])
        got.extend(responses)

    sim.run_process(driver())
    assert [r.ok for r in got] == [True, False, True]
    assert got[0].result == 3 and got[2].result == 30
    assert "division" in got[1].error
    # The whole batch consumed exactly one server request slot.
    assert server.requests_served == 1
    assert server.batches_served == 1
    assert server.batched_ops == 3


def test_call_batch_validates_size():
    sim, server, client = _rpc_pair()
    server.register("noop", lambda: None)

    def driver(ops):
        yield from client.call_batch("srv", ops)

    with pytest.raises(ConfigurationError):
        sim.run_process(driver([]))
    too_many = [BatchOp("noop") for __ in range(MAX_BATCH_OPS + 1)]
    with pytest.raises(ConfigurationError):
        sim.run_process(driver(too_many))


# ---------------------------------------------------------------------------
# sharded cluster + live migration
# ---------------------------------------------------------------------------

def _sharded(sim, dpus=3, **kwargs):
    network = Network(sim)
    cluster = ShardedKvCluster(sim, network, dpu_count=dpus,
                               queue_capacity=64, workers=2, **kwargs)
    return cluster


def _preload(sim, cluster, keys, value=b"v0"):
    loader = ShardedKvClient(sim, cluster, name="loader")
    sim.run_process(loader.put_many([(key, value) for key in keys]))


def test_sharded_cluster_serves_and_balances():
    sim = Simulator()
    cluster = _sharded(sim, dpus=4)
    keys = [f"key-{i:03d}".encode() for i in range(200)]
    _preload(sim, cluster, keys)
    client = ShardedKvClient(sim, cluster, name="c")

    values = []

    def driver():
        values.extend((yield from client.get_many(keys)))

    sim.run_process(driver())
    assert values == [b"v0"] * len(keys)
    assert cluster.balance() < 1.8
    # Every key is resident exactly where the ring says it is.
    for address in cluster.members():
        for key in cluster.resident_keys(address):
            assert cluster.owner_of(key) == address


def test_join_migration_moves_only_new_ranges_and_loses_nothing():
    sim = Simulator()
    cluster = _sharded(sim, dpus=2)
    keys = [f"key-{i:03d}".encode() for i in range(120)]
    _preload(sim, cluster, keys)
    migrator = ShardMigrator(sim, cluster, segment_keys=8)
    client = ShardedKvClient(sim, cluster, name="c")
    box = {}

    def driver():
        box["report"] = yield from migrator.add_dpu()
        box["values"] = yield from client.get_many(keys)

    sim.run_process(driver())
    report = box["report"]
    assert report.direction == "join"
    assert report.keys_moved > 0
    assert report.epoch == cluster.epoch == 2
    assert box["values"] == [b"v0"] * len(keys)
    # The new node owns and physically holds its ranges.
    new = report.node
    assert new in cluster.members()
    resident = cluster.resident_keys(new)
    assert len(resident) == report.keys_moved
    assert all(cluster.owner_of(key) == new for key in resident)


def test_drain_migration_empties_the_node_and_loses_nothing():
    sim = Simulator()
    cluster = _sharded(sim, dpus=3)
    keys = [f"key-{i:03d}".encode() for i in range(120)]
    _preload(sim, cluster, keys)
    migrator = ShardMigrator(sim, cluster, segment_keys=8)
    client = ShardedKvClient(sim, cluster, name="c")
    victim = cluster.members()[1]
    box = {}

    def driver():
        box["report"] = yield from migrator.remove_dpu(victim)
        box["values"] = yield from client.get_many(keys)

    sim.run_process(driver())
    assert box["report"].direction == "leave"
    assert victim not in cluster.members()
    assert cluster.resident_keys(victim) == []
    assert box["values"] == [b"v0"] * len(keys)


def test_drain_refuses_last_node_and_unknown_node():
    sim = Simulator()
    cluster = _sharded(sim, dpus=1)
    migrator = ShardMigrator(sim, cluster)

    def drain(address):
        yield from migrator.remove_dpu(address)

    with pytest.raises(ConfigurationError):
        sim.run_process(drain(cluster.members()[0]))
    with pytest.raises(ConfigurationError):
        sim.run_process(drain("no-such-dpu"))


def test_concurrent_churn_during_join_and_drain_never_fails():
    # The tentpole's availability claim: topology changes are latency
    # events. Four writers/readers hammer the keyspace while a DPU
    # joins and another drains; no op may fail and no write may vanish.
    sim = Simulator()
    cluster = _sharded(sim, dpus=3)
    keys = [f"key-{i:03d}".encode() for i in range(80)]
    _preload(sim, cluster, keys)
    migrator = ShardMigrator(sim, cluster, segment_keys=4)
    client = ShardedKvClient(sim, cluster, name="churn")
    state = {key: b"v0" for key in keys}
    failures = []
    stop = [False]

    def churn(worker):
        rng = random.Random(f"churn/{worker}")
        while not stop[0]:
            key = keys[rng.randrange(len(keys))]
            try:
                if rng.random() < 0.3:
                    value = f"w{worker}".encode()
                    yield from client.put(key, value)
                    state[key] = value
                else:
                    if (yield from client.get(key)) is None:
                        failures.append(("lost", key))
            except RpcError as error:
                failures.append(("rpc", key, str(error)))

    def control():
        report = yield from migrator.add_dpu()
        yield from migrator.remove_dpu(report.node)
        stop[0] = True

    for worker in range(4):
        sim.process(churn(worker))
    sim.process(control())
    sim.run(until=1.0)
    assert stop[0], "migrations did not finish"
    assert failures == []
    final = {}

    def verify():
        values = yield from client.get_many(keys)
        final.update(dict(zip(keys, values)))

    sim.run_process(verify())
    assert final == state


def test_crash_during_migration_rides_through_and_loses_nothing():
    # E19's satellite: kill a handoff source mid-`shard.handoff`. The
    # migrator's timeout/retransmit budget must ride the outage out
    # (handoff segments are idempotent — re-sent ones skip keys already
    # forwarded), commit the epoch bump exactly once, and leave every
    # key reachable with no acknowledged write lost.
    sim = Simulator()
    cluster = _sharded(sim, dpus=3)
    keys = [f"key-{i:03d}".encode() for i in range(96)]
    _preload(sim, cluster, keys)
    migrator = ShardMigrator(sim, cluster, segment_keys=4,
                             call_timeout=2e-3, call_retries=64)
    client = ShardedKvClient(sim, cluster, name="crash",
                             timeout=2.5e-3, retries=64)
    victim = cluster.members()[0]
    state = dict.fromkeys(keys, b"v0")
    failures = []
    stop = [False]
    box = {}

    def writer(worker):
        rng = random.Random(f"crash/{worker}")
        serial = 0
        while not stop[0]:
            key = keys[rng.randrange(len(keys))]
            try:
                if rng.random() < 0.4:
                    value = f"w{worker}-{serial}".encode()
                    serial += 1
                    yield from client.put(key, value)
                    state[key] = value
                else:
                    if (yield from client.get(key)) is None:
                        failures.append(("lost", key))
            except RpcError as error:
                failures.append(("rpc", key, str(error)))

    def control():
        box["report"] = yield from migrator.add_dpu()
        box["done_at"] = sim.now
        stop[0] = True

    def crash():
        yield sim.timeout(0.5e-3)
        cluster.network.switch.blackhole(victim)
        yield sim.timeout(15e-3)
        cluster.network.switch.restore(victim)
        box["healed_at"] = sim.now

    for worker in range(2):
        sim.process(writer(worker))
    sim.process(control())
    sim.process(crash())
    sim.run(until=1.0)
    assert box.get("report"), "migration never completed"
    report = box["report"]
    assert report.direction == "join" and report.keys_moved > 0
    assert report.epoch == cluster.epoch == 2
    # The kill really landed mid-migration: completion waited for heal.
    assert box["done_at"] > box["healed_at"]
    assert failures == []
    # Ownership and residency are coherent under the new epoch...
    for address in cluster.members():
        for key in cluster.resident_keys(address):
            assert cluster.owner_of(key) == address
    # ...and no key is unreachable, no acknowledged write lost.
    final = {}

    def verify():
        values = yield from client.get_many(keys)
        final.update(dict(zip(keys, values)))

    sim.run_process(verify())
    assert final == state


def test_cache_invalidation_race_during_migration():
    # The satellite's coherence race: a value cached under the old
    # epoch must not be served after migration commits, even within
    # its lease, and a fresh read must come from the new owner.
    sim = Simulator()
    cluster = _sharded(sim, dpus=2)
    keys = [f"key-{i:03d}".encode() for i in range(60)]
    _preload(sim, cluster, keys)
    cache = HotKeyCache(sim, capacity=128, lease=10.0)  # outlives the run
    client = ShardedKvClient(sim, cluster, name="c", cache=cache)
    writer = ShardedKvClient(sim, cluster, name="w")
    migrator = ShardMigrator(sim, cluster, segment_keys=8)
    box = {}

    def driver():
        yield from client.get_many(keys)      # warm the cache at epoch 1
        assert cache.hits == 0
        report = yield from migrator.add_dpu()
        # Another client updates a key that moved to the new node.
        moved = cluster.resident_keys(report.node)[0]
        yield from writer.put(moved, b"fresh")
        box["value"] = yield from client.get(moved)
        box["moved"] = moved

    sim.run_process(driver())
    # The cached epoch-1 value was discarded, not served within lease.
    assert box["value"] == b"fresh"
    assert cache._epoch_invalidated.value > 0


def test_batch_spanning_a_migrating_shard():
    # The satellite's batching edge case: a get_many whose keys span
    # the shard mid-handoff must succeed via forwarding, not error.
    sim = Simulator()
    cluster = _sharded(sim, dpus=2)
    keys = [f"key-{i:03d}".encode() for i in range(80)]
    _preload(sim, cluster, keys)
    migrator = ShardMigrator(sim, cluster, segment_keys=2)
    client = ShardedKvClient(sim, cluster, name="c", batch_limit=16)
    rounds = []
    done = [False]

    def reader():
        while not done[0]:
            values = yield from client.get_many(keys[:32])
            rounds.append(values)

    def control():
        yield from migrator.add_dpu()
        done[0] = True

    sim.process(reader())
    sim.process(control())
    sim.run(until=1.0)
    assert done[0]
    assert rounds, "reader made no progress"
    assert all(values == [b"v0"] * 32 for values in rounds)
    forwarded = sum(f.forwarded_ops for f in cluster.forwarders.values())
    assert forwarded > 0, "migration window produced no forwarded ops"


def test_sharded_cluster_rejects_bad_config():
    sim = Simulator()
    network = Network(sim)
    with pytest.raises(ConfigurationError):
        ShardedKvCluster(sim, network, dpu_count=0)
    with pytest.raises(ConfigurationError):
        ShardedKvCluster(sim, network, queue_capacity=8, workers=1)
    cluster = _sharded(sim, dpus=1)
    with pytest.raises(ConfigurationError):
        ShardedKvClient(sim, cluster, name="x", batch_limit=0)
    with pytest.raises(ConfigurationError):
        ShardMigrator(sim, cluster, segment_keys=0)
