"""Tests for simulated resources and stores."""

import pytest

from repro.sim import Resource, Simulator, Store


class TestResource:
    def test_grant_immediately_when_free(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def proc():
            yield res.request()
            held_at = sim.now
            res.release()
            return held_at

        assert sim.run_process(proc()) == 0.0

    def test_contention_serializes(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        log = []

        def worker(name, hold):
            yield res.request()
            log.append((name, "got", sim.now))
            yield sim.timeout(hold)
            res.release()

        sim.process(worker("a", 5.0))
        sim.process(worker("b", 1.0))
        sim.run()
        assert log == [("a", "got", 0.0), ("b", "got", 5.0)]

    def test_capacity_two_runs_in_parallel(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        log = []

        def worker(name):
            yield res.request()
            log.append((name, sim.now))
            yield sim.timeout(3.0)
            res.release()

        for name in "abc":
            sim.process(worker(name))
        sim.run()
        assert log == [("a", 0.0), ("b", 0.0), ("c", 3.0)]

    def test_release_without_request_raises(self):
        sim = Simulator()
        res = Resource(sim)
        with pytest.raises(RuntimeError):
            res.release()

    def test_queue_length(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def holder():
            yield res.request()
            yield sim.timeout(10.0)
            res.release()

        def waiter():
            yield sim.timeout(1.0)
            yield res.request()
            res.release()

        sim.process(holder())
        sim.process(waiter())
        sim.run(until=2.0)
        assert res.queue_length == 1
        sim.run()
        assert res.queue_length == 0

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), capacity=0)


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)

        def proc():
            yield store.put("x")
            item = yield store.get()
            return item

        assert sim.run_process(proc()) == "x"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)

        def consumer():
            item = yield store.get()
            return (item, sim.now)

        def producer():
            yield sim.timeout(4.0)
            yield store.put("late-item")

        consumer_proc = sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert consumer_proc.value == ("late-item", 4.0)

    def test_fifo_order(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def producer():
            for i in range(3):
                yield store.put(i)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == [0, 1, 2]

    def test_bounded_put_blocks(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        log = []

        def producer():
            yield store.put("first")
            log.append(("put-first", sim.now))
            yield store.put("second")
            log.append(("put-second", sim.now))

        def consumer():
            yield sim.timeout(5.0)
            item = yield store.get()
            log.append(("got", item, sim.now))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert ("put-first", 0.0) in log
        assert ("put-second", 5.0) in log

    def test_len(self):
        sim = Simulator()
        store = Store(sim)

        def proc():
            yield store.put(1)
            yield store.put(2)

        sim.run_process(proc())
        assert len(store) == 2
