"""Tests for the eBPF-to-HDL compilation pipeline."""

import pytest

from repro.common.errors import VerificationError
from repro.ebpf import assemble
from repro.hdl import (
    HardwarePipeline,
    build_cfg,
    build_dfg,
    compile_program,
    fuse_instructions,
    generate_verilog,
    schedule_pipeline,
)
from repro.hdl.fusion import fusion_ratio
from repro.hdl.resources import estimate
from repro.sim import Simulator

STRAIGHT_LINE = """
    mov r0, 1
    mov r3, 2
    add r0, r3
    exit
"""

BRANCHY = """
    mov r0, 0
    ldxw r3, [r1+0]
    jeq r3, 0, done
    add r0, 1
done:
    exit
"""

INDEPENDENT = """
    mov r3, 1
    mov r4, 2
    mov r5, 3
    mov r0, 0
    add r0, r3
    exit
"""


class TestCfg:
    def test_straight_line_one_block(self):
        blocks = build_cfg(assemble(STRAIGHT_LINE))
        assert len(blocks) == 1
        assert blocks[0].successors == []

    def test_branch_splits_blocks(self):
        blocks = build_cfg(assemble(BRANCHY))
        # entry (with jeq), add-block, exit-block
        assert len(blocks) == 3
        entry = blocks[0]
        assert len(entry.successors) == 2

    def test_exit_has_no_successors(self):
        blocks = build_cfg(assemble(BRANCHY))
        assert blocks[-1].successors == []


class TestDfg:
    def test_raw_dependency(self):
        blocks = build_cfg(assemble(STRAIGHT_LINE))
        dfg = build_dfg(blocks[0])
        # add r0, r3 depends on both movs
        assert 0 in dfg.edges[2]
        assert 1 in dfg.edges[2]

    def test_independent_instructions_detected(self):
        blocks = build_cfg(assemble(INDEPENDENT))
        dfg = build_dfg(blocks[0])
        pairs = dfg.independent_pairs()
        assert (0, 1) in pairs  # mov r3 / mov r4 independent
        assert (0, 2) in pairs

    def test_memory_ops_stay_ordered(self):
        source = """
            mov r2, 1
            stxdw [r10-8], r2
            ldxdw r3, [r10-16]
            mov r0, 0
            exit
        """
        blocks = build_cfg(assemble(source))
        dfg = build_dfg(blocks[0])
        # the load (index 2) must depend on the store (index 1)
        assert 1 in dfg.edges[2]


class TestFusion:
    def test_dependent_chain_fuses(self):
        program = assemble("mov r3, 1\nadd r3, 5\nmov r0, r3\nexit")
        ops = fuse_instructions(program.instructions)
        assert any(op.is_fused for op in ops)
        assert len(ops) < len(program.instructions)

    def test_fusion_disabled(self):
        program = assemble("mov r3, 1\nadd r3, 5\nmov r0, r3\nexit")
        ops = fuse_instructions(program.instructions, enabled=False)
        assert len(ops) == len(program.instructions)
        assert not any(op.is_fused for op in ops)

    def test_fusion_ratio_positive_for_chains(self):
        program = assemble("mov r0, 1\nadd r0, 2\nadd r0, 3\nexit")
        assert fusion_ratio(program.instructions) > 0

    def test_expensive_ops_not_fused(self):
        program = assemble("mov r0, 100\ndiv r0, 7\nexit")
        ops = fuse_instructions(program.instructions)
        assert not any(op.is_fused and len(op.instructions) == 2 and
                       op.instructions[1].opcode.value == "div" for op in ops)


class TestSchedule:
    def test_independent_ops_share_stage(self):
        schedule = schedule_pipeline(assemble(INDEPENDENT), fuse=False)
        assert schedule.width >= 3  # three independent movs in one stage

    def test_dependent_chain_deepens(self):
        chained = schedule_pipeline(
            assemble("mov r0, 1\nmul r0, 3\nmul r0, 5\nmul r0, 7\nexit"),
            fuse=False,
        )
        flat = schedule_pipeline(assemble(INDEPENDENT), fuse=False)
        assert chained.depth > flat.depth

    def test_fusion_reduces_depth(self):
        source = "mov r0, 1\nadd r0, 2\nadd r0, 3\nadd r0, 4\nexit"
        fused = schedule_pipeline(assemble(source), fuse=True)
        unfused = schedule_pipeline(assemble(source), fuse=False)
        assert fused.depth < unfused.depth

    def test_memory_pressure_raises_ii(self):
        source = """
            ldxdw r3, [r1+0]
            ldxdw r4, [r1+8]
            ldxdw r5, [r1+16]
            mov r0, 0
            exit
        """
        tight = schedule_pipeline(assemble(source), memory_ports=1)
        roomy = schedule_pipeline(assemble(source), memory_ports=4)
        assert tight.initiation_interval >= roomy.initiation_interval

    def test_parallelism_metric(self):
        schedule = schedule_pipeline(assemble(INDEPENDENT), fuse=False)
        assert schedule.parallelism() > 1.0


class TestResources:
    def test_bigger_program_costs_more(self):
        small = estimate(schedule_pipeline(assemble("mov r0, 1\nexit")))
        source = "\n".join(["mov r0, 0"] + [f"add r0, {i}" for i in range(20)] + ["exit"])
        big = estimate(schedule_pipeline(assemble(source), fuse=False))
        assert big.resources.luts > small.resources.luts

    def test_multiply_uses_dsps(self):
        est = estimate(schedule_pipeline(assemble("mov r0, 2\nmul r0, 3\nexit")))
        assert est.resources.dsps > 0

    def test_fusion_lowers_fmax_but_saves_area(self):
        source = "mov r0, 1\nadd r0, 2\nadd r0, 3\nadd r0, 4\nexit"
        fused = estimate(schedule_pipeline(assemble(source), fuse=True))
        unfused = estimate(schedule_pipeline(assemble(source), fuse=False))
        assert fused.fmax_hz < unfused.fmax_hz
        assert fused.resources.ffs < unfused.resources.ffs

    def test_throughput_and_latency(self):
        est = estimate(schedule_pipeline(assemble("mov r0, 1\nexit")))
        assert est.fixed_latency == pytest.approx(est.pipeline_depth / est.fmax_hz)
        assert est.throughput_ops == pytest.approx(est.fmax_hz)


class TestCodegen:
    def test_module_structure(self):
        compiled = compile_program(assemble(BRANCHY, name="classifier"))
        text = compiled.verilog
        assert "module ebpf_classifier" in text
        assert "s_axis_tvalid" in text
        assert "endmodule" in text

    def test_stage_comments_present(self):
        compiled = compile_program(assemble(STRAIGHT_LINE, name="p"))
        assert "---- stage 0" in compiled.verilog

    def test_fused_ops_annotated(self):
        compiled = compile_program(
            assemble("mov r0, 1\nadd r0, 2\nadd r0, 3\nexit", name="f")
        )
        assert "// fused:" in compiled.verilog


class TestCompileDriver:
    def test_rejected_program_raises(self):
        with pytest.raises(VerificationError):
            compile_program(assemble("mov r0, r5\nexit"))

    def test_verification_can_be_skipped(self):
        compiled = compile_program(assemble("mov r0, r5\nexit"), verify=False)
        assert compiled.schedule.depth >= 1

    def test_bitstream_packaging(self):
        compiled = compile_program(assemble(STRAIGHT_LINE, name="accel"))
        bitstream = compiled.to_bitstream()
        assert bitstream.name == "accel"
        assert bitstream.kernel is compiled
        assert bitstream.size_bytes > 4 * 1024 * 1024


class TestHardwarePipeline:
    def test_functional_equivalence_with_vm(self):
        source = """
            ldxw r3, [r1+0]
            mov r0, 0
            jeq r3, 7, lucky
            mov r0, 1
            exit
        lucky:
            mov r0, 77
            exit
        """
        sim = Simulator()
        pipeline = HardwarePipeline(sim, compile_program(assemble(source)))
        ctx = (7).to_bytes(4, "little")
        assert pipeline.execute_now(ctx).return_value == 77
        ctx = (8).to_bytes(4, "little")
        assert pipeline.execute_now(ctx).return_value == 1

    def test_fixed_latency_zero_jitter(self):
        sim = Simulator()
        pipeline = HardwarePipeline(sim, compile_program(assemble(STRAIGHT_LINE)))
        latencies = []

        def one():
            start = sim.now
            yield from pipeline.execute()
            latencies.append(sim.now - start)

        def sequence():
            for _ in range(5):
                yield sim.process(one())

        sim.run_process(sequence())
        assert len(set(f"{lat:.12e}" for lat in latencies)) == 1

    def test_throughput_limited_by_ii(self):
        sim = Simulator()
        pipeline = HardwarePipeline(sim, compile_program(assemble(STRAIGHT_LINE)))
        finished = []

        def one():
            yield from pipeline.execute()
            finished.append(sim.now)

        for _ in range(10):
            sim.process(one())
        sim.run()
        # Completions are spaced by the accept interval, overlapping in flight.
        gaps = [b - a for a, b in zip(finished, finished[1:])]
        for gap in gaps:
            assert gap == pytest.approx(pipeline.accept_interval)
