"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Interrupt, Simulator


class TestTimeout:
    def test_time_advances(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(5.0)
            return sim.now

        assert sim.run_process(proc()) == pytest.approx(5.0)

    def test_zero_delay(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(0.0)
            return sim.now

        assert sim.run_process(proc()) == 0.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_timeout_value_passthrough(self):
        sim = Simulator()

        def proc():
            got = yield sim.timeout(1.0, value="hello")
            return got

        assert sim.run_process(proc()) == "hello"


class TestEventOrdering:
    def test_fifo_at_same_time(self):
        sim = Simulator()
        log = []

        def worker(name):
            yield sim.timeout(1.0)
            log.append(name)

        sim.process(worker("a"))
        sim.process(worker("b"))
        sim.run()
        assert log == ["a", "b"]

    def test_time_ordering(self):
        sim = Simulator()
        log = []

        def worker(name, delay):
            yield sim.timeout(delay)
            log.append(name)

        sim.process(worker("late", 10.0))
        sim.process(worker("early", 1.0))
        sim.run()
        assert log == ["early", "late"]

    def test_run_until_stops_early(self):
        sim = Simulator()
        log = []

        def worker():
            yield sim.timeout(10.0)
            log.append("done")

        sim.process(worker())
        sim.run(until=5.0)
        assert log == []
        assert sim.now == 5.0
        sim.run()
        assert log == ["done"]


class TestEvents:
    def test_manual_succeed(self):
        sim = Simulator()
        gate = sim.event()
        result = []

        def waiter():
            value = yield gate
            result.append(value)

        def opener():
            yield sim.timeout(3.0)
            gate.succeed("opened")

        sim.process(waiter())
        sim.process(opener())
        sim.run()
        assert result == ["opened"]

    def test_fail_raises_in_waiter(self):
        sim = Simulator()
        gate = sim.event()

        def waiter():
            yield gate

        def breaker():
            yield sim.timeout(1.0)
            gate.fail(RuntimeError("boom"))

        proc = sim.process(waiter())
        sim.process(breaker())
        sim.run()
        assert proc.triggered and not proc.ok
        assert isinstance(proc.value, RuntimeError)

    def test_double_trigger_rejected(self):
        sim = Simulator()
        gate = sim.event()
        gate.succeed(1)
        with pytest.raises(RuntimeError):
            gate.succeed(2)

    def test_late_waiter_still_woken(self):
        sim = Simulator()
        gate = sim.event()
        gate.succeed("early")

        def late():
            yield sim.timeout(5.0)
            value = yield gate
            return value

        assert sim.run_process(late()) == "early"


class TestProcess:
    def test_return_value(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            return 42

        assert sim.run_process(proc()) == 42

    def test_exception_propagates(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            raise ValueError("inner")

        with pytest.raises(ValueError, match="inner"):
            sim.run_process(proc())

    def test_process_waits_on_process(self):
        sim = Simulator()

        def child():
            yield sim.timeout(2.0)
            return "child-result"

        def parent():
            value = yield sim.process(child())
            return (value, sim.now)

        assert sim.run_process(parent()) == ("child-result", 2.0)

    def test_yield_non_event_raises(self):
        sim = Simulator()

        def bad():
            yield 42

        proc = sim.process(bad())
        with pytest.raises(TypeError):
            sim.run()
        assert proc.is_alive  # never finished


class TestInterrupt:
    def test_interrupt_wakes_sleeper(self):
        sim = Simulator()

        def sleeper():
            try:
                yield sim.timeout(100.0)
                return "slept"
            except Interrupt as intr:
                return ("interrupted", intr.cause, sim.now)

        def poker(target):
            yield sim.timeout(1.0)
            target.interrupt("wake up")

        target = sim.process(sleeper())
        sim.process(poker(target))
        sim.run()
        assert target.value == ("interrupted", "wake up", 1.0)

    def test_interrupt_finished_process_is_noop(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(1.0)
            return "done"

        proc = sim.process(quick())
        sim.run()
        proc.interrupt("too late")
        sim.run()
        assert proc.value == "done"

    def test_stale_event_after_interrupt_ignored(self):
        sim = Simulator()
        resumed = []

        def sleeper():
            try:
                yield sim.timeout(10.0)
                resumed.append("timeout")
            except Interrupt:
                yield sim.timeout(100.0)
                resumed.append("after-interrupt")

        def poker(target):
            yield sim.timeout(1.0)
            target.interrupt()

        target = sim.process(sleeper())
        sim.process(poker(target))
        sim.run()
        # The original 10s timeout must not resume the process twice.
        assert resumed == ["after-interrupt"]
        assert target.triggered


class TestComposition:
    def test_any_of_first_wins(self):
        sim = Simulator()

        def proc():
            fast = sim.timeout(1.0, value="fast")
            slow = sim.timeout(5.0, value="slow")
            results = yield sim.any_of([fast, slow])
            return (sim.now, list(results.values()))

        now, values = sim.run_process(proc())
        assert now == 1.0
        assert values == ["fast"]

    def test_all_of_waits_for_all(self):
        sim = Simulator()

        def proc():
            a = sim.timeout(1.0, value="a")
            b = sim.timeout(5.0, value="b")
            results = yield sim.all_of([a, b])
            return (sim.now, sorted(results.values()))

        assert sim.run_process(proc()) == (5.0, ["a", "b"])

    def test_empty_all_of_fires_immediately(self):
        sim = Simulator()

        def proc():
            yield sim.all_of([])
            return sim.now

        assert sim.run_process(proc()) == 0.0

    def test_deadlock_detected(self):
        sim = Simulator()

        def stuck():
            yield sim.event()  # never triggered

        with pytest.raises(RuntimeError, match="deadlock"):
            sim.run_process(stuck())


class TestAnyOfSemantics:
    """Pins AnyOf's result collection: every successful child whose
    occurrence time has arrived is in the dict — including same-timestamp
    children still queued behind the winner (the old ``processed``-only
    filter silently dropped those)."""

    def test_same_timestamp_child_included(self):
        sim = Simulator()

        def proc():
            a = sim.timeout(1.0, value="a")
            b = sim.timeout(1.0, value="b")
            results = yield sim.any_of([a, b])
            return {e.value for e in results}

        # b fires at the same instant as a; it must not be dropped just
        # because its callbacks have not run yet.
        assert sim.run_process(proc()) == {"a", "b"}

    def test_future_child_excluded(self):
        sim = Simulator()

        def proc():
            fast = sim.timeout(1.0, value="fast")
            slow = sim.timeout(5.0, value="slow")
            results = yield sim.any_of([fast, slow])
            return (sim.now, [e.value for e in results])

        assert sim.run_process(proc()) == (1.0, ["fast"])

    def test_same_time_manual_succeeds_included(self):
        sim = Simulator()
        one, two = sim.event(), sim.event()

        def trigger():
            yield sim.timeout(1.0)
            one.succeed("one")
            two.succeed("two")

        def waiter():
            results = yield sim.any_of([one, two])
            return sorted(results.values())

        sim.process(trigger())
        proc = sim.process(waiter())
        sim.run()
        assert proc.value == ["one", "two"]

    def test_delayed_succeed_excluded_until_due(self):
        sim = Simulator()
        soon, later = sim.event(), sim.event()

        def trigger():
            yield sim.timeout(1.0)
            later.succeed("later", delay=3.0)  # due at t=4, not yet
            soon.succeed("soon")

        def waiter():
            results = yield sim.any_of([soon, later])
            return (sim.now, sorted(results.values()))

        sim.process(trigger())
        proc = sim.process(waiter())
        sim.run()
        assert proc.value == (1.0, ["soon"])


class TestEngineEdges:
    def test_interrupt_while_waiting_on_any_of(self):
        sim = Simulator()
        resumed = []

        def sleeper():
            a = sim.timeout(10.0, value="a")
            b = sim.timeout(20.0, value="b")
            try:
                yield sim.any_of([a, b])
                resumed.append("any_of")
            except Interrupt as intr:
                resumed.append(("interrupted", intr.cause, sim.now))

        def poker(target):
            yield sim.timeout(1.0)
            target.interrupt("cancel")

        target = sim.process(sleeper())
        sim.process(poker(target))
        sim.run()
        # The interrupt wins; the children firing later must not resume
        # the process a second time.
        assert resumed == [("interrupted", "cancel", 1.0)]
        assert target.triggered

    def test_fail_then_late_waiter_raises(self):
        sim = Simulator()
        gate = sim.event()
        gate.fail(RuntimeError("early failure"))

        def late():
            yield sim.timeout(5.0)
            try:
                yield gate  # already processed: late _add_callback path
            except RuntimeError as exc:
                return ("raised", str(exc), sim.now)

        assert sim.run_process(late()) == ("raised", "early failure", 5.0)

    def test_late_add_callback_on_failed_event_runs_immediately(self):
        sim = Simulator()
        gate = sim.event()
        gate.fail(ValueError("boom"))
        sim.run()
        assert gate.processed and not gate.ok
        seen = []
        gate._add_callback(seen.append)
        assert seen == [gate]

    def test_same_time_ordering_across_fast_lane_and_heap(self):
        # At t=1.0 the heap holds entries scheduled at t=0 while the fast
        # lane receives zero-delay continuations; the merge must follow
        # exact (time, eid) scheduling order: a's heap timeout (older
        # eid), then b's (younger eid), then a's zero-delay continuation
        # (youngest eid, lane).
        sim = Simulator()
        log = []

        def a():
            yield sim.timeout(1.0)
            log.append("a1")
            yield sim.timeout(0.0)
            log.append("a2")

        def b():
            yield sim.timeout(1.0)
            log.append("b1")

        sim.process(a())
        sim.process(b())
        sim.run()
        assert log == ["a1", "b1", "a2"]

    def test_run_until_boundary_is_inclusive(self):
        sim = Simulator()
        log = []

        def worker():
            yield sim.timeout(5.0)
            log.append("at-boundary")
            yield sim.timeout(0.0)
            log.append("still-at-boundary")
            yield sim.timeout(0.1)
            log.append("past-boundary")

        sim.process(worker())
        sim.run(until=5.0)
        # Entries exactly at the boundary run (zero-delay ones too); the
        # first strictly-later entry does not, and the clock parks there.
        assert log == ["at-boundary", "still-at-boundary"]
        assert sim.now == 5.0
        sim.run()
        assert log[-1] == "past-boundary"

    def test_run_until_past_drain_advances_clock(self):
        sim = Simulator()

        def worker():
            yield sim.timeout(2.0)

        sim.process(worker())
        sim.run(until=50.0)
        assert sim.now == 50.0

    def test_negative_succeed_delay_rejected_and_harmless(self):
        sim = Simulator()
        gate = sim.event()
        with pytest.raises(ValueError):
            gate.succeed("nope", delay=-1.0)
        # The failed trigger must leave the event untriggered and usable.
        assert not gate.triggered
        gate.succeed("ok")
        sim.run()
        assert gate.value == "ok"

    def test_negative_fail_delay_rejected_and_harmless(self):
        sim = Simulator()
        gate = sim.event()
        with pytest.raises(ValueError):
            gate.fail(RuntimeError("nope"), delay=-1.0)
        assert not gate.triggered

    def test_step_matches_run_order(self):
        def schedule(sim, log):
            def worker(name, delay):
                yield sim.timeout(delay)
                log.append(name)
                yield sim.timeout(0.0)
                log.append(name + "'")

            sim.process(worker("x", 1.0))
            sim.process(worker("y", 1.0))

        run_log, step_log = [], []
        sim = Simulator()
        schedule(sim, run_log)
        sim.run()
        sim2 = Simulator()
        schedule(sim2, step_log)
        while sim2._imm or sim2._heap:
            sim2.step()
        assert step_log == run_log
