"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Interrupt, Simulator


class TestTimeout:
    def test_time_advances(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(5.0)
            return sim.now

        assert sim.run_process(proc()) == pytest.approx(5.0)

    def test_zero_delay(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(0.0)
            return sim.now

        assert sim.run_process(proc()) == 0.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_timeout_value_passthrough(self):
        sim = Simulator()

        def proc():
            got = yield sim.timeout(1.0, value="hello")
            return got

        assert sim.run_process(proc()) == "hello"


class TestEventOrdering:
    def test_fifo_at_same_time(self):
        sim = Simulator()
        log = []

        def worker(name):
            yield sim.timeout(1.0)
            log.append(name)

        sim.process(worker("a"))
        sim.process(worker("b"))
        sim.run()
        assert log == ["a", "b"]

    def test_time_ordering(self):
        sim = Simulator()
        log = []

        def worker(name, delay):
            yield sim.timeout(delay)
            log.append(name)

        sim.process(worker("late", 10.0))
        sim.process(worker("early", 1.0))
        sim.run()
        assert log == ["early", "late"]

    def test_run_until_stops_early(self):
        sim = Simulator()
        log = []

        def worker():
            yield sim.timeout(10.0)
            log.append("done")

        sim.process(worker())
        sim.run(until=5.0)
        assert log == []
        assert sim.now == 5.0
        sim.run()
        assert log == ["done"]


class TestEvents:
    def test_manual_succeed(self):
        sim = Simulator()
        gate = sim.event()
        result = []

        def waiter():
            value = yield gate
            result.append(value)

        def opener():
            yield sim.timeout(3.0)
            gate.succeed("opened")

        sim.process(waiter())
        sim.process(opener())
        sim.run()
        assert result == ["opened"]

    def test_fail_raises_in_waiter(self):
        sim = Simulator()
        gate = sim.event()

        def waiter():
            yield gate

        def breaker():
            yield sim.timeout(1.0)
            gate.fail(RuntimeError("boom"))

        proc = sim.process(waiter())
        sim.process(breaker())
        sim.run()
        assert proc.triggered and not proc.ok
        assert isinstance(proc.value, RuntimeError)

    def test_double_trigger_rejected(self):
        sim = Simulator()
        gate = sim.event()
        gate.succeed(1)
        with pytest.raises(RuntimeError):
            gate.succeed(2)

    def test_late_waiter_still_woken(self):
        sim = Simulator()
        gate = sim.event()
        gate.succeed("early")

        def late():
            yield sim.timeout(5.0)
            value = yield gate
            return value

        assert sim.run_process(late()) == "early"


class TestProcess:
    def test_return_value(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            return 42

        assert sim.run_process(proc()) == 42

    def test_exception_propagates(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            raise ValueError("inner")

        with pytest.raises(ValueError, match="inner"):
            sim.run_process(proc())

    def test_process_waits_on_process(self):
        sim = Simulator()

        def child():
            yield sim.timeout(2.0)
            return "child-result"

        def parent():
            value = yield sim.process(child())
            return (value, sim.now)

        assert sim.run_process(parent()) == ("child-result", 2.0)

    def test_yield_non_event_raises(self):
        sim = Simulator()

        def bad():
            yield 42

        proc = sim.process(bad())
        with pytest.raises(TypeError):
            sim.run()
        assert proc.is_alive  # never finished


class TestInterrupt:
    def test_interrupt_wakes_sleeper(self):
        sim = Simulator()

        def sleeper():
            try:
                yield sim.timeout(100.0)
                return "slept"
            except Interrupt as intr:
                return ("interrupted", intr.cause, sim.now)

        def poker(target):
            yield sim.timeout(1.0)
            target.interrupt("wake up")

        target = sim.process(sleeper())
        sim.process(poker(target))
        sim.run()
        assert target.value == ("interrupted", "wake up", 1.0)

    def test_interrupt_finished_process_is_noop(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(1.0)
            return "done"

        proc = sim.process(quick())
        sim.run()
        proc.interrupt("too late")
        sim.run()
        assert proc.value == "done"

    def test_stale_event_after_interrupt_ignored(self):
        sim = Simulator()
        resumed = []

        def sleeper():
            try:
                yield sim.timeout(10.0)
                resumed.append("timeout")
            except Interrupt:
                yield sim.timeout(100.0)
                resumed.append("after-interrupt")

        def poker(target):
            yield sim.timeout(1.0)
            target.interrupt()

        target = sim.process(sleeper())
        sim.process(poker(target))
        sim.run()
        # The original 10s timeout must not resume the process twice.
        assert resumed == ["after-interrupt"]
        assert target.triggered


class TestComposition:
    def test_any_of_first_wins(self):
        sim = Simulator()

        def proc():
            fast = sim.timeout(1.0, value="fast")
            slow = sim.timeout(5.0, value="slow")
            results = yield sim.any_of([fast, slow])
            return (sim.now, list(results.values()))

        now, values = sim.run_process(proc())
        assert now == 1.0
        assert values == ["fast"]

    def test_all_of_waits_for_all(self):
        sim = Simulator()

        def proc():
            a = sim.timeout(1.0, value="a")
            b = sim.timeout(5.0, value="b")
            results = yield sim.all_of([a, b])
            return (sim.now, sorted(results.values()))

        assert sim.run_process(proc()) == (5.0, ["a", "b"])

    def test_empty_all_of_fires_immediately(self):
        sim = Simulator()

        def proc():
            yield sim.all_of([])
            return sim.now

        assert sim.run_process(proc()) == 0.0

    def test_deadlock_detected(self):
        sim = Simulator()

        def stuck():
            yield sim.event()  # never triggered

        with pytest.raises(RuntimeError, match="deadlock"):
            sim.run_process(stuck())
