"""Tests for the columnar in-memory format and HyperParquet."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, ProtocolError
from repro.formats import (
    RecordBatch,
    Schema,
    batch_to_parquet,
    parquet_to_batch,
    read_footer,
    read_table,
    write_table,
)
from repro.formats.parquet import ReadStats


def sample_schema():
    return Schema.of(id="int64", price="float64", city="string")


def sample_batch(rows=100):
    return RecordBatch.from_rows(
        sample_schema(),
        [(i, i * 1.5, ["ams", "nyc", "tok"][i % 3]) for i in range(rows)],
    )


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            Schema((("a", "int64"), ("a", "string")))

    def test_unsupported_type(self):
        with pytest.raises(ConfigurationError):
            Schema.of(x="decimal")

    def test_select(self):
        schema = sample_schema().select(["city", "id"])
        assert schema.names == ["city", "id"]


class TestRecordBatch:
    def test_from_rows_and_rows(self):
        batch = sample_batch(3)
        assert list(batch.rows()) == [
            (0, 0.0, "ams"),
            (1, 1.5, "nyc"),
            (2, 3.0, "tok"),
        ]

    def test_ragged_rejected(self):
        with pytest.raises(ProtocolError):
            RecordBatch(Schema.of(a="int64", b="int64"), {"a": [1], "b": [1, 2]})

    def test_project(self):
        projected = sample_batch(5).project(["id"])
        assert projected.schema.names == ["id"]
        assert projected.column("id").values == [0, 1, 2, 3, 4]

    def test_filter(self):
        filtered = sample_batch(10).filter(lambda row: row["id"] >= 8)
        assert len(filtered) == 2

    def test_aggregates(self):
        batch = sample_batch(4)
        assert batch.aggregate("id", "sum") == 6
        assert batch.aggregate("id", "min") == 0
        assert batch.aggregate("id", "max") == 3
        assert batch.aggregate("id", "count") == 4
        assert batch.aggregate("id", "mean") == 1.5

    def test_concat(self):
        merged = sample_batch(2).concat(sample_batch(3))
        assert len(merged) == 5

    def test_type_coercion(self):
        batch = RecordBatch(Schema.of(x="float64"), {"x": [1, 2]})
        assert batch.column("x").values == [1.0, 2.0]


class TestParquet:
    def test_roundtrip(self):
        batch = sample_batch(100)
        raw = write_table(batch, rows_per_group=30)
        restored = read_table(raw)
        assert list(restored.rows()) == list(batch.rows())

    def test_footer(self):
        raw = write_table(sample_batch(100), rows_per_group=30)
        footer = read_footer(raw)
        assert footer.total_rows == 100
        assert len(footer.row_groups) == 4  # 30+30+30+10

    def test_not_parquet(self):
        with pytest.raises(ProtocolError):
            read_footer(b"random bytes")

    def test_empty_table(self):
        raw = write_table(sample_batch(0))
        assert len(read_table(raw)) == 0

    def test_projection_reads_fewer_bytes(self):
        raw = write_table(sample_batch(1000), rows_per_group=100)
        all_stats, one_stats = ReadStats(), ReadStats()
        read_table(raw, stats=all_stats)
        read_table(raw, columns=["id"], stats=one_stats)
        assert one_stats.bytes_read < all_stats.bytes_read / 2
        assert one_stats.chunks_read == all_stats.chunks_read / 3

    def test_predicate_pushdown_skips_groups(self):
        raw = write_table(sample_batch(1000), rows_per_group=100)
        stats = ReadStats()
        batch = read_table(
            raw,
            columns=["id"],
            predicate_column="id",
            predicate_range=(950, 999),
            stats=stats,
        )
        assert stats.row_groups_skipped == 9
        assert batch.column("id").values == list(range(900, 1000))

    def test_string_dictionary_roundtrip(self):
        schema = Schema.of(word="string")
        batch = RecordBatch(
            schema, {"word": ["alpha", "beta", "alpha", "gamma", "beta"]}
        )
        restored = read_table(write_table(batch))
        assert restored.column("word").values == batch.column("word").values

    def test_convert_helpers(self):
        batch = sample_batch(10)
        assert list(parquet_to_batch(batch_to_parquet(batch)).rows()) == list(
            batch.rows()
        )


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.integers(min_value=-(2**62), max_value=2**62),
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            st.text(max_size=8),
        ),
        max_size=120,
    ),
    group_size=st.integers(min_value=1, max_value=50),
)
def test_parquet_roundtrip_property(rows, group_size):
    schema = Schema.of(a="int64", b="float64", c="string")
    batch = RecordBatch.from_rows(schema, rows)
    restored = read_table(write_table(batch, rows_per_group=group_size))
    assert list(restored.rows()) == list(batch.rows())
