"""Causal distributed tracing, the flight recorder, and exemplars.

The observability-plane contract: per-flow span trees stay intact
across RPC, shard, WAN, and replication hops; trace ids and sampling
are ``PYTHONHASHSEED``-independent; the flight recorder captures
post-mortems when incidents open; histogram exemplars link tail
buckets back to sampled traces.
"""

import pytest

from repro.eval.chaos import run_chaos
from repro.eval.trace import run_trace
from repro.georep import Consistency, GeoCluster, GeoKvClient
from repro.sim import ManualClock, Simulator
from repro.telemetry import (
    FlightRecorder,
    MetricsRegistry,
    Tracer,
    parse_prometheus_text,
    prometheus_text,
)


class TestSpanTree:
    def test_leaf_depth_is_zero(self):
        """``depth()`` counts levels *below* a span: a leaf is 0."""
        tracer = Tracer(ManualClock()).enable()
        with tracer.span("root", "transport") as root:
            with tracer.span("mid", "net"):
                with tracer.span("leaf", "nvme"):
                    pass
        leaf = root.children[0].children[0]
        assert leaf.depth() == 0
        assert root.children[0].depth() == 1
        assert root.depth() == 2

    def test_trace_ids_are_hashseed_independent(self):
        """Flow ids come from blake2b over (seed, flow #), never
        ``hash()`` — pinned values hold on every PYTHONHASHSEED."""
        tracer = Tracer(ManualClock()).enable()
        context = tracer.flow()
        assert context.trace_id == "69f9104474a7f58c"  # blake2b(trace/0/1)
        seeded = Tracer(ManualClock()).enable(seed=5)
        assert seeded.flow().trace_id == "5ca92d4bab5f1b49"

    def test_head_sampling_is_deterministic(self):
        def decisions():
            tracer = Tracer(ManualClock()).enable(sample_rate=0.25, seed=3)
            return [tracer.flow() is not None for __ in range(64)]

        first, second = decisions(), decisions()
        assert first == second
        assert any(first) and not all(first)


class TestInterleavedFlows:
    def _kv_stack(self, sim):
        from repro.hw.net import Network
        from repro.hw.nvme import Namespace, NvmeController
        from repro.hw.pcie.link import PcieLink
        from repro.storage.kvssd import KvSsd, KvSsdClient, KvSsdService
        from repro.transport import RpcClient, RpcServer, UdpSocket

        network = Network(sim)
        controller = NvmeController(
            sim, "dpu0-nvme",
            link=PcieLink(sim, lanes=4, component="dpu0.pcie"),
        )
        controller.add_namespace(Namespace(1, 16384))
        device = KvSsd(sim, controller, memtable_limit=4)
        server = RpcServer(sim, UdpSocket(sim, network.endpoint("dpu0")))
        KvSsdService(server, device)
        stubs = [
            KvSsdClient(
                RpcClient(sim, UdpSocket(sim, network.endpoint(name))),
                "dpu0",
            )
            for name in ("host-a", "host-b")
        ]
        return stubs

    def test_two_interleaved_gets_build_separate_trees(self):
        """Two concurrent KV gets: each flow's spans form one intact
        tree under its own trace id, never cross-attached."""
        sim = Simulator()
        stub_a, stub_b = self._kv_stack(sim)
        # Preload untraced, then trace only the two racing gets.
        sim.run_process(stub_a.put(b"ka", b"va"))
        sim.run_process(stub_b.put(b"kb", b"vb"))
        tracer = sim.tracer.enable()
        ctx_a, ctx_b = tracer.flow(), tracer.flow()
        assert ctx_a.trace_id != ctx_b.trace_id

        results = {}

        def op(tag, stub, key):
            results[tag] = yield from stub.get(key)

        sim.process(tracer.drive(op("a", stub_a, b"ka"), ctx_a))
        sim.process(tracer.drive(op("b", stub_b, b"kb"), ctx_b))
        sim.run()
        assert results == {"a": b"va", "b": b"vb"}

        trees = {}
        for root in tracer.roots:
            trees.setdefault(root.trace_id, root)
        for context in (ctx_a, ctx_b):
            root = trees[context.trace_id]
            spans = list(root.walk())
            assert all(s.trace_id == context.trace_id for s in spans)
            assert root.name == "rpc.call"
            # The get really descended through the stack, not a stub.
            assert {"transport", "net", "kvssd"} <= {
                s.substrate for s in spans
            }
        ids_a = {id(s) for s in trees[ctx_a.trace_id].walk()}
        ids_b = {id(s) for s in trees[ctx_b.trace_id].walk()}
        assert not ids_a & ids_b


class TestGeorepTracing:
    def test_quorum_put_is_one_cross_region_tree(self):
        """The acceptance demo: a traced quorum geo put is ONE causal
        tree — same trace id on every span, >= 2 regions, >= 4
        substrates (transport, net, wan, georep/kvssd)."""
        sim = Simulator()
        tracer = sim.tracer.enable()
        cluster = GeoCluster(
            sim, ("east", "west", "south"), consistency=Consistency.QUORUM,
        )
        client = GeoKvClient(sim, cluster, "probe", home="east")
        context = tracer.flow()
        sim.process(tracer.drive(client.put(b"k", b"v"), context))
        sim.run(until=0.08)

        roots = [r for r in tracer.roots if r.trace_id == context.trace_id]
        assert roots, "traced put produced no root span"
        spans = list(roots[0].walk())
        assert all(s.trace_id == context.trace_id for s in spans)
        regions = {
            s.attrs["region"] for s in spans if "region" in s.attrs
        }
        assert len(regions) >= 2
        substrates = {s.substrate for s in spans if s.substrate}
        assert len(substrates) >= 4
        assert {"transport", "net", "wan", "georep"} <= substrates

    def test_geo_ops_span_free_when_tracing_off(self, monkeypatch):
        """With tracing off the whole georep path — gateway verbs, log
        shipping, WAN hops, remote apply — constructs zero Spans."""
        import repro.telemetry.tracing as tracing

        def exploding_init(self, *args, **kwargs):
            raise AssertionError("Span constructed while tracing disabled")

        monkeypatch.setattr(tracing.Span, "__init__", exploding_init)

        sim = Simulator()
        cluster = GeoCluster(
            sim, ("east", "west"), consistency=Consistency.QUORUM,
        )
        client = GeoKvClient(sim, cluster, "probe", home="east")
        done = []

        def scenario():
            yield from client.put(b"k", b"v")
            value = yield from client.get(b"k")
            yield from client.delete(b"k")
            done.append(value)

        sim.process(scenario())
        sim.run(until=0.08)
        assert done == [b"v"]
        assert not sim.tracer.enabled


class TestTraceCli:
    def test_report_is_deterministic(self):
        first = run_trace()
        second = run_trace()
        assert first.canonical_bytes() == second.canonical_bytes()

    def test_showcase_and_rankings(self):
        report = run_trace()
        assert len(report.flows) == 5
        showcase = next(
            f for f in report.flows if f.trace_id == report.showcase
        )
        assert showcase.name == "put/alpha"
        assert len(showcase.regions) >= 2
        assert {"transport", "net", "wan"} <= set(showcase.substrates)
        # Rankings: descending duration, and the critical path starts
        # at the showcase root and ends on a leaf.
        durations = [f.duration for f in report.slowest]
        assert durations == sorted(durations, reverse=True)
        assert report.critical_path[0].lstrip().startswith("client.put")
        assert len(report.critical_path) >= 3


class TestFlightRecorder:
    def _tree(self, clock):
        tracer = Tracer(clock).enable()
        context = tracer.flow()
        with tracer.begin(context, "rpc.call", "transport"):
            clock.advance(1e-3)
        return tracer.roots[0]

    def test_journal_ring_is_bounded(self):
        clock = ManualClock()
        recorder = FlightRecorder(clock, journal_limit=4)
        for index in range(6):
            clock.advance(1.0)
            recorder.record("breaker", f"event-{index}")
        lines = recorder.journal_lines()
        assert len(lines) == 4
        assert lines[0].endswith("[breaker] event-2")
        assert lines[-1].endswith("[breaker] event-5")
        assert recorder.recorded == 6

    def test_dump_snapshots_journal_and_traces(self):
        clock = ManualClock()
        recorder = FlightRecorder(clock)
        recorder.record("slo", "slo firing rule=p99")
        root = self._tree(clock)
        recorder.record_trace(root)
        dump = recorder.dump("slo-firing:p99").decode()
        assert "trigger=slo-firing:p99" in dump
        assert "[slo] slo firing rule=p99" in dump
        assert f"trace {root.trace_id}:" in dump
        assert "rpc.call [transport]" in dump
        assert recorder.dump_triggers() == ("slo-firing:p99",)
        assert recorder.last_dump() == dump.encode()

    def test_empty_dump_says_so(self):
        recorder = FlightRecorder(ManualClock())
        dump = recorder.dump("manual").decode()
        assert "(empty)" in dump
        assert "(none)" in dump

    def test_simulator_owns_one_lazily(self):
        sim = Simulator()
        assert sim.recorder is sim.recorder
        assert isinstance(sim.recorder, FlightRecorder)


class TestExemplars:
    def test_prometheus_roundtrip(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("rpc.call.latency")
        histogram.observe(0.5)
        histogram.exemplar(0.5, "deadbeef01234567")
        text = prometheus_text(registry)
        assert 'trace_id="deadbeef01234567"' in text
        families = parse_prometheus_text(text)
        captured = {
            sample: exemplar
            for family in families.values()
            for sample, exemplar in family.exemplars.items()
        }
        assert captured, "exemplar did not survive the round trip"
        (labels, value), = [
            exemplar for exemplar in captured.values()
        ]
        assert labels == {"trace_id": "deadbeef01234567"}
        assert value == 0.5

    def test_absent_exemplars_change_nothing(self):
        registry = MetricsRegistry()
        registry.histogram("rpc.call.latency").observe(0.5)
        assert " # {" not in prometheus_text(registry)


class TestChaosPostMortem:
    # The same scaled-down storm the telemetry determinism tests use.
    CONFIG = dict(seed=11, dpu_count=3, replication=2, ops=48, preload=12)

    def test_slo_firing_produces_flight_dump(self):
        report = run_chaos(**self.CONFIG)
        assert "slo-firing:op-p99" in report.flight_triggers
        assert report.traces_recorded >= 1
        dump = report.flight_dump.decode()
        assert "slo firing rule=op-p99" in dump
        assert "journal (last" in dump
        assert "trace " in dump

    def test_exemplars_reach_the_prometheus_export(self):
        report = run_chaos(**self.CONFIG)
        families = parse_prometheus_text(report.prometheus.decode())
        trace_ids = {
            exemplar[0]["trace_id"]
            for family in families.values()
            for exemplar in family.exemplars.values()
        }
        assert trace_ids, "no exemplar survived the storm"
        assert all(
            len(tid) == 16 and set(tid) <= set("0123456789abcdef")
            for tid in trace_ids
        )

    def test_tracing_leaves_canonical_artifacts_untouched(self):
        """Sampled tracing + exemplars ride along without perturbing
        the storm's canonical bytes: the digests the benchmark gate
        pins (telemetry, schedule, alert log) only depend on the
        seed."""
        first = run_chaos(**self.CONFIG)
        second = run_chaos(**self.CONFIG)
        assert first.telemetry == second.telemetry
        assert first.schedule == second.schedule
        assert first.slo_alert_log == second.slo_alert_log
        assert first.prometheus == second.prometheus
        assert first.flight_dump == second.flight_dump
