"""Stress and scale tests: many processes, many clients, big structures."""

import random

import pytest

from repro.datastruct import BPlusTree, LsmTree
from repro.eval.report import Table
from repro.hw.net import Network
from repro.hw.nvme import Namespace, NvmeController
from repro.sim import Resource, Simulator, Store
from repro.storage import KvSsd, KvSsdClient, KvSsdService
from repro.transport import RpcClient, RpcServer, UdpSocket


class TestSimulatorScale:
    def test_ten_thousand_processes(self):
        sim = Simulator()
        finished = [0]

        def worker(delay):
            yield sim.timeout(delay)
            finished[0] += 1

        rng = random.Random(1)
        for _ in range(10_000):
            sim.process(worker(rng.uniform(0, 1.0)))
        sim.run()
        assert finished[0] == 10_000

    def test_deep_process_chain(self):
        sim = Simulator()

        def link(depth):
            if depth == 0:
                yield sim.timeout(0)
                return 0
            value = yield sim.process(link(depth - 1))
            return value + 1

        assert sim.run_process(link(400)) == 400

    def test_resource_under_thundering_herd(self):
        sim = Simulator()
        lock = Resource(sim, capacity=1)
        order = []

        def contender(index):
            yield lock.request()
            order.append(index)
            yield sim.timeout(1e-6)
            lock.release()

        for index in range(500):
            sim.process(contender(index))
        sim.run()
        assert order == list(range(500))  # FIFO fairness at scale

    def test_store_pipeline_throughput(self):
        sim = Simulator()
        queue = Store(sim, capacity=8)
        consumed = []

        def producer():
            for i in range(2_000):
                yield queue.put(i)

        def consumer():
            for _ in range(2_000):
                item = yield queue.get()
                consumed.append(item)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert consumed == list(range(2_000))


class TestDataStructureScale:
    def test_bptree_ten_thousand_keys(self):
        tree = BPlusTree(order=32)
        keys = list(range(10_000))
        random.Random(5).shuffle(keys)
        for key in keys:
            tree.insert(key, key * 2)
        assert tree.size == 10_000
        assert tree.height <= 4
        for key in (0, 4_999, 9_999):
            assert tree.get(key) == key * 2
        assert len(list(tree.range(5_000, 5_100))) == 100

    def test_lsm_many_generations(self):
        lsm = LsmTree(memtable_limit=50, l0_limit=3)
        rng = random.Random(7)
        reference = {}
        for i in range(3_000):
            key = f"k{rng.randrange(500):04d}".encode()
            value = f"v{i}".encode()
            lsm.put(key, value)
            reference[key] = value
        for key, value in list(reference.items())[:100]:
            assert lsm.get(key) == value
        assert lsm.stats.compactions > 5


class TestConcurrentKvClients:
    def test_many_clients_consistent(self):
        sim = Simulator()
        net = Network(sim)
        controller = NvmeController(sim, "kv")
        controller.add_namespace(Namespace(1, 262144))
        device = KvSsd(sim, controller, memtable_limit=100_000)
        KvSsdService(RpcServer(sim, UdpSocket(sim, net.endpoint("kv-dpu"))), device)
        clients = [
            KvSsdClient(
                RpcClient(sim, UdpSocket(sim, net.endpoint(f"c{i}"))), "kv-dpu"
            )
            for i in range(8)
        ]
        outcomes = {}

        def worker(index, stub):
            for i in range(25):
                key = f"client{index}:key{i}".encode()
                yield from stub.put(key, f"value-{index}-{i}".encode())
            value = yield from stub.get(f"client{index}:key0".encode())
            outcomes[index] = value

        for index, stub in enumerate(clients):
            sim.process(worker(index, stub))
        sim.run()
        assert len(outcomes) == 8
        for index, value in outcomes.items():
            assert value == f"value-{index}-0".encode()
        assert device.puts == 200


class TestReportRendering:
    def test_huge_and_tiny_floats(self):
        table = Table("edge", ["a"])
        table.add_row(123456.789)
        table.add_row(0.000123)
        text = table.render()
        assert "1.23e+05" in text
        assert "0.000123" in text

    def test_column_alignment_with_long_cells(self):
        table = Table("align", ["name", "value"])
        table.add_row("x", 1)
        table.add_row("a-very-long-row-name-indeed", 2)
        lines = table.render().splitlines()
        data_lines = lines[4:]
        positions = {line.rstrip()[-1] for line in data_lines}
        assert positions == {"1", "2"}
