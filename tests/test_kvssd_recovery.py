"""Tests for KV-SSD write-ahead-log recovery after power loss."""

import pytest

from repro.hw.nvme import Namespace, NvmeController
from repro.sim import Simulator
from repro.storage import KvSsd


def make_device(sim, memtable_limit=1000):
    controller = NvmeController(sim, "kv-flash")
    controller.add_namespace(Namespace(1, 65536))
    return KvSsd(sim, controller, memtable_limit=memtable_limit), controller


def power_cycle(sim, controller, memtable_limit=1000):
    """A fresh device object over the same flash: DRAM state gone."""
    return KvSsd(sim, controller, memtable_limit=memtable_limit)


class TestWalRecovery:
    def test_puts_survive(self):
        sim = Simulator()
        device, controller = make_device(sim)

        def scenario():
            for i in range(20):
                yield from device.put(f"k{i:02d}".encode(), f"v{i}".encode())
            fresh = power_cycle(sim, controller)
            assert fresh.lsm.get(b"k05") is None  # memtable really gone
            applied = yield from fresh.recover_from_wal()
            return fresh, applied

        fresh, applied = sim.run_process(scenario())
        assert applied == 20
        for i in range(20):
            assert fresh.lsm.get(f"k{i:02d}".encode()) == f"v{i}".encode()

    def test_deletes_replay_as_tombstones(self):
        sim = Simulator()
        device, controller = make_device(sim)

        def scenario():
            yield from device.put(b"keep", b"1")
            yield from device.put(b"drop", b"2")
            yield from device.delete(b"drop")
            fresh = power_cycle(sim, controller)
            yield from fresh.recover_from_wal()
            return fresh

        fresh = sim.run_process(scenario())
        assert fresh.lsm.get(b"keep") == b"1"
        assert fresh.lsm.get(b"drop") is None

    def test_latest_version_wins(self):
        sim = Simulator()
        device, controller = make_device(sim)

        def scenario():
            yield from device.put(b"k", b"old")
            yield from device.put(b"k", b"new")
            fresh = power_cycle(sim, controller)
            yield from fresh.recover_from_wal()
            return fresh

        assert sim.run_process(scenario()).lsm.get(b"k") == b"new"

    def test_empty_wal(self):
        sim = Simulator()
        device, controller = make_device(sim)

        def scenario():
            fresh = power_cycle(sim, controller)
            applied = yield from fresh.recover_from_wal()
            return applied

        assert sim.run_process(scenario()) == 0

    def test_appends_continue_after_recovery(self):
        sim = Simulator()
        device, controller = make_device(sim)

        def scenario():
            yield from device.put(b"before", b"1")
            fresh = power_cycle(sim, controller)
            yield from fresh.recover_from_wal()
            yield from fresh.put(b"after", b"2")
            # A second crash still recovers both.
            again = power_cycle(sim, controller)
            yield from again.recover_from_wal()
            return again

        again = sim.run_process(scenario())
        assert again.lsm.get(b"before") == b"1"
        assert again.lsm.get(b"after") == b"2"

    def test_large_values_span_blocks(self):
        sim = Simulator()
        device, controller = make_device(sim)
        big = b"B" * 10_000

        def scenario():
            yield from device.put(b"big", big)
            yield from device.put(b"small", b"s")
            fresh = power_cycle(sim, controller)
            yield from fresh.recover_from_wal()
            return fresh

        fresh = sim.run_process(scenario())
        assert fresh.lsm.get(b"big") == big
        assert fresh.lsm.get(b"small") == b"s"
