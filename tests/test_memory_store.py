"""Tests for the single-level store: placement, access, promotion, recovery."""

import pytest

from repro.common.errors import CapacityError, ConfigurationError
from repro.common.ids import ObjectId
from repro.hw.fpga.fabric import MemoryBank
from repro.hw.nvme import Namespace, NvmeController
from repro.memory import (
    DramBackend,
    NvmeBackend,
    PlacementHint,
    SegmentLocation,
    SingleLevelStore,
)
from repro.memory.store import BOOT_AREA_BLOCKS, NVME_WINDOW_BASE
from repro.sim import Simulator


def make_store(sim=None, dram_capacity=1 << 20, nvme_blocks=2048, with_hbm=False):
    sim = sim if sim is not None else Simulator()
    dram_bank = MemoryBank("ddr4-0", dram_capacity, 19.2e9, 80e-9)
    dram = DramBackend(sim, dram_bank, capacity=dram_capacity)
    controller = NvmeController(sim, "nvme-0")
    controller.add_namespace(Namespace(1, nvme_blocks))
    qp = controller.create_queue_pair()
    controller.start()
    nvme = NvmeBackend(sim, controller, qp)
    hbm = None
    if with_hbm:
        hbm = DramBackend(sim, MemoryBank("hbm", 1 << 20, 460e9, 120e-9), 1 << 20)
    return SingleLevelStore(sim, dram, nvme, hbm=hbm), sim


class TestPlacement:
    def test_default_goes_to_dram(self):
        store, __ = make_store()
        segment = store.allocate(128)
        assert segment.location is SegmentLocation.DRAM

    def test_durable_goes_to_nvme(self):
        store, __ = make_store()
        segment = store.allocate(128, durable=True)
        assert segment.location is SegmentLocation.NVME
        assert segment.bus_address >= NVME_WINDOW_BASE

    def test_cold_hint_goes_to_nvme(self):
        store, __ = make_store()
        assert (
            store.allocate(128, hint=PlacementHint.COLD).location
            is SegmentLocation.NVME
        )

    def test_performance_hint_prefers_hbm(self):
        store, __ = make_store(with_hbm=True)
        segment = store.allocate(128, hint=PlacementHint.PERFORMANCE_CRITICAL)
        assert segment.location is SegmentLocation.HBM

    def test_performance_hint_without_hbm_falls_back(self):
        store, __ = make_store(with_hbm=False)
        segment = store.allocate(128, hint=PlacementHint.PERFORMANCE_CRITICAL)
        assert segment.location is SegmentLocation.DRAM

    def test_capacity_is_sum_of_tiers(self):
        store, __ = make_store(with_hbm=True)
        assert store.capacity_bytes() == (
            store.dram.capacity + store.nvme.capacity + store.hbm.capacity
        )


class TestAccess:
    def test_write_read_roundtrip_dram(self):
        store, __ = make_store()
        segment = store.allocate(64)
        store.write(segment.oid, b"hello")
        assert store.read(segment.oid, 5) == b"hello"

    def test_write_read_roundtrip_nvme(self):
        store, __ = make_store()
        segment = store.allocate(64, durable=True)
        store.write(segment.oid, b"durable-data")
        assert store.read(segment.oid, 12) == b"durable-data"

    def test_offset_access(self):
        store, __ = make_store()
        segment = store.allocate(64)
        store.write(segment.oid, b"abcdef")
        store.write(segment.oid, b"XY", offset=2)
        assert store.read(segment.oid, 6) == b"abXYef"

    def test_out_of_bounds_rejected(self):
        store, __ = make_store()
        segment = store.allocate(8)
        with pytest.raises(CapacityError):
            store.write(segment.oid, b"123456789")

    def test_read_full_segment_by_default(self):
        store, __ = make_store()
        segment = store.allocate(16)
        assert len(store.read(segment.oid)) == 16

    def test_timed_read_charges_nvme_latency(self):
        store, sim = make_store()
        segment = store.allocate(64, durable=True)
        store.write(segment.oid, b"x" * 64)

        def scenario():
            yield from store.timed_read(segment.oid, 64)
            return sim.now

        elapsed = sim.run_process(scenario())
        # NVMe read must cost at least the flash read latency.
        assert elapsed >= 80e-6

    def test_timed_dram_faster_than_nvme(self):
        store, sim = make_store()
        hot = store.allocate(64)
        cold = store.allocate(64, durable=True)
        store.write(hot.oid, b"a" * 64)
        store.write(cold.oid, b"b" * 64)

        def timed(oid):
            local_store, local_sim = store, sim
            start = local_sim.now

            def proc():
                yield from local_store.timed_read(oid, 64)
                return local_sim.now - start

            return local_sim.run_process(proc())

        assert timed(hot.oid) < timed(cold.oid) / 100

    def test_free_then_lookup_fails(self):
        store, __ = make_store()
        segment = store.allocate(16)
        store.free(segment.oid)
        with pytest.raises(KeyError):
            store.read(segment.oid, 1)

    def test_free_space_reused(self):
        store, __ = make_store(dram_capacity=1024)
        first = store.allocate(1024)
        store.free(first.oid)
        second = store.allocate(1024)  # only fits if space was reclaimed
        assert second.size == 1024


class TestPromotion:
    def test_promote_preserves_data(self):
        store, __ = make_store()
        segment = store.allocate(32, hint=PlacementHint.COLD)
        store.write(segment.oid, b"move me around")
        store.promote(segment.oid, SegmentLocation.DRAM)
        assert segment.location is SegmentLocation.DRAM
        assert store.read(segment.oid, 14) == b"move me around"

    def test_promote_same_location_noop(self):
        store, __ = make_store()
        segment = store.allocate(32)
        assert store.promote(segment.oid, SegmentLocation.DRAM) is segment
        assert store.stats.promotions == 0

    def test_durable_cannot_leave_nvme(self):
        store, __ = make_store()
        segment = store.allocate(32, durable=True)
        with pytest.raises(ConfigurationError):
            store.promote(segment.oid, SegmentLocation.DRAM)


class TestPersistence:
    def test_recover_durable_segments(self):
        store, sim = make_store()
        durable = store.allocate(64, durable=True, oid=ObjectId(77))
        store.write(durable.oid, b"survives power loss")
        ephemeral = store.allocate(64)
        store.write(ephemeral.oid, b"volatile")
        store.persist_table()

        # Power cycle: DRAM is new/empty, NVMe backend object survives.
        recovered = SingleLevelStore.recover(sim,
            DramBackend(sim, store.dram.bank, store.dram.capacity), store.nvme
        )
        assert ObjectId(77) in recovered.table
        assert recovered.read(ObjectId(77), 19) == b"survives power loss"
        assert ephemeral.oid not in recovered.table

    def test_recovery_avoids_overwriting_live_extents(self):
        store, sim = make_store()
        durable = store.allocate(64, durable=True, oid=ObjectId(5))
        store.write(durable.oid, b"old data")
        store.persist_table()
        recovered = SingleLevelStore.recover(
            sim, DramBackend(sim, store.dram.bank, store.dram.capacity), store.nvme
        )
        fresh = recovered.allocate(64, durable=True)
        recovered.write(fresh.oid, b"new data")
        assert recovered.read(ObjectId(5), 8) == b"old data"

    def test_persist_reports_size(self):
        store, __ = make_store()
        store.allocate(64, durable=True)
        written = store.persist_table()
        assert written == 16 + 40  # header + one record

    def test_boot_area_reserved(self):
        """Allocations must never land inside the boot area."""
        store, __ = make_store()
        segment = store.allocate(64, durable=True)
        offset = segment.bus_address - NVME_WINDOW_BASE
        assert offset >= BOOT_AREA_BLOCKS * 4096
