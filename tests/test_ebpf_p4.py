"""Tests for the mini-P4 frontend (P4 -> eBPF, paper §2.2)."""

import struct

import pytest

from repro.common.errors import ConfigurationError
from repro.ebpf import BpfVm, Verifier
from repro.ebpf.p4 import FORWARD_BASE, VERDICT_DROP, P4Pipeline
from repro.hdl import compile_program


def l4_pipeline():
    pipeline = P4Pipeline("l4_filter")
    pipeline.header_field("dst_port", offset=2, size=2)
    table = pipeline.table("acl", key_field="dst_port")
    table.entry(22, action="drop")
    table.entry(80, action="forward", port=1)
    table.entry(443, action="forward", port=2)
    table.default(action="forward", port=0)
    return pipeline


def packet(dst_port, src_port=1234):
    return struct.pack("<HH", src_port, dst_port)


class TestCompilation:
    def test_compiles_and_verifies(self):
        program = l4_pipeline().compile()
        report = Verifier().verify(program)
        assert report.ok, report.reject_reason()

    def test_compiles_to_hardware(self):
        compiled = compile_program(l4_pipeline().compile())
        assert compiled.schedule.depth > 0
        assert "module ebpf_l4_filter" in compiled.verilog

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ConfigurationError):
            P4Pipeline("empty").compile()

    def test_table_needs_default(self):
        pipeline = P4Pipeline("p")
        pipeline.header_field("f", offset=0, size=2)
        pipeline.table("t", key_field="f").entry(1, action="drop")
        with pytest.raises(ConfigurationError, match="default"):
            pipeline.compile()

    def test_duplicate_match_rejected(self):
        pipeline = P4Pipeline("p")
        pipeline.header_field("f", offset=0, size=2)
        table = pipeline.table("t", key_field="f")
        table.entry(1, action="drop")
        with pytest.raises(ConfigurationError, match="duplicate"):
            table.entry(1, action="forward")

    def test_unknown_action(self):
        pipeline = P4Pipeline("p")
        pipeline.header_field("f", offset=0, size=2)
        with pytest.raises(ConfigurationError):
            pipeline.table("t", key_field="f").entry(1, action="teleport")

    def test_unknown_key_field(self):
        with pytest.raises(ConfigurationError):
            P4Pipeline("p").table("t", key_field="ghost")

    def test_bad_field_size(self):
        with pytest.raises(ConfigurationError):
            P4Pipeline("p").header_field("f", offset=0, size=3)


class TestSemantics:
    def run(self, pipeline, ctx):
        return BpfVm(pipeline.compile()).run(ctx).return_value

    def test_drop_entry(self):
        assert self.run(l4_pipeline(), packet(22)) == VERDICT_DROP

    def test_forward_entries(self):
        assert self.run(l4_pipeline(), packet(80)) == FORWARD_BASE + 1
        assert self.run(l4_pipeline(), packet(443)) == FORWARD_BASE + 2

    def test_default_forward(self):
        assert self.run(l4_pipeline(), packet(8080)) == FORWARD_BASE + 0

    def test_two_tables_sequential_apply(self):
        """A later table overrides an earlier forward (P4 apply order)."""
        pipeline = P4Pipeline("chain")
        pipeline.header_field("port", offset=0, size=2)
        pipeline.header_field("tos", offset=2, size=1)
        first = pipeline.table("route", key_field="port")
        first.entry(80, action="forward", port=1)
        first.default(action="forward", port=0)
        second = pipeline.table("qos", key_field="tos")
        second.entry(7, action="forward", port=9)  # premium queue
        second.default(action="forward", port=0)

        program = pipeline.compile()
        vm = BpfVm(program)
        # port 80, normal tos: second table's default wins (sequential).
        ctx = struct.pack("<HBx", 80, 0)
        assert vm.run(ctx).return_value == FORWARD_BASE + 0
        # port 80, premium tos: the qos table overrides to port 9.
        ctx = struct.pack("<HBx", 80, 7)
        assert vm.run(ctx).return_value == FORWARD_BASE + 9

    def test_drop_short_circuits_later_tables(self):
        pipeline = P4Pipeline("chain")
        pipeline.header_field("port", offset=0, size=2)
        pipeline.header_field("tos", offset=2, size=1)
        acl = pipeline.table("acl", key_field="port")
        acl.entry(23, action="drop")
        acl.default(action="forward", port=0)
        qos = pipeline.table("qos", key_field="tos")
        qos.entry(7, action="forward", port=9)
        qos.default(action="forward", port=0)
        vm = BpfVm(pipeline.compile())
        ctx = struct.pack("<HBx", 23, 7)
        assert vm.run(ctx).return_value == VERDICT_DROP

    def test_pipeline_executes_in_hardware_model(self):
        from repro.hdl import HardwarePipeline
        from repro.sim import Simulator

        sim = Simulator()
        hw = HardwarePipeline(sim, compile_program(l4_pipeline().compile()))
        assert hw.execute_now(packet(443)).return_value == FORWARD_BASE + 2
