"""Tests for the NVMe controller, flash timing, namespaces, and ZNS."""

import pytest

from repro.common.errors import CapacityError, ProtocolError
from repro.hw.nvme import (
    FlashArray,
    FlashTiming,
    LBA_SIZE,
    Namespace,
    NvmeCommand,
    NvmeController,
    NvmeOpcode,
    NvmeStatus,
    ZonedNamespace,
    ZoneState,
)
from repro.sim import Simulator


def make_ssd(sim, blocks=4096, **kwargs):
    ssd = NvmeController(sim, "nvme-0", **kwargs)
    ssd.add_namespace(Namespace(1, blocks))
    qp = ssd.create_queue_pair()
    ssd.start()
    return ssd, qp


class TestNamespace:
    def test_write_read_roundtrip(self):
        ns = Namespace(1, 100)
        ns.write_blocks(5, b"hello world")
        assert ns.read_blocks(5, 1)[:11] == b"hello world"

    def test_unwritten_reads_zero(self):
        ns = Namespace(1, 10)
        assert ns.read_blocks(0, 1) == b"\x00" * LBA_SIZE

    def test_multi_block_write(self):
        ns = Namespace(1, 10)
        data = bytes(range(256)) * 20  # 5120 bytes -> 2 blocks
        count = ns.write_blocks(0, data)
        assert count == 2
        assert ns.read_blocks(0, 2)[: len(data)] == data

    def test_out_of_range(self):
        ns = Namespace(1, 10)
        with pytest.raises(CapacityError):
            ns.read_blocks(9, 2)
        with pytest.raises(CapacityError):
            ns.write_blocks(10, b"x")


class TestFlashTiming:
    def test_read_faster_than_program(self):
        timing = FlashTiming()
        assert timing.read_latency < timing.program_latency < timing.erase_latency

    def test_parallel_reads_across_dies(self):
        sim = Simulator()
        flash = FlashArray(sim, channels=4, dies_per_channel=1)

        def read_many(pages):
            procs = [sim.process(flash.read_page(p)) for p in pages]
            yield sim.all_of(procs)
            return sim.now

        # Pages 0..3 hit distinct dies -> near-parallel.
        parallel = Simulator()
        flash_p = FlashArray(parallel, channels=4, dies_per_channel=1)

        def scenario_parallel():
            procs = [parallel.process(flash_p.read_page(p)) for p in range(4)]
            yield parallel.all_of(procs)
            return parallel.now

        t_parallel = parallel.run_process(scenario_parallel())

        serial = Simulator()
        flash_s = FlashArray(serial, channels=4, dies_per_channel=1)

        def scenario_serial():
            procs = [serial.process(flash_s.read_page(0)) for _ in range(4)]
            yield serial.all_of(procs)
            return serial.now

        t_serial = serial.run_process(scenario_serial())
        assert t_serial > 3 * t_parallel


class TestController:
    def test_write_then_read(self):
        sim = Simulator()
        ssd, qp = make_ssd(sim)

        def scenario():
            done = qp.submit(
                NvmeCommand(NvmeOpcode.WRITE, lba=10, data=b"persistent!")
            )
            completion = yield done
            assert completion.ok
            done = qp.submit(NvmeCommand(NvmeOpcode.READ, lba=10, block_count=1))
            completion = yield done
            return completion

        completion = sim.run_process(scenario())
        assert completion.ok
        assert completion.data[:11] == b"persistent!"
        assert ssd.commands_executed == 2

    def test_read_latency_dominated_by_flash(self):
        sim = Simulator()
        ssd, qp = make_ssd(sim)

        def scenario():
            completion = yield qp.submit(
                NvmeCommand(NvmeOpcode.READ, lba=0, block_count=1)
            )
            assert completion.ok
            return sim.now

        elapsed = sim.run_process(scenario())
        timing = ssd.flash.timing
        assert elapsed >= timing.read_latency
        assert elapsed < timing.read_latency * 2

    def test_queue_parallelism_beats_serial(self):
        """Deep queues exploit die parallelism (why NVMe queues exist)."""

        def run(depth_at_once):
            sim = Simulator()
            __, qp = make_ssd(sim)

            def scenario():
                if depth_at_once:
                    events = [
                        qp.submit(NvmeCommand(NvmeOpcode.READ, lba=i))
                        for i in range(16)
                    ]
                    yield sim.all_of(events)
                else:
                    for i in range(16):
                        yield qp.submit(NvmeCommand(NvmeOpcode.READ, lba=i))
                return sim.now

            return sim.run_process(scenario())

        assert run(True) < run(False) / 4

    def test_flush_succeeds(self):
        sim = Simulator()
        __, qp = make_ssd(sim)

        def scenario():
            completion = yield qp.submit(NvmeCommand(NvmeOpcode.FLUSH))
            return completion

        assert sim.run_process(scenario()).ok

    def test_unknown_namespace_fails(self):
        sim = Simulator()
        __, qp = make_ssd(sim)

        def scenario():
            completion = yield qp.submit(
                NvmeCommand(NvmeOpcode.READ, namespace_id=9, lba=0)
            )
            return completion

        assert sim.run_process(scenario()).status is NvmeStatus.LBA_OUT_OF_RANGE

    def test_out_of_range_read_fails(self):
        sim = Simulator()
        __, qp = make_ssd(sim, blocks=8)

        def scenario():
            completion = yield qp.submit(
                NvmeCommand(NvmeOpcode.READ, lba=100, block_count=1)
            )
            return completion

        assert sim.run_process(scenario()).status is NvmeStatus.LBA_OUT_OF_RANGE


class TestZns:
    def make_zns_ssd(self, sim, zones=4, zone_blocks=8):
        ssd = NvmeController(sim, "zns-0")
        ssd.add_namespace(ZonedNamespace(1, zones, zone_blocks))
        qp = ssd.create_queue_pair()
        ssd.start()
        return ssd, qp

    def test_append_returns_lba(self):
        sim = Simulator()
        __, qp = self.make_zns_ssd(sim)

        def scenario():
            first = yield qp.submit(
                NvmeCommand(NvmeOpcode.ZONE_APPEND, lba=0, data=b"a")
            )
            second = yield qp.submit(
                NvmeCommand(NvmeOpcode.ZONE_APPEND, lba=0, data=b"b")
            )
            return first, second

        first, second = sim.run_process(scenario())
        assert first.result_lba == 0
        assert second.result_lba == 1

    def test_sequential_write_enforced(self):
        zns = ZonedNamespace(1, 2, 8)
        zns.write(0, b"ok")
        with pytest.raises(ProtocolError):
            zns.write(5, b"skip ahead")

    def test_zone_full(self):
        zns = ZonedNamespace(1, 1, 2)
        zns.append(0, b"x" * LBA_SIZE)
        zns.append(0, b"y" * LBA_SIZE)
        assert zns.zones[0].state is ZoneState.FULL
        with pytest.raises(ProtocolError):
            zns.append(0, b"overflow")

    def test_read_past_write_pointer_rejected(self):
        zns = ZonedNamespace(1, 1, 8)
        zns.append(0, b"data")
        with pytest.raises(ProtocolError):
            zns.read_blocks(0, 2)

    def test_reset_zone(self):
        sim = Simulator()
        __, qp = self.make_zns_ssd(sim)

        def scenario():
            yield qp.submit(NvmeCommand(NvmeOpcode.ZONE_APPEND, lba=0, data=b"x"))
            completion = yield qp.submit(NvmeCommand(NvmeOpcode.ZONE_RESET, lba=0))
            return completion

        assert sim.run_process(scenario()).ok

    def test_zone_roundtrip(self):
        zns = ZonedNamespace(1, 2, 8)
        lba = zns.append(1, b"zoned payload")
        assert zns.read_blocks(lba, 1)[:13] == b"zoned payload"
