"""Time-series sampling and SLO alerting: series math, sampler cursors,
fire/resolve state machine, and the determinism contract end to end."""

import pytest

from repro.common.errors import ConfigurationError
from repro.eval.chaos import run_chaos
from repro.sim import ManualClock, Simulator
from repro.telemetry import (
    MetricsRegistry,
    Sampler,
    Series,
    SloMonitor,
    SloRule,
)


class TestSeries:
    def test_ring_buffer_keeps_newest(self):
        series = Series("s", capacity=3)
        for tick in range(5):
            series.append(float(tick), tick * 10.0)
        assert series.points == ((2.0, 20.0), (3.0, 30.0), (4.0, 40.0))
        assert series.last == (4.0, 40.0)

    def test_rejects_backwards_time(self):
        series = Series("s")
        series.append(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            series.append(0.5, 0.0)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            Series("s", capacity=0)

    def test_windowed_aggregation(self):
        series = Series("s")
        for tick in range(10):
            series.append(tick * 1.0, float(tick))
        assert series.mean(duration=2.0, now=9.0) == pytest.approx(8.0)
        assert series.max(duration=4.0, now=9.0) == 9.0
        # Window [5, 9] holds values 5..9; their median is 7.
        assert series.quantile(0.5, duration=4.0, now=9.0) == 7.0
        # Counter slope: value rises 1 per second.
        assert series.rate() == pytest.approx(1.0)
        assert series.rate(duration=3.0, now=9.0) == pytest.approx(1.0)

    def test_empty_aggregation_is_zero(self):
        series = Series("s")
        assert series.rate() == 0.0
        assert series.mean() == 0.0
        assert series.max() == 0.0
        assert series.window() == []


class TestSampler:
    def test_counter_and_gauge_series(self):
        reg = MetricsRegistry()
        clock = ManualClock()
        sampler = Sampler(reg, clock)
        sampler.watch("ops").watch("depth")
        ops = reg.counter("ops")
        depth = reg.gauge("depth")
        for tick in range(3):
            ops.inc(5)
            depth.set(float(tick))
            clock.advance(1.0)
            sampler.sample()
        assert sampler.series("ops").points == \
            ((1.0, 5.0), (2.0, 10.0), (3.0, 15.0))
        assert sampler.series("ops").rate() == pytest.approx(5.0)
        assert sampler.series("depth").last == (3.0, 2.0)
        assert sampler.ticks == 3

    def test_histogram_interval_stats_via_cursor(self):
        reg = MetricsRegistry()
        clock = ManualClock()
        sampler = Sampler(reg, clock)
        sampler.watch("lat")
        hist = reg.histogram("lat")
        hist.observe(1.0)
        hist.observe(3.0)
        clock.advance(1.0)
        sampler.sample()
        # Interval stats cover only this tick's fresh samples.
        assert sampler.series("lat.mean").last == (1.0, 2.0)
        assert sampler.series("lat.max").last == (1.0, 3.0)
        assert sampler.series("lat.count").last == (1.0, 2.0)
        hist.observe(10.0)
        clock.advance(1.0)
        sampler.sample()
        assert sampler.series("lat.mean").last == (2.0, 10.0)
        assert sampler.series("lat.max").last == (2.0, 10.0)
        assert sampler.series("lat.count").last == (2.0, 3.0)

    def test_silent_histogram_leaves_a_gap_not_a_zero(self):
        reg = MetricsRegistry()
        clock = ManualClock()
        sampler = Sampler(reg, clock)
        sampler.watch("lat")
        hist = reg.histogram("lat")
        hist.observe(4.0)
        clock.advance(1.0)
        sampler.sample()
        clock.advance(1.0)
        sampler.sample()  # no fresh samples this tick
        assert len(sampler.series("lat.mean")) == 1
        # ...but the cumulative count series still records every tick.
        assert sampler.series("lat.count").points == ((1.0, 1.0), (2.0, 1.0))

    def test_watch_resolves_lazily(self):
        reg = MetricsRegistry()
        clock = ManualClock()
        sampler = Sampler(reg, clock)
        sampler.watch("late.metric").watch_prefix("rpc")
        clock.advance(1.0)
        assert sampler.sample() == 0  # nothing registered yet, no error
        reg.counter("late.metric").inc()
        reg.counter("rpc.calls").inc(2)
        clock.advance(1.0)
        sampler.sample()
        assert sampler.series("late.metric").last == (2.0, 1.0)
        assert sampler.series("rpc.calls").last == (2.0, 2.0)

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ConfigurationError):
            Sampler(MetricsRegistry(), ManualClock(), period=0.0)

    def test_run_drives_workload_and_sampling_together(self):
        sim = Simulator()
        ops = sim.telemetry.counter("work.ops")
        sampler = Sampler(sim.telemetry, sim, period=1e-3)
        sampler.watch("work.ops")

        def workload():
            for __ in range(10):
                yield sim.timeout(1e-3)
                ops.inc()
            return ops.value

        assert sampler.run(sim, workload()) == 10
        series = sampler.series("work.ops")
        assert len(series) >= 9
        assert series.last[1] == pytest.approx(10.0, abs=1.0)

    def test_snapshot_bytes_are_canonical(self):
        def build():
            reg = MetricsRegistry()
            clock = ManualClock()
            sampler = Sampler(reg, clock)
            sampler.watch("b").watch("a")
            reg.counter("a").inc()
            reg.counter("b").inc(2)
            clock.advance(0.5)
            sampler.sample()
            return sampler.snapshot_bytes()

        first, second = build(), build()
        assert first == second
        lines = first.decode().splitlines()
        assert [line.split()[1] for line in lines] == ["a", "b"]


class TestSloRules:
    def test_parse_full_grammar(self):
        rule = SloRule.parse("rpc.call.latency p99 < 2ms for 10ms")
        assert rule.path == "rpc.call.latency"
        assert rule.stat == "p99"
        assert rule.op == "<"
        assert rule.threshold == pytest.approx(2e-3)
        assert rule.for_duration == pytest.approx(10e-3)
        assert rule.series_name == "rpc.call.latency.p99"

    def test_parse_units_and_bare_numbers(self):
        assert SloRule.parse("x value < 150us").threshold == \
            pytest.approx(1.5e-4)
        assert SloRule.parse("x value < 3ns").threshold == pytest.approx(3e-9)
        assert SloRule.parse("x value >= 0.95").threshold == 0.95
        assert SloRule.parse("x value < 5").for_duration == 0.0

    def test_value_and_rate_read_the_raw_series(self):
        assert SloRule.parse("ops rate > 100").series_name == "ops"
        assert SloRule.parse("depth value < 8").series_name == "depth"

    def test_rejects_malformed_rules(self):
        with pytest.raises(ConfigurationError):
            SloRule.parse("just three tokens")
        with pytest.raises(ConfigurationError):
            SloRule.parse("x p42 < 5")
        with pytest.raises(ConfigurationError):
            SloRule.parse("x value != 5")
        with pytest.raises(ConfigurationError):
            SloRule.parse("x value < 5 within 2ms")


def _monitored_sampler(rules):
    reg = MetricsRegistry()
    clock = ManualClock()
    sampler = Sampler(reg, clock)
    sampler.watch("lat")
    monitor = SloMonitor(sampler, rules)
    return reg.histogram("lat"), clock, sampler, monitor


class TestSloMonitor:
    RULE = "lat p99 < 2.0 for 2s"

    def _tick(self, hist, clock, sampler, value):
        hist.observe(value)
        clock.advance(1.0)
        sampler.sample()

    def test_fires_only_after_continuous_violation(self):
        hist, clock, sampler, monitor = _monitored_sampler(
            [SloRule.parse(self.RULE, name="lat-p99")]
        )
        self._tick(hist, clock, sampler, 5.0)  # breach at t=1
        assert monitor.firing == []
        self._tick(hist, clock, sampler, 5.0)  # still breaching, t=2
        self._tick(hist, clock, sampler, 5.0)  # t=3: 2s continuous -> fire
        assert monitor.firing == ["lat-p99"]
        assert monitor.fired_count("lat-p99") == 1

    def test_healthy_sample_resets_the_for_timer(self):
        hist, clock, sampler, monitor = _monitored_sampler(
            [SloRule.parse(self.RULE, name="lat-p99")]
        )
        self._tick(hist, clock, sampler, 5.0)
        self._tick(hist, clock, sampler, 0.5)  # healthy: timer resets
        self._tick(hist, clock, sampler, 5.0)
        self._tick(hist, clock, sampler, 5.0)
        assert monitor.firing == []  # only 1s of continuous breach again
        self._tick(hist, clock, sampler, 5.0)
        assert monitor.firing == ["lat-p99"]

    def test_resolves_and_logs_deterministically(self):
        def run():
            hist, clock, sampler, monitor = _monitored_sampler(
                [SloRule.parse(self.RULE, name="lat-p99")]
            )
            for value in (5.0, 5.0, 5.0, 5.0, 0.1, 5.0):
                self._tick(hist, clock, sampler, value)
            return monitor

        monitor = run()
        states = [(a.rule, a.state, a.at) for a in monitor.alerts]
        assert states == [
            ("lat-p99", "firing", 3.0),
            ("lat-p99", "resolved", 5.0),
        ]
        assert monitor.fired_count() == 1
        assert "lat-p99: ok (fired 1x)" in monitor.summary()
        assert monitor.alert_log_bytes() == run().alert_log_bytes()

    def test_no_data_is_neither_healthy_nor_breaching(self):
        __, clock, sampler, monitor = _monitored_sampler(
            [SloRule.parse("lat p99 < 2.0", name="lat-p99")]
        )
        clock.advance(1.0)
        sampler.sample()  # silent histogram: no p99 series point
        assert monitor.alerts == []
        assert monitor.firing == []

    def test_duplicate_rule_names_rejected(self):
        reg = MetricsRegistry()
        sampler = Sampler(reg, ManualClock())
        with pytest.raises(ConfigurationError):
            SloMonitor(sampler, [
                SloRule.parse("a value < 1", name="dup"),
                SloRule.parse("b value < 1", name="dup"),
            ])


class TestEndToEndDeterminism:
    """Same seed => byte-identical sampled series and alert logs (the
    chaos storm runs a real sampler + monitor under fault injection)."""

    CONFIG = dict(seed=11, dpu_count=3, replication=2, ops=48, preload=12)

    def test_chaos_series_and_alert_log_bytes_stable(self):
        first = run_chaos(**self.CONFIG)
        second = run_chaos(**self.CONFIG)
        assert first.samples > 0
        assert first.series == second.series
        assert first.slo_alert_log == second.slo_alert_log
        assert first.slo_alerts_fired == second.slo_alerts_fired
        assert first.slo_summary == second.slo_summary

    def test_different_seed_moves_the_series(self):
        first = run_chaos(**self.CONFIG)
        other = run_chaos(**{**self.CONFIG, "seed": 12})
        assert first.series != other.series
