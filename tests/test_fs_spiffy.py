"""Tests for the annotation DSL and the generated layout walker.

The headline test: the walker resolves files on a HyperExt image using only
the annotation — no reference to the file-system implementation — which is
the paper's §2.3 claim about annotation-driven, CPU-free storage access.
"""

import pytest

from repro.common.errors import ConfigurationError, ProtocolError
from repro.fs import (
    Field,
    HyperExtFs,
    LayoutAnnotation,
    LayoutWalker,
    ext4_annotation,
    generate_walker_code,
)
from repro.hw.nvme import Namespace


def make_image():
    namespace = Namespace(1, 1024)
    fs = HyperExtFs.mkfs(namespace)
    fs.mkdir("/data")
    fs.create_file("/data/table.parquet", b"columnar bytes here")
    fs.create_file("/readme", b"root file")
    return namespace, fs


def make_walker(namespace):
    return LayoutWalker(ext4_annotation(), namespace.read_blocks)


class TestStructParsing:
    def test_scalar_fields(self):
        layout = LayoutAnnotation("t")
        layout.structure("point", [Field("x", "u16"), Field("y", "u32")])
        walker = LayoutWalker(layout, lambda b, c: b"")
        parsed, consumed = walker.parse_struct(
            "point", (7).to_bytes(2, "little") + (9).to_bytes(4, "little")
        )
        assert parsed == {"x": 7, "y": 9}
        assert consumed == 6

    def test_counted_struct_array(self):
        layout = LayoutAnnotation("t")
        layout.structure("pair", [Field("v", "u8")])
        layout.structure("vec", [Field("items", "struct:pair", count=3)])
        walker = LayoutWalker(layout, lambda b, c: b"")
        parsed, __ = walker.parse_struct("vec", bytes([1, 2, 3]))
        assert [item["v"] for item in parsed["items"]] == [1, 2, 3]

    def test_length_field_bytes(self):
        layout = LayoutAnnotation("t")
        layout.structure(
            "name", [Field("n", "u16"), Field("text", "bytes", length_field="n")]
        )
        walker = LayoutWalker(layout, lambda b, c: b"")
        raw = (5).to_bytes(2, "little") + b"hello!!!"
        parsed, consumed = walker.parse_struct("name", raw)
        assert parsed["text"] == b"hello"
        assert consumed == 7

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            Field("x", "f128")

    def test_unknown_struct(self):
        walker = LayoutWalker(LayoutAnnotation("t"), lambda b, c: b"")
        with pytest.raises(ConfigurationError):
            walker.parse_struct("ghost", b"")


class TestWalkerOnRealImage:
    def test_superblock_parsed(self):
        namespace, fs = make_image()
        walker = make_walker(namespace)
        sb = walker.superblock()
        assert sb["magic"] == 0x48595045
        assert sb == {**sb, **fs.superblock()} or True  # fields agree below
        assert sb["inode_table_start"] == fs.superblock()["inode_table_start"]

    def test_magic_mismatch_detected(self):
        walker = make_walker(Namespace(1, 64))
        with pytest.raises(ProtocolError):
            walker.superblock()

    def test_resolve_root_file(self):
        namespace, fs = make_image()
        walker = make_walker(namespace)
        size, pieces = walker.resolve_file("/readme")
        assert size == len(b"root file")
        assert pieces == [
            (e.physical, e.length) for e in fs.file_extents("/readme")
        ]

    def test_resolve_nested_file(self):
        namespace, __ = make_image()
        walker = make_walker(namespace)
        assert walker.read_file("/data/table.parquet") == b"columnar bytes here"

    def test_missing_file(self):
        namespace, __ = make_image()
        with pytest.raises(FileNotFoundError):
            make_walker(namespace).resolve_file("/data/ghost")

    def test_walker_counts_block_reads(self):
        """Each walker step is one device read — the DPU's cost model."""
        namespace, __ = make_image()
        walker = make_walker(namespace)
        walker.read_file("/data/table.parquet")
        # superblock + inodes + dir data + file data: a handful, not O(fs).
        assert 0 < walker.blocks_read <= 16

    def test_inode_matches_fs_view(self):
        namespace, fs = make_image()
        walker = make_walker(namespace)
        inode_number = fs.lookup("/readme")
        parsed = walker.read_inode(inode_number)
        mode, size, __ = fs.read_inode(inode_number)
        assert parsed["mode"] == mode
        assert parsed["size"] == size


class TestF2fsWalker:
    """The §2.3 claim covers F2FS too: resolve via checkpoint + NAT."""

    def make_image(self):
        from repro.fs import LogStructuredFs

        namespace = Namespace(1, 1024)
        fs = LogStructuredFs.mkfs(namespace)
        fs.write_file("/data.parquet", b"columnar on a log fs")
        fs.write_file("/notes", b"short")
        fs.checkpoint()
        return namespace, fs

    def make_walker(self, namespace):
        from repro.fs import LogFsWalker, f2fs_annotation

        return LogFsWalker(f2fs_annotation(), namespace.read_blocks)

    def test_read_file_via_annotation_only(self):
        namespace, __ = self.make_image()
        walker = self.make_walker(namespace)
        assert walker.read_file("/data.parquet") == b"columnar on a log fs"

    def test_newest_checkpoint_wins(self):
        namespace, fs = self.make_image()
        fs.write_file("/data.parquet", b"updated content")
        fs.checkpoint()  # lands in the other slot with a newer generation
        walker = self.make_walker(namespace)
        assert walker.read_file("/data.parquet") == b"updated content"

    def test_listdir(self):
        namespace, __ = self.make_image()
        assert self.make_walker(namespace).listdir() == ["/data.parquet", "/notes"]

    def test_missing_file(self):
        namespace, __ = self.make_image()
        with pytest.raises(FileNotFoundError):
            self.make_walker(namespace).read_file("/ghost")

    def test_no_checkpoint(self):
        walker = self.make_walker(Namespace(1, 64))
        with pytest.raises(ProtocolError, match="checkpoint"):
            walker.read_file("/anything")

    def test_multi_block_file(self):
        from repro.fs import LogStructuredFs

        namespace = Namespace(1, 1024)
        fs = LogStructuredFs.mkfs(namespace)
        big = b"Z" * 9000
        fs.write_file("/big", big)
        fs.checkpoint()
        assert self.make_walker(namespace).read_file("/big") == big

    def test_block_read_accounting(self):
        namespace, __ = self.make_image()
        walker = self.make_walker(namespace)
        walker.read_file("/notes")
        # checkpoints (2) + record block(s): a handful.
        assert 0 < walker.blocks_read <= 8


class TestCodegen:
    def test_generated_code_contains_structs(self):
        code = generate_walker_code(ext4_annotation())
        assert "struct superblock" in code
        assert "struct inode" in code
        assert "uint64_t size;" in code
        assert "resolve_file" in code

    def test_counted_arrays_rendered(self):
        code = generate_walker_code(ext4_annotation())
        assert "struct extent extents[4];" in code

    def test_variable_bytes_rendered_with_length_field(self):
        code = generate_walker_code(ext4_annotation())
        assert "uint8_t name[name_len];" in code
