"""Tests for the CPU-centric baseline and the power/volume models."""

import pytest

from repro.baseline import (
    ConventionalServer,
    CpuCentricDatapath,
    CpuCosts,
    CpuModel,
    OsModel,
    SUPERMICRO_X12,
)
from repro.common.errors import ConfigurationError
from repro.ebpf import BpfVm, assemble
from repro.hw.nvme import Namespace, NvmeController
from repro.power import (
    EnergyMeter,
    HYPERION_POWER,
    HYPERION_VOLUME,
    volume_ratio,
)
from repro.power.energy import total_tdp
from repro.power.volume import DeviceVolume
from repro.baseline.server import SUPERMICRO_X12 as SERVER
from repro.sim import Simulator


class TestCpuModel:
    def test_jitter_varies_execution_time(self):
        sim = Simulator()
        cpu = CpuModel(sim)
        times = {cpu.execution_time(1000) for _ in range(50)}
        assert len(times) > 10  # jitter means no two runs alike

    def test_more_instructions_take_longer(self):
        sim = Simulator()
        cpu = CpuModel(sim, costs=CpuCosts(jitter_fraction=0.0,
                                           preemption_probability=0.0))
        assert cpu.execution_time(10_000) > cpu.execution_time(100)

    def test_execute_ebpf_advances_time(self):
        sim = Simulator()
        cpu = CpuModel(sim)
        vm = BpfVm(assemble("mov r0, 7\nexit"))

        def scenario():
            result = yield from cpu.execute_ebpf(vm)
            return result.return_value, sim.now

        value, elapsed = sim.run_process(scenario())
        assert value == 7
        assert elapsed > 0

    def test_memcpy_bandwidth(self):
        sim = Simulator()
        cpu = CpuModel(sim)

        def scenario():
            yield from cpu.memcpy(12_000_000)  # 1 ms at 12 GB/s
            return sim.now

        assert sim.run_process(scenario()) == pytest.approx(1e-3)


class TestOsModel:
    def test_receive_packet_charges_interrupt_syscall_copy(self):
        sim = Simulator()
        cpu = CpuModel(sim)
        os_model = OsModel(sim, cpu)

        def scenario():
            yield from os_model.receive_packet(1500)
            return sim.now

        elapsed = sim.run_process(scenario())
        assert elapsed > os_model.costs.interrupt_latency
        assert os_model.interrupts == 1
        assert os_model.syscalls == 1
        assert os_model.bytes_copied == 1500

    def test_storage_write_includes_block_layer(self):
        sim = Simulator()
        os_model = OsModel(sim, CpuModel(sim))

        def scenario():
            yield from os_model.write_storage(4096)
            return sim.now

        elapsed = sim.run_process(scenario())
        assert elapsed >= os_model.costs.block_layer_latency


class TestCpuCentricDatapath:
    def test_packet_with_persistence(self):
        sim = Simulator()
        cpu = CpuModel(sim)
        os_model = OsModel(sim, cpu)
        ssd = NvmeController(sim, "ssd")
        ssd.add_namespace(Namespace(1, 1024))
        path = CpuCentricDatapath(sim, cpu, os_model, ssd=ssd)
        vm = BpfVm(assemble("mov r0, 1\nexit"))

        def scenario():
            verdicts = []
            for _ in range(4):  # 4 x 1500 B overflows one 4 KiB page
                verdict = yield from path.process_packet(
                    vm, b"x" * 1500, persist=True
                )
                verdicts.append(verdict)
            return verdicts, sim.now

        verdicts, elapsed = sim.run_process(scenario())
        assert verdicts == [1, 1, 1, 1]
        # A page-cache flush hit flash: the path must cost >500 us total.
        assert elapsed > 500e-6
        assert path.packets_processed == 4
        assert path._log_lba >= 1

    def test_non_persistent_packet_cheaper(self):
        def run(persist):
            sim = Simulator()
            cpu = CpuModel(sim)
            os_model = OsModel(sim, cpu)
            ssd = NvmeController(sim, "ssd")
            ssd.add_namespace(Namespace(1, 1024))
            path = CpuCentricDatapath(sim, cpu, os_model, ssd=ssd)
            vm = BpfVm(assemble("mov r0, 1\nexit"))

            def scenario():
                yield from path.process_packet(vm, b"x" * 100, persist=persist)
                return sim.now

            return sim.run_process(scenario())

        assert run(False) < run(True)


class TestServerAndPower:
    def test_x12_envelope(self):
        assert SUPERMICRO_X12.max_tdp_watts == pytest.approx(1600.0)
        assert 10 < SUPERMICRO_X12.volume_liters < 20

    def test_hyperion_tdp_matches_paper(self):
        assert total_tdp(HYPERION_POWER) == pytest.approx(230.0)

    def test_energy_efficiency_in_paper_band(self):
        ratio = SUPERMICRO_X12.max_tdp_watts / total_tdp(HYPERION_POWER)
        assert 4 <= ratio <= 8

    def test_volume_compactness_in_paper_band(self):
        server_volume = DeviceVolume("x12", SUPERMICRO_X12.dimensions_mm)
        ratio = volume_ratio(server_volume, HYPERION_VOLUME)
        assert 5 <= ratio <= 10

    def test_energy_meter(self):
        meter = EnergyMeter(HYPERION_POWER)
        meter.charge("alveo-u280", duration=2.0, utilization=0.5)
        assert meter.total_joules() == pytest.approx(170.0)
        assert meter.energy_per_op(100) == pytest.approx(1.7)

    def test_energy_meter_validation(self):
        meter = EnergyMeter(HYPERION_POWER)
        with pytest.raises(ConfigurationError):
            meter.charge("unknown", 1.0)
        with pytest.raises(ConfigurationError):
            meter.charge("alveo-u280", -1.0)
        with pytest.raises(ConfigurationError):
            meter.energy_per_op(0)
