"""The unified telemetry plane: registry, histograms, tracing, determinism."""

import random
import statistics

import pytest

from repro.common.errors import ConfigurationError
from repro.eval.chaos import run_chaos
from repro.eval.telemetry import run_telemetry
from repro.sim import ManualClock, Simulator
from repro.telemetry import (
    NULL_SPAN,
    Histogram,
    MetricScope,
    MetricsRegistry,
    Tracer,
    percentile,
)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_sample(self):
        assert percentile([3.0], 0.0) == 3.0
        assert percentile([3.0], 1.0) == 3.0

    def test_interpolates(self):
        assert percentile([0.0, 1.0], 0.5) == 0.5

    def test_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 1.5)
        with pytest.raises(ConfigurationError):
            percentile([1.0], -0.1)

    def test_matches_statistics_quantiles(self):
        """Property-style: random samples against the stdlib's inclusive
        quantiles, which use the same linear-interpolation definition."""
        rng = random.Random(2023)
        for trial in range(25):
            n = rng.randint(2, 200)
            samples = [rng.expovariate(1.0) for _ in range(n)]
            cut = statistics.quantiles(samples, n=100, method="inclusive")
            for pct in (1, 10, 25, 50, 75, 90, 99):
                assert percentile(samples, pct / 100) == pytest.approx(
                    cut[pct - 1], rel=1e-12, abs=1e-15
                )


class TestRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        c = reg.counter("a.ops")
        c.inc()
        c.inc(4)
        assert c.value == 5
        g = reg.gauge("a.depth")
        g.set(3.5)
        g.dec(1.5)
        assert g.value == 2.0
        h = reg.histogram("a.lat")
        h.observe(1e-6)
        assert h.count == 1

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("c").inc(-1)

    def test_idempotent_and_type_conflict(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")

    def test_unique_scope_suffixes(self):
        reg = MetricsRegistry()
        assert reg.unique_scope("link").prefix == "link"
        assert reg.unique_scope("link").prefix == "link#1"
        assert reg.unique_scope("link").prefix == "link#2"

    def test_rename_moves_metrics(self):
        reg = MetricsRegistry()
        scope = reg.unique_scope("link")
        counter = scope.counter("frames")
        counter.inc()
        scope.rename("dpu0.uplink")
        assert "dpu0.uplink.frames" in reg
        assert "link.frames" not in reg
        assert counter.name == "dpu0.uplink.frames"
        assert reg.counter("dpu0.uplink.frames").value == 1

    def test_snapshot_is_sorted_canonical_bytes(self):
        reg = MetricsRegistry()
        reg.counter("b.second").inc(2)
        reg.counter("a.first").inc(1)
        snap = reg.snapshot_bytes()
        assert isinstance(snap, bytes)
        lines = snap.decode().splitlines()
        assert lines == sorted(lines)
        # Identical content => identical bytes, regardless of creation order.
        other = MetricsRegistry()
        other.counter("a.first").inc(1)
        other.counter("b.second").inc(2)
        assert other.snapshot_bytes() == snap

    def test_standalone_scopes_are_isolated(self):
        a = MetricScope.standalone("lsm")
        b = MetricScope.standalone("lsm")
        a.counter("flushes").inc()
        assert b.counter("flushes").value == 0


class TestHistogramQuantiles:
    def test_quantile_matches_statistics(self):
        rng = random.Random(99)
        h = Histogram("lat")
        samples = [rng.lognormvariate(0, 1) for _ in range(500)]
        for s in samples:
            h.observe(s)
        cut = statistics.quantiles(samples, n=100, method="inclusive")
        assert h.quantile(0.50) == pytest.approx(cut[49], rel=1e-12)
        assert h.quantile(0.99) == pytest.approx(cut[98], rel=1e-12)
        assert h.mean == pytest.approx(statistics.mean(samples))
        assert h.pstdev == pytest.approx(statistics.pstdev(samples))

    def test_bucket_counts_total(self):
        h = Histogram("lat")
        for value in (1e-9, 1e-6, 1e-3, 1.0, 100.0):
            h.observe(value)
        assert sum(count for __, count in h.bucket_counts()) == h.count == 5

    def test_empty_quantile_raises_naming_the_metric(self):
        """A quantile of nothing is a bug in the caller, not 0.0 — and the
        error must say which histogram so the bug is findable."""
        h = Histogram("rpc.client.dpu0.call_latency")
        with pytest.raises(ValueError) as exc:
            h.quantile(0.99)
        assert "rpc.client.dpu0.call_latency" in str(exc.value)
        assert "empty" in str(exc.value)
        # One observation later the same call works.
        h.observe(1e-6)
        assert h.quantile(0.99) == 1e-6

    def test_empty_histogram_still_renders(self):
        """The raise must not leak into canonical rendering paths: an
        empty histogram snapshots and renders as count=0."""
        reg = MetricsRegistry()
        reg.histogram("quiet.lat")
        assert b"quiet.lat" in reg.snapshot_bytes()
        assert "count=0" in reg.render()


class TestLazyHistogramMaterialization:
    """``observe`` is a bare append; the deferred sum/bin accounting must
    be *bit-identical* to eager per-observe accounting, reads interleaved
    or not."""

    def test_interleaved_reads_match_eager_accounting(self):
        from bisect import bisect_left

        rng = random.Random(7)
        h = Histogram("lat")
        eager_sum = 0.0
        eager_counts = [0] * (len(h.bounds) + 1)
        for index in range(2000):
            value = rng.lognormvariate(-6, 2)
            h.observe(value)
            eager_sum += value
            eager_counts[bisect_left(h.bounds, value)] += 1
            if index % 157 == 0:
                # Interleaved reads materialize partial tails; the float
                # sum must still equal sequential eager += exactly.
                assert h.sum == eager_sum
                assert h.count == index + 1
        assert h.sum == eager_sum
        assert [count for __, count in h.bucket_counts()] == eager_counts

    def test_snapshot_line_independent_of_read_pattern(self):
        rng = random.Random(13)
        samples = [rng.expovariate(1000.0) for __ in range(500)]
        read_often, read_once = Histogram("lat"), Histogram("lat")
        for index, value in enumerate(samples):
            read_often.observe(value)
            read_once.observe(value)
            if index % 17 == 0:
                read_often.bucket_counts()
                assert read_often.mean >= 0
        assert read_often.snapshot_line() == read_once.snapshot_line()

    def test_observe_itself_defers_all_accounting(self):
        h = Histogram("lat")
        h.observe(1e-3)
        # Nothing materialized until a read asks for it.
        assert h._summed == 0 and h._binned == 0
        assert h.sum == 1e-3
        assert h._summed == 1


class TestSpanFreeWhenTracingOff:
    def test_no_span_constructed_across_substrates(self, monkeypatch):
        """With tracing off, a KV get crossing transport -> net -> kvssd
        -> nvme -> pcie must construct zero Span objects: every
        instrumented site has to hit the ``NULL_SPAN`` fast path."""
        import repro.telemetry.tracing as tracing
        from repro.hw.net import Network
        from repro.hw.nvme import Namespace, NvmeController
        from repro.hw.pcie.link import PcieLink
        from repro.storage.kvssd import KvSsd, KvSsdClient, KvSsdService
        from repro.transport import RpcClient, RpcServer, UdpSocket

        def exploding_init(self, *args, **kwargs):
            raise AssertionError("Span constructed while tracing disabled")

        monkeypatch.setattr(tracing.Span, "__init__", exploding_init)

        sim = Simulator()
        network = Network(sim)
        controller = NvmeController(
            sim, "dpu0-nvme",
            link=PcieLink(sim, lanes=4, component="dpu0.pcie"),
        )
        controller.add_namespace(Namespace(1, 16384))
        device = KvSsd(sim, controller, memtable_limit=4)
        server = RpcServer(sim, UdpSocket(sim, network.endpoint("dpu0")))
        KvSsdService(server, device)
        stub = KvSsdClient(
            RpcClient(sim, UdpSocket(sim, network.endpoint("host"))), "dpu0"
        )

        def scenario():
            for index in range(8):
                yield from stub.put(f"key:{index:02d}".encode(), b"v" * 64)
            value = yield from stub.get(b"key:03")
            return value

        assert sim.run_process(scenario()) == b"v" * 64
        assert not sim.tracer.enabled


class TestTracer:
    def test_disabled_returns_null_span(self):
        sim = Simulator()
        span = sim.tracer.span("x", "net")
        assert span is NULL_SPAN

    def test_nesting_follows_the_clock(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        tracer.enable()
        with tracer.span("outer", "transport"):
            clock.advance(1.0)
            with tracer.span("inner", "nvme") as inner:
                clock.advance(0.5)
                inner.annotate(lba=7)
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "outer"
        assert root.duration == pytest.approx(1.5)
        assert root.children[0].name == "inner"
        assert root.children[0].attrs["lba"] == 7
        assert tracer.substrates() == {"transport", "nvme"}

    def test_traced_kv_get_crosses_substrates(self):
        """The acceptance demo: one KV get spans >= 3 substrates."""
        report = run_telemetry()
        assert report.value == b"v" * 64
        assert len(report.substrates) >= 3
        assert {"net", "nvme", "transport"} <= set(report.substrates)
        # The tree actually nests: rpc.call -> ... -> nvme.cmd.
        assert report.span_count >= 5
        max_depth = max(
            (line.count("  ") for line in report.trace.splitlines()), default=0
        )
        assert max_depth >= 2


class TestLegacyFacades:
    def test_link_stats_read_through(self):
        from repro.hw.net import Frame, Network

        sim = Simulator()
        network = Network(sim)
        a = network.endpoint("a")
        network.endpoint("b")

        def send():
            yield from a.send(Frame("a", "b", None, payload_size=100))

        sim.run_process(send())
        assert a.stats().tx.frames_sent == 1
        assert sim.telemetry.counter("net.link.a.up.frames_sent").value == 1

    def test_store_stats_facade_writes_through(self):
        from repro.memory.store import StoreStats

        stats = StoreStats()
        stats.allocations += 2
        stats.reads += 1
        assert stats.allocations == 2
        assert stats.reads == 1

    def test_clock_shim_reexports(self):
        from repro.faults.clock import ManualClock as Shimmed
        from repro.sim.clock import ManualClock as Canonical

        assert Shimmed is Canonical


class TestDeterministicSnapshots:
    # Small enough to run in a couple of seconds, big enough to exercise
    # retransmits, failover, and the fault storm.
    CONFIG = dict(seed=11, dpu_count=3, replication=2, ops=48, preload=12)

    def test_same_seed_same_bytes(self):
        first = run_chaos(**self.CONFIG)
        second = run_chaos(**self.CONFIG)
        assert first.telemetry, "chaos run produced an empty snapshot"
        assert first.telemetry == second.telemetry
        assert first.schedule == second.schedule

    def test_different_seed_different_bytes(self):
        first = run_chaos(**self.CONFIG)
        other = run_chaos(**{**self.CONFIG, "seed": 12})
        assert first.telemetry != other.telemetry
