"""Tests for atomic multi-segment transactions and crash recovery."""

import pytest

from repro.common.errors import ProtocolError
from repro.common.ids import ObjectId
from repro.hw.fpga.fabric import MemoryBank
from repro.hw.nvme import Namespace, NvmeController
from repro.memory import DramBackend, NvmeBackend, SingleLevelStore
from repro.sim import Simulator
from repro.storage.transactions import Transaction, TransactionLog


def make_store(sim=None, nvme_blocks=4096):
    sim = sim if sim is not None else Simulator()
    dram = DramBackend(sim, MemoryBank("ddr4-0", 1 << 20, 19.2e9, 80e-9), 1 << 20)
    controller = NvmeController(sim, "txn-ssd")
    controller.add_namespace(Namespace(1, nvme_blocks))
    qp = controller.create_queue_pair()
    controller.start()
    return SingleLevelStore(sim, dram, NvmeBackend(sim, controller, qp)), sim


class TestCommit:
    def test_single_write_commit(self):
        store, sim = make_store()
        log = TransactionLog(store, log_oid=ObjectId(9))
        account = store.allocate(64, durable=True, oid=ObjectId(1))
        txn = log.begin()
        txn.write(account.oid, b"balance=100")

        def scenario():
            yield from txn.commit()

        sim.run_process(scenario())
        assert store.read(account.oid, 11) == b"balance=100"
        assert txn.state == "committed"
        assert log.commits == 1

    def test_multi_segment_atomicity(self):
        store, sim = make_store()
        log = TransactionLog(store)
        a = store.allocate(64, durable=True, oid=ObjectId(1))
        b = store.allocate(64, durable=True, oid=ObjectId(2))
        store.write(a.oid, b"A=100")
        store.write(b.oid, b"B=000")
        txn = log.begin()
        txn.write(a.oid, b"A=050")
        txn.write(b.oid, b"B=050")

        def scenario():
            yield from txn.commit()

        sim.run_process(scenario())
        assert store.read(a.oid, 5) == b"A=050"
        assert store.read(b.oid, 5) == b"B=050"

    def test_abort_applies_nothing(self):
        store, sim = make_store()
        log = TransactionLog(store)
        a = store.allocate(64, durable=True, oid=ObjectId(1))
        store.write(a.oid, b"original")
        txn = log.begin()
        txn.write(a.oid, b"discard!")
        txn.abort()
        assert store.read(a.oid, 8) == b"original"
        with pytest.raises(ProtocolError):
            sim.run_process(txn.commit())

    def test_double_commit_rejected(self):
        store, sim = make_store()
        log = TransactionLog(store)
        a = store.allocate(64, durable=True, oid=ObjectId(1))
        txn = log.begin()
        txn.write(a.oid, b"x")
        sim.run_process(txn.commit())
        with pytest.raises(ProtocolError):
            sim.run_process(txn.commit())

    def test_write_outside_bounds_rejected_early(self):
        store, __ = make_store()
        log = TransactionLog(store)
        a = store.allocate(8, durable=True, oid=ObjectId(1))
        txn = log.begin()
        with pytest.raises(ProtocolError):
            txn.write(a.oid, b"way too long for 8 bytes")

    def test_ephemeral_segment_rejected(self):
        store, __ = make_store()
        log = TransactionLog(store)
        scratch = store.allocate(64)  # not durable
        txn = log.begin()
        with pytest.raises(ProtocolError, match="durable"):
            txn.write(scratch.oid, b"x")

    def test_txn_ids_monotonic(self):
        store, __ = make_store()
        log = TransactionLog(store)
        assert log.begin().txn_id < log.begin().txn_id


class TestRecovery:
    def test_replay_committed_records(self):
        store, sim = make_store()
        log = TransactionLog(store, log_oid=ObjectId(9))
        a = store.allocate(64, durable=True, oid=ObjectId(1))
        txn = log.begin()
        txn.write(a.oid, b"committed-value")
        sim.run_process(txn.commit())

        # Simulate losing the in-place apply: clobber the segment, then
        # recover from the redo log.
        store.write(a.oid, b"\x00" * 15)
        fresh_log = TransactionLog(store, log_oid=ObjectId(9))
        applied = fresh_log.recover()
        assert applied == 1
        assert store.read(a.oid, 15) == b"committed-value"

    def test_torn_tail_ignored(self):
        """A record without a valid commit marker must not apply."""
        store, sim = make_store()
        log = TransactionLog(store, log_oid=ObjectId(9))
        a = store.allocate(64, durable=True, oid=ObjectId(1))
        store.write(a.oid, b"before-crash")
        txn = log.begin()
        txn.write(a.oid, b"never-landed")
        sim.run_process(txn.commit())
        # Corrupt the commit marker (the "crash" happened mid-append).
        log_data = bytearray(store.read(log.log_segment.oid))
        log_data[log._cursor - 1] ^= 0xFF
        store.write(log.log_segment.oid, bytes(log_data))
        store.write(a.oid, b"before-crash")

        fresh_log = TransactionLog(store, log_oid=ObjectId(9))
        applied = fresh_log.recover()
        assert applied == 0
        assert store.read(a.oid, 12) == b"before-crash"

    def test_new_log_continues_after_old_commits(self):
        store, sim = make_store()
        log = TransactionLog(store, log_oid=ObjectId(9))
        a = store.allocate(64, durable=True, oid=ObjectId(1))
        txn = log.begin()
        txn.write(a.oid, b"first")
        sim.run_process(txn.commit())
        first_id = txn.txn_id

        reopened = TransactionLog(store, log_oid=ObjectId(9))
        txn2 = reopened.begin()
        assert txn2.txn_id > first_id
        txn2.write(a.oid, b"second")
        sim.run_process(txn2.commit())
        assert store.read(a.oid, 6) == b"second"
        # Both records replay in order.
        assert TransactionLog(store, log_oid=ObjectId(9)).recover() == 2

    def test_log_full(self):
        store, sim = make_store()
        log = TransactionLog(store, log_oid=ObjectId(9), log_bytes=4096)
        a = store.allocate(2048, durable=True, oid=ObjectId(1))
        txn = log.begin()
        txn.write(a.oid, b"x" * 2048)
        sim.run_process(txn.commit())
        txn2 = log.begin()
        txn2.write(a.oid, b"y" * 2048)
        with pytest.raises(ProtocolError, match="full"):
            sim.run_process(txn2.commit())
