"""The E18/SIM simulator-core micro-benchmarks (repro.bench.micro)."""

import pytest

import repro.bench.micro as micro
from repro.bench import SPECS
from repro.bench.micro import run_micro


@pytest.fixture()
def tiny_workloads(monkeypatch):
    """Shrink the workloads so the smoke test runs in milliseconds."""
    monkeypatch.setattr(micro, "ENGINE_PROCESSES", 2)
    monkeypatch.setattr(micro, "ENGINE_TICKS", 50)
    monkeypatch.setattr(micro, "RPC_CALLS", 5)
    monkeypatch.setattr(micro, "OBSERVE_SAMPLES", 200)


class TestRunMicro:
    def test_report_shape(self, tiny_workloads):
        report = run_micro(seed=0, repeats=1)
        # Throughputs are wall-clock and machine-dependent; only their
        # positivity and rounding are checkable.
        assert report.events_per_sec > 0
        assert report.rpc_roundtrips_per_sec > 0
        assert report.observes_per_sec > 0
        for rate in (report.events_per_sec, report.rpc_roundtrips_per_sec,
                     report.observes_per_sec):
            assert rate == float(round(rate))
        # The workload counts are deterministic companions.
        assert report.events_run == 2 * (50 + 2)
        assert report.rpc_roundtrips == 5
        assert report.observes == 200
        assert report.repeats == 1

    def test_repeats_validated(self):
        with pytest.raises(ValueError):
            run_micro(repeats=0)

    def test_registered_in_suite_as_sim(self):
        spec = next(s for s in SPECS if s.key == "sim")
        assert spec.run is run_micro
        assert spec.seeded

    def test_sim_metrics_are_volatile_throughputs(self, tiny_workloads):
        spec = next(s for s in SPECS if s.key == "sim")
        metrics = spec.extract(run_micro(seed=0, repeats=1))
        tracked = {
            name: m for name, m in metrics.items() if m.better == "higher"
        }
        assert set(tracked) == {
            "engine_events_per_sec",
            "rpc_roundtrips_per_sec",
            "histogram_observes_per_sec",
        }
        # Wall-clock numbers must carry the volatile tag so within-gate
        # jitter never churns the artifact history.
        assert all(m.volatile for m in tracked.values())
        info = {name: m for name, m in metrics.items() if m.better == "info"}
        assert all(not m.volatile for m in info.values())
