"""Tests for repro.georep: WAN fabric, log shipping, region failover."""

import types

import pytest

from repro.common.errors import ConfigurationError, DegradedError
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.georep import (
    Consistency,
    GeoCluster,
    GeoKvClient,
    WanFabric,
    WanSpec,
    wan_component,
)
from repro.hw.net import Network
from repro.sim import Simulator
from repro.transport import UdpSocket


def drain(sim, cluster):
    """Stop the shippers and run the heap dry (post-scenario idiom)."""
    cluster.stop()
    sim.run()


class TestWanFabric:
    def test_cross_region_delivery_pays_propagation(self):
        sim = Simulator()
        fabric = WanFabric(sim)
        fabric.add_region("a", Network(sim))
        fabric.add_region("b", Network(sim))
        fabric.connect("a", "b", bandwidth=10e9, propagation=2e-3)
        fabric.connect("b", "a", bandwidth=10e9, propagation=6e-3)
        sock_a = UdpSocket(sim, fabric.endpoint("a", "host-a"))
        sock_b = UdpSocket(sim, fabric.endpoint("b", "host-b"))
        stamps = {}

        def receiver():
            yield sock_b.recvfrom()
            stamps["a_to_b"] = sim.now
            yield from sock_b.sendto("host-a", b"pong", 64)

        def sender():
            yield from sock_a.sendto("host-b", b"ping", 64)
            yield sock_a.recvfrom()
            stamps["rtt"] = sim.now

        sim.process(receiver())
        sim.run_process(sender())
        # The forward path pays its 2 ms; the return pays its 6 ms.
        assert 2e-3 < stamps["a_to_b"] < 3e-3
        assert 8e-3 < stamps["rtt"] < 10e-3

    def test_duplicate_address_across_regions_rejected(self):
        sim = Simulator()
        fabric = WanFabric(sim)
        fabric.add_region("a", Network(sim))
        fabric.add_region("b", Network(sim))
        fabric.connect("a", "b", bandwidth=10e9, propagation=1e-3)
        fabric.endpoint("a", "shared-name")
        with pytest.raises(ConfigurationError):
            fabric.endpoint("b", "shared-name")

    def test_partition_heal_event_log(self):
        sim = Simulator()
        fabric = WanFabric(sim)
        fabric.add_region("a", Network(sim))
        fabric.add_region("b", Network(sim))
        fabric.connect("a", "b", bandwidth=10e9, propagation=1e-3)
        fabric.connect("b", "a", bandwidth=10e9, propagation=1e-3)
        fabric.partition("a", "b")
        assert fabric.link("a", "b").partitioned
        assert not fabric.link("b", "a").partitioned
        fabric.heal("a", "b")
        assert not fabric.link("a", "b").partitioned
        log = fabric.events_bytes().decode()
        assert "wan partition a->b" in log
        assert "wan heal a->b" in log


class TestWanPartitionFaults:
    def test_plan_spec_addresses_one_direction(self):
        plan = FaultPlan(seed=3)
        spec = plan.wan_partition("cut", "a", "b", 1e-3, 2e-3)
        assert spec.kind is FaultKind.WAN_PARTITION
        assert spec.component == wan_component("a", "b") == "wan.a->b"
        assert spec.window == (1e-3, 2e-3)

    def test_windowed_partition_blocks_shipping_then_heals(self):
        sim = Simulator()
        plan = FaultPlan(seed=7)
        plan.wan_partition("cut-ab", "a", "b", 10e-3, 40e-3)
        plan.wan_partition("cut-ba", "b", "a", 10e-3, 40e-3)
        injector = FaultInjector(sim, plan)
        cluster = GeoCluster(sim, ("a", "b"), injector=injector)
        client = GeoKvClient(sim, cluster, "w", home="a")
        seen = {}

        def driver():
            yield from client.put(b"k1", b"v1")
            yield sim.timeout(8e-3)  # now ~9 ms: k1 replicated
            seen["k1_before"] = b"k1" in cluster.region("b").version
            yield sim.timeout(4e-3)  # now ~13 ms: inside the window
            yield from client.put(b"k2", b"v2")
            yield sim.timeout(20e-3)  # now ~33 ms: still inside
            seen["k2_during"] = b"k2" in cluster.region("b").version
            yield sim.timeout(60e-3)  # heal + breaker reset + reship
            seen["k2_after"] = b"k2" in cluster.region("b").version

        sim.process(driver())
        sim.run(until=0.2)
        drain(sim, cluster)
        assert seen == {"k1_before": True, "k2_during": False,
                        "k2_after": True}
        # The injector recorded the partition holding both directions.
        kinds = {record.component for record in injector.log}
        assert kinds == {"wan.a->b", "wan.b->a"}
        assert all(record.kind is FaultKind.WAN_PARTITION
                   for record in injector.log)

    def test_asymmetric_partition_orphans_the_ack(self):
        """Requests cross, responses vanish: the write lands at the
        primary but the client never hears it — so it replays to the
        next region, and LWW keeps replica stores convergent."""
        sim = Simulator()
        cluster = GeoCluster(sim, ("a", "b"))
        client = GeoKvClient(sim, cluster, "w", home="b")
        # Drop only a's outbound traffic to b: b->a still flows.
        cluster.fabric.partition("a", "b")

        def driver():
            yield sim.timeout(1e-3)
            stamp, region = yield from client.put(b"k", b"v")
            return region

        sim.process(driver())
        sim.run(until=0.2)
        drain(sim, cluster)
        # The orphaned attempt was appended at a (requests arrive; with
        # retransmits the handler may run more than once)...
        assert cluster.region("a").log.head >= 1
        # ...but the ack was lost, so the client replayed at b.
        assert cluster.region("b").log.head == 1
        assert client.failovers == 1
        assert client.replayed_writes == 1
        assert client.current == "b"


class TestConsistencyModes:
    @staticmethod
    def _put_latency(mode):
        sim = Simulator()
        wan = (
            WanSpec("a", "b", propagation=2e-3),
            WanSpec("b", "a", propagation=2e-3),
            WanSpec("a", "c", propagation=8e-3),
            WanSpec("c", "a", propagation=8e-3),
        )
        cluster = GeoCluster(sim, ("a", "b", "c"), wan=wan,
                             consistency=mode)
        client = GeoKvClient(sim, cluster, "m", home="a")
        out = []

        def driver():
            yield sim.timeout(1e-3)
            started = sim.now
            yield from client.put(b"k", b"v")
            out.append(sim.now - started)

        sim.process(driver())
        sim.run(until=0.3)
        drain(sim, cluster)
        assert out
        return out[0]

    def test_ack_latency_orders_by_mode(self):
        latency = {mode: self._put_latency(mode) for mode in Consistency}
        # Async acks at local-WAL cost; quorum waits for the *near*
        # peer's round trip; sync pays the far peer's.
        assert latency[Consistency.ASYNC] < 2e-3
        assert latency[Consistency.ASYNC] < latency[Consistency.QUORUM]
        assert latency[Consistency.QUORUM] < latency[Consistency.SYNC]
        assert latency[Consistency.QUORUM] > 4e-3  # near RTT (2+2 ms)
        assert latency[Consistency.SYNC] > 16e-3  # far RTT (8+8 ms)

    def test_quorum_survives_one_partitioned_peer(self):
        sim = Simulator()
        cluster = GeoCluster(sim, ("a", "b", "c"),
                             consistency=Consistency.QUORUM)
        client = GeoKvClient(sim, cluster, "m", home="a")
        cluster.fabric.partition("a", "c", symmetric=True)
        done = []

        def driver():
            yield sim.timeout(1e-3)
            yield from client.put(b"k", b"v")
            done.append(sim.now)

        sim.process(driver())
        sim.run(until=0.3)
        drain(sim, cluster)
        # Majority = self + b; the partitioned c is not needed.
        assert done and done[0] < 30e-3


class TestStaleReads:
    @staticmethod
    def _cluster(sim):
        cluster = GeoCluster(sim, ("a", "b"))
        client = GeoKvClient(sim, cluster, "w", home="b")
        return cluster, client

    def test_bounded_read_serves_from_follower(self):
        sim = Simulator()
        cluster, client = self._cluster(sim)
        got = []

        def driver():
            yield from client.put(b"k", b"fresh")
            yield sim.timeout(50e-3)  # replication + heartbeats settle
            value = yield from client.get(b"k", max_staleness=1.0)
            got.append(value)

        sim.process(driver())
        sim.run(until=0.2)
        drain(sim, cluster)
        assert got == [b"fresh"]
        assert client.stale_reads_served == 1
        assert client.max_staleness_served <= 1.0

    def test_too_stale_falls_back_to_primary(self):
        sim = Simulator()
        cluster, client = self._cluster(sim)
        got = []

        def driver():
            yield from client.put(b"k", b"fresh")
            yield sim.timeout(50e-3)
            # No follower is ever *zero*-stale w.r.t. a remote primary.
            value = yield from client.get(b"k", max_staleness=1e-12)
            got.append(value)

        sim.process(driver())
        sim.run(until=0.2)
        drain(sim, cluster)
        assert got == [b"fresh"]
        assert client.stale_reads_served == 0
        assert client._stale_fallbacks.value >= 1

    def test_brownout_serve_stale_triggers_follower_reads(self):
        sim = Simulator()
        cluster = GeoCluster(sim, ("a", "b"))
        ladder = types.SimpleNamespace(serve_stale=True)
        client = GeoKvClient(sim, cluster, "w", home="b", brownout=ladder)
        got = []

        def driver():
            yield from client.put(b"k", b"v")
            yield sim.timeout(50e-3)
            value = yield from client.get(b"k")
            got.append(value)

        sim.process(driver())
        sim.run(until=0.2)
        drain(sim, cluster)
        assert got == [b"v"]
        assert client.stale_reads_served == 1


class TestDisasterRecovery:
    def test_zero_lost_acked_writes_through_region_loss(self):
        sim = Simulator()
        cluster = GeoCluster(sim, ("a", "b"))
        client = GeoKvClient(sim, cluster, "w", home="b")
        keys = [f"k{i}".encode() for i in range(6)]
        acked = {}

        def driver():
            for index, key in enumerate(keys):
                value = b"pre-%d" % index
                stamp, region = yield from client.put(key, value)
                acked[key] = ((stamp, region), value)
            yield sim.timeout(20e-3)  # let replication catch up
            cluster.fabric.isolate("a")
            for index, key in enumerate(keys):
                value = b"post-%d" % index
                stamp, region = yield from client.put(key, value)
                acked[key] = ((stamp, region), value)
            yield sim.timeout(50e-3)
            cluster.fabric.rejoin("a")
            yield sim.timeout(100e-3)  # breaker reset + backlog reships

        sim.process(driver())
        sim.run(until=0.5)
        drain(sim, cluster)
        assert client.failovers >= 1
        assert client.replayed_writes >= 0
        assert client.current == "b"
        for key in keys:
            expected = acked[key][1]
            got_a = sim.run_process(cluster.region("a").store.get(key))
            got_b = sim.run_process(cluster.region("b").store.get(key))
            # Every acked write survived, and the regions reconverged.
            assert got_b == expected
            assert got_a == got_b

    def test_failed_walk_raises_degraded(self):
        sim = Simulator()
        cluster = GeoCluster(sim, ("a", "b"))
        client = GeoKvClient(sim, cluster, "w", home="a",
                             rounds=1, timeout=2e-3, deadline=5e-3)
        cluster.fabric.isolate("a")
        cluster.fabric.isolate("b")
        # The client's home network still reaches its own gateway; cut
        # that too by blackholing the gateway address locally.
        cluster.region("a").network.switch.blackhole("a-gw")
        outcome = []

        def driver():
            yield sim.timeout(1e-3)
            try:
                yield from client.put(b"k", b"v")
            except DegradedError:
                outcome.append("degraded")

        sim.process(driver())
        sim.run(until=0.2)
        drain(sim, cluster)
        assert outcome == ["degraded"]


class TestLogTruncation:
    def test_log_reclaimed_once_every_peer_acked(self):
        # A long-lived region's log must stay bounded: entries every
        # peer has acknowledged past can never be shipped again, so the
        # region reclaims them on peer acks and counts the drops.
        sim = Simulator()
        cluster = GeoCluster(sim, ("a", "b", "c"))
        client = GeoKvClient(sim, cluster, "w", home="a")

        def driver():
            yield sim.timeout(1e-3)
            for index in range(20):
                yield from client.put(b"k%d" % (index % 5), b"v%d" % index)
                yield sim.timeout(0.5e-3)

        sim.process(driver())
        sim.run(until=0.3)
        drain(sim, cluster)
        log = cluster.region("a").log
        assert log.head >= 20
        # Everything shipped and acked by both peers: fully reclaimed.
        assert log.base == log.head
        assert log.entries == []
        assert log._truncated.value == log.head
        # The replicas still hold the data the reclaimed entries carried.
        for name in ("b", "c"):
            got = sim.run_process(cluster.region(name).store.get(b"k4"))
            assert got == b"v19"

    def test_reads_below_truncation_base_rejected(self):
        sim = Simulator()
        cluster = GeoCluster(sim, ("a", "b"))
        client = GeoKvClient(sim, cluster, "w", home="a")

        def driver():
            yield sim.timeout(1e-3)
            yield from client.put(b"k", b"v")

        sim.process(driver())
        sim.run(until=0.2)
        drain(sim, cluster)
        log = cluster.region("a").log
        assert log.base >= 1
        with pytest.raises(KeyError):
            log.entry(0)
        with pytest.raises(KeyError):
            log.since(0, 4)


class TestDeterminism:
    def test_replication_telemetry_byte_identical(self):
        def run_once():
            sim = Simulator()
            cluster = GeoCluster(sim, ("a", "b"))
            client = GeoKvClient(sim, cluster, "w", home="b")

            def driver():
                for index in range(10):
                    yield from client.put(b"k%d" % (index % 3), b"v")
                    yield sim.timeout(1e-3)

            sim.process(driver())
            sim.run(until=0.1)
            drain(sim, cluster)
            return sim.telemetry.snapshot_bytes()

        assert run_once() == run_once()
