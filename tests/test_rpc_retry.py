"""Tests for RPC timeout/retry over lossy datagram transports."""

import pytest

from repro.common.errors import ConfigurationError
from repro.hw.net.link import Link
from repro.hw.net.port import NetworkPort
from repro.sim import Simulator
from repro.transport import (
    RetryBudget,
    RetryPolicy,
    RpcClient,
    RpcError,
    RpcServer,
    UdpSocket,
)


def lossy_rpc_pair(sim, loss_fn, retry_budget=None):
    """Client whose *requests* traverse a lossy link; replies are clean."""
    client_port = NetworkPort(sim, "client")
    server_port = NetworkPort(sim, "server")
    to_server = Link(sim, loss_fn=loss_fn)
    to_client = Link(sim)
    client_port.add_route("*", to_server)
    server_port.attach_rx(to_server)
    server_port.add_route("*", to_client)
    client_port.attach_rx(to_client)
    server = RpcServer(sim, UdpSocket(sim, server_port))
    client = RpcClient(
        sim, UdpSocket(sim, client_port), retry_budget=retry_budget
    )
    return server, client


class TestRetry:
    def test_retry_recovers_lost_request(self):
        sim = Simulator()
        drops = [True, False]  # first request lost, retry delivered

        def loss(frame):
            return drops.pop(0) if drops else False

        server, client = lossy_rpc_pair(sim, loss)
        server.register("echo", lambda x: x)

        def scenario():
            result = yield from client.call(
                "server", "echo", 42, timeout=1e-3, retries=3
            )
            return result, sim.now

        result, elapsed = sim.run_process(scenario())
        assert result == 42
        assert elapsed > 1e-3  # one timeout was paid

    def test_exhausted_retries_raise(self):
        sim = Simulator()
        server, client = lossy_rpc_pair(sim, lambda f: True)  # black hole
        server.register("echo", lambda x: x)

        def scenario():
            yield from client.call(
                "server", "echo", 1, timeout=1e-3, retries=2
            )

        with pytest.raises(RpcError, match="timed out after 3 attempt"):
            sim.run_process(scenario())

    def test_no_timeout_waits_forever(self):
        sim = Simulator()
        server, client = lossy_rpc_pair(sim, lambda f: True)
        server.register("echo", lambda x: x)

        def scenario():
            yield from client.call("server", "echo", 1)  # no timeout

        proc = sim.process(scenario())
        sim.run(until=10.0)
        assert proc.is_alive  # still waiting, by design

    def test_duplicate_response_after_retry_is_harmless(self):
        """At-least-once: a slow (not lost) response racing a retry."""
        sim = Simulator()
        calls = [0]

        def counting_echo(x):
            calls[0] += 1
            yield sim.timeout(2e-3)  # slower than the client's patience
            return x

        server, client = lossy_rpc_pair(sim, None)
        server.register("echo", counting_echo)

        def scenario():
            result = yield from client.call(
                "server", "echo", 7, timeout=1.5e-3, retries=3
            )
            return result

        assert sim.run_process(scenario()) == 7
        assert calls[0] >= 2  # the handler ran more than once (idempotent)

    def test_clean_network_zero_overhead(self):
        sim = Simulator()
        server, client = lossy_rpc_pair(sim, None)
        server.register("echo", lambda x: x)

        def scenario():
            result = yield from client.call(
                "server", "echo", "fast", timeout=1.0, retries=5
            )
            return result, sim.now

        result, elapsed = sim.run_process(scenario())
        assert result == "fast"
        assert elapsed < 1e-3  # no timeout fired


class TestDeadline:
    def test_deadline_bounds_a_call_with_no_timeout(self):
        """Without a deadline this call would wait forever (see above);
        the deadline turns it into a bounded failure."""
        sim = Simulator()
        server, client = lossy_rpc_pair(sim, lambda f: True)  # black hole
        server.register("echo", lambda x: x)

        def scenario():
            yield from client.call("server", "echo", 1, deadline=5e-3)

        with pytest.raises(RpcError, match="deadline exceeded"):
            sim.run_process(scenario())
        assert sim.now == pytest.approx(5e-3, rel=0.01)
        assert client.deadline_exceeded == 1
        assert client.retransmits == 0  # deadline-only calls never resend

    def test_deadline_cuts_retries_short(self):
        sim = Simulator()
        server, client = lossy_rpc_pair(sim, lambda f: True)
        server.register("echo", lambda x: x)

        def scenario():
            yield from client.call(
                "server", "echo", 1, timeout=1e-3, retries=100, deadline=3.5e-3
            )

        with pytest.raises(RpcError, match="deadline exceeded"):
            sim.run_process(scenario())
        assert sim.now == pytest.approx(3.5e-3, rel=0.01)
        assert client.retransmits >= 2  # a few attempts fit the budget

    def test_deadline_does_not_affect_fast_success(self):
        sim = Simulator()
        server, client = lossy_rpc_pair(sim, None)
        server.register("echo", lambda x: x)

        def scenario():
            result = yield from client.call(
                "server", "echo", "ok", timeout=1e-3, retries=2, deadline=50e-3
            )
            return result

        assert sim.run_process(scenario()) == "ok"
        assert client.deadline_exceeded == 0


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base=1e-3, multiplier=2.0, max_interval=4e-3,
                             jitter=0.0)
        rng = policy.rng_for(0)
        intervals = [policy.interval(n, rng) for n in range(5)]
        assert intervals == [1e-3, 2e-3, 4e-3, 4e-3, 4e-3]

    def test_jitter_is_bounded_and_reproducible(self):
        policy = RetryPolicy(base=1e-3, jitter=0.25, seed=11)
        rng_a, rng_b = policy.rng_for(42), policy.rng_for(42)
        a = [policy.interval(0, rng_a) for _ in range(8)]
        b = [policy.interval(0, rng_b) for _ in range(8)]
        assert a == b  # same (seed, rpc id) -> same schedule
        assert len(set(a)) > 1  # but genuinely jittered
        assert all(0.75e-3 <= x <= 1.25e-3 for x in a)

    def test_invalid_policies_rejected(self):
        with pytest.raises(Exception):
            RetryPolicy(base=0)
        with pytest.raises(Exception):
            RetryPolicy(jitter=1.5)

    def test_backoff_recovers_lost_request(self):
        sim = Simulator()
        drops = [True, True, False]  # two lost, third delivered

        def loss(frame):
            return drops.pop(0) if drops else False

        server, client = lossy_rpc_pair(sim, loss)
        server.register("echo", lambda x: x)
        policy = RetryPolicy(base=1e-3, jitter=0.1, seed=3)

        def scenario():
            result = yield from client.call(
                "server", "echo", 9, retries=5, policy=policy
            )
            return result, sim.now

        result, elapsed = sim.run_process(scenario())
        assert result == 9
        # Two backoff waits were paid: ~base + ~2*base, jittered.
        assert elapsed > 2.5e-3


class TestRetryBudget:
    def test_budget_caps_spends_per_window(self):
        sim = Simulator()
        budget = RetryBudget(sim, budget=2, window=10e-3)
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()  # spent, clock unchanged
        assert budget.remaining() == 0
        assert budget.granted == 2
        assert budget.exhausted == 1

    def test_window_expiry_restores_grants(self):
        sim = Simulator()
        budget = RetryBudget(sim, budget=1, window=5e-3)
        assert budget.try_spend()
        assert not budget.try_spend()

        def wait():
            yield sim.timeout(6e-3)

        sim.run_process(wait())
        assert budget.remaining() == 1  # the old spend aged out
        assert budget.try_spend()

    def test_exhausted_budget_fails_the_call_fast(self):
        """With the budget spent, a timed-out call raises instead of
        retransmitting into the outage."""
        sim = Simulator()
        budget = RetryBudget(sim, budget=2, window=1.0)
        server, client = lossy_rpc_pair(sim, lambda f: True, budget)
        server.register("echo", lambda x: x)

        def scenario():
            yield from client.call(
                "server", "echo", 1, timeout=1e-3, retries=10
            )

        with pytest.raises(RpcError, match="retry budget exhausted"):
            sim.run_process(scenario())
        # Two retransmissions were granted, the third attempt failed fast.
        assert client.retransmits == 2
        assert client.retry_budget_exhausted == 1
        assert sim.now < 5e-3  # nowhere near 11 timeouts' worth of waiting

    def test_budget_is_shared_across_concurrent_calls(self):
        sim = Simulator()
        budget = RetryBudget(sim, budget=3, window=1.0)
        server, client = lossy_rpc_pair(sim, lambda f: True, budget)
        server.register("echo", lambda x: x)
        errors = []

        def one(index):
            try:
                yield from client.call(
                    "server", "echo", index, timeout=1e-3, retries=5
                )
            except RpcError as error:
                errors.append(str(error))

        def scenario():
            procs = [sim.process(one(i)) for i in range(4)]
            yield sim.all_of(procs)

        sim.run_process(scenario())
        # Every call failed, but only 3 retransmissions total were sent —
        # not 4 calls x 5 retries of outage amplification.
        assert len(errors) == 4
        assert client.retransmits == 3
        assert sum("retry budget exhausted" in e for e in errors) >= 3

    def test_invalid_budgets_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            RetryBudget(sim, budget=0, window=1.0)
        with pytest.raises(ConfigurationError):
            RetryBudget(sim, budget=1, window=0.0)
