"""Exposition formats: Prometheus text round-trip, Chrome trace JSON."""

import json

import pytest

from repro.eval.telemetry import run_telemetry
from repro.sim import ManualClock
from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    chrome_trace_json,
    parse_prometheus_text,
    prometheus_text,
    trace_events,
)


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("net.link.a.frames_sent").inc(7)
    reg.gauge("dpu0.queue.depth").set(2.5)
    h = reg.histogram("rpc.call_latency")
    for value in (1e-6, 5e-6, 2e-3):
        h.observe(value)
    return reg


class TestPrometheusText:
    def test_round_trips_through_the_parser(self):
        reg = _sample_registry()
        families = parse_prometheus_text(prometheus_text(reg))
        counter = families["repro_net_link_a_frames_sent"]
        assert counter.kind == "counter"
        name, labels, value = counter.samples[0]
        assert labels["path"] == "net.link.a.frames_sent"
        assert value == 7.0
        gauge = families["repro_dpu0_queue_depth"]
        assert gauge.kind == "gauge"
        assert gauge.samples[0][2] == 2.5

    def test_histogram_buckets_are_cumulative_and_close_at_inf(self):
        reg = _sample_registry()
        families = parse_prometheus_text(prometheus_text(reg))
        hist = families["repro_rpc_call_latency"]
        assert hist.kind == "histogram"
        buckets = [
            (labels["le"], value)
            for name, labels, value in hist.samples
            if name.endswith("_bucket")
        ]
        counts = [value for __, value in buckets]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert buckets[-1][0] == "+Inf"
        assert buckets[-1][1] == 3.0
        count = next(
            value for name, __, value in hist.samples
            if name.endswith("_count")
        )
        assert count == 3.0
        total = next(
            value for name, __, value in hist.samples
            if name.endswith("_sum")
        )
        assert total == pytest.approx(1e-6 + 5e-6 + 2e-3)

    def test_sanitization_collisions_get_numeric_suffixes(self):
        reg = MetricsRegistry()
        reg.counter("link#1.frames").inc(1)
        reg.counter("link_1.frames").inc(2)
        families = parse_prometheus_text(prometheus_text(reg))
        assert "repro_link_1_frames" in families
        assert "repro_link_1_frames_2" in families
        # The path label disambiguates regardless of the family name.
        paths = {
            family.samples[0][1]["path"]
            for family in families.values() if family.samples
        }
        assert paths == {"link#1.frames", "link_1.frames"}

    def test_same_state_same_bytes(self):
        assert prometheus_text(_sample_registry()) == \
            prometheus_text(_sample_registry())

    def test_real_run_exposition_parses_cleanly(self):
        report = run_telemetry()
        families = parse_prometheus_text(report.prometheus)
        assert families, "an exercised run must expose families"
        kinds = {family.kind for family in families.values()}
        assert kinds <= {"counter", "gauge", "histogram"}
        for family in families.values():
            assert family.samples, f"{family.name} exposed no samples"

    def test_malformed_sample_line_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("repro_x{path=}} not-a-number")


def _nesting_by_time_containment(events):
    """Reconstruct each X event's depth purely from time containment."""
    spans = [e for e in events if e["ph"] == "X"]
    depths = []
    for event in spans:
        start, end = event["ts"], event["ts"] + event["dur"]
        depth = sum(
            1 for other in spans
            if other is not event
            and other["ts"] <= start and end <= other["ts"] + other["dur"]
        )
        depths.append(depth)
    return spans, depths


class TestChromeTrace:
    def test_manual_spans_emit_complete_events(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        tracer.enable()
        with tracer.span("outer", "transport"):
            clock.advance(1.0)
            with tracer.span("inner", "nvme") as inner:
                clock.advance(0.5)
                inner.annotate(lba=7)
        events = trace_events(tracer)
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}
        spans = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in spans] == ["outer", "inner"]
        outer, inner = spans
        assert outer["dur"] == pytest.approx(1.5e6)  # microseconds
        assert inner["cat"] == "nvme"
        assert inner["args"]["lba"] == "7"
        assert inner["args"]["depth"] == 1

    def test_kv_get_trace_loads_and_nests(self):
        """The 5-substrate KV-get tree survives the JSON round trip with
        its nesting intact (viewer reconstructs depth from containment)."""
        report = run_telemetry()
        payload = json.loads(report.chrome_trace)
        events = payload["traceEvents"]
        spans, containment_depths = _nesting_by_time_containment(events)
        assert len(spans) >= 5
        substrates = {e["cat"] for e in spans}
        assert {"transport", "net", "nvme"} <= substrates
        for event, expected_depth in zip(spans, containment_depths):
            assert event["args"]["depth"] == expected_depth, (
                f"span {event['name']} claims depth "
                f"{event['args']['depth']} but time containment says "
                f"{expected_depth}"
            )
        assert max(containment_depths) >= 2

    def test_same_run_same_json_bytes(self):
        first = run_telemetry().chrome_trace
        second = run_telemetry().chrome_trace
        assert first == second
