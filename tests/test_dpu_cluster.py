"""Tests for multi-DPU clusters with client-driven routing."""

import pytest

from repro.common.errors import ConfigurationError
from repro.dpu.cluster import DpuKvCluster, RoutingClient
from repro.hw.net import Network
from repro.sim import Simulator


def make_cluster(sim, dpu_count=4):
    net = Network(sim)
    cluster = DpuKvCluster(sim, net, dpu_count=dpu_count, ssd_blocks=8192)
    client = RoutingClient(sim, net, "app-client", cluster)
    return cluster, client


class TestRouting:
    def test_put_get_roundtrip(self):
        sim = Simulator()
        cluster, client = make_cluster(sim)

        def scenario():
            yield from client.put(b"user:42", b"alice")
            value = yield from client.get(b"user:42")
            return value

        assert sim.run_process(scenario()) == b"alice"

    def test_owner_is_deterministic(self):
        sim = Simulator()
        cluster, __ = make_cluster(sim)
        assert cluster.owner_of(b"some-key") == cluster.owner_of(b"some-key")

    def test_keys_spread_across_dpus(self):
        sim = Simulator()
        cluster, client = make_cluster(sim, dpu_count=4)

        def scenario():
            for i in range(200):
                yield from client.put(f"key-{i}".encode(), b"v")

        sim.run_process(scenario())
        stats = cluster.stats()
        assert stats.routed_ops == 200
        # Every DPU got some share; hashing keeps the spread reasonable.
        assert all(count > 0 for count in stats.per_dpu_ops.values())
        assert cluster.balance() < 1.6

    def test_data_lands_only_on_owner(self):
        sim = Simulator()
        cluster, client = make_cluster(sim, dpu_count=3)

        def scenario():
            yield from client.put(b"solo", b"value")

        sim.run_process(scenario())
        owner = cluster.owner_of(b"solo")
        for address, device in zip(cluster.addresses, cluster.devices):
            if address == owner:
                assert device.lsm.get(b"solo") == b"value"
            else:
                assert device.lsm.get(b"solo") is None

    def test_delete_routes_to_owner(self):
        sim = Simulator()
        cluster, client = make_cluster(sim)

        def scenario():
            yield from client.put(b"k", b"v")
            yield from client.delete(b"k")
            value = yield from client.get(b"k")
            return value

        assert sim.run_process(scenario()) is None

    def test_single_dpu_cluster(self):
        sim = Simulator()
        cluster, client = make_cluster(sim, dpu_count=1)

        def scenario():
            yield from client.put(b"k", b"v")
            value = yield from client.get(b"k")
            return value

        assert sim.run_process(scenario()) == b"v"

    def test_zero_dpus_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            DpuKvCluster(sim, Network(sim), dpu_count=0)

    def test_concurrent_clients(self):
        sim = Simulator()
        net = Network(sim)
        cluster = DpuKvCluster(sim, net, dpu_count=2, ssd_blocks=8192)
        clients = [
            RoutingClient(sim, net, f"client-{i}", cluster) for i in range(3)
        ]

        def worker(client, base):
            for i in range(20):
                yield from client.put(f"{base}-{i}".encode(), b"x")

        for index, client in enumerate(clients):
            sim.process(worker(client, f"c{index}"))
        sim.run()
        assert cluster.stats().routed_ops == 60
