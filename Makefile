.PHONY: help install test lint bench bench-micro bench-tables bench-report eval chaos overload scaleout georep verify-consistency autoscale trace profile docs examples all

# Annotated target list (## comments after a target become its help line).
help:
	@grep -E '^[a-z-]+:.*##' $(MAKEFILE_LIST) | \
		sort | \
		awk -F':.*## ' '{printf "  %-20s %s\n", $$1, $$2}'

install:  ## editable install of the repro package
	pip install -e .

test:  ## tier-1 test suite (pytest tests/)
	pytest tests/ -q

# Lints with ruff when it is installed (CI installs it); a missing ruff
# is skipped so offline dev containers still pass `make all`, but a real
# lint failure always fails the target.
lint:  ## ruff over src/tests/benchmarks/examples (skipped if absent)
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipping lint (CI runs it)"; \
	fi

# pytest-benchmark micro timings. For the simulator's own throughput
# (E18/SIM, wall-clock, tracked in BENCH_<n>.json under the >20% gate)
# use `make bench-micro`, which runs:
#   - engine events/sec        zero-delay ticker swarm through the core
#   - RPC round-trips/sec      echo calls over a UDP loopback pair
#   - histogram observes/sec   Histogram.observe hot-path appends
bench:  ## pytest-benchmark micro timings
	pytest benchmarks/ --benchmark-only -q

# E18/SIM simulator-core micro-benchmarks (subset run; not published).
bench-micro:  ## E18/SIM simulator-core micro-benchmarks (subset run)
	python -m repro.bench sim

bench-tables:  ## micro timings with full comparison tables
	pytest benchmarks/ --benchmark-only -s

# E14 continuous benchmark: run every experiment under the telemetry
# sampler, publish a canonical BENCH_<n>.json at the repo root, and diff
# it against the previous artifact (>20% on a tracked latency/throughput
# is a regression). Same seed => byte-identical artifact, except the
# E18/SIM wall-clock metrics, whose within-gate jitter never writes a
# new artifact (see repro/bench/__init__.py).
bench-report:  ## E14 continuous benchmark: publish + gate BENCH_<n>.json
	python -m repro.bench --check

eval:  ## run every experiment and print the artifacts
	python -m repro.eval

# E13 chaos evaluation: replicated cluster under a scripted fault storm.
# The fault-injection smoke tests also run under tier-1 `make test`
# (tests/test_faults.py).
chaos:  ## E13 chaos storm + fault-injection tests
	python -m repro.eval e13
	pytest tests/test_faults.py -q

# E15 overload evaluation: an open-loop load ramp with the protection
# stack (bounded queues, admission, breakers, brownout) off vs on. The
# overload unit tests also run under tier-1 `make test`.
overload:  ## E15 overload protection stack off vs on + tests
	python -m repro.eval e15
	pytest tests/test_overload.py -q

# E16 scale-out evaluation: goodput vs DPU count with/without
# batching+cache, plus a live scale-out event (zero failed ops). The
# sharding unit tests also run under tier-1 `make test`.
scaleout:  ## E16 scale-out data plane sweep + sharding tests
	python -m repro.eval e16
	pytest tests/test_sharding.py -q

# E17 geo-replication evaluation: consistency-mode sweep plus the
# region-loss disaster drill (RPO/RTO, zero lost acked writes). The
# georep unit tests also run under tier-1 `make test`.
georep:  ## E17 geo-replication sweep + disaster drill + tests
	python -m repro.eval e17
	pytest tests/test_georep.py -q

# E19 consistency verification: seeded chaos search over the sharded
# and geo stacks with per-key linearizability checking, plus the
# planted-bug demo (async caught, shrunk to a minimal schedule; quorum
# and sync pass the identical plan). Output is byte-identical per seed,
# including across PYTHONHASHSEED — CI diffs two hash seeds. The
# verifier unit tests also run under tier-1 `make test`.
verify-consistency:  ## E19 linearizability chaos search + verifier tests
	python -m repro.eval e19
	pytest tests/test_verify.py -q

# E20 traffic-plane evaluation: the repro.workload generators drive a
# daily diurnal curve at three fleet shapes (static-min, static-peak,
# SLO-driven autoscaling); the autoscaled run must hold p99 with fewer
# DPU-seconds than static peak. Output is byte-identical per seed,
# including across PYTHONHASHSEED — CI diffs two hash seeds. The
# workload unit tests also run under tier-1 `make test`. Operator
# handbook: docs/WORKLOADS.md.
autoscale:  ## E20 traffic plane: SLO-driven autoscaling + workload tests
	python -m repro.eval e20
	pytest tests/test_workload.py -q

# Trace analysis: causal trace trees over a cross-region quorum
# workload (showcase tree, top-N slowest flows, critical path). Output
# is byte-identical per seed, including across PYTHONHASHSEED — CI
# diffs two hash seeds against each other.
trace:  ## causal trace-tree analysis over a quorum workload
	python -m repro.eval trace

# Simulator hot-spot profile: cProfile over a scaled-down E16 (1 and 2
# DPU sweep points), top-20 cumulative. Start perf PRs here.
profile:  ## cProfile hot-spot report over a scaled-down E16
	python tools/profile_sim.py

# Documentation hygiene: markdown link check + doctest'd examples
# (mirrors the CI docs job).
docs:  ## markdown link check + doctest examples (CI docs job)
	python tools/check_links.py README.md DESIGN.md EXPERIMENTS.md docs
	pytest --doctest-modules src/repro/sharding src/repro/workload -q

examples:  ## run every examples/*.py end to end
	@for ex in examples/*.py; do \
		echo "== $$ex =="; \
		python $$ex || exit 1; \
	done

all: lint test bench  ## lint + test + bench