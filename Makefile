.PHONY: install test bench bench-tables eval chaos examples all

install:
	pip install -e .

test:
	pytest tests/ -q

bench:
	pytest benchmarks/ --benchmark-only -q

bench-tables:
	pytest benchmarks/ --benchmark-only -s

eval:
	python -m repro.eval

# E13 chaos evaluation: replicated cluster under a scripted fault storm.
# The fault-injection smoke tests also run under tier-1 `make test`
# (tests/test_faults.py).
chaos:
	python -m repro.eval e13
	pytest tests/test_faults.py -q

examples:
	@for ex in examples/*.py; do \
		echo "== $$ex =="; \
		python $$ex || exit 1; \
	done

all: test bench
