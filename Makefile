.PHONY: install test bench bench-tables eval examples all

install:
	pip install -e .

test:
	pytest tests/ -q

bench:
	pytest benchmarks/ --benchmark-only -q

bench-tables:
	pytest benchmarks/ --benchmark-only -s

eval:
	python -m repro.eval

examples:
	@for ex in examples/*.py; do \
		echo "== $$ex =="; \
		python $$ex || exit 1; \
	done

all: test bench
