"""Hyperion: a simulated CPU-free DPU.

A reproduction of *"CPU-free Computing: A Vision with a Blueprint"*
(Trivedi & Brunella, HotOS 2023) as a Python library: the Hyperion DPU's
hardware substrates (FPGA fabric, self-hosted PCIe + NVMe, 100 GbE), its
software architecture (single-level segment store, eBPF-as-IR with a
verifier and an HDL backend, annotation-driven file access, transports and
storage services), the paper's §2.4 workloads, the CPU-centric baseline it
argues against, and an evaluation harness that regenerates every table,
figure, and quantitative claim.

Quickstart::

    from repro import HyperionDpu, Network, Simulator

    sim = Simulator()
    dpu = HyperionDpu(sim, Network(sim))
    sim.run_process(dpu.boot())
    segment = dpu.store.allocate(4096, durable=True)
    dpu.store.write(segment.oid, b"hello, CPU-free world")

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
paper-artifact reproductions.
"""

from repro.sim import Simulator
from repro.hw.net import Network
from repro.dpu import HyperionDpu, OsShell, SlotScheduler
from repro.ebpf import BpfVm, ProgramBuilder, Verifier, assemble
from repro.hdl import HardwarePipeline, compile_program
from repro.memory import PlacementHint, SegmentLocation, SingleLevelStore

__version__ = "0.1.0"

__all__ = [
    "Simulator",
    "Network",
    "HyperionDpu",
    "OsShell",
    "SlotScheduler",
    "assemble",
    "BpfVm",
    "ProgramBuilder",
    "Verifier",
    "compile_program",
    "HardwarePipeline",
    "SingleLevelStore",
    "SegmentLocation",
    "PlacementHint",
    "__version__",
]
