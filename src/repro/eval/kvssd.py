"""E12: the Willow-style RPC interface specialized across transports.

KV-SSD gets/puts over UDP, TCP, HOMA, and an RDMA fast path (reads served
one-sided from a DRAM-resident region, the Clio/KV-Direct pattern).
Expected shape: for small ops, UDP/HOMA beat TCP (no handshake, no ACK
clock); RDMA wins reads outright by skipping request processing; all agree
on values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.eval.report import Table
from repro.hw.net import Network
from repro.hw.nvme import Namespace, NvmeController
from repro.sim import Simulator
from repro.storage import KvSsd, KvSsdClient, KvSsdService
from repro.telemetry import Sampler
from repro.transport import (
    HomaSocket,
    RdmaNic,
    RpcClient,
    RpcServer,
    TcpStack,
    UdpSocket,
)
from repro.transport.rpc import RpcRequest, RpcResponse

#: Sampling period for the per-transport time series (an op pair costs
#: tens of microseconds, so this lands a tick every few ops).
SAMPLE_PERIOD = 100e-6


@dataclass
class TransportPoint:
    """One E12 row: per-op latencies and throughput for a transport."""

    transport: str
    operations: int
    mean_get: float
    mean_put: float
    ops_per_second: float
    #: Exact tail latencies from the per-run get/put histograms.
    p99_get: float = 0.0
    p99_put: float = 0.0
    #: Sampler ticks taken while the workload ran.
    sampled_points: int = 0


def _latency_probes(sim: Simulator):
    """The per-run get/put latency histograms plus a driving sampler."""
    get_hist = sim.telemetry.histogram("eval.kvssd.get_latency")
    put_hist = sim.telemetry.histogram("eval.kvssd.put_latency")
    sampler = Sampler(sim.telemetry, sim, period=SAMPLE_PERIOD)
    sampler.watch("eval.kvssd.get_latency")
    sampler.watch("eval.kvssd.put_latency")
    return get_hist, put_hist, sampler


def _make_device(sim) -> KvSsd:
    controller = NvmeController(sim, "kv-flash")
    controller.add_namespace(Namespace(1, 262144))
    return KvSsd(sim, controller, memtable_limit=10_000)


def _run_datagram(kind: str, operations: int) -> TransportPoint:
    sim = Simulator()
    net = Network(sim)
    if kind == "udp":
        server_sock = UdpSocket(sim, net.endpoint("dpu"))
        client_sock = UdpSocket(sim, net.endpoint("host"))
    else:
        server_sock = HomaSocket(sim, net.endpoint("dpu"))
        client_sock = HomaSocket(sim, net.endpoint("host"))
    device = _make_device(sim)
    KvSsdService(RpcServer(sim, server_sock), device)
    stub = KvSsdClient(RpcClient(sim, client_sock), "dpu")
    get_hist, put_hist, sampler = _latency_probes(sim)
    put_time, get_time = [0.0], [0.0]
    started = sim.now
    finished = [0.0]

    def scenario():
        for i in range(operations):
            key = f"key-{i:06d}".encode()
            t0 = sim.now
            yield from stub.put(key, b"v" * 64)
            put_time[0] += sim.now - t0
            put_hist.observe(sim.now - t0)
            t0 = sim.now
            value = yield from stub.get(key)
            get_time[0] += sim.now - t0
            get_hist.observe(sim.now - t0)
            assert value == b"v" * 64
        finished[0] = sim.now

    sampler.run(sim, scenario())
    elapsed = finished[0] - started
    return TransportPoint(
        transport=kind,
        operations=2 * operations,
        mean_get=get_time[0] / operations,
        mean_put=put_time[0] / operations,
        ops_per_second=2 * operations / elapsed,
        p99_get=get_hist.quantile(0.99),
        p99_put=put_hist.quantile(0.99),
        sampled_points=sampler.ticks,
    )


def _run_tcp(operations: int) -> TransportPoint:
    """TCP with an RPC-over-connection shim."""
    sim = Simulator()
    net = Network(sim)
    server_stack = TcpStack(sim, net.endpoint("dpu"))
    client_stack = TcpStack(sim, net.endpoint("host"))
    device = _make_device(sim)

    def server_loop():
        connection = yield server_stack.accept()
        while True:
            request, __ = yield connection.recv()
            if request.method == "kv.put":
                result = yield sim.process(device.put(*request.args))
            else:
                result = yield sim.process(device.get(*request.args))
            yield from connection.send(
                RpcResponse(request.rpc_id, ok=True, result=result), 80
            )

    sim.process(server_loop())
    get_hist, put_hist, sampler = _latency_probes(sim)
    put_time, get_time = [0.0], [0.0]
    started = [0.0]
    finished = [0.0]

    def scenario():
        connection = yield from client_stack.connect("dpu")
        started[0] = sim.now  # charge the handshake to setup, ops to ops
        rpc_id = 0
        for i in range(operations):
            key = f"key-{i:06d}".encode()
            t0 = sim.now
            yield from connection.send(
                RpcRequest(rpc_id, "kv.put", (key, b"v" * 64), 16), 128
            )
            yield connection.recv()
            put_time[0] += sim.now - t0
            put_hist.observe(sim.now - t0)
            rpc_id += 1
            t0 = sim.now
            yield from connection.send(
                RpcRequest(rpc_id, "kv.get", (key,), 80), 64
            )
            response, __ = yield connection.recv()
            assert response.result == b"v" * 64
            get_time[0] += sim.now - t0
            get_hist.observe(sim.now - t0)
            rpc_id += 1
        finished[0] = sim.now

    sampler.run(sim, scenario())
    elapsed = finished[0] - started[0]
    return TransportPoint(
        transport="tcp",
        operations=2 * operations,
        mean_get=get_time[0] / operations,
        mean_put=put_time[0] / operations,
        ops_per_second=2 * operations / elapsed,
        p99_get=get_hist.quantile(0.99),
        p99_put=put_hist.quantile(0.99),
        sampled_points=sampler.ticks,
    )


def _run_rdma(operations: int) -> TransportPoint:
    """One-sided reads from a DRAM-resident value region; writes via UDP RPC."""
    sim = Simulator()
    net = Network(sim)
    device = _make_device(sim)
    KvSsdService(RpcServer(sim, UdpSocket(sim, net.endpoint("dpu"))), device)
    stub = KvSsdClient(RpcClient(sim, UdpSocket(sim, net.endpoint("host"))), "dpu")
    server_nic = RdmaNic(sim, net.endpoint("dpu-rdma"))
    client_nic = RdmaNic(sim, net.endpoint("host-rdma"))
    # The DPU exposes a value cache region; offsets assigned per key.
    region_bytes = bytearray(operations * 64)
    region = server_nic.register_region(region_bytes)
    get_hist, put_hist, sampler = _latency_probes(sim)
    put_time, get_time = [0.0], [0.0]
    started = sim.now
    finished = [0.0]

    def scenario():
        for i in range(operations):
            key = f"key-{i:06d}".encode()
            value = bytes([i % 256]) * 64
            t0 = sim.now
            yield from stub.put(key, value)
            region_bytes[i * 64 : (i + 1) * 64] = value  # cache fill
            put_time[0] += sim.now - t0
            put_hist.observe(sim.now - t0)
            t0 = sim.now
            data = yield from client_nic.read("dpu-rdma", region.rkey, i * 64, 64)
            get_time[0] += sim.now - t0
            get_hist.observe(sim.now - t0)
            assert data == value
        finished[0] = sim.now

    sampler.run(sim, scenario())
    elapsed = finished[0] - started
    return TransportPoint(
        transport="rdma(read)",
        operations=2 * operations,
        mean_get=get_time[0] / operations,
        mean_put=put_time[0] / operations,
        ops_per_second=2 * operations / elapsed,
        p99_get=get_hist.quantile(0.99),
        p99_put=put_hist.quantile(0.99),
        sampled_points=sampler.ticks,
    )


def run_kvssd(operations: int = 100) -> List[TransportPoint]:
    return [
        _run_datagram("udp", operations),
        _run_tcp(operations),
        _run_datagram("homa", operations),
        _run_rdma(operations),
    ]


def format_kvssd(points: List[TransportPoint]) -> str:
    table = Table(
        "E12: KV-SSD over specialized transports (Willow-style RPC)",
        ["transport", "ops", "mean get", "p99 get", "mean put", "p99 put",
         "ops/s", "samples"],
    )
    for p in points:
        table.add_row(
            p.transport, p.operations,
            f"{p.mean_get * 1e6:.1f} us",
            f"{p.p99_get * 1e6:.1f} us",
            f"{p.mean_put * 1e6:.1f} us",
            f"{p.p99_put * 1e6:.1f} us",
            f"{p.ops_per_second:.0f}",
            p.sampled_points,
        )
    return table.render()
