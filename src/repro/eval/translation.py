"""E5: segment translation vs page-based virtual memory (paper §2.1).

"The unique aspect of segmentation-based location translation is that it is
coarser (object-based) than virtual memory (page-based), thus reducing
overheads associated with the virtual memory translation."

Sweep working-set size; charge a 4-level walk per TLB miss for pages and
one associative lookup per *object* access for segments. Expected shape:
costs are comparable while the working set fits the TLB, then page-based
translation falls off a cliff while segments stay flat.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.eval.report import Table
from repro.memory.vm import (
    PAGE_SIZE,
    SEGMENT_LOOKUP_LATENCY,
    VirtualMemoryModel,
)

#: Objects in the segment comparison are this big (so one object spans
#: many pages — the coarseness argument).
OBJECT_SIZE = 64 * 1024


@dataclass
class TranslationPoint:
    """One E5 sweep point: paging vs segment translation cost."""

    working_set_bytes: int
    accesses: int
    tlb_hit_rate: float
    page_walk_accesses: int
    page_translation_time: float
    segment_translation_time: float
    huge_page_translation_time: float = 0.0

    @property
    def segment_advantage(self) -> float:
        if self.segment_translation_time == 0:
            return float("inf")
        return self.page_translation_time / self.segment_translation_time


def _measure(working_set_bytes: int, accesses: int, tlb_entries: int,
             seed: int) -> TranslationPoint:
    rng = random.Random(seed)
    vm = VirtualMemoryModel(tlb_entries=tlb_entries)
    # Ablation: 2 MiB huge pages (one fewer radix level, TLB reach x512,
    # but typically far fewer huge-TLB entries).
    huge = VirtualMemoryModel(tlb_entries=max(32, tlb_entries // 48),
                              levels=3, page_size=2 << 20)
    page_time = 0.0
    huge_time = 0.0
    for _ in range(accesses):
        vaddr = rng.randrange(working_set_bytes)
        page_time += vm.translate(vaddr).latency
        huge_time += huge.translate(vaddr).latency
    # Segments: the same accesses name (object id, offset); each access is
    # one associative lookup regardless of working-set size.
    segment_time = accesses * SEGMENT_LOOKUP_LATENCY
    return TranslationPoint(
        working_set_bytes=working_set_bytes,
        accesses=accesses,
        tlb_hit_rate=vm.tlb.hit_rate,
        page_walk_accesses=vm.page_table.walks * vm.page_table.levels,
        page_translation_time=page_time,
        segment_translation_time=segment_time,
        huge_page_translation_time=huge_time,
    )


def run_translation(
    working_sets=(1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20),
    accesses: int = 20_000,
    tlb_entries: int = 1536,
    seed: int = 9,
) -> List[TranslationPoint]:
    return [
        _measure(ws, accesses, tlb_entries, seed) for ws in working_sets
    ]


def format_translation(points: List[TranslationPoint]) -> str:
    table = Table(
        "E5: address translation cost, paging+TLB (4 KiB and 2 MiB pages) "
        "vs segment table",
        ["working set", "TLB hit rate", "walk mem refs",
         "4K page cost", "2M page cost", "segment cost", "advantage"],
    )
    for p in points:
        table.add_row(
            f"{p.working_set_bytes >> 20} MiB",
            f"{p.tlb_hit_rate:.3f}",
            p.page_walk_accesses,
            f"{p.page_translation_time * 1e6:.1f} us",
            f"{p.huge_page_translation_time * 1e6:.1f} us",
            f"{p.segment_translation_time * 1e6:.1f} us",
            f"{p.segment_advantage:.1f}x",
        )
    return table.render()
