"""E19: consistency verification — chaos search, checking, shrinking.

Three phases over :mod:`repro.verify`:

**Chaos search, sharded stack.** Seeded randomized schedules (node
outages, permanent power cuts, stuck flash dies, lossy client uplinks,
kills timed to land mid-``shard.handoff``) composed by the nemesis and
run against a live sharded KV workload. Client-observed histories are
checked per key for linearizability; the post-heal sweep checks zero
lost acknowledged writes.

**Chaos search, geo stack.** The same loop against three-region geo
clusters under ``quorum`` and ``sync`` acknowledgement modes, with
symmetric primary-kill WAN windows (see :mod:`repro.verify.nemesis`
for why the searched space is exactly this). The expected verdict is
*clean on every schedule*: under symmetric kills a quorum ack always
includes the first failover target, so no client can observe a stale
value. This is the claim no scripted scenario could make — here it is
checked over dozens of randomized schedules.

**Planted bug.** The identical symmetric primary-kill schedule is run
under ``async``, ``quorum`` and ``sync``. Async acknowledges at the
primary's WAL and ships later, so writes acked inside the replication
window are stranded when the partition lands; a post-failover audit
read observes the stale value and the checker flags the history
non-linearizable — while quorum and sync pass the same schedule. The
violating plan is then delta-debugged to a minimal reproducer (the
single WAN edge whose cut strands the write), replayed twice to show
the violation reproduces byte-identically, and dumped alongside the
flight-recorder post-mortem.

Same seed, byte-identical report — histories, verdicts, minimal plans
and shrink traces included, across ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import DegradedError
from repro.eval.report import Table
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.georep import Consistency, GeoCluster, GeoKvClient, WanSpec
from repro.hw.net import Network
from repro.sharding import ShardedKvClient, ShardedKvCluster, ShardMigrator
from repro.sim import Simulator
from repro.transport import RpcError
from repro.verify import (
    HistoryRecorder,
    check_history,
    final_state_check,
    shrink_plan,
    zero_lost_acks,
)
from repro.verify.nemesis import geo_plan, primary_kill_plan, sharded_plan

# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------

#: Default schedule counts: 8 sharded + 6 geo-quorum + 6 geo-sync = 20.
SHARD_SCHEDULES = 8
GEO_SCHEDULES = 6

#: Sharded-stack scenario: keyspace, workload and timeline.
SHARD_DPUS = 3
SHARD_KEYS = 10
SHARD_T_END = 0.25
SHARD_T_QUIESCE = 0.32
SHARD_WRITE_FRACTION = 0.45
SHARD_THINK = 1.2e-3
SHARD_CLIENTS = 2
#: Wire timing so ops against a blackholed DPU resolve instead of wedge.
#: Recording clients are single-shot (``retries=0``) by design: the RPC
#: layer is at-least-once and the KV write handlers are not idempotent,
#: so a retransmitted put whose *first* response was merely late
#: re-executes at the server and can resurrect an old value over a
#: newer concurrent write — a genuine duplicate-delivery hazard the
#: verifier itself surfaced. With one request per call, a write the
#: client saw acked was applied exactly once before the ack, and an
#: abandoned write records as *indeterminate*, which keeps the lost-ack
#: invariant sound (indeterminate writes make a key non-binding).
SHARD_TIMEOUT = 2.5e-3
SHARD_RETRIES = 0
#: Migration control-plane calls retransmit through kill windows.
MIGRATION_TIMEOUT = 2e-3
MIGRATION_RETRIES = 64

#: Geo-stack scenario (mirrors E17's WAN shape).
REGIONS = ("r1", "r2", "r3")
PRIMARY = "r1"
WAN = (
    WanSpec("r1", "r2", propagation=3.0e-3),
    WanSpec("r2", "r1", propagation=4.0e-3),
    WanSpec("r1", "r3", propagation=5.0e-3),
    WanSpec("r3", "r1", propagation=5.5e-3),
    WanSpec("r2", "r3", propagation=4.0e-3),
    WanSpec("r3", "r2", propagation=4.5e-3),
)
GEO_KEYS = 8
GEO_T_START = 0.02
GEO_T_END = 0.30
GEO_T_QUIESCE = 0.45
GEO_WRITE_FRACTION = 0.45
GEO_THINK = 1.5e-3
#: Geo clients are also single-shot (see above); the per-attempt
#: timeout leaves headroom over the *worst* healthy ack path — a sync
#: write that just missed an in-flight ship batch waits up to two
#: 10.5 ms round trips — because a timed-out-but-applied attempt plus
#: the walk's replay is a double apply: the re-applied value can
#: resurface *after* an interleaved acknowledged write, which the
#: checker (correctly) flags. That replay anomaly is real and this
#: harness documents it; the searched schedules are shaped so it is
#: not triggered, keeping clean quorum/sync verdicts meaningful.
GEO_TIMEOUT = 28e-3
#: (home region, workers). Sync schedules spread homes across
#: followers: sync acks mean every region applied before the ack, so
#: local reads anywhere are fresh. Quorum schedules home every worker
#: at the first failover target: a quorum ack is *one* peer, so a
#: client settled on the non-acking follower would read genuinely
#: stale values — write-quorum plus local reads does not intersect.
GEO_WORKERS_SYNC = (("r2", 2), ("r3", 1))
GEO_WORKERS_QUORUM = (("r2", 3),)

#: Planted-bug timeline: writers run to the kill; a straggler keeps
#: writing at the partitioned primary (async still acks locally — the
#: bug); an auditor reads from the failover region mid-partition.
PB_T_KILL = 0.10
PB_T_HEAL = 0.24
PB_T_AUDIT = 0.13
PB_T_END = 0.26
PB_T_QUIESCE = 0.40
PB_STRAGGLER_START = PB_T_KILL - 4e-3
PB_STRAGGLER_END = PB_T_KILL + 6e-3
PB_KEY = b"planted-key"
SHRINK_BUDGET = 24


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()[:16]


def _plan_digest(plan: FaultPlan) -> str:
    return _digest(plan.describe().encode())


# ---------------------------------------------------------------------------
# result containers
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScheduleVerdict:
    """One chaos-search schedule's canonical outcome."""

    stack: str
    label: str
    plan_seed: int
    specs: int
    ops: int
    ok_ops: int
    failed_ops: int
    indeterminate_ops: int
    linearizable: bool
    states: int
    lost: int
    diverged: int
    plan_digest: str
    history_digest: str
    violations: Tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return self.linearizable and not self.lost and not self.diverged

    def line(self) -> str:
        verdict = "linearizable" if self.linearizable else "NON-LINEARIZABLE"
        return (
            f"schedule {self.stack} {self.label} seed={self.plan_seed} "
            f"specs={self.specs} ops={self.ops} ok={self.ok_ops} "
            f"failed={self.failed_ops} indet={self.indeterminate_ops} "
            f"{verdict} states={self.states} lost={self.lost} "
            f"diverged={self.diverged} plan={self.plan_digest} "
            f"history={self.history_digest}"
        )


@dataclass(frozen=True)
class PlantedOutcome:
    """One consistency mode's verdict on the planted-bug schedule."""

    mode: str
    linearizable: bool
    violating_keys: int
    witness: str
    ops: int
    indeterminate_ops: int
    history_digest: str

    def line(self) -> str:
        verdict = "linearizable" if self.linearizable else "NON-LINEARIZABLE"
        witness = f" witness=[{self.witness}]" if self.witness else ""
        return (
            f"planted mode={self.mode} {verdict} "
            f"violating_keys={self.violating_keys} ops={self.ops} "
            f"indet={self.indeterminate_ops} "
            f"history={self.history_digest}{witness}"
        )


@dataclass
class PlantedReport:
    """The planted-bug demonstration: detect, shrink, replay, dump."""

    outcomes: List[PlantedOutcome]
    shrink_runs: int
    removed_specs: int
    narrowed_windows: int
    minimal_specs: int
    minimal_plan: str
    replay_digest: str
    replay_matches: bool
    flight_trigger: str
    flight_digest: str
    flight_dump: bytes = b""

    def lines(self) -> List[str]:
        out = [outcome.line() for outcome in self.outcomes]
        out.append(
            f"shrink runs={self.shrink_runs} removed={self.removed_specs} "
            f"narrowed={self.narrowed_windows} "
            f"minimal_specs={self.minimal_specs}"
        )
        out.extend(f"minimal: {line}"
                   for line in self.minimal_plan.splitlines())
        out.append(
            f"replay digest={self.replay_digest} "
            f"matches={str(self.replay_matches).lower()}"
        )
        out.append(
            f"postmortem trigger={self.flight_trigger} "
            f"digest={self.flight_digest}"
        )
        return out


@dataclass
class VerifyReport:
    """Everything E19 measured, canonically rendered for the benchmark."""

    seed: int
    schedules: List[ScheduleVerdict]
    planted: PlantedReport
    checker_states: int = 0
    total_ops: int = 0

    @property
    def clean_schedules(self) -> int:
        return sum(1 for verdict in self.schedules if verdict.clean)

    def canonical_bytes(self) -> bytes:
        lines = [f"verify seed={self.seed} schedules={len(self.schedules)}"]
        lines.extend(verdict.line() for verdict in self.schedules)
        lines.extend(self.planted.lines())
        lines.append(
            f"totals clean={self.clean_schedules} ops={self.total_ops} "
            f"states={self.checker_states}"
        )
        return ("\n".join(lines) + "\n").encode()


# ---------------------------------------------------------------------------
# the sharded-stack scenario
# ---------------------------------------------------------------------------

def _shard_keys() -> List[bytes]:
    return [f"vkey-{index:02d}".encode() for index in range(SHARD_KEYS)]


def _run_sharded_schedule(seed: int, index: int) -> ScheduleVerdict:
    """One randomized fault schedule against a live sharded cluster."""
    rng = random.Random(f"verify/shard/{seed}/{index}")
    plan_seed = rng.randrange(1 << 30)
    sim = Simulator()
    network = Network(sim)
    cluster = ShardedKvCluster(
        sim, network, dpu_count=SHARD_DPUS, ssd_blocks=4096,
    )
    migration_at = (
        rng.uniform(0.3, 0.5) * SHARD_T_END if index % 2 == 0 else None
    )
    plan = sharded_plan(
        plan_seed, cluster.addresses, horizon=SHARD_T_END,
        migration_at=migration_at,
    )
    injector = FaultInjector(sim, plan)
    for device in cluster.devices.values():
        device.controller.attach_faults(injector)

    history = HistoryRecorder(sim)
    clients = [
        ShardedKvClient(
            sim, cluster, f"v{index}-{worker}", cache=None,
            timeout=SHARD_TIMEOUT, retries=SHARD_RETRIES,
            history=history,
        )
        for worker in range(SHARD_CLIENTS)
    ]
    network.port(f"shard-client-{clients[0].name}").route().attach_faults(
        injector, "client.uplink"
    )

    keys = _shard_keys()
    done = [False]
    powered_off: set = set()
    down: set = set()
    migrated: List[object] = []

    def controller():
        # E13-style: NODE_DOWN windows and fired POWER_LOSS specs map to
        # switch blackholes — a pulled cable is dead links.
        while not done[0]:
            yield sim.timeout(0.5e-3)
            if done[0]:
                return
            for address in list(cluster.addresses):
                if (address not in powered_off
                        and injector.pending(address, FaultKind.POWER_LOSS)
                        and injector.fires(address, FaultKind.POWER_LOSS)):
                    powered_off.add(address)
                want_down = (
                    address in powered_off
                    or injector.active(address, FaultKind.NODE_DOWN)
                )
                if want_down and address not in down:
                    network.switch.blackhole(address)
                    down.add(address)
                elif not want_down and address in down:
                    network.switch.restore(address)
                    down.discard(address)

    def worker(client: ShardedKvClient, wrng: random.Random):
        sequence = 0
        while True:
            yield sim.timeout(wrng.uniform(0.7, 1.3) * SHARD_THINK)
            if sim.now >= SHARD_T_END:
                return
            key = wrng.choice(keys)
            try:
                if wrng.random() < SHARD_WRITE_FRACTION:
                    value = f"{client.name}:{sequence}".encode()
                    sequence += 1
                    yield from client.put(key, value)
                else:
                    yield from client.get(key)
            except RpcError:
                continue  # outcome already recorded in the history

    def migration():
        yield sim.timeout(migration_at)
        migrator = ShardMigrator(
            sim, cluster, call_timeout=MIGRATION_TIMEOUT,
            call_retries=MIGRATION_RETRIES,
        )
        report = yield from migrator.add_dpu()
        migrated.append(report)

    sim.process(controller())
    for worker_index, client in enumerate(clients):
        sim.process(worker(
            client, random.Random(f"verify/shard/{seed}/{index}/w{worker_index}")
        ))
    if migration_at is not None:
        sim.process(migration())
    sim.run(until=SHARD_T_END)
    done[0] = True
    for address in sorted(down):
        network.switch.restore(address)
    down.clear()
    sim.run(until=SHARD_T_QUIESCE)
    if migration_at is not None and not migrated:
        raise RuntimeError("migration did not complete by quiesce")
    history.close_open_ops()

    check = check_history(history)
    sweeper = ShardedKvClient(
        sim, cluster, f"v{index}-sweep", cache=None,
        timeout=5e-3, retries=3, deadline=60e-3,
    )
    final: Dict[bytes, Optional[bytes]] = {}
    for key in keys:
        final[key] = sim.run_process(sweeper.get(key))
    state = zero_lost_acks(history, final)
    counts = history.counts()
    return ScheduleVerdict(
        stack="sharded",
        label=(f"s{index}" + ("+migration" if migration_at is not None
                              else "")),
        plan_seed=plan_seed,
        specs=len(plan.specs),
        ops=len(history.ops),
        ok_ops=counts["ok"],
        failed_ops=counts["fail"],
        indeterminate_ops=counts["indeterminate"],
        linearizable=check.ok,
        states=check.states,
        lost=len(state.lost),
        diverged=len(state.diverged),
        plan_digest=_plan_digest(plan),
        history_digest=history.digest(),
        violations=tuple(
            result.line() for result in check.violations
        ),
    )


# ---------------------------------------------------------------------------
# the geo-stack scenario
# ---------------------------------------------------------------------------

def _geo_keys() -> List[bytes]:
    return [f"gkey-{index:02d}".encode() for index in range(GEO_KEYS)]


@dataclass
class _GeoRun:
    """Raw material one geo scenario produced."""

    history: HistoryRecorder
    sweeps: Dict[str, Dict[bytes, Optional[bytes]]]
    sim: Simulator
    extra_keys: List[bytes] = field(default_factory=list)


def _run_geo_scenario(
    plan: FaultPlan,
    consistency: Consistency,
    seed: int,
    *,
    label: str,
    workers: Tuple = GEO_WORKERS_SYNC,
    planted: bool = False,
) -> _GeoRun:
    """One geo cluster under *plan*: workload, heal, quiesce, sweep.

    With ``planted=True`` the run adds the straggler (writes at the
    partitioned primary through the kill — under async these ack
    locally and strand) and the auditor (reads everything from the
    failover region mid-partition — the observation that catches the
    stale value). Workers stop at the kill so the audit is exact.
    """
    sim = Simulator()
    injector = FaultInjector(sim, plan)
    cluster = GeoCluster(
        sim, REGIONS, wan=WAN, consistency=consistency, injector=injector,
    )
    history = HistoryRecorder(sim)
    keys = _geo_keys()
    horizon = PB_T_KILL if planted else GEO_T_END
    quiesce = PB_T_QUIESCE if planted else GEO_T_QUIESCE

    clients: List[GeoKvClient] = []
    for home, count in workers:
        for worker_index in range(count):
            clients.append(GeoKvClient(
                sim, cluster, f"{label}-{home}-w{worker_index}", home=home,
                preference=REGIONS, rounds=2, timeout=GEO_TIMEOUT,
                retries=0, history=history,
            ))

    def worker(client: GeoKvClient, wrng: random.Random):
        sequence = 0
        yield sim.timeout(GEO_T_START)
        while True:
            yield sim.timeout(wrng.uniform(0.7, 1.3) * GEO_THINK)
            if sim.now >= horizon:
                return
            key = wrng.choice(keys)
            try:
                if wrng.random() < GEO_WRITE_FRACTION:
                    value = f"{client.name}:{sequence}".encode()
                    sequence += 1
                    yield from client.put(key, value)
                else:
                    yield from client.get(key)
            except DegradedError:
                continue  # outcome already recorded in the history

    def straggler():
        # Homed at the primary: intra-region calls never cross the cut
        # WAN links, so under async the primary keeps acking its writes
        # while partitioned — exactly the acks that strand.
        client = GeoKvClient(
            sim, cluster, f"{label}-straggler", home=PRIMARY,
            preference=REGIONS, rounds=1, timeout=GEO_TIMEOUT,
            retries=0, history=history,
        )
        sequence = 0
        yield sim.timeout(PB_STRAGGLER_START)
        while sim.now < PB_STRAGGLER_END:
            value = f"straggler:{sequence}".encode()
            sequence += 1
            try:
                yield from client.put(PB_KEY, value)
            except DegradedError:
                pass
            yield sim.timeout(0.5e-3)

    def auditor():
        client = GeoKvClient(
            sim, cluster, f"{label}-audit", home="r2",
            preference=REGIONS, rounds=1, timeout=GEO_TIMEOUT,
            retries=0, history=history,
        )
        yield sim.timeout(PB_T_AUDIT)
        for key in [PB_KEY] + keys:
            try:
                yield from client.get(key)
            except DegradedError:
                pass

    for worker_index, client in enumerate(clients):
        sim.process(worker(
            client, random.Random(f"verify/geo/{seed}/{label}/w{worker_index}")
        ))
    if planted:
        sim.process(straggler())
        sim.process(auditor())
    sim.run(until=quiesce)
    cluster.stop()
    sim.run()
    history.close_open_ops()

    extra = [PB_KEY] if planted else []
    sweeps: Dict[str, Dict[bytes, Optional[bytes]]] = {}
    for name in REGIONS:
        store = cluster.region(name).store
        sweeps[name] = {
            key: sim.run_process(store.get(key)) for key in keys + extra
        }
    return _GeoRun(history, sweeps, sim, extra)


def _run_geo_schedule(seed: int, index: int,
                      consistency: Consistency) -> ScheduleVerdict:
    """One randomized WAN schedule against a quorum/sync geo cluster."""
    rng = random.Random(f"verify/geo/{seed}/{consistency.value}/{index}")
    plan_seed = rng.randrange(1 << 30)
    plan = geo_plan(plan_seed, REGIONS, PRIMARY, horizon=GEO_T_END,
                    windows=1)
    label = f"g{index}-{consistency.value}"
    homes = (GEO_WORKERS_QUORUM if consistency is Consistency.QUORUM
             else GEO_WORKERS_SYNC)
    run = _run_geo_scenario(plan, consistency, seed, label=label,
                            workers=homes)
    check = check_history(run.history)
    state = final_state_check(run.history, run.sweeps)
    counts = run.history.counts()
    return ScheduleVerdict(
        stack="geo",
        label=label,
        plan_seed=plan_seed,
        specs=len(plan.specs),
        ops=len(run.history.ops),
        ok_ops=counts["ok"],
        failed_ops=counts["fail"],
        indeterminate_ops=counts["indeterminate"],
        linearizable=check.ok,
        states=check.states,
        lost=len(state.lost),
        diverged=len(state.diverged),
        plan_digest=_plan_digest(plan),
        history_digest=run.history.digest(),
        violations=tuple(result.line() for result in check.violations),
    )


# ---------------------------------------------------------------------------
# the planted bug: detect, shrink, replay, dump
# ---------------------------------------------------------------------------

def _planted_mode(plan: FaultPlan,
                  consistency: Consistency, seed: int) -> PlantedOutcome:
    run = _run_geo_scenario(
        plan, consistency, seed, label=f"pb-{consistency.value}",
        planted=True,
    )
    check = check_history(run.history)
    counts = run.history.counts()
    witness = ""
    for result in check.violations:
        if result.witness is not None:
            witness = result.witness.line()
            break
    return PlantedOutcome(
        mode=consistency.value,
        linearizable=check.ok,
        violating_keys=len(check.violations),
        witness=witness,
        ops=len(run.history.ops),
        indeterminate_ops=counts["indeterminate"],
        history_digest=run.history.digest(),
    )


def _run_planted(seed: int, shrink_budget: int) -> PlantedReport:
    plan = primary_kill_plan(seed, REGIONS, PRIMARY, PB_T_KILL, PB_T_HEAL)
    outcomes = [
        _planted_mode(plan, mode, seed)
        for mode in (Consistency.ASYNC, Consistency.QUORUM, Consistency.SYNC)
    ]

    def violates(candidate: FaultPlan) -> bool:
        run = _run_geo_scenario(
            candidate, Consistency.ASYNC, seed, label="pb-async",
            planted=True,
        )
        return not check_history(run.history).ok

    shrunk = shrink_plan(plan, violates, max_runs=shrink_budget)

    # Replay the minimal plan twice: the violation must reproduce with
    # byte-identical histories (the determinism the shrink relied on).
    replays = []
    final_run: Optional[_GeoRun] = None
    for __ in range(2):
        run = _run_geo_scenario(
            shrunk.plan, Consistency.ASYNC, seed, label="pb-async",
            planted=True,
        )
        replays.append(run.history.canonical_bytes())
        final_run = run
    final_check = check_history(final_run.history)
    replay_matches = replays[0] == replays[1] and not final_check.ok

    # The post-mortem: journal the verdict into the minimal run's
    # flight recorder and dump it, alongside the minimal plan itself.
    trigger = "verify:non-linearizable"
    recorder = final_run.sim.recorder
    for result in final_check.violations:
        recorder.record("verify", result.line())
    dump = recorder.dump(trigger)
    return PlantedReport(
        outcomes=outcomes,
        shrink_runs=shrunk.runs,
        removed_specs=shrunk.removed_specs,
        narrowed_windows=shrunk.narrowed_windows,
        minimal_specs=len(shrunk.plan.specs),
        minimal_plan=shrunk.plan.describe(),
        replay_digest=_digest(replays[0]),
        replay_matches=replay_matches,
        flight_trigger=trigger,
        flight_digest=_digest(dump),
        flight_dump=dump,
    )


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def run_verify(
    seed: int = 23,
    *,
    shard_schedules: int = SHARD_SCHEDULES,
    geo_schedules: int = GEO_SCHEDULES,
    shrink_budget: int = SHRINK_BUDGET,
) -> VerifyReport:
    """Run the chaos search and the planted-bug demonstration (E19)."""
    schedules: List[ScheduleVerdict] = []
    for index in range(shard_schedules):
        schedules.append(_run_sharded_schedule(seed, index))
    for mode in (Consistency.QUORUM, Consistency.SYNC):
        for index in range(geo_schedules):
            schedules.append(_run_geo_schedule(seed, index, mode))
    planted = _run_planted(seed, shrink_budget)
    return VerifyReport(
        seed=seed,
        schedules=schedules,
        planted=planted,
        checker_states=sum(verdict.states for verdict in schedules),
        total_ops=sum(verdict.ops for verdict in schedules),
    )


def format_verify(report: VerifyReport) -> str:
    search = Table(
        "E19a: chaos search — seeded fault schedules vs consistency checks",
        ["schedule", "stack", "specs", "ops", "indet", "verdict",
         "lost", "diverged"],
    )
    for verdict in report.schedules:
        search.add_row(
            verdict.label, verdict.stack, verdict.specs, verdict.ops,
            verdict.indeterminate_ops,
            "linearizable" if verdict.linearizable else "VIOLATION",
            verdict.lost, verdict.diverged,
        )
    planted = Table(
        "E19b: planted bug — async strands acked writes, quorum/sync don't",
        ["mode", "verdict", "violating keys", "ops"],
    )
    for outcome in report.planted.outcomes:
        planted.add_row(
            outcome.mode,
            "linearizable" if outcome.linearizable else "NON-LINEARIZABLE",
            outcome.violating_keys, outcome.ops,
        )
    shrink = Table(
        "E19c: minimal reproducer",
        ["metric", "value"],
    )
    shrink.add_row("scenario re-runs", report.planted.shrink_runs)
    shrink.add_row("specs removed", report.planted.removed_specs)
    shrink.add_row("windows narrowed", report.planted.narrowed_windows)
    shrink.add_row("minimal plan specs", report.planted.minimal_specs)
    shrink.add_row("replay byte-identical",
                   str(report.planted.replay_matches).lower())
    shrink.add_row("post-mortem bytes", len(report.planted.flight_dump))
    closing = (
        "all searched schedules consistent; planted bug caught and shrunk"
        if report.clean_schedules == len(report.schedules)
        and not report.planted.outcomes[0].linearizable
        and report.planted.outcomes[1].linearizable
        and report.planted.outcomes[2].linearizable
        and report.planted.replay_matches
        else "UNEXPECTED VERDICT"
    )
    minimal = "\n".join(
        f"  {line}" for line in report.planted.minimal_plan.splitlines()
    )
    return "\n\n".join([
        search.render(), planted.render(), shrink.render(),
        f"minimal reproducer:\n{minimal}",
        f"verdict: {closing} (seed={report.seed}, "
        f"schedules={len(report.schedules)}, ops={report.total_ops})",
    ])
