"""TRACE: causal trace analysis over a cross-region quorum workload.

A three-region geo cluster at quorum consistency runs a short, fully
traced key-value workload: every client operation is its own sampled
flow (:meth:`~repro.telemetry.tracing.Tracer.flow`), so each put/get
builds one intact causal tree even while the flows interleave on the
simulated clock. The analysis then does what a tracing backend does:

* **showcase tree** — the quorum geo put rendered end to end, from the
  client's RPC through the region gateway, the WAN log shippers, and
  the remote appliers (one trace id across >= 2 regions and >= 4
  substrates);
* **top-N slowest flows** — every flow ranked by root duration;
* **critical path** — the latest-finishing chain of spans through the
  showcase tree, i.e. the hops that actually bound the put's latency.

Determinism: trace ids come from ``blake2b`` over ``(seed, flow #)``,
spans carry simulated-clock times, and the report renders floats via
fixed-precision formatting — same seed, byte-identical output, on any
``PYTHONHASHSEED``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.eval.report import Table
from repro.georep import Consistency, GeoCluster, GeoKvClient
from repro.sim import Simulator
from repro.telemetry.tracing import Span

#: Region names; the client writes through its home region's gateway.
REGIONS = ("east", "west", "south")
HOME = "east"

#: Stagger between operation launches (simulated seconds) — enough to
#: give each flow a distinct start, small enough that they interleave.
OP_STAGGER = 0.4e-3

#: How many flows the slowest-flows table shows.
TOP_N = 5

#: Run horizon (simulated seconds) — the log shippers are long-lived
#: loops, so the run is time-bounded like E17's, not drained.
HORIZON = 0.08


@dataclass(frozen=True)
class FlowSummary:
    """One traced client operation, reduced to backend-style rollups."""

    name: str
    trace_id: str
    spans: int
    substrates: Tuple[str, ...]
    regions: Tuple[str, ...]
    duration: float

    def line(self) -> str:
        return (
            f"flow {self.name} trace={self.trace_id} spans={self.spans} "
            f"substrates={','.join(self.substrates)} "
            f"regions={','.join(self.regions)} "
            f"dur={self.duration * 1e6:.3f}us"
        )


@dataclass
class TraceReport:
    """Everything the trace CLI prints, canonically rendered."""

    seed: int
    flows: List[FlowSummary]
    showcase: str
    showcase_tree: str
    critical_path: List[str]

    @property
    def slowest(self) -> List[FlowSummary]:
        """Flows by descending root duration (trace id tiebreak)."""
        return sorted(
            self.flows,
            key=lambda flow: (-flow.duration, flow.trace_id),
        )[:TOP_N]

    def canonical_bytes(self) -> bytes:
        lines = [f"trace seed={self.seed}"]
        lines.extend(flow.line() for flow in self.flows)
        lines.append(f"showcase {self.showcase}")
        lines.append(self.showcase_tree)
        lines.append("critical-path")
        lines.extend(self.critical_path)
        return "\n".join(lines).encode()


def _regions_of(root: Span) -> Tuple[str, ...]:
    """Distinct region attributes across the tree, in span order."""
    seen: List[str] = []
    for span in root.walk():
        region = span.attrs.get("region")
        if isinstance(region, str) and region not in seen:
            seen.append(region)
    return tuple(seen)


def _critical_path(root: Span) -> List[str]:
    """The latest-finishing chain: at every node, descend into the
    child whose end time bounds the parent's completion."""
    lines: List[str] = []
    span = root
    while True:
        end = span.end if span.end is not None else span.start
        lines.append(
            f"  {span.name} [{span.substrate}] "
            f"t={span.start * 1e6:.3f}us "
            f"end={end * 1e6:.3f}us "
            f"dur={span.duration * 1e6:.3f}us"
        )
        if not span.children:
            return lines
        span = max(
            span.children,
            key=lambda child: (
                child.end if child.end is not None else child.start,
                child.span_id,
            ),
        )


def run_trace(seed: int = 8) -> TraceReport:
    """Run the traced cross-region workload and analyse its flows."""
    sim = Simulator()
    tracer = sim.tracer.enable(exemplars=True)
    cluster = GeoCluster(
        sim, REGIONS, consistency=Consistency.QUORUM,
    )
    client = GeoKvClient(sim, cluster, "trace-cli", home=HOME)

    # name -> trace id, insertion-ordered; filled as flows launch.
    flow_ids: Dict[str, str] = {}

    def launch(name: str, delay: float, op):
        """One client op as its own flow, under a named root span."""
        context = tracer.flow()
        assert context is not None  # full sampling at rate 1.0
        flow_ids[name] = context.trace_id

        def body():
            if delay:
                yield sim.timeout(delay)
            with tracer.begin(context, f"client.{name.split('/')[0]}",
                              "client", {"op": name}):
                yield from op()
        sim.process(tracer.drive(body(), context))

    # The workload: a quorum put (the showcase), a racing second put,
    # two interleaved gets, and a delete — five flows sharing the wire.
    launch("put/alpha", 0 * OP_STAGGER,
           lambda: client.put(b"alpha", b"one"))
    launch("put/beta", 1 * OP_STAGGER,
           lambda: client.put(b"beta", b"two"))
    launch("get/alpha", 2 * OP_STAGGER, lambda: client.get(b"alpha"))
    launch("get/beta", 3 * OP_STAGGER, lambda: client.get(b"beta"))
    launch("delete/beta", 4 * OP_STAGGER, lambda: client.delete(b"beta"))
    sim.run(until=HORIZON)

    # A tracing backend indexes by trace id; ambient spans from
    # untraced background activity are not part of any client flow, and
    # late frame hops can re-root on a flow after its client op closed —
    # the first root per trace id is the operation itself.
    roots: Dict[str, Span] = {}
    for root in tracer.roots:
        if root.trace_id in flow_ids.values():
            roots.setdefault(root.trace_id, root)
    flows = []
    for name, trace_id in flow_ids.items():
        root = roots[trace_id]
        spans = list(root.walk())
        substrates = []
        for span in spans:
            if span.substrate and span.substrate not in substrates:
                substrates.append(span.substrate)
        flows.append(FlowSummary(
            name=name,
            trace_id=trace_id,
            spans=len(spans),
            substrates=tuple(substrates),
            regions=_regions_of(root),
            duration=root.duration,
        ))

    showcase_root = roots[flow_ids["put/alpha"]]
    return TraceReport(
        seed=seed,
        flows=flows,
        showcase=flow_ids["put/alpha"],
        showcase_tree=showcase_root.render(),
        critical_path=_critical_path(showcase_root),
    )


def format_trace(report: TraceReport) -> str:
    table = Table(
        f"Slowest flows (top {len(report.slowest)} of {len(report.flows)})",
        ["flow", "trace id", "spans", "substrates", "regions", "duration"],
    )
    for flow in report.slowest:
        table.add_row(
            flow.name,
            flow.trace_id,
            flow.spans,
            ",".join(flow.substrates),
            ",".join(flow.regions),
            f"{flow.duration * 1e6:.3f}us",
        )
    sections = [
        f"seed={report.seed}  flows={len(report.flows)}",
        table.render(),
        f"Cross-region quorum put — one causal tree "
        f"(trace {report.showcase}):",
        report.showcase_tree,
        "Critical path (latest-finishing chain):",
        "\n".join(report.critical_path),
    ]
    return "\n\n".join(sections)
