"""E2: disaggregated pointer chasing — client-side RTTs vs DPU offload.

Sweep tree depth (via key count) and link propagation delay; report lookup
latency and round trips for both paths. Expected shape: client-side
latency grows ~linearly with tree height (one RTT per level) while the
offloaded path stays at one RTT, so the win factor approaches the height;
as propagation -> 0 the two converge.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.apps.pointer_chase import (
    RemoteTreeService,
    client_side_lookup,
    offloaded_lookup,
)
from repro.eval.report import Table
from repro.hw.net import Network
from repro.sim import Simulator
from repro.transport import RpcClient, RpcServer, UdpSocket


@dataclass
class ChasePoint:
    """One E2 sweep point: both paths' latency at a tree size/link delay."""

    keys: int
    tree_height: int
    propagation: float
    client_side_latency: float
    client_side_rtts: int
    offload_latency: float

    @property
    def speedup(self) -> float:
        return self.client_side_latency / self.offload_latency


def _measure(keys: int, propagation: float, lookups: int = 20,
             seed: int = 2) -> ChasePoint:
    sim = Simulator()
    net = Network(sim, propagation=propagation)
    server = RpcServer(sim, UdpSocket(sim, net.endpoint("dpu")))
    service = RemoteTreeService(sim, server, order=4)
    service.populate(keys)
    client = RpcClient(sim, UdpSocket(sim, net.endpoint("client")))
    rng = random.Random(seed)
    targets = [rng.randrange(keys) for _ in range(lookups)]

    def timed(fn, key):
        start = sim.now

        def proc():
            __, rtts = yield from fn(client, "dpu", key)
            return sim.now - start, rtts

        return sim.run_process(proc())

    chase_total, offload_total = 0.0, 0.0
    chase_rtts = 0
    for key in targets:
        elapsed, rtts = timed(client_side_lookup, key)
        chase_total += elapsed
        chase_rtts = rtts
        elapsed, __ = timed(offloaded_lookup, key)
        offload_total += elapsed
    return ChasePoint(
        keys=keys,
        tree_height=service.tree.height,
        propagation=propagation,
        client_side_latency=chase_total / lookups,
        client_side_rtts=chase_rtts,
        offload_latency=offload_total / lookups,
    )


def run_pointer_chase(
    key_counts: List[int] = (16, 64, 256, 1024, 4096),
    propagations: List[float] = (1e-6, 10e-6, 50e-6),
    seed: int = 2,
) -> List[ChasePoint]:
    return [
        _measure(keys, propagation, seed=seed)
        for propagation in propagations
        for keys in key_counts
    ]


def format_pointer_chase(points: List[ChasePoint]) -> str:
    table = Table(
        "E2: B+ tree pointer chasing over the network "
        "(client-side RTT x depth vs 1-RTT DPU offload)",
        ["keys", "height", "one-way delay", "client-side",
         "RTTs", "offloaded", "speedup"],
    )
    for p in points:
        table.add_row(
            p.keys,
            p.tree_height,
            f"{p.propagation * 1e6:.0f} us",
            f"{p.client_side_latency * 1e6:.1f} us",
            p.client_side_rtts,
            f"{p.offload_latency * 1e6:.1f} us",
            f"{p.speedup:.1f}x",
        )
    return table.render()
