"""E8: the Corfu shared log on network-attached flash (paper §2.4).

Multi-client append throughput scaling, tail reads, and chain-replicated
fault injection. Expected shape: throughput grows with clients until the
(single) sequencer round-trip and flash program bandwidth saturate; reads
survive one replica failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.eval.report import Table
from repro.hw.net import Network
from repro.hw.nvme import Namespace, NvmeController
from repro.sim import Simulator
from repro.storage import CorfuClient, CorfuLogUnit, CorfuSequencer
from repro.transport import RpcClient, RpcServer, UdpSocket


@dataclass
class CorfuPoint:
    """One E8 point: append throughput and failover verdict at a client count."""

    clients: int
    appends: int
    duration: float
    throughput: float
    failover_reads_ok: bool


def _run_point(client_count: int, appends_per_client: int,
               replicas: int = 2) -> CorfuPoint:
    sim = Simulator()
    net = Network(sim)
    CorfuSequencer(RpcServer(sim, UdpSocket(sim, net.endpoint("sequencer"))))
    units: List[CorfuLogUnit] = []
    unit_names = []
    for i in range(replicas):
        name = f"unit{i}"
        controller = NvmeController(sim, f"log-ssd-{i}")
        controller.add_namespace(Namespace(1, 262144))
        units.append(
            CorfuLogUnit(
                sim, RpcServer(sim, UdpSocket(sim, net.endpoint(name))), controller
            )
        )
        unit_names.append(name)
    clients = [
        CorfuClient(
            RpcClient(sim, UdpSocket(sim, net.endpoint(f"client{i}"))),
            "sequencer",
            unit_names,
        )
        for i in range(client_count)
    ]
    started = sim.now

    def appender(corfu, count):
        for i in range(count):
            yield from corfu.append(b"log-entry-" + str(i).encode())

    procs = [
        sim.process(appender(client, appends_per_client)) for client in clients
    ]
    sim.run()
    duration = sim.now - started
    total_appends = client_count * appends_per_client

    # Fault injection: kill the head, read the whole log from the replica.
    units[0].fail()
    reader = clients[0]

    def verify_reads():
        ok = True
        for position in range(0, total_appends, max(1, total_appends // 10)):
            data = yield from reader.read(position)
            if not data.startswith(b"log-entry-"):
                ok = False
        return ok

    failover_ok = sim.run_process(verify_reads())
    return CorfuPoint(
        clients=client_count,
        appends=total_appends,
        duration=duration,
        throughput=total_appends / duration,
        failover_reads_ok=failover_ok,
    )


def run_corfu(
    client_counts=(1, 2, 4, 8), appends_per_client: int = 50
) -> List[CorfuPoint]:
    return [_run_point(n, appends_per_client) for n in client_counts]


def format_corfu(points: List[CorfuPoint]) -> str:
    table = Table(
        "E8: Corfu shared log on network-attached flash "
        "(chain replication, 2 replicas)",
        ["clients", "appends", "duration", "appends/s", "failover reads"],
    )
    for p in points:
        table.add_row(
            p.clients, p.appends, f"{p.duration * 1e3:.1f} ms",
            f"{p.throughput:.0f}", "ok" if p.failover_reads_ok else "FAILED",
        )
    return table.render()
