"""E20: manual vs. SLO-driven capacity under a daily traffic curve.

The traffic plane's closing argument.  A three-tenant
:class:`~repro.workload.WorkloadSpec` (get-heavy web, write-heavy
mobile, scan/analytics batch with an evening burst) follows a
compressed diurnal day; an open-loop generator offers that load to a
:class:`~repro.sharding.ShardedKvCluster` no matter how the cluster
copes.  Three provisioning strategies serve the identical arrival
stream (same seed, same draws):

* **static-min** — the morning-trough fleet all day.  Cheap, and the
  midday peak collapses it: sustained p99 breach, shed ops.
* **static-peak** — the midday fleet all day.  Holds the SLO and pays
  for idle DPUs all night.
* **autoscaled** — starts at the trough fleet; an
  :class:`~repro.workload.Autoscaler` watches two SLO rules and drives
  :class:`~repro.sharding.ShardMigrator` add/remove-DPU: scale-out on
  sustained p99 breach, drain on sustained low offered rate, dwell/
  cooldown hysteresis in between.

The acceptance claim: the autoscaled fleet holds worst-window p99
within :data:`P99_FACTOR` of static-peak while spending materially
fewer DPU-seconds.  Same seed => byte-identical report, under any
``PYTHONHASHSEED``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.eval.report import Table
from repro.hw.net import Network
from repro.overload import QueuePolicy
from repro.sharding import (
    HotKeyCache,
    ShardedKvCluster,
    ShardedKvClient,
    ShardMigrator,
)
from repro.sim import Simulator
from repro.telemetry import percentile
from repro.telemetry.slo import SloMonitor, SloRule
from repro.telemetry.timeseries import Sampler
from repro.workload import (
    Autoscaler,
    AutoscalerPolicy,
    OpenLoopTraffic,
    WorkloadSpec,
)

#: One compressed "day" of simulated time.
DAY = 0.6

#: Grace period after the last arrival for stragglers to complete.
GRACE = 0.02

#: Telemetry sampling / SLO evaluation tick.
SAMPLE_PERIOD = 1e-3

#: The scenario. Rates are sized against the put-bound service model:
#: a put parks one of a DPU's two workers on a ~0.5 ms WAL flash
#: program, so one DPU serves ~4k puts/s; the midday put rate
#: (0.22*28000 + 0.30*18000 = 11.6k/s) needs 3-5 DPUs while the
#: overnight trough fits comfortably on 2.
SPEC_TEXT = """\
keys 128
zipf 1.0
tenant web    mix get=0.78,put=0.22 curve diurnal trough=3600 peak=28000 period=600ms
tenant mobile mix get=0.70,put=0.30 curve diurnal trough=2400 peak=18000 period=600ms phase=0.05
tenant batch  mix scan=0.7,analytics=0.3 curve burst base=600 burst=2400 at=450ms dur=50ms
"""

#: Fleet bounds: the under/over-provisioned strategies and the
#: autoscaler's policy range.
MIN_DPUS = 3
PEAK_DPUS = 5
MAX_DPUS = 6

#: Per-DPU service model (matches E16 plus the overload plane): a
#: bounded CoDel queue and two run-to-completion workers. CoDel drops
#: requests whose queue sojourn has exceeded CODEL_TARGET for a full
#: CODEL_INTERVAL, so when the open-loop ramp outruns the fleet the
#: breach shows up as shed work and a p99 plateau rather than
#: unbounded queueing — the admission interplay the SLO rules assume.
QUEUE_CAPACITY = 64
WORKERS = 2
CODEL_TARGET = 2e-3
CODEL_INTERVAL = 4e-3

#: Client knobs: fail fast (open-loop users do not retry), small
#: leased hot-key cache per tenant.
CLIENT_TIMEOUT = 20e-3
BATCH = 32
CACHE_CAPACITY = 32
CACHE_LEASE = 1e-3
VALUE_SIZE = 64

#: A request is *good* if it completes within this deadline.
DEADLINE = 5e-3

#: The two SLO objectives the autoscaler subscribes to.
BREACH_RULE = "p99-breach"
BREACH_TEXT = "workload.traffic.op_latency p99 < 3ms for 2ms"
IDLE_RULE = "fleet-idle"
#: Rules state *objectives* and fire on sustained violation: the idle
#: rule's objective is "the fleet is busy", so it fires — permitting a
#: drain — once the offered rate has stayed below 12k/s for 15ms.
IDLE_TEXT = "workload.traffic.offered_rate value >= 12000 for 15ms"

#: Autoscaler hysteresis: one completed action per cooldown.
COOLDOWN = 50e-3

#: Handoff segment size for autoscaler-driven migrations: coarser than
#: the E16 default, halving the per-segment RPC round trips a busy
#: source must serve mid-ramp.
SEGMENT_KEYS = 16

#: Report granularity: the day split into this many equal windows.
WINDOWS = 6

#: Acceptance: autoscaled worst-window p99 within this factor of
#: static-peak's.
P99_FACTOR = 2.0


@dataclass
class VariantResult:
    """One provisioning strategy's day."""

    mode: str
    dpus_start: int
    dpus_max: int
    offered: int
    served: int
    failed: int
    good: int
    goodput: float
    p50: float
    p99: float
    worst_window_p99: float
    window_p99s: List[float]
    breach_ticks: int
    ticks: int
    dpu_seconds: float
    scale_outs: int
    drains: int

    @property
    def breach_fraction(self) -> float:
        """Fraction of SLO ticks spent with the p99 objective firing."""
        return self.breach_ticks / self.ticks if self.ticks else 0.0

    def line(self) -> str:
        """Canonical one-line form (same seed => same bytes)."""
        windows = ",".join(f"{p!r}" for p in self.window_p99s)
        return (
            f"variant mode={self.mode} dpus={self.dpus_start}"
            f"->{self.dpus_max} offered={self.offered} "
            f"served={self.served} failed={self.failed} "
            f"good={self.good} goodput={self.goodput!r} "
            f"p50={self.p50!r} p99={self.p99!r} "
            f"worst_window_p99={self.worst_window_p99!r} "
            f"windows=[{windows}] "
            f"breach={self.breach_ticks}/{self.ticks} "
            f"dpu_seconds={self.dpu_seconds!r} "
            f"actions={self.scale_outs}+{self.drains}"
        )


@dataclass
class AutoscaleReport:
    """What E20 measured for one seed."""

    seed: int
    day: float
    variants: List[VariantResult]
    #: Autoscaled DPU-seconds / static-peak DPU-seconds.
    capacity_ratio: float
    #: Autoscaled worst-window p99 / static-peak worst-window p99.
    p99_ratio: float
    #: Whether the acceptance claim held (p99 within P99_FACTOR of
    #: static-peak at strictly fewer DPU-seconds).
    accepted: bool
    #: The autoscaler's canonical decision/completion log.
    autoscale_log: bytes
    #: The autoscaled variant's SLO alert log.
    alert_log: bytes
    #: Full telemetry snapshot of the autoscaled run.
    telemetry: bytes

    def variant(self, mode: str) -> VariantResult:
        """The result for *mode* (static-min/static-peak/autoscaled)."""
        for result in self.variants:
            if result.mode == mode:
                return result
        raise KeyError(mode)

    def canonical_bytes(self) -> bytes:
        """The whole experiment as canonical bytes."""
        lines = [v.line() for v in self.variants]
        lines.append(
            f"headline capacity_ratio={self.capacity_ratio!r} "
            f"p99_ratio={self.p99_ratio!r} accepted={self.accepted}"
        )
        lines.append(self.autoscale_log.decode())
        lines.append(self.alert_log.decode())
        return "\n".join(lines).encode()


def daily_spec() -> WorkloadSpec:
    """The E20 scenario, parsed fresh (specs are immutable anyway)."""
    return WorkloadSpec.parse(SPEC_TEXT)


def _preload(sim: Simulator, cluster: ShardedKvCluster,
             spec: WorkloadSpec) -> None:
    """Write every key once so gets hit the memtable, not a miss path."""
    from repro.workload.popularity import ZipfKeys

    loader = ShardedKvClient(sim, cluster, name="loader", batch_limit=BATCH)
    keys = ZipfKeys(spec.key_count, spec.zipf_skew).keys()
    value = b"\x00" * VALUE_SIZE
    sim.run_process(loader.put_many([(key, value) for key in keys]))


def _window_p99s(traffic: OpenLoopTraffic, origin: float,
                 day: float) -> List[float]:
    """p99 of served-request latency per equal slice of the day."""
    buckets: List[List[float]] = [[] for _ in range(WINDOWS)]
    for started, finished, ok, _, _, _ in traffic.outcomes:
        if not ok:
            continue
        index = int((started - origin) / day * WINDOWS)
        if 0 <= index < WINDOWS:
            buckets[index].append(finished - started)
    return [percentile(b, 0.99) if b else 0.0 for b in buckets]


def _run_variant(seed: int, mode: str):
    autoscaled = mode == "autoscaled"
    dpus = PEAK_DPUS if mode == "static-peak" else MIN_DPUS
    sim = Simulator()
    network = Network(sim)
    cluster = ShardedKvCluster(
        sim, network, dpu_count=dpus,
        queue_capacity=QUEUE_CAPACITY, workers=WORKERS,
        queue_policy=QueuePolicy.CODEL,
        codel_target=CODEL_TARGET, codel_interval=CODEL_INTERVAL,
    )
    spec = daily_spec()
    _preload(sim, cluster, spec)
    clients = {
        tenant.name: ShardedKvClient(
            sim, cluster, name=f"t-{tenant.name}",
            cache=HotKeyCache(sim, capacity=CACHE_CAPACITY,
                              lease=CACHE_LEASE),
            batch_limit=BATCH, timeout=CLIENT_TIMEOUT, retries=0,
        )
        for tenant in spec.tenants
    }
    origin = sim.now
    horizon = origin + DAY
    traffic = OpenLoopTraffic(
        sim, spec, clients, seed=seed, horizon=horizon, deadline=DEADLINE,
    )

    sampler = Sampler(sim.telemetry, sim, period=SAMPLE_PERIOD)
    sampler.watch("workload.traffic.op_latency")
    sampler.watch("workload.traffic.offered_rate")
    sampler.watch("workload.traffic.goodput_rate")
    sampler.watch("workload.autoscaler.fleet")
    monitor = SloMonitor(sampler, [
        SloRule.parse(BREACH_TEXT, name=BREACH_RULE),
        SloRule.parse(IDLE_TEXT, name=IDLE_RULE),
    ])

    scaler: Optional[Autoscaler] = None
    fleet_high = [dpus]
    if autoscaled:
        migrator = ShardMigrator(sim, cluster, segment_keys=SEGMENT_KEYS)
        scaler = Autoscaler(sim, monitor, migrator, AutoscalerPolicy(
            min_dpus=MIN_DPUS, max_dpus=MAX_DPUS,
            breach_rule=BREACH_RULE, idle_rule=IDLE_RULE,
            cooldown=COOLDOWN,
        ))
        migrator.on_migration.append(
            lambda report: fleet_high.__setitem__(
                0, max(fleet_high[0], len(cluster.members()))
            )
        )

    # Tick accounting (after the monitor so its check has run).
    ticks = [0, 0]

    def _count(now: float) -> None:
        ticks[0] += 1
        if BREACH_RULE in monitor.firing:
            ticks[1] += 1

    sampler.on_sample.append(_count)

    # Capture the capacity integral at the day boundary, not after the
    # straggler grace, so every strategy is billed for the same window.
    captured: Dict[str, float] = {}

    def _capture():
        yield sim.timeout(horizon - sim.now)
        captured["dpu_seconds"] = (
            scaler.dpu_seconds() if scaler is not None else dpus * DAY
        )

    def _sampling():
        while sim.now < horizon:
            yield sim.timeout(SAMPLE_PERIOD)
            sampler.sample()

    traffic.start()
    sim.process(_sampling())
    sim.process(_capture())
    sim.run(until=horizon + GRACE)

    latencies = traffic.latencies()
    windows = _window_p99s(traffic, origin, DAY)
    result = VariantResult(
        mode=mode,
        dpus_start=dpus,
        dpus_max=fleet_high[0],
        offered=traffic.offered,
        served=traffic.served,
        failed=traffic.failed,
        good=traffic.good,
        goodput=traffic.good / DAY,
        p50=percentile(latencies, 0.50),
        p99=percentile(latencies, 0.99),
        worst_window_p99=max(windows),
        window_p99s=windows,
        breach_ticks=ticks[1],
        ticks=ticks[0],
        dpu_seconds=captured["dpu_seconds"],
        scale_outs=scaler.scale_outs if scaler else 0,
        drains=scaler.drains if scaler else 0,
    )
    return result, scaler, monitor, sim


def run_autoscale(seed: int = 20) -> AutoscaleReport:
    """Run the three strategies over the identical arrival stream."""
    variants: List[VariantResult] = []
    autoscale_log = b""
    alert_log = b""
    telemetry = b""
    for mode in ("static-min", "static-peak", "autoscaled"):
        result, scaler, monitor, sim = _run_variant(seed, mode)
        variants.append(result)
        if mode == "autoscaled":
            autoscale_log = scaler.event_log_bytes()
            alert_log = monitor.alert_log_bytes()
            telemetry = sim.telemetry.snapshot_bytes()
    peak = variants[1]
    auto = variants[2]
    capacity_ratio = (
        auto.dpu_seconds / peak.dpu_seconds if peak.dpu_seconds else 0.0
    )
    p99_ratio = (
        auto.worst_window_p99 / peak.worst_window_p99
        if peak.worst_window_p99 else 0.0
    )
    accepted = capacity_ratio < 1.0 and p99_ratio <= P99_FACTOR
    return AutoscaleReport(
        seed=seed,
        day=DAY,
        variants=variants,
        capacity_ratio=capacity_ratio,
        p99_ratio=p99_ratio,
        accepted=accepted,
        autoscale_log=autoscale_log,
        alert_log=alert_log,
        telemetry=telemetry,
    )


def format_autoscale(report: AutoscaleReport) -> str:
    table = Table(
        f"E20: capacity under a daily curve — three strategies, one "
        f"arrival stream (day={report.day * 1e3:.0f}ms, "
        f"seed={report.seed})",
        ["strategy", "fleet", "offered", "served", "failed",
         "goodput (req/s)", "p99 (ms)", "worst win p99",
         "SLO breach", "DPU-s", "actions"],
    )
    for v in report.variants:
        table.add_row(
            v.mode,
            f"{v.dpus_start}" if v.dpus_start == v.dpus_max
            else f"{v.dpus_start}->{v.dpus_max}",
            v.offered,
            v.served,
            v.failed,
            f"{v.goodput:.0f}",
            f"{v.p99 * 1e3:.2f}",
            f"{v.worst_window_p99 * 1e3:.2f}ms",
            f"{v.breach_fraction * 100:.1f}%",
            f"{v.dpu_seconds:.3f}",
            f"{v.scale_outs}+{v.drains}",
        )
    rendered = table.render()

    windows = Table(
        f"p99 per day window ({WINDOWS} windows of "
        f"{report.day / WINDOWS * 1e3:.0f}ms)",
        ["window"] + [v.mode for v in report.variants],
    )
    for index in range(WINDOWS):
        windows.add_row(
            f"w{index}",
            *(f"{v.window_p99s[index] * 1e3:.2f}ms"
              for v in report.variants),
        )
    rendered += "\n\n" + windows.render()

    rendered += "\n\nautoscaler event log (decisions and completions;"
    rendered += " observe lines elided):"
    for line in report.autoscale_log.decode().splitlines():
        if " observe " in line:
            continue
        rendered += f"\n  {line}"

    auto = report.variant("autoscaled")
    saved = (1.0 - report.capacity_ratio) * 100.0
    rendered += (
        f"\n\nheadline: SLO-driven autoscaling served the day at "
        f"{report.capacity_ratio:.2f}x static-peak capacity "
        f"({saved:.0f}% fewer DPU-seconds) with worst-window p99 "
        f"{report.p99_ratio:.2f}x static-peak "
        f"({auto.scale_outs} scale-outs, {auto.drains} drains) — "
        f"{'ACCEPTED' if report.accepted else 'NOT ACCEPTED'}"
    )
    return rendered
