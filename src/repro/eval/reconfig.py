"""E7: partial-reconfiguration multiplexing at 10-100 ms timescales.

A tenant-arrival workload against the slot scheduler; reports the
reconfiguration latency distribution (which must sit in the paper's band)
and slot utilization.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass

from repro.dpu import HyperionDpu, SlotScheduler
from repro.eval.report import Table
from repro.hdl.engine import compile_program
from repro.ebpf.asm import assemble
from repro.hw.net import Network
from repro.sim import Simulator


@dataclass
class ReconfigReport:
    """E7 results: reconfiguration latency distribution and utilization."""

    tenants: int
    granted: int
    min_reconfig: float
    mean_reconfig: float
    max_reconfig: float
    mean_wait: float
    utilization: float
    in_band_fraction: float


def _tenant_bitstreams(count: int, seed: int = 31):
    """Compile a spread of program sizes -> a spread of bitstream sizes."""
    rng = random.Random(seed)
    bitstreams = []
    for i in range(count):
        ops = rng.randrange(4, 40)
        source = "\n".join(
            ["mov r0, 0"] + [f"add r0, {j + 1}" for j in range(ops)] + ["exit"]
        )
        compiled = compile_program(assemble(source, name=f"tenant-{i}"))
        bitstreams.append(compiled.to_bitstream(name=f"tenant-{i}"))
    return bitstreams


def run_reconfig(tenants: int = 12, hold_time: float = 50e-3) -> ReconfigReport:
    sim = Simulator()
    dpu = HyperionDpu(sim, Network(sim), ssd_blocks=4096)
    sim.run_process(dpu.boot())
    scheduler = SlotScheduler(sim, dpu.fabric, dpu.icap)
    bitstreams = _tenant_bitstreams(tenants)

    def tenant_lifecycle(index):
        request = scheduler.submit(f"tenant-{index}", bitstreams[index])
        # Wait until granted, run for hold_time, release.
        while request.granted_at is None:
            yield sim.timeout(1e-3)
        yield sim.timeout(hold_time)
        scheduler.release(request.slot_index)

    def arrivals():
        rng = random.Random(7)
        for index in range(tenants):
            sim.process(tenant_lifecycle(index))
            yield sim.timeout(rng.uniform(5e-3, 20e-3))

    sim.process(arrivals())
    sim.run()
    latencies = [record.latency for record in dpu.icap.history]
    in_band = [lat for lat in latencies if 10e-3 <= lat <= 100e-3]
    return ReconfigReport(
        tenants=tenants,
        granted=len(scheduler.granted),
        min_reconfig=min(latencies),
        mean_reconfig=statistics.mean(latencies),
        max_reconfig=max(latencies),
        mean_wait=statistics.mean(r.wait_time for r in scheduler.granted),
        utilization=scheduler.utilization(),
        in_band_fraction=len(in_band) / len(latencies),
    )


def format_reconfig(report: ReconfigReport) -> str:
    table = Table(
        "E7: slot multiplexing via ICAP partial reconfiguration "
        "(paper band: 10-100 ms)",
        ["metric", "value"],
    )
    table.add_row("tenants submitted", report.tenants)
    table.add_row("tenants granted", report.granted)
    table.add_row("min reconfiguration", f"{report.min_reconfig * 1e3:.1f} ms")
    table.add_row("mean reconfiguration", f"{report.mean_reconfig * 1e3:.1f} ms")
    table.add_row("max reconfiguration", f"{report.max_reconfig * 1e3:.1f} ms")
    table.add_row("mean grant wait", f"{report.mean_wait * 1e3:.1f} ms")
    table.add_row("fraction in 10-100 ms band", f"{report.in_band_fraction:.2f}")
    return table.render()
