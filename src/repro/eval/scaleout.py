"""E16: scale-out data plane — throughput vs DPU count, live scale-out.

Two questions, one experiment:

1. **Does the data plane scale?** A fixed closed-loop client population
   drives a :class:`~repro.sharding.ShardedKvCluster` at 1, 2, 4 and 8
   DPUs, twice: *naive* (one RPC per op, no cache — the per-op overhead
   regime the Hyperion report warns about) and *optimized* (the full
   scale-out stack: ``call_batch`` coalescing plus the lease/epoch
   hot-key cache). With one DPU the run-to-completion wimpy cores are
   the bottleneck; spreading the ring across 8 DPUs should multiply
   aggregate goodput ≥ 4x when batching+cache amortize the per-op cost.

2. **Is a topology change an outage?** A separate run holds the client
   population steady while a :class:`~repro.sharding.ShardMigrator`
   adds a DPU mid-run. The forwarding stubs keep every in-flight key
   servable, so the event must complete with **zero failed client
   ops** — migration shows up as bounded p99 inflation (ops gated
   behind a segment copy pay one extra hop or one WAL append) and as a
   ``shard.migrate`` span in the trace, not as errors.

Same seed => byte-identical report, under any ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.eval.report import Table
from repro.hw.net import Network
from repro.sharding import (
    HotKeyCache,
    ShardedKvCluster,
    ShardedKvClient,
    ShardMigrator,
)
from repro.sim import Simulator
from repro.telemetry import percentile
from repro.transport import RpcError

#: Keyspace: small values that stay memtable-resident, so gets are
#: served at wimpy-core speed and puts pay the WAL flash program.
KEY_COUNT = 128
VALUE_SIZE = 64

#: Zipf-ish skew: this many hot keys absorb HOT_FRACTION of the reads.
HOT_KEYS = 16
HOT_FRACTION = 0.8

#: The scaling sweep.
DPU_COUNTS = (1, 2, 4, 8)

#: Closed-loop client workers (fixed across the sweep: the offered
#: concurrency is constant, only the serving capacity changes).
CLIENT_WORKERS = 96

#: Client-side think time per loop iteration (also keeps a fully
#: cache-served iteration from spinning without advancing the clock).
THINK = 2e-6

#: Probability one loop iteration writes instead of reading. Writes pay
#: the WAL flash program (~0.5 ms of worker time), so a read-dominant
#: mix keeps the sweep measuring the data plane rather than the flash —
#: a put parks one of a DPU's two workers for ~250 read-service times,
#: and a scattered batch is as slow as its unluckiest owner. The
#: scale-out *event* run keeps a heavier write share (see
#: :data:`EVENT_PUT_FRACTION`) since writes are what migration handoffs
#: must stay coherent with.
PUT_FRACTION = 0.005

#: Write share during the live scale-out event.
EVENT_PUT_FRACTION = 0.02

#: Keys per optimized read batch (one wire round trip per owner).
BATCH = 32

#: Measured window per sweep point (simulated seconds).
DURATION = 10e-3

#: Per-DPU service model: bounded queue, two run-to-completion workers.
#: The queue bound exceeds the worst-case closed-loop backlog (one
#: outstanding request per client), so the sweep never sheds.
QUEUE_CAPACITY = 128
WORKERS = 2

#: Hot-key cache knobs (per client worker).
CACHE_CAPACITY = 32
CACHE_LEASE = 1e-3

#: The scale-out event: 3 DPUs serving, a 4th joins mid-run.
EVENT_DPUS = 3
EVENT_WORKERS = 16
EVENT_DURATION = 80e-3
EVENT_MIGRATE_AT = 8e-3
SEGMENT_KEYS = 8


@dataclass
class ScalePoint:
    """One (DPU count, variant) sweep measurement."""

    dpus: int
    optimized: bool
    ops: int
    failures: int
    goodput: float
    p50_latency: float
    p99_latency: float
    round_trips: int
    cache_hit_rate: float

    def line(self) -> str:
        """Canonical one-line form (same seed => same bytes)."""
        variant = "optimized" if self.optimized else "naive"
        return (
            f"point dpus={self.dpus} variant={variant} ops={self.ops} "
            f"failures={self.failures} goodput={self.goodput!r} "
            f"p50={self.p50_latency!r} p99={self.p99_latency!r} "
            f"round_trips={self.round_trips} "
            f"hit_rate={self.cache_hit_rate!r}"
        )


@dataclass
class ScaleoutEvent:
    """The mid-run scale-out measurement."""

    dpus_before: int
    dpus_after: int
    ops: int
    failures: int
    keys_moved: int
    segments: int
    epoch: int
    migration_start: float
    migration_duration: float
    p99_before: float
    p99_during: float
    p99_after: float
    p99_inflation: float
    migrate_spans: int
    handoff_spans: int
    forwarded_ops: int
    gated_ops: int

    def line(self) -> str:
        """Canonical one-line form (same seed => same bytes)."""
        return (
            f"event dpus={self.dpus_before}->{self.dpus_after} "
            f"ops={self.ops} failures={self.failures} "
            f"keys_moved={self.keys_moved} segments={self.segments} "
            f"epoch={self.epoch} duration={self.migration_duration!r} "
            f"p99_before={self.p99_before!r} p99_during={self.p99_during!r} "
            f"p99_after={self.p99_after!r} inflation={self.p99_inflation!r} "
            f"spans={self.migrate_spans}/{self.handoff_spans} "
            f"forwarded={self.forwarded_ops} gated={self.gated_ops}"
        )


@dataclass
class ScaleoutReport:
    """What E16 measured for one seed."""

    seed: int
    duration: float
    points: List[ScalePoint]
    event: ScaleoutEvent
    #: optimized goodput at 8 DPUs / optimized goodput at 1 DPU — the
    #: headline scaling number (>= 4.0 is the acceptance bar).
    speedup_8dpu: float
    #: optimized / naive goodput at 8 DPUs — what batching+cache buy.
    batching_gain_8dpu: float
    telemetry: bytes

    def canonical_bytes(self) -> bytes:
        """The whole experiment as canonical bytes."""
        lines = [p.line() for p in self.points]
        lines.append(self.event.line())
        lines.append(
            f"headline speedup_8dpu={self.speedup_8dpu!r} "
            f"batching_gain_8dpu={self.batching_gain_8dpu!r}"
        )
        return "\n".join(lines).encode()


def _keyspace() -> Tuple[List[bytes], List[bytes]]:
    keys = [f"key-{i:04d}".encode() for i in range(KEY_COUNT)]
    return keys[:HOT_KEYS], keys[HOT_KEYS:]


def _pick(rng: random.Random, hot: List[bytes], cold: List[bytes]) -> bytes:
    if rng.random() < HOT_FRACTION:
        return hot[rng.randrange(len(hot))]
    return cold[rng.randrange(len(cold))]


def _build(sim: Simulator, dpus: int, optimized: bool, workers: int):
    """One cluster plus one closed-loop client (+cache) per worker."""
    network = Network(sim)
    cluster = ShardedKvCluster(
        sim, network, dpu_count=dpus,
        queue_capacity=QUEUE_CAPACITY, workers=WORKERS,
    )
    clients = []
    for index in range(workers):
        cache = (
            HotKeyCache(sim, capacity=CACHE_CAPACITY, lease=CACHE_LEASE)
            if optimized else None
        )
        clients.append(ShardedKvClient(
            sim, cluster, name=f"w{index}", cache=cache, batch_limit=BATCH,
        ))
    return cluster, clients


def _preload(sim: Simulator, cluster: ShardedKvCluster, keys: List[bytes]):
    loader = ShardedKvClient(sim, cluster, name="loader",
                             batch_limit=BATCH)
    value = b"\x00" * VALUE_SIZE
    sim.run_process(loader.put_many([(key, value) for key in keys]))


def _worker_loop(sim, client, rng, hot, cold, horizon, outcomes, optimized,
                 put_fraction=PUT_FRACTION):
    """Closed loop: think, then one read batch or one write, forever."""
    value = b"\x01" * VALUE_SIZE
    while True:
        yield sim.timeout(THINK)
        if sim.now >= horizon:
            return
        started = sim.now
        if rng.random() < put_fraction:
            key = _pick(rng, hot, cold)
            try:
                yield from client.put(key, value)
                outcomes.append((started, sim.now, True, 1))
            except RpcError:
                outcomes.append((started, sim.now, False, 1))
        elif optimized:
            keys = [_pick(rng, hot, cold) for __ in range(BATCH)]
            try:
                yield from client.get_many(keys)
                outcomes.append((started, sim.now, True, len(keys)))
            except RpcError:
                outcomes.append((started, sim.now, False, len(keys)))
        else:
            key = _pick(rng, hot, cold)
            try:
                yield from client.get(key)
                outcomes.append((started, sim.now, True, 1))
            except RpcError:
                outcomes.append((started, sim.now, False, 1))


def _run_point(seed: int, dpus: int, optimized: bool) -> ScalePoint:
    """One fresh simulation: the fixed client population vs one cluster."""
    sim = Simulator()
    cluster, clients = _build(sim, dpus, optimized, CLIENT_WORKERS)
    hot, cold = _keyspace()
    _preload(sim, cluster, hot + cold)

    start = sim.now
    horizon = start + DURATION
    outcomes: List[Tuple[float, float, bool, int]] = []
    for index, client in enumerate(clients):
        rng = random.Random(f"{seed}/sweep/{dpus}/{int(optimized)}/{index}")
        sim.process(_worker_loop(
            sim, client, rng, hot, cold, horizon, outcomes, optimized,
        ))
    sim.run(until=horizon + 5e-3)

    measured = [o for o in outcomes if o[0] >= start]
    served = sum(n for __, __, ok, n in measured if ok)
    failures = sum(n for __, __, ok, n in measured if not ok)
    latencies = sorted(f - s for s, f, ok, __ in measured if ok)
    hits = sum(c.cache.hits for c in clients if c.cache is not None)
    misses = sum(c.cache.misses for c in clients if c.cache is not None)
    return ScalePoint(
        dpus=dpus,
        optimized=optimized,
        ops=served,
        failures=failures,
        goodput=served / DURATION,
        p50_latency=percentile(latencies, 0.50) if latencies else 0.0,
        p99_latency=percentile(latencies, 0.99) if latencies else 0.0,
        round_trips=sum(c.round_trips for c in clients),
        cache_hit_rate=hits / (hits + misses) if hits + misses else 0.0,
    )


def _run_event(seed: int) -> Tuple[ScaleoutEvent, Simulator]:
    """Steady optimized traffic while a DPU joins the ring mid-run."""
    sim = Simulator()
    cluster, clients = _build(sim, EVENT_DPUS, True, EVENT_WORKERS)
    migrator = ShardMigrator(sim, cluster, segment_keys=SEGMENT_KEYS)
    hot, cold = _keyspace()
    _preload(sim, cluster, hot + cold)

    start = sim.now
    horizon = start + EVENT_DURATION
    outcomes: List[Tuple[float, float, bool, int]] = []
    for index, client in enumerate(clients):
        rng = random.Random(f"{seed}/event/{index}")
        sim.process(_worker_loop(
            sim, client, rng, hot, cold, horizon, outcomes, True,
            put_fraction=EVENT_PUT_FRACTION,
        ))

    window: List[float] = []
    report_box: List[object] = []

    def control():
        yield sim.timeout(EVENT_MIGRATE_AT)
        window.append(sim.now)
        sim.tracer.enable()
        report = yield from migrator.add_dpu()
        sim.tracer.disable()
        window.append(sim.now)
        report_box.append(report)

    sim.process(control())
    sim.run(until=horizon + 5e-3)

    if not report_box:
        raise RuntimeError(
            "scale-out migration did not complete within the event window"
        )
    report = report_box[0]
    mig_start, mig_end = window
    measured = [o for o in outcomes if o[0] >= start]
    failures = sum(n for __, __, ok, n in measured if not ok)
    before = sorted(f - s for s, f, ok, __ in measured
                    if ok and f <= mig_start)
    during = sorted(f - s for s, f, ok, __ in measured
                    if ok and f > mig_start and s < mig_end)
    after = sorted(f - s for s, f, ok, __ in measured if ok and s >= mig_end)
    p99_before = percentile(before, 0.99) if before else 0.0
    p99_during = percentile(during, 0.99) if during else 0.0
    p99_after = percentile(after, 0.99) if after else 0.0

    # Iterative walk: concurrent client spans clock-nest under the long
    # migration span, so the tree is far deeper than the recursion limit.
    migrate_spans = handoff_spans = 0
    stack = list(sim.tracer.roots)
    while stack:
        span = stack.pop()
        stack.extend(span.children)
        if span.name == "shard.migrate":
            migrate_spans += 1
        elif span.name == "shard.handoff":
            handoff_spans += 1

    event = ScaleoutEvent(
        dpus_before=EVENT_DPUS,
        dpus_after=len(cluster.ring),
        ops=sum(n for __, __, ok, n in measured if ok),
        failures=failures,
        keys_moved=report.keys_moved,
        segments=report.segments,
        epoch=report.epoch,
        migration_start=mig_start - start,
        migration_duration=report.duration,
        p99_before=p99_before,
        p99_during=p99_during,
        p99_after=p99_after,
        p99_inflation=p99_during / p99_before if p99_before else 0.0,
        migrate_spans=migrate_spans,
        handoff_spans=handoff_spans,
        forwarded_ops=sum(
            f.forwarded_ops for f in cluster.forwarders.values()
        ),
        gated_ops=sum(
            f._gated.value for f in cluster.forwarders.values()
        ),
    )
    return event, sim


def run_scaleout(
    seed: int = 16,
    dpu_counts: Tuple[int, ...] = DPU_COUNTS,
) -> ScaleoutReport:
    points: List[ScalePoint] = []
    for optimized in (False, True):
        for dpus in dpu_counts:
            points.append(_run_point(seed, dpus, optimized))

    def goodput(dpus: int, optimized: bool) -> Optional[float]:
        for point in points:
            if point.dpus == dpus and point.optimized == optimized:
                return point.goodput
        return None

    top = max(dpu_counts)
    base = goodput(min(dpu_counts), True)
    opt_top = goodput(top, True)
    naive_top = goodput(top, False)
    event, sim = _run_event(seed)
    return ScaleoutReport(
        seed=seed,
        duration=DURATION,
        points=points,
        event=event,
        speedup_8dpu=opt_top / base if base else 0.0,
        batching_gain_8dpu=opt_top / naive_top if naive_top else 0.0,
        telemetry=sim.telemetry.snapshot_bytes(),
    )


def format_scaleout(report: ScaleoutReport) -> str:
    table = Table(
        f"E16: scale-out data plane — goodput vs DPU count "
        f"({CLIENT_WORKERS} closed-loop clients, "
        f"{PUT_FRACTION * 100:g}% writes, seed={report.seed})",
        ["dpus", "variant", "ops", "goodput (ops/s)", "p50 (us)",
         "p99 (us)", "round trips", "cache hit"],
    )
    for point in report.points:
        table.add_row(
            point.dpus,
            "optimized" if point.optimized else "naive",
            point.ops,
            f"{point.goodput:.0f}",
            f"{point.p50_latency * 1e6:.1f}",
            f"{point.p99_latency * 1e6:.1f}",
            point.round_trips,
            f"{point.cache_hit_rate * 100:.1f}%",
        )
    rendered = table.render()
    rendered += (
        f"\n\nscaling: 8-DPU optimized goodput is "
        f"{report.speedup_8dpu:.2f}x the 1-DPU figure "
        f"(batching+cache worth {report.batching_gain_8dpu:.2f}x at 8 DPUs)"
    )
    event = report.event
    rendered += (
        f"\n\nlive scale-out ({event.dpus_before}->{event.dpus_after} DPUs "
        f"at t={event.migration_start * 1e3:.0f}ms): "
        f"{event.keys_moved} keys in {event.segments} segments over "
        f"{event.migration_duration * 1e3:.2f}ms, epoch -> {event.epoch}"
    )
    rendered += (
        f"\n  client ops: {event.ops} served, {event.failures} failed; "
        f"p99 {event.p99_before * 1e6:.0f}us -> "
        f"{event.p99_during * 1e6:.0f}us during migration "
        f"({event.p99_inflation:.2f}x) -> "
        f"{event.p99_after * 1e6:.0f}us after"
    )
    rendered += (
        f"\n  trace: {event.migrate_spans} shard.migrate span(s), "
        f"{event.handoff_spans} handoff segment span(s); "
        f"{event.forwarded_ops} ops forwarded, {event.gated_ops} gated"
    )
    return rendered
