"""TEL: the unified telemetry plane — a traced KV get, end to end.

The refactor's acceptance demo: every substrate counter now lives in one
:class:`~repro.telemetry.MetricsRegistry` hanging off the simulator, and the
span tracer shows a single client ``kv.get`` crossing the transport, the
network links, the KV-SSD engine, the NVMe controller, and the PCIe DMA —
one tree, one clock, no per-subsystem stats silos.

Expected shape: the span tree covers at least three substrates
(transport -> net -> kvssd -> nvme -> pcie), and the registry snapshot is
canonical bytes — the same seed (everything here is deterministic) renders
the identical dump on every run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.hw.net import Network
from repro.hw.nvme import Namespace, NvmeController
from repro.hw.pcie.link import PcieLink
from repro.sim import Simulator
from repro.storage.kvssd import KvSsd, KvSsdClient, KvSsdService
from repro.telemetry import chrome_trace_json, prometheus_text
from repro.transport import RpcClient, RpcServer, UdpSocket


@dataclass
class TelemetryReport:
    """One traced KV get plus the run's full registry state."""

    value: bytes
    span_count: int
    substrates: List[str]
    trace: str
    registry: str
    snapshot: bytes
    #: The same state in standard formats: Prometheus text exposition of
    #: the registry, Chrome trace-event JSON of the span tree (loadable
    #: at chrome://tracing or https://ui.perfetto.dev).
    prometheus: str = ""
    chrome_trace: str = ""


def run_telemetry(preload: int = 8) -> TelemetryReport:
    sim = Simulator()
    network = Network(sim)
    # One DPU-attached SSD with a real PCIe link, so reads DMA across it.
    controller = NvmeController(
        sim, "dpu0-nvme",
        link=PcieLink(sim, lanes=4, component="dpu0.pcie"),
    )
    controller.add_namespace(Namespace(1, 16384))
    # A tiny memtable: the preload flushes SSTables to flash, so the traced
    # get has to consult on-flash runs instead of answering from memory.
    device = KvSsd(sim, controller, memtable_limit=4)
    server = RpcServer(sim, UdpSocket(sim, network.endpoint("dpu0")))
    KvSsdService(server, device)
    stub = KvSsdClient(
        RpcClient(sim, UdpSocket(sim, network.endpoint("host"))), "dpu0"
    )

    def scenario():
        for index in range(preload):
            yield from stub.put(f"key:{index:02d}".encode(), b"v" * 64)
        sim.tracer.enable()
        value = yield from stub.get(b"key:03")
        sim.tracer.disable()
        return value

    value = sim.run_process(scenario())
    spans = sum(
        1 for root in sim.tracer.roots for __ in root.walk()
    )
    return TelemetryReport(
        value=value,
        span_count=spans,
        substrates=sorted(sim.tracer.substrates()),
        trace=sim.tracer.render(),
        registry=sim.telemetry.render(),
        snapshot=sim.telemetry.snapshot_bytes(),
        prometheus=prometheus_text(sim.telemetry),
        chrome_trace=chrome_trace_json(sim.tracer),
    )


def format_telemetry(report: TelemetryReport) -> str:
    prom_excerpt = report.prometheus.splitlines()[:6]
    lines = [
        "TEL: one traced kv.get across the CPU-free stack",
        f"  spans: {report.span_count}   "
        f"substrates: {', '.join(report.substrates)}",
        "",
        report.trace.rstrip("\n"),
        "",
        "-- metrics registry "
        f"({len(report.snapshot)} canonical snapshot bytes) --",
        report.registry.rstrip("\n"),
        "",
        "-- Prometheus exposition "
        f"({len(report.prometheus.splitlines())} lines, first 6) --",
        *prom_excerpt,
        "",
        "-- Chrome trace JSON: "
        f"{len(report.chrome_trace)} bytes, load at chrome://tracing "
        "or https://ui.perfetto.dev --",
    ]
    return "\n".join(lines)
