"""Table 1: the state-of-the-art overview, regenerated.

The paper's Table 1 surveys six categories of pair-wise CPU-minimizing
integration and names the leg each is missing. We model every category as
a capability vector, derive the "missing" text from the vector (so the
table is computed, not transcribed), and add the Hyperion row the table
argues for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.eval.report import Table


@dataclass(frozen=True)
class IntegrationCategory:
    """One row of Table 1 as a capability vector."""

    name: str
    examples: str
    has_network: bool
    has_storage: bool
    has_compute: bool
    cpu_free_control: bool
    filesystem_support: bool

    def missing_legs(self) -> List[str]:
        missing = []
        if not self.has_network:
            missing.append("no network integration")
        if not self.has_storage:
            missing.append("no storage integration")
        if not self.has_compute:
            missing.append("no general compute")
        if not self.cpu_free_control:
            missing.append("CPU mediates control/translation")
        if self.has_storage and not self.filesystem_support:
            missing.append("block-level only, no file systems")
        return missing

    @property
    def is_complete(self) -> bool:
        return not self.missing_legs()


def table1_categories() -> List[IntegrationCategory]:
    """The six surveyed categories plus Hyperion."""
    return [
        IntegrationCategory(
            "GPU-with-network", "GPUnet, GPUDirect RDMA",
            has_network=True, has_storage=False, has_compute=True,
            cpu_free_control=False, filesystem_support=False,
        ),
        IntegrationCategory(
            "GPU-with-storage", "SPIN, GPUfs, BaM, Donard",
            has_network=False, has_storage=True, has_compute=True,
            cpu_free_control=False, filesystem_support=False,
        ),
        IntegrationCategory(
            "FPGA/SoC-with-network", "hXDP, Catapult, NICA, FlexDriver",
            has_network=True, has_storage=False, has_compute=True,
            cpu_free_control=False, filesystem_support=False,
        ),
        IntegrationCategory(
            "Storage-with-network", "ReFlex, NVMe-oF, i10",
            has_network=True, has_storage=True, has_compute=False,
            cpu_free_control=False, filesystem_support=False,
        ),
        IntegrationCategory(
            "Storage-with-accelerator", "INSIDER, Willow, Biscuit, Summarizer",
            has_network=False, has_storage=True, has_compute=True,
            cpu_free_control=False, filesystem_support=False,
        ),
        IntegrationCategory(
            "Commercial DPUs", "BlueField, Fungible F1, Pensando",
            has_network=True, has_storage=True, has_compute=True,
            cpu_free_control=False,  # designed around embedded CPU cores
            filesystem_support=False,
        ),
        IntegrationCategory(
            "Hyperion (this work)", "unified FPGA + 100GbE + NVMe",
            has_network=True, has_storage=True, has_compute=True,
            cpu_free_control=True, filesystem_support=True,
        ),
    ]


def run_table1() -> Table:
    table = Table(
        "Table 1: CPU involvement in state-of-the-art accelerator integration",
        ["category", "examples", "net", "storage", "compute",
         "CPU-free", "missing"],
    )
    for category in table1_categories():
        missing = "; ".join(category.missing_legs()) or "-"
        table.add_row(
            category.name,
            category.examples,
            category.has_network,
            category.has_storage,
            category.has_compute,
            category.cpu_free_control,
            missing,
        )
    return table


def only_complete_category() -> str:
    """The table's argument: exactly one row has no missing leg."""
    complete = [c.name for c in table1_categories() if c.is_complete]
    if len(complete) != 1:
        raise AssertionError(f"expected one complete category, got {complete}")
    return complete[0]
