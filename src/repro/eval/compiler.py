"""E10: the eBPF->HDL compiler over a program corpus, fusion ablation.

For each program: verifier verdict, pipeline depth, initiation interval,
estimated area and f_max — with fusion on and off. Expected shape: fusion
reduces depth and register area at a small f_max cost; the verifier rejects
exactly the unsafe programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.apps.fail2ban import build_fail2ban_program
from repro.common.errors import VerificationError
from repro.ebpf.asm import assemble
from repro.ebpf.isa import Program
from repro.eval.report import Table
from repro.hdl.engine import compile_program

#: (name, source or Program, expected_verdict)
def program_corpus() -> List[Tuple[str, Program, bool]]:
    corpus: List[Tuple[str, Program, bool]] = []
    corpus.append(("const", assemble("mov r0, 42\nexit", name="const"), True))
    corpus.append((
        "checksum16",
        assemble(
            """
            ldxh r3, [r1+0]
            ldxh r4, [r1+2]
            ldxh r5, [r1+4]
            mov r0, r3
            add r0, r4
            add r0, r5
            and r0, 0xffff
            exit
            """,
            name="checksum16",
        ),
        True,
    ))
    corpus.append((
        "classifier",
        assemble(
            """
            ldxw r3, [r1+0]
            mov r0, 0
            jeq r3, 80, http
            jeq r3, 443, https
            exit
        http:
            mov r0, 1
            exit
        https:
            mov r0, 2
            exit
            """,
            name="classifier",
        ),
        True,
    ))
    corpus.append(("fail2ban", build_fail2ban_program(), True))
    corpus.append((
        "parallel-sum",
        assemble(
            """
            ldxdw r3, [r1+0]
            ldxdw r4, [r1+8]
            ldxdw r5, [r1+16]
            ldxdw r6, [r1+24]
            mov r0, r3
            add r0, r4
            add r0, r5
            add r0, r6
            exit
            """,
            name="parallel-sum",
        ),
        True,
    ))
    corpus.append((
        "unrolled-consts",
        assemble(
            "\n".join(
                ["mov r0, 0"]
                + [f"add r0, {i}" for i in range(1, 9)]  # folds to one const
                + ["mov r3, 99", "mul r3, 7"]  # dead: r3 never read
                + ["exit"]
            ),
            name="unrolled-consts",
        ),
        True,
    ))
    corpus.append(
        ("uninit-read", assemble("mov r0, r9\nexit", name="uninit-read"), False)
    )
    corpus.append(
        ("oob-stack", assemble("ldxdw r0, [r10-600]\nexit", name="oob-stack"), False)
    )
    corpus.append((
        "unbounded-loop",
        assemble("top:\nmov r0, 1\nja top", name="unbounded-loop"),
        False,
    ))
    return corpus


@dataclass
class CompileRow:
    """Per-program E10 results across fusion and warping variants."""

    name: str
    expected_ok: bool
    verified: bool
    depth_fused: Optional[int] = None
    depth_unfused: Optional[int] = None
    ii: Optional[int] = None
    luts_fused: Optional[int] = None
    luts_unfused: Optional[int] = None
    luts_optimized: Optional[int] = None
    ffs_fused: Optional[int] = None
    ffs_unfused: Optional[int] = None
    fmax_fused: Optional[float] = None
    fmax_unfused: Optional[float] = None
    insns_before_opt: Optional[int] = None
    insns_after_opt: Optional[int] = None


def run_compiler() -> List[CompileRow]:
    rows = []
    for name, program, expected_ok in program_corpus():
        row = CompileRow(name=name, expected_ok=expected_ok, verified=True)
        try:
            fused = compile_program(program, fuse=True)
        except VerificationError:
            row.verified = False
            rows.append(row)
            continue
        unfused = compile_program(program, fuse=False)
        optimized = compile_program(program, fuse=True, optimize=True)
        row.depth_fused = fused.schedule.depth
        row.depth_unfused = unfused.schedule.depth
        row.ii = fused.schedule.initiation_interval
        row.luts_fused = fused.area.resources.luts
        row.luts_unfused = unfused.area.resources.luts
        row.luts_optimized = optimized.area.resources.luts
        row.ffs_fused = fused.area.resources.ffs
        row.ffs_unfused = unfused.area.resources.ffs
        row.fmax_fused = fused.area.fmax_hz
        row.fmax_unfused = unfused.area.fmax_hz
        row.insns_before_opt = len(program.instructions)
        row.insns_after_opt = len(optimized.program.instructions)
        rows.append(row)
    return rows


def format_compiler(rows: List[CompileRow]) -> str:
    table = Table(
        "E10: eBPF->HDL compilation corpus (fusion + warping ablations)",
        ["program", "verified", "depth (fused/not)", "II",
         "FFs (fused/not)", "fmax (fused/not)", "insns (opt)"],
    )
    for row in rows:
        if not row.verified:
            table.add_row(row.name, "rejected", "-", "-", "-", "-", "-")
            continue
        table.add_row(
            row.name,
            "ok",
            f"{row.depth_fused}/{row.depth_unfused}",
            row.ii,
            f"{row.ffs_fused}/{row.ffs_unfused}",
            f"{row.fmax_fused / 1e6:.0f}/{row.fmax_unfused / 1e6:.0f} MHz",
            f"{row.insns_before_opt}->{row.insns_after_opt}",
        )
    return table.render()
