"""E6: execution predictability and energy — FPGA pipeline vs CPU.

Paper §2: "once an associated bitstream has been sent to the FPGA, the
circuit runs a certain clock frequency without any outside interference,
thus delivering energy efficient and predictable performance."

The same verified program runs 1000x on the CPU model (interference
jitter, preemptions) and on the compiled pipeline (fixed latency). Expected
shape: the hardware latency distribution is a single point (sigma = 0, p99
== p50) while the CPU's spreads; energy/op favors the DPU by roughly the
TDP ratio x the time ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.apps.fail2ban import BAN_MAP_FD, build_fail2ban_program
from repro.baseline.cpu import CpuModel
from repro.baseline.server import SUPERMICRO_X12
from repro.ebpf.maps import HashMap
from repro.ebpf.vm import BpfVm
from repro.eval.report import Table
from repro.hdl.engine import HardwarePipeline, compile_program
from repro.power.energy import HYPERION_POWER, total_tdp
from repro.sim import Simulator
from repro.telemetry import Histogram, Sampler


@dataclass
class PredictabilityResult:
    """Latency distribution and energy/op for one execution substrate."""

    system: str
    runs: int
    mean_latency: float
    stddev_latency: float
    p50: float
    p99: float
    energy_per_op_j: float
    #: Time-series view from the sampler: how many interval-p99 points
    #: were recorded, and the worst of them. A predictable substrate has
    #: interval_p99_max == p99 (the distribution never moves over time).
    sampled_points: int = 0
    interval_p99_max: float = 0.0

    @property
    def jitter_ratio(self) -> float:
        """p99 / p50 — 1.0 means perfectly predictable."""
        return self.p99 / self.p50 if self.p50 else float("inf")


def _result(system: str, hist: Histogram, watts: float,
            sampler: Sampler) -> PredictabilityResult:
    """Distill one substrate's latency histogram into a result row."""
    p99_series = sampler.series(f"{hist.name}.p99")
    return PredictabilityResult(
        system=system,
        runs=hist.count,
        mean_latency=hist.mean,
        stddev_latency=hist.pstdev,
        p50=hist.quantile(0.50),
        p99=hist.quantile(0.99),
        energy_per_op_j=watts * hist.sum / hist.count,
        sampled_points=len(p99_series) if p99_series else 0,
        interval_p99_max=p99_series.max() if p99_series else 0.0,
    )


def _run_sampled(sim: Simulator, scenario, hist_path: str,
                 period: float) -> Sampler:
    """Run one substrate's scenario with a sampler watching its histogram."""
    sampler = Sampler(sim.telemetry, sim, period=period)
    sampler.watch(hist_path)
    sampler.run(sim, scenario)
    return sampler


def run_predictability(runs: int = 1000) -> List[PredictabilityResult]:
    program = build_fail2ban_program()
    context = bytes(8)

    # -- hardware pipeline ----------------------------------------------------
    sim = Simulator()
    pipeline = HardwarePipeline(
        sim, compile_program(program),
        maps={BAN_MAP_FD: HashMap(8, 8, 65536)},
    )
    hw_hist = sim.telemetry.histogram("eval.predictability.hw_latency")

    def hw_scenario():
        for _ in range(runs):
            start = sim.now
            yield from pipeline.execute(context)
            hw_hist.observe(sim.now - start)

    hw_sampler = _run_sampled(
        sim, hw_scenario(), "eval.predictability.hw_latency", period=1e-6
    )
    hw = _result(
        "hyperion-pipeline", hw_hist, total_tdp(HYPERION_POWER), hw_sampler
    )

    # -- CPU interpreter ------------------------------------------------------
    sim = Simulator()
    cpu = CpuModel(sim)
    vm = BpfVm(program, maps={BAN_MAP_FD: HashMap(8, 8, 65536)})
    cpu_hist = sim.telemetry.histogram("eval.predictability.cpu_latency")

    def cpu_scenario():
        for _ in range(runs):
            start = sim.now
            yield from cpu.execute_ebpf(vm, context)
            cpu_hist.observe(sim.now - start)

    cpu_sampler = _run_sampled(
        sim, cpu_scenario(), "eval.predictability.cpu_latency", period=20e-6
    )
    cpu_result = _result(
        "cpu-interpreter", cpu_hist, SUPERMICRO_X12.max_tdp_watts, cpu_sampler
    )
    return [hw, cpu_result]


def format_predictability(results: List[PredictabilityResult]) -> str:
    table = Table(
        "E6: predictability and energy, hardware pipeline vs CPU software",
        ["system", "mean", "stddev", "p50", "p99", "p99/p50", "energy/op",
         "sampled p99 max"],
    )
    for r in results:
        table.add_row(
            r.system,
            f"{r.mean_latency * 1e9:.1f} ns",
            f"{r.stddev_latency * 1e9:.2f} ns",
            f"{r.p50 * 1e9:.1f} ns",
            f"{r.p99 * 1e9:.1f} ns",
            f"{r.jitter_ratio:.3f}",
            f"{r.energy_per_op_j * 1e9:.1f} nJ",
            f"{r.interval_p99_max * 1e9:.1f} ns ({r.sampled_points} pts)",
        )
    return table.render()
