"""E13: chaos evaluation — the replicated KV cluster under a fault storm.

The paper's blueprint claims a CPU-free device can "boot, recover, and
serve without a host" (§2.1) and sketches multi-DPU applications (§2.4);
this experiment makes the recovery story measurable. A scripted
:class:`~repro.faults.FaultPlan` kills one DPU mid-run, drops frames on the
client's uplink, and injects an uncorrectable flash read, while a
:class:`~repro.dpu.FailoverKvClient` keeps issuing operations against a
K-way replicated cluster. Reported: request availability, p99 latency
inflation versus a fault-free run, failed vs retried ops, and the
client-observed recovery time after the kill.

Expected shape: with replication factor 2 and one DPU dead, availability
stays >= 99% (every key keeps one live replica; the first op against the
dead head pays retransmits, then the health map routes around it), p99
inflates by the retry/backoff cost, and the same seed reproduces a
byte-identical fault schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.errors import DegradedError
from repro.dpu.cluster import FailoverKvClient, ReplicatedDpuKvCluster
from repro.eval.report import Table
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.hw.net import Network
from repro.sim import Simulator
from repro.telemetry import (
    Sampler,
    SloMonitor,
    SloRule,
    percentile,
    prometheus_text,
)

#: Sampling period for the E13 time series: fine enough to catch the
#: retry spike around the kill, coarse enough to stay cheap.
SAMPLE_PERIOD = 0.25e-3

#: The storm's service objectives. Interval p99 of the client-observed
#: op latency must stay under 2 ms (one retransmit timeout blows it);
#: the worst single op must stay under 20 ms (several backoff rounds).
SLO_RULES = (
    ("op-p99", "eval.chaos.op_latency p99 < 2ms for 0.5ms"),
    ("op-max", "eval.chaos.op_latency max < 20ms"),
)

#: Head-sampling rate for the storm run: one RPC flow in eight gets a
#: full causal trace (and may land a latency exemplar), which is enough
#: to fill the flight recorder without distorting the fast path.
TRACE_SAMPLE_RATE = 0.125


@dataclass
class OpOutcome:
    """One client operation under the storm."""

    started: float
    finished: float
    ok: bool
    retried: bool

    @property
    def latency(self) -> float:
        return self.finished - self.started


@dataclass
class ChaosReport:
    """What E13 measured for one (seed, storm) configuration."""

    seed: int
    dpu_count: int
    replication: int
    ops_attempted: int
    ops_succeeded: int
    ops_failed: int
    ops_retried: int
    failovers: int
    availability: float
    p50_latency: float
    p99_latency: float
    clean_p99_latency: float
    p99_inflation: float
    kill_time: Optional[float]
    recovery_time: Optional[float]
    faults_injected: int
    schedule: bytes
    #: Canonical registry snapshot of the storm run — same seed, same bytes.
    telemetry: bytes = b""
    #: Sampler ticks taken during the storm run.
    samples: int = 0
    #: How many SLO rules entered the firing state during the storm.
    slo_alerts_fired: int = 0
    #: Canonical alert log — same seed, same bytes.
    slo_alert_log: bytes = b""
    #: Per-rule end-of-run summary (human-readable).
    slo_summary: str = ""
    #: Canonical dump of every sampled series — same seed, same bytes.
    series: bytes = b""
    #: OpenMetrics exposition of the storm registry, with latency
    #: exemplars pointing into the sampled traces.
    prometheus: bytes = b""
    #: Sampled root traces the flight recorder held at the end.
    traces_recorded: int = 0
    #: The most recent flight-recorder post-mortem (empty if nothing
    #: triggered one — no SLO fired and no fault window opened).
    flight_dump: bytes = b""
    #: Every post-mortem trigger, in firing order.
    flight_triggers: tuple = ()


def _key(index: int) -> bytes:
    return f"chaos:key:{index:04d}".encode()


def _run_storm(
    seed: int,
    plan: FaultPlan,
    dpu_count: int,
    replication: int,
    ops: int,
    preload: int,
    victim: Optional[int],
):
    """One full run: preload, storm, workload. Returns measurement state."""
    sim = Simulator()
    # Distributed tracing rides along: deterministic head sampling keyed
    # by the run seed, exemplars armed so the latency histogram points
    # back into the sampled traces. Spans never touch the registry, RNG
    # streams, or simulated time, so every canonical artifact (schedule,
    # telemetry, series, alert log) is byte-identical with tracing off.
    sim.tracer.enable(
        sample_rate=TRACE_SAMPLE_RATE, seed=seed, exemplars=True
    )
    network = Network(sim)
    cluster = ReplicatedDpuKvCluster(
        sim, network, dpu_count=dpu_count, replication=replication,
        ssd_blocks=16384,
    )
    injector = FaultInjector(sim, plan)
    # Wire the storm into the substrates: NVMe controllers + flash consult
    # per-device component ids; the client uplink consults "client.uplink".
    for device in cluster.devices:
        device.controller.attach_faults(injector)
    client = FailoverKvClient(sim, network, "chaos-client", cluster)
    network.port("chaos-client").route().attach_faults(injector, "client.uplink")

    outcomes: List[OpOutcome] = []
    op_latency = sim.telemetry.histogram("eval.chaos.op_latency")
    # The export-and-watch layer rides along: sample the op-latency
    # histogram plus the failover client's RPC counters on the simulated
    # clock, and evaluate the storm SLOs on every tick.
    sampler = Sampler(sim.telemetry, sim, period=SAMPLE_PERIOD)
    sampler.watch("eval.chaos.op_latency")
    sampler.watch_prefix("rpc.client.chaos-client")
    monitor = SloMonitor(
        sampler,
        [SloRule.parse(text, name=name) for name, text in SLO_RULES],
    )
    done = [False]
    kill_observed = [None]
    preload_end = [0.0]

    def sampling():
        while not done[0]:
            yield sim.timeout(sampler.period)
            sampler.sample()

    def controller():
        # The chaos controller: maps NODE_DOWN windows onto switch
        # blackholes, the way a pulled power cable maps onto dead links.
        while not done[0]:
            yield sim.timeout(0.5e-3)
            for index, address in enumerate(cluster.addresses):
                down = injector.active(address, FaultKind.NODE_DOWN)
                if down and address not in cluster.down:
                    cluster.kill(index)
                    if kill_observed[0] is None:
                        kill_observed[0] = sim.now
                elif not down and address in cluster.down:
                    cluster.revive(index)

    def workload():
        value = b"v" * 64
        for index in range(preload):
            yield from client.put(_key(index), value)
        preload_end[0] = sim.now
        for index in range(ops):
            key = _key(index % preload)
            started = sim.now
            retransmits_before = client.rpc.retransmits
            failures_before = client.stats.replica_failures
            try:
                if index % 2 == 0:
                    yield from client.get(key)
                else:
                    yield from client.put(key, value)
                ok = True
            except DegradedError:
                ok = False
            outcomes.append(
                OpOutcome(
                    started, sim.now, ok,
                    retried=(
                        client.rpc.retransmits > retransmits_before
                        or client.stats.replica_failures > failures_before
                    ),
                )
            )
            op_latency.observe(sim.now - started)
        done[0] = True

    sim.process(controller())
    sim.process(sampling())
    sim.run_process(workload())
    return (
        sim, cluster, client, injector, outcomes,
        kill_observed[0], preload_end[0], sampler, monitor,
    )


def build_storm_plan(seed: int, kill_at: float, horizon: float = 10.0,
                     victim: str = "kv-dpu-1") -> FaultPlan:
    """The scripted E13 storm: a dead DPU, a lossy uplink, a bad read."""
    plan = FaultPlan(seed=seed)
    plan.windowed("dpu-outage", victim, FaultKind.NODE_DOWN, kill_at, horizon)
    plan.probabilistic(
        "lossy-uplink", "client.uplink", FaultKind.FRAME_DROP,
        probability=0.005, max_fires=8,
    )
    plan.once(
        "bad-read", "kv-dpu-0-flash.flash", FaultKind.READ_ERROR, at=kill_at / 2
    )
    return plan


def run_chaos(
    seed: int = 7,
    dpu_count: int = 3,
    replication: int = 2,
    ops: int = 240,
    preload: int = 48,
    kill_at: Optional[float] = None,
) -> ChaosReport:
    victim_index = 1
    victim = f"kv-dpu-{victim_index}"
    # Fault-free twin run: the latency baseline the storm inflates, and the
    # timing reference for the kill (30% into the measured workload phase,
    # safely past the preload — a kill during preload would skew recovery).
    __, __, __, __, clean_outcomes, __, clean_preload_end, __, __ = _run_storm(
        seed, FaultPlan(seed=seed), dpu_count, replication, ops, preload, None
    )
    clean_p99 = percentile([o.latency for o in clean_outcomes], 0.99)
    if kill_at is None:
        clean_end = max(o.finished for o in clean_outcomes)
        kill_at = clean_preload_end + 0.3 * (clean_end - clean_preload_end)

    plan = build_storm_plan(seed, kill_at, victim=victim)
    (
        sim, cluster, client, injector, outcomes, kill_time, __,
        sampler, monitor,
    ) = _run_storm(
        seed, plan, dpu_count, replication, ops, preload, victim_index
    )

    succeeded = [o for o in outcomes if o.ok]
    latencies = [o.latency for o in outcomes]
    p99 = percentile(latencies, 0.99)
    recovery_time = None
    if kill_time is not None:
        post_kill = [o.finished for o in succeeded if o.finished >= kill_time]
        if post_kill:
            recovery_time = min(post_kill) - kill_time
    return ChaosReport(
        seed=seed,
        dpu_count=dpu_count,
        replication=replication,
        ops_attempted=len(outcomes),
        ops_succeeded=len(succeeded),
        ops_failed=len(outcomes) - len(succeeded),
        ops_retried=sum(1 for o in outcomes if o.retried),
        failovers=client.stats.failovers,
        availability=len(succeeded) / len(outcomes) if outcomes else 0.0,
        p50_latency=percentile(latencies, 0.50),
        p99_latency=p99,
        clean_p99_latency=clean_p99,
        p99_inflation=p99 / clean_p99 if clean_p99 else 0.0,
        kill_time=kill_time,
        recovery_time=recovery_time,
        faults_injected=len(injector.log),
        schedule=injector.schedule_bytes(),
        telemetry=sim.telemetry.snapshot_bytes(),
        samples=sampler.ticks,
        slo_alerts_fired=monitor.fired_count(),
        slo_alert_log=monitor.alert_log_bytes(),
        slo_summary=monitor.summary(),
        series=sampler.snapshot_bytes(),
        prometheus=prometheus_text(sim.telemetry).encode(),
        traces_recorded=len(sim.recorder.traces),
        flight_dump=sim.recorder.last_dump() or b"",
        flight_triggers=sim.recorder.dump_triggers(),
    )


def format_chaos(report: ChaosReport) -> str:
    table = Table(
        "E13: chaos storm over the replicated KV cluster "
        f"(RF={report.replication}, {report.dpu_count} DPUs, "
        f"seed={report.seed})",
        ["metric", "value"],
    )
    table.add_row("ops attempted", report.ops_attempted)
    table.add_row("ops succeeded", report.ops_succeeded)
    table.add_row("ops failed", report.ops_failed)
    table.add_row("ops retried", report.ops_retried)
    table.add_row("replica failovers", report.failovers)
    table.add_row("availability", f"{report.availability * 100:.2f}%")
    table.add_row("p50 latency", f"{report.p50_latency * 1e6:.1f} us")
    table.add_row("p99 latency", f"{report.p99_latency * 1e6:.1f} us")
    table.add_row("fault-free p99", f"{report.clean_p99_latency * 1e6:.1f} us")
    table.add_row("p99 inflation", f"{report.p99_inflation:.1f}x")
    kill = "-" if report.kill_time is None else f"{report.kill_time * 1e3:.1f} ms"
    table.add_row("DPU killed at", kill)
    recovery = (
        "-" if report.recovery_time is None
        else f"{report.recovery_time * 1e3:.2f} ms"
    )
    table.add_row("recovery time (first success after kill)", recovery)
    table.add_row("faults injected", report.faults_injected)
    table.add_row("sampler ticks", report.samples)
    table.add_row("SLO alerts fired", report.slo_alerts_fired)
    table.add_row("sampled traces held", report.traces_recorded)
    table.add_row("flight-recorder dumps", len(report.flight_triggers))
    rendered = table.render()
    if report.slo_summary:
        rendered += "\n\nSLO objectives:\n" + "\n".join(
            f"  {line}" for line in report.slo_summary.splitlines()
        )
    if report.slo_alert_log:
        lines = report.slo_alert_log.decode().splitlines()
        shown = lines[:8]
        rendered += "\n\nAlert log:\n" + "\n".join(
            f"  {line}" for line in shown
        )
        if len(lines) > len(shown):
            rendered += f"\n  ... (+{len(lines) - len(shown)} more entries)"
    if report.flight_triggers:
        rendered += "\n\nFlight recorder triggers:\n" + "\n".join(
            f"  {trigger}" for trigger in report.flight_triggers
        )
    if report.flight_dump:
        lines = report.flight_dump.decode().splitlines()
        shown = lines[:12]
        rendered += "\n\nLast post-mortem (excerpt):\n" + "\n".join(
            f"  {line}" for line in shown
        )
        if len(lines) > len(shown):
            rendered += f"\n  ... (+{len(lines) - len(shown)} more lines)"
    return rendered
