"""The evaluation harness: regenerates every table, figure, and claim.

One module per experiment in DESIGN.md's index; each exposes a ``run_*``
function returning structured results and a ``format_*`` function printing
the same rows the paper reports. The benchmark suite under ``benchmarks/``
drives these and asserts the expected *shapes* (who wins, by what factor).
"""

from repro.eval.report import Table

__all__ = ["Table"]
