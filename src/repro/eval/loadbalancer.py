"""E4: the L4 load balancer with DRAM->SSD state overflow (Tiara-style).

Ablation of §2.1's placement policies: ``overflow`` spills cold connection
state to the DPU's own SSDs, ``drop`` is the DRAM-only baseline. Expected
shape: overflow keeps broken connections at zero at the cost of occasional
flash-latency lookups; drop loses state and breaks returning flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.apps.loadbalancer import LoadBalancer, generate_connections
from repro.dpu import HyperionDpu
from repro.eval.report import Table
from repro.hw.net import Network
from repro.sim import Simulator


@dataclass
class LbResult:
    """One E4 policy run: hit rates, broken connections, latency."""

    policy: str
    packets: int
    hot_hit_rate: float
    cold_hits: int
    broken_connections: int
    mean_latency: float
    flash_state_bytes: int


def _run_policy(policy: str, packet_count: int, flow_count: int,
                dram_entries: int, seed: int = 23) -> LbResult:
    sim = Simulator()
    dpu = HyperionDpu(sim, Network(sim), ssd_blocks=65536)
    sim.run_process(dpu.boot())
    lb = LoadBalancer(
        sim, dpu, dram_table_entries=dram_entries, policy=policy
    )
    trace = generate_connections(packet_count, flow_count=flow_count, seed=seed)
    started = sim.now

    def scenario():
        for packet in trace:
            yield from lb.handle_packet(packet)

    sim.run_process(scenario())
    elapsed = sim.now - started
    return LbResult(
        policy=policy,
        packets=lb.packets,
        hot_hit_rate=lb.hot_hits / lb.packets,
        cold_hits=lb.cold_hits,
        broken_connections=lb.broken_connections,
        mean_latency=elapsed / lb.packets,
        flash_state_bytes=lb.state_bytes_on_flash(),
    )


def run_loadbalancer(
    packet_count: int = 4000, flow_count: int = 600, dram_entries: int = 64,
    seed: int = 23,
) -> List[LbResult]:
    return [
        _run_policy("overflow", packet_count, flow_count, dram_entries, seed),
        _run_policy("drop", packet_count, flow_count, dram_entries, seed),
    ]


def format_loadbalancer(results: List[LbResult]) -> str:
    table = Table(
        "E4: stateful L4 load balancing, DRAM table overflow vs drop",
        ["policy", "packets", "hot hit rate", "cold hits",
         "broken conns", "mean latency", "state on flash"],
    )
    for r in results:
        table.add_row(
            r.policy, r.packets, f"{r.hot_hit_rate:.2f}", r.cold_hits,
            r.broken_connections, f"{r.mean_latency * 1e6:.2f} us",
            r.flash_state_bytes,
        )
    return table.render()
