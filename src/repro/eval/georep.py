"""E17: geo-replication — consistency sweep + region-loss disaster drill.

Two phases over :mod:`repro.georep`:

**Consistency sweep.** Three regions on an asymmetric WAN; one client
homed at the primary issues the same write sequence under ``async``,
``quorum`` and ``sync`` acknowledgement modes. The sweep shows the
fundamental trade the modes buy: async acks at local-WAL latency but
leaves a replication-lag window (the RPO exposure), sync pays the
slowest peer's round trip for a zero-lag ack, quorum sits between.

**Disaster drill.** Live Zipfian traffic from clients homed in two
follower regions, all writing through the primary, while a
:class:`~repro.faults.FaultPlan` blackholes every WAN path touching the
primary for a fixed window (full region loss) and heals it. The drill
measures what the paper's robustness story needs measured:

* **RPO** — the acked-but-unreplicated window at the instant of the
  kill (the shippers' replication lag, in entries and seconds);
* **RTO** — detection (first op served by a surviving region) and
  steady state (first bin whose p99 returns under 1.5x baseline);
* **zero lost acknowledged writes** — after heal and quiesce, every
  region is swept and every acked write's last-writer-wins winner must
  be present everywhere (replayed writes included);
* **goodput retention** — ops/s before, during and after the outage;
* **bounded-staleness reads** — a two-rung brownout ladder (normal ->
  stale-reads) trips on the failover latency spike and lets follower
  clients serve reads locally within a staleness bound.

Same seed, byte-identical report — including the fault schedule, the
brownout transition log, the SLO alert log and the telemetry snapshot.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import DegradedError
from repro.eval.report import Table
from repro.faults import FaultInjector, FaultPlan
from repro.georep import Consistency, GeoCluster, GeoKvClient, WanSpec
from repro.overload import BrownoutController, BrownoutMode
from repro.sim import Simulator
from repro.telemetry import Sampler, SloMonitor, SloRule, percentile
from repro.transport import RetryBudget

#: Region names, client preference order: r1 is the primary.
REGIONS = ("r1", "r2", "r3")
PRIMARY = "r1"
#: Where sticky clients settle after the primary dies (first survivor).
FAILOVER = "r2"

#: The WAN: only the asymmetry matters, so only asymmetric paths are
#: spelled out (the rest default). One-way times in seconds.
WAN = (
    WanSpec("r1", "r2", propagation=3.0e-3),
    WanSpec("r2", "r1", propagation=4.0e-3),
    WanSpec("r1", "r3", propagation=5.0e-3),
    WanSpec("r3", "r1", propagation=5.5e-3),
    WanSpec("r2", "r3", propagation=4.0e-3),
    WanSpec("r3", "r2", propagation=4.5e-3),
)

#: Consistency sweep: sequential puts from a primary-homed client.
MODE_PUTS = 20
MODE_THINK = 1e-3
MODE_HORIZON = 1.5

#: Drill workload: closed-loop Zipfian clients homed in the followers.
KEYS = 48
ZIPF_S = 1.1
PUT_FRACTION = 0.35
THINK = 2e-3
#: (home region, worker count) — nobody is homed in the blast radius.
WORKERS = (("r2", 3), ("r3", 3))

#: Drill timeline (simulated seconds).
T_START = 0.08
T_KILL = 0.23
T_HEAL = 0.48
T_END = 0.78
T_QUIESCE = 0.95

#: Recovery accounting: goodput bins and the steady-state criterion. A
#: bin only counts as recovered when it carries at least this fraction
#: of the baseline op rate AND its p99 is back under RTO_FACTOR x
#: baseline — otherwise the trickle of in-flight completions right
#: after the kill would declare recovery before the stall even bites.
RTO_BIN = 20e-3
RTO_FACTOR = 1.5
RTO_MIN_RATE = 0.5

#: Brownout: a latency SLO trips a two-rung ladder (normal->stale) so
#: follower reads shed their WAN round trip during the failover spike.
SAMPLE_PERIOD = 1e-3
LATENCY_RULE = "eval.georep.op_latency p99 < 20ms"
BROWNOUT_DWELL = 3e-3
BROWNOUT_RECOVERY = 60e-3
STALE_BOUND = 80e-3
GEO_LADDER = (
    BrownoutMode("normal"),
    BrownoutMode("stale-reads", serve_stale=True),
)

#: Client-side retry budget (counted in telemetry, satellite of E15).
RETRY_BUDGET = 40
RETRY_WINDOW = 100e-3


@dataclass(frozen=True)
class ModePoint:
    """One consistency mode's write-side cost and replication exposure."""

    mode: str
    puts: int
    put_p50: float
    put_p99: float
    #: Largest shipper lag (seconds) observed at a put completion.
    peak_lag: float
    #: Worst follower staleness w.r.t. the primary at end of traffic.
    follower_staleness: float

    def line(self) -> str:
        return (f"mode {self.mode} puts={self.puts} "
                f"p50={self.put_p50!r} p99={self.put_p99!r} "
                f"peak_lag={self.peak_lag!r} "
                f"staleness={self.follower_staleness!r}")


@dataclass(frozen=True)
class DrillReport:
    """The disaster drill's verdict: RPO, RTO, and the lost-write sweep."""

    ops: int
    acked_writes: int
    failed_ops: int
    lost_acked_writes: int
    diverged_keys: int
    indeterminate_keys: int
    rpo_entries: int
    rpo_seconds: float
    rto_detect: float
    rto_steady: float
    goodput_before: float
    goodput_during: float
    goodput_after: float
    #: Worst RTO_BIN-sized bin inside the outage window (the stall).
    goodput_floor: float
    retention_during: float
    failovers: int
    replayed_writes: int
    stale_reads_served: int
    max_staleness_served: float
    brownout_transitions: int
    slo_alerts_fired: int

    def line(self) -> str:
        return (
            f"drill ops={self.ops} acked={self.acked_writes} "
            f"failed={self.failed_ops} lost={self.lost_acked_writes} "
            f"diverged={self.diverged_keys} "
            f"indeterminate={self.indeterminate_keys} "
            f"rpo_entries={self.rpo_entries} rpo_s={self.rpo_seconds!r} "
            f"rto_detect={self.rto_detect!r} rto_steady={self.rto_steady!r} "
            f"goodput=({self.goodput_before!r},{self.goodput_during!r},"
            f"{self.goodput_after!r}) floor={self.goodput_floor!r} "
            f"retention={self.retention_during!r} "
            f"failovers={self.failovers} replayed={self.replayed_writes} "
            f"stale_served={self.stale_reads_served} "
            f"max_staleness={self.max_staleness_served!r} "
            f"brownout={self.brownout_transitions} "
            f"alerts={self.slo_alerts_fired}"
        )


@dataclass
class GeorepReport:
    """Everything E17 measured, canonically rendered for the benchmark."""

    seed: int
    modes: List[ModePoint]
    drill: DrillReport
    fault_log: bytes
    brownout_log: bytes
    alert_log: bytes
    telemetry: bytes

    def canonical_bytes(self) -> bytes:
        lines = [f"georep seed={self.seed}"]
        lines.extend(point.line() for point in self.modes)
        lines.append(self.drill.line())
        head = ("\n".join(lines) + "\n").encode()
        return b"\n".join(
            [head, self.fault_log, self.brownout_log, self.alert_log,
             self.telemetry]
        )


# ---------------------------------------------------------------------------
# workload helpers
# ---------------------------------------------------------------------------

def _keys() -> List[bytes]:
    return [f"key-{index:03d}".encode() for index in range(KEYS)]


def _zipf_cdf(n: int, s: float = ZIPF_S) -> List[float]:
    weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
    total = sum(weights)
    cdf, acc = [], 0.0
    for weight in weights:
        acc += weight
        cdf.append(acc / total)
    return cdf


def _pick(rng: random.Random, keys: List[bytes], cdf: List[float]) -> bytes:
    return keys[bisect_left(cdf, rng.random())]


def _record_ack(acked: Dict[bytes, Tuple[Tuple[float, str], bytes]],
                key: bytes, stamp: float, region: str,
                value: bytes) -> None:
    """Track the LWW winner among *acknowledged* writes per key."""
    version = (stamp, region)
    current = acked.get(key)
    if current is None or version > current[0]:
        acked[key] = (version, value)


# ---------------------------------------------------------------------------
# phase 1: the consistency-mode sweep
# ---------------------------------------------------------------------------

def _run_mode(mode: Consistency, seed: int) -> ModePoint:
    sim = Simulator()
    cluster = GeoCluster(sim, REGIONS, wan=WAN, consistency=mode)
    client = GeoKvClient(sim, cluster, f"mode-{mode.value}", home=PRIMARY)
    primary = cluster.region(PRIMARY)
    latencies: List[float] = []
    peak_lag = [0.0]
    staleness = [0.0]
    done = [False]

    def driver():
        for index in range(MODE_PUTS):
            yield sim.timeout(MODE_THINK)
            started = sim.now
            key = f"mode-key-{index:02d}".encode()
            yield from client.put(key, f"v{index}".encode())
            latencies.append(sim.now - started)
            lag = max(s.lag_seconds for s in primary.shippers.values())
            peak_lag[0] = max(peak_lag[0], lag)
        staleness[0] = max(
            cluster.region(name).staleness_of(PRIMARY)
            for name in REGIONS if name != PRIMARY
        )
        done[0] = True

    sim.process(driver())
    sim.run(until=MODE_HORIZON)
    if not done[0]:
        raise RuntimeError(f"mode sweep {mode.value} did not finish")
    cluster.stop()
    sim.run()
    return ModePoint(
        mode=mode.value,
        puts=len(latencies),
        put_p50=percentile(latencies, 0.5),
        put_p99=percentile(latencies, 0.99),
        peak_lag=peak_lag[0],
        follower_staleness=staleness[0],
    )


# ---------------------------------------------------------------------------
# phase 2: the disaster drill
# ---------------------------------------------------------------------------

def _kill_plan(seed: int) -> FaultPlan:
    """Full region loss: blackhole every WAN path touching the primary."""
    plan = FaultPlan(seed=seed)
    for name in REGIONS:
        if name == PRIMARY:
            continue
        plan.wan_partition(f"kill-{PRIMARY}-{name}", PRIMARY, name,
                           T_KILL, T_HEAL)
        plan.wan_partition(f"kill-{name}-{PRIMARY}", name, PRIMARY,
                           T_KILL, T_HEAL)
    return plan


def _run_drill(seed: int) -> Tuple[DrillReport, bytes, bytes, bytes, bytes]:
    sim = Simulator()
    plan = _kill_plan(seed)
    injector = FaultInjector(sim, plan)
    cluster = GeoCluster(sim, REGIONS, wan=WAN, injector=injector)

    op_latency = sim.telemetry.histogram("eval.georep.op_latency")
    sampler = Sampler(sim.telemetry, sim, period=SAMPLE_PERIOD)
    sampler.watch("eval.georep.op_latency")
    monitor = SloMonitor(sampler, [SloRule.parse(LATENCY_RULE, name="op-p99")])
    brownout = BrownoutController(
        monitor, sim.telemetry.unique_scope("eval.georep.brownout"),
        modes=GEO_LADDER, dwell=BROWNOUT_DWELL, recovery=BROWNOUT_RECOVERY,
    )

    keys = _keys()
    cdf = _zipf_cdf(len(keys))
    #: key -> ((stamp, region), value): the acked LWW winner so far.
    acked: Dict[bytes, Tuple[Tuple[float, str], bytes]] = {}
    #: key -> completion time of a put whose fate is unknown (degraded).
    indeterminate: Dict[bytes, float] = {}
    #: (started, finished, ok, kind) per op, in completion order.
    outcomes: List[Tuple[float, float, bool, str]] = []
    detect: List[float] = []
    rpo_box: List[Tuple[int, float]] = []
    done = [False]
    loaded = [0]

    clients: List[GeoKvClient] = []
    for home, count in WORKERS:
        for index in range(count):
            name = f"{home}-w{index}"
            budget = RetryBudget(
                sim, budget=RETRY_BUDGET, window=RETRY_WINDOW,
                metrics=sim.telemetry.unique_scope(
                    f"eval.georep.retry_budget.{name}"),
            )
            clients.append(GeoKvClient(
                sim, cluster, name, home=home, preference=REGIONS,
                rounds=8, stale_bound=STALE_BOUND, brownout=brownout,
                retry_budget=budget,
            ))
    loader = GeoKvClient(sim, cluster, "loader", home=PRIMARY)

    def load(slice_keys: List[bytes]):
        for key in slice_keys:
            value = b"init-" + key
            stamp, region = yield from loader.put(key, value)
            _record_ack(acked, key, stamp, region, value)
            loaded[0] += 1

    def worker(client: GeoKvClient, rng: random.Random):
        sequence = 0
        yield sim.timeout(T_START)
        while True:
            yield sim.timeout(rng.uniform(0.5, 1.5) * THINK)
            if sim.now >= T_END:
                return
            started = sim.now
            key = _pick(rng, keys, cdf)
            write = rng.random() < PUT_FRACTION
            ok = True
            if write:
                value = f"{client.name}:{sequence}".encode()
                sequence += 1
                try:
                    stamp, region = yield from client.put(key, value)
                except DegradedError:
                    ok = False
                    indeterminate[key] = sim.now
                else:
                    _record_ack(acked, key, stamp, region, value)
                    if not detect and sim.now > T_KILL and region != PRIMARY:
                        detect.append(sim.now - T_KILL)
            else:
                try:
                    yield from client.get(key)
                except DegradedError:
                    ok = False
            op_latency.observe(sim.now - started)
            outcomes.append((started, sim.now, ok, "w" if write else "r"))

    def chaos():
        yield sim.timeout(T_KILL)
        # The RPO exposure, captured at the instant of the kill: the
        # worst acked-but-unreplicated window across surviving peers.
        shippers = cluster.region(PRIMARY).shippers
        rpo_box.append((
            max(s.lag_entries for s in shippers.values()),
            max(s.lag_seconds for s in shippers.values()),
        ))

    def sampling():
        while not done[0]:
            yield sim.timeout(sampler.period)
            sampler.sample()

    slice_size = (len(keys) + 7) // 8
    for offset in range(0, len(keys), slice_size):
        sim.process(load(keys[offset:offset + slice_size]))
    for client in clients:
        sim.process(worker(
            client, random.Random(f"georep/{seed}/{client.name}")))
    sim.process(chaos())
    sim.process(sampling())
    sim.run(until=T_QUIESCE)
    if loaded[0] != len(keys) or not rpo_box:
        raise RuntimeError("drill setup did not complete")
    done[0] = True
    cluster.stop()
    sim.run()

    # -- verification sweep: zero lost acked writes, full convergence -----
    lost = diverged = skipped = 0
    for key in sorted(acked):
        (stamp, __), value = acked[key]
        got = {
            name: sim.run_process(cluster.region(name).store.get(key))
            for name in REGIONS
        }
        if len(set(got.values())) != 1:
            diverged += 1
        if key in indeterminate and indeterminate[key] > stamp:
            skipped += 1  # last write's fate unknown: not checkable
            continue
        if got[FAILOVER] != value:
            lost += 1

    # -- recovery accounting ----------------------------------------------
    ok_ops = [(s, f) for s, f, ok, __ in outcomes if ok]
    before = [f - s for s, f in ok_ops if T_START <= f < T_KILL]
    during = [f - s for s, f in ok_ops if T_KILL <= f < T_HEAL]
    after = [f - s for s, f in ok_ops if T_HEAL <= f < T_END]
    goodput_before = len(before) / (T_KILL - T_START)
    goodput_during = len(during) / (T_HEAL - T_KILL)
    goodput_after = len(after) / (T_END - T_HEAL)
    baseline_p99 = percentile(before, 0.99)
    min_bin_ops = RTO_MIN_RATE * goodput_before * RTO_BIN
    rto_steady = T_END - T_KILL
    edge = T_KILL
    while edge + RTO_BIN <= T_END:
        window = [f - s for s, f in ok_ops if edge <= f < edge + RTO_BIN]
        if (len(window) >= min_bin_ops
                and percentile(window, 0.99) <= RTO_FACTOR * baseline_p99):
            rto_steady = edge + RTO_BIN - T_KILL
            break
        edge += RTO_BIN
    floor_bins = []
    edge = T_KILL
    while edge + RTO_BIN <= T_HEAL:
        count = sum(1 for __, f in ok_ops if edge <= f < edge + RTO_BIN)
        floor_bins.append(count / RTO_BIN)
        edge += RTO_BIN
    goodput_floor = min(floor_bins)
    rpo_entries, rpo_seconds = rpo_box[0]

    drill = DrillReport(
        ops=len(outcomes),
        acked_writes=sum(1 for __, __, ok, kind in outcomes
                         if ok and kind == "w") + len(keys),
        failed_ops=sum(1 for __, __, ok, __ in outcomes if not ok),
        lost_acked_writes=lost,
        diverged_keys=diverged,
        indeterminate_keys=skipped,
        rpo_entries=rpo_entries,
        rpo_seconds=rpo_seconds,
        rto_detect=detect[0] if detect else T_HEAL - T_KILL,
        rto_steady=rto_steady,
        goodput_before=goodput_before,
        goodput_during=goodput_during,
        goodput_after=goodput_after,
        goodput_floor=goodput_floor,
        retention_during=(goodput_during / goodput_before
                          if goodput_before else 0.0),
        failovers=sum(c.failovers for c in clients),
        replayed_writes=sum(c.replayed_writes for c in clients),
        stale_reads_served=sum(c.stale_reads_served for c in clients),
        max_staleness_served=max(c.max_staleness_served for c in clients),
        brownout_transitions=len(brownout.transitions),
        slo_alerts_fired=monitor.fired_count(),
    )
    fault_log = "\n".join(
        [plan.describe()] + [record.line() for record in injector.log]
    ).encode()
    return (drill, fault_log, brownout.transition_log_bytes(),
            monitor.alert_log_bytes(), sim.telemetry.snapshot_bytes())


def run_georep(seed: int = 17) -> GeorepReport:
    """Run the consistency sweep and the disaster drill (E17)."""
    modes = [_run_mode(mode, seed) for mode in Consistency]
    drill, fault_log, brownout_log, alert_log, telemetry = _run_drill(seed)
    return GeorepReport(
        seed=seed, modes=modes, drill=drill, fault_log=fault_log,
        brownout_log=brownout_log, alert_log=alert_log, telemetry=telemetry,
    )


def format_georep(report: GeorepReport) -> str:
    sweep = Table(
        "E17a: write cost vs replication exposure by consistency mode",
        ["mode", "puts", "put p50 (ms)", "put p99 (ms)",
         "peak lag (ms)", "follower staleness (ms)"],
    )
    for point in report.modes:
        sweep.add_row(
            point.mode, point.puts, point.put_p50 * 1e3,
            point.put_p99 * 1e3, point.peak_lag * 1e3,
            point.follower_staleness * 1e3,
        )
    drill = report.drill
    timeline = Table(
        "E17b: region-loss drill — goodput through kill and heal",
        ["window", "goodput (ops/s)", "of baseline"],
    )
    timeline.add_row("before kill", drill.goodput_before, 1.0)
    timeline.add_row("during outage", drill.goodput_during,
                     drill.retention_during)
    timeline.add_row("worst outage bin", drill.goodput_floor,
                     (drill.goodput_floor / drill.goodput_before
                      if drill.goodput_before else 0.0))
    timeline.add_row("after heal", drill.goodput_after,
                     (drill.goodput_after / drill.goodput_before
                      if drill.goodput_before else 0.0))
    verdict = Table(
        "E17b: recovery objectives",
        ["metric", "value"],
    )
    verdict.add_row("RPO at kill (entries)", drill.rpo_entries)
    verdict.add_row("RPO at kill (ms)", drill.rpo_seconds * 1e3)
    verdict.add_row("RTO detect (ms)", drill.rto_detect * 1e3)
    verdict.add_row("RTO steady-state (ms)", drill.rto_steady * 1e3)
    verdict.add_row("acked writes", drill.acked_writes)
    verdict.add_row("lost acked writes", drill.lost_acked_writes)
    verdict.add_row("diverged keys after heal", drill.diverged_keys)
    verdict.add_row("failovers", drill.failovers)
    verdict.add_row("replayed writes", drill.replayed_writes)
    verdict.add_row("stale reads served", drill.stale_reads_served)
    verdict.add_row("max staleness served (ms)",
                    drill.max_staleness_served * 1e3)
    verdict.add_row("brownout transitions", drill.brownout_transitions)
    verdict.add_row("SLO alerts fired", drill.slo_alerts_fired)
    closing = (
        "zero lost acknowledged writes"
        if drill.lost_acked_writes == 0 and drill.diverged_keys == 0
        else "DATA LOSS DETECTED"
    )
    return "\n\n".join([
        sweep.render(), timeline.render(), verdict.render(),
        f"verdict: {closing} "
        f"(seed={report.seed}, ops={drill.ops}, "
        f"failed={drill.failed_ops})",
    ])
