"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Any, List, Sequence


class Table:
    """A fixed-column text table."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([_render(value) for value in values])

    def render(self) -> str:
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(
            column.ljust(widths[index]) for index, column in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
            )
        return "\n".join(lines)


def _render(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)
