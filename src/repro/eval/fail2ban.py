"""E3: fail2ban middleware — Hyperion inline path vs CPU-centric server.

Same trace, same verified program, two datapaths. Expected shape: verdicts
identical; the DPU path deletes the per-packet interrupt + syscalls +
copies + interpreter time, so its per-packet latency and total time are a
small fraction of the server's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.apps.fail2ban import (
    Fail2BanBaseline,
    Fail2BanDpu,
    generate_packet_trace,
)
from repro.baseline import CpuCentricDatapath, CpuModel, OsModel
from repro.dpu import HyperionDpu
from repro.eval.report import Table
from repro.hw.net import Network
from repro.hw.nvme import Namespace, NvmeController
from repro.sim import Simulator


@dataclass
class Fail2BanResult:
    """One system's E3 outcome: verdicts, total time, throughput."""

    system: str
    packets: int
    banned: int
    total_time: float
    per_packet: float
    throughput_pps: float


def run_fail2ban(packet_count: int = 2000, threshold: int = 3,
                 seed: int = 17) -> List[Fail2BanResult]:
    trace = generate_packet_trace(packet_count, seed=seed)

    # -- Hyperion -------------------------------------------------------------
    sim = Simulator()
    dpu = HyperionDpu(sim, Network(sim), ssd_blocks=65536)
    sim.run_process(dpu.boot())
    app = Fail2BanDpu(sim, dpu, threshold=threshold)
    started = sim.now

    def dpu_scenario():
        for packet in trace:
            yield from app.process_packet(packet)
        yield from app.flush_log()

    sim.run_process(dpu_scenario())
    dpu_time = sim.now - started
    dpu_result = Fail2BanResult(
        "hyperion-dpu", packet_count, app.banned_packets, dpu_time,
        dpu_time / packet_count, packet_count / dpu_time,
    )

    # -- baseline ------------------------------------------------------------
    sim = Simulator()
    cpu = CpuModel(sim)
    ssd = NvmeController(sim, "server-ssd")
    ssd.add_namespace(Namespace(1, 65536))
    datapath = CpuCentricDatapath(sim, cpu, OsModel(sim, cpu), ssd=ssd)
    baseline = Fail2BanBaseline(sim, datapath, threshold=threshold)
    started = sim.now

    def baseline_scenario():
        for packet in trace:
            yield from baseline.process_packet(packet)

    sim.run_process(baseline_scenario())
    base_time = sim.now - started
    base_result = Fail2BanResult(
        "cpu-server", packet_count, baseline.banned_packets, base_time,
        base_time / packet_count, packet_count / base_time,
    )
    return [dpu_result, base_result]


def format_fail2ban(results: List[Fail2BanResult]) -> str:
    table = Table(
        "E3: fail2ban packet filtering with persistent logging",
        ["system", "packets", "banned", "total", "per packet", "throughput"],
    )
    for r in results:
        table.add_row(
            r.system, r.packets, r.banned,
            f"{r.total_time * 1e3:.2f} ms",
            f"{r.per_packet * 1e6:.2f} us",
            f"{r.throughput_pps / 1e6:.2f} Mpps",
        )
    dpu, base = results
    table.add_row(
        "speedup", "-", "same" if dpu.banned == base.banned else "DIFFER",
        f"{base.total_time / dpu.total_time:.1f}x",
        f"{base.per_packet / dpu.per_packet:.1f}x", "-",
    )
    return table.render()
