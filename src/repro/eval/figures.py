"""Figures 1 and 2: the prototype's bill of materials and schematic.

Figure 1 is a photo of the hardware; its reproducible content is the
inventory (U280, 2x100 GbE, 4 NVMe SSDs, crossover board). Figure 2 is the
schematic; its reproducible content is the component graph and the two
end-to-end paths (network -> slots -> storage; config engine -> slots).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.dpu.hyperion import HyperionDpu
from repro.dpu.schematic import build_schematic, schematic_table
from repro.eval.report import Table
from repro.hw.net import Network
from repro.sim import Simulator

#: What Figure 1 shows, as checkable facts.
FIGURE1_EXPECTED = {
    "device": "alveo-u280",
    "qsfp_ports": 2,
    "network_gbps": 100,
    "nvme_ssds": 4,
    "pcie_bridges": 4,
    "pcie_lanes_per_bridge": 4,
}


@dataclass
class FigureReport:
    """Figure 1/2 reproduction: inventory, mismatches, path checks."""

    inventory: Dict[str, object]
    mismatches: List[str]
    schematic_text: str
    end_to_end_path_ok: bool
    config_path_ok: bool

    @property
    def ok(self) -> bool:
        return not self.mismatches and self.end_to_end_path_ok and self.config_path_ok


def run_figures(sim: Simulator = None) -> FigureReport:
    sim = sim if sim is not None else Simulator()
    dpu = HyperionDpu(sim, Network(sim), ssd_blocks=4096)
    sim.run_process(dpu.boot())
    inventory = dpu.inventory()
    mismatches = [
        f"{key}: expected {expected}, got {inventory.get(key)}"
        for key, expected in FIGURE1_EXPECTED.items()
        if inventory.get(key) != expected
    ]
    schematic = build_schematic()
    reachable = schematic.reachable_from("qsfp0")
    end_to_end = all(
        f"nvme-ssd-{i}" in reachable for i in range(4)
    ) and "ehdl-slot-0" in reachable
    config_reach = schematic.reachable_from("runtime-config-engine")
    config_ok = all(f"ehdl-slot-{i}" in config_reach for i in range(5))
    return FigureReport(
        inventory=inventory,
        mismatches=mismatches,
        schematic_text=schematic_table(schematic),
        end_to_end_path_ok=end_to_end,
        config_path_ok=config_ok,
    )


def format_figures(report: FigureReport) -> str:
    table = Table("Figure 1: Hyperion prototype bill of materials",
                  ["property", "value"])
    for key in sorted(report.inventory):
        table.add_row(key, report.inventory[key])
    lines = [table.render(), ""]
    lines.append("Figure 2: Hyperion schematic (component graph)")
    lines.append(report.schematic_text)
    lines.append("")
    lines.append(f"network->slots->NVMe path present: {report.end_to_end_path_ok}")
    lines.append(f"config engine reaches all slots:   {report.config_path_ok}")
    return "\n".join(lines)
