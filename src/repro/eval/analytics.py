"""E9: end-to-end Parquet/Arrow access with no CPU (paper §2.3).

A filtered aggregation over a Parquet file on a HyperExt file system on
NVMe. The DPU path uses the annotation walker + device-side projection +
the hardware scan kernel; the CPU path reads the whole file through the
kernel and scans in software. Expected shape: identical answers; the DPU
wins on bytes moved (projection) and end-to-end time, and its advantage
grows with file size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.apps.analytics import AnalyticsQuery, cpu_scan, dpu_scan
from repro.baseline import CpuModel, OsModel
from repro.dpu import HyperionDpu
from repro.eval.report import Table
from repro.formats import RecordBatch, Schema, write_table
from repro.fs import HyperExtFs
from repro.hw.net import Network
from repro.sim import Simulator


@dataclass
class AnalyticsPoint:
    """One E9 sweep point: DPU vs CPU time/bytes at a row count."""

    rows: int
    dpu_time: float
    cpu_time: float
    dpu_bytes: int
    cpu_bytes: int
    answers_agree: bool

    @property
    def speedup(self) -> float:
        return self.cpu_time / self.dpu_time


def _dataset(rows: int) -> bytes:
    schema = Schema.of(id="int64", amount="float64", region="string")
    batch = RecordBatch.from_rows(
        schema,
        [(i, i * 0.5, ["eu", "us", "apac"][i % 3]) for i in range(rows)],
    )
    return write_table(batch, rows_per_group=max(64, rows // 16))


def _query() -> AnalyticsQuery:
    return AnalyticsQuery(
        path="/warehouse/sales.parquet",
        project=["amount"],
        aggregate_column="amount",
        aggregate="sum",
        predicate_column="id",
        predicate_low=0,
        predicate_high=10_000_000,
    )


def _run_point(rows: int) -> AnalyticsPoint:
    sim = Simulator()
    dpu = HyperionDpu(sim, Network(sim), ssd_blocks=262144)
    sim.run_process(dpu.boot())
    fs = HyperExtFs.mkfs(dpu.ssds[0].namespaces[1], inode_blocks=8)
    fs.mkdir("/warehouse")
    fs.create_file("/warehouse/sales.parquet", _dataset(rows))
    query = _query()

    def scenario():
        dpu_result = yield from dpu_scan(sim, dpu, fs, query)
        cpu = CpuModel(sim)
        cpu_result = yield from cpu_scan(
            sim, cpu, OsModel(sim, cpu), fs, query, controller=dpu.ssds[0]
        )
        return dpu_result, cpu_result

    dpu_result, cpu_result = sim.run_process(scenario())
    return AnalyticsPoint(
        rows=rows,
        dpu_time=dpu_result.elapsed,
        cpu_time=cpu_result.elapsed,
        dpu_bytes=dpu_result.bytes_from_storage,
        cpu_bytes=cpu_result.bytes_from_storage,
        answers_agree=abs(dpu_result.value - cpu_result.value) < 1e-6,
    )


def run_analytics(row_counts=(1_000, 5_000, 20_000)) -> List[AnalyticsPoint]:
    return [_run_point(rows) for rows in row_counts]


def format_analytics(points: List[AnalyticsPoint]) -> str:
    table = Table(
        "E9: Parquet scan on ext4-like FS over NVMe, DPU walker vs CPU stack",
        ["rows", "DPU time", "CPU time", "speedup", "DPU bytes",
         "CPU bytes", "agree"],
    )
    for p in points:
        table.add_row(
            p.rows,
            f"{p.dpu_time * 1e3:.2f} ms",
            f"{p.cpu_time * 1e3:.2f} ms",
            f"{p.speedup:.1f}x",
            p.dpu_bytes,
            p.cpu_bytes,
            p.answers_agree,
        )
    return table.render()
