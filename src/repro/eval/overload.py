"""E15: overload protection — congestion collapse vs graceful brownout.

The failure mode: an open-loop client population offers more load than a
run-to-completion DPU can serve. With the implicit unbounded queue, the
backlog grows without limit, every response arrives after its client's
timeout, and the at-least-once retransmissions *multiply* the offered
load exactly when the server is saturated — goodput (responses delivered
within the client's deadline) collapses toward zero even though the
server never stops working. The classic metastable failure.

The controlled variant turns on the full ``repro.overload`` stack:

* a bounded CoDel queue in the RPC server (excess requests get an
  immediate cheap error, stale requests are dropped at dequeue);
* a token-bucket + AIMD admission controller shedding scrub and
  background traffic before user gets/puts;
* a shared retry budget on the client, capping storm amplification;
* an SLO-driven brownout controller that shrinks batches / skips the
  backend as queue pressure persists, buying back capacity.

Expected shape: uncontrolled goodput collapses past saturation;
controlled goodput stays within 10% of its peak at 2x saturation with
bounded p99. Same seed, byte-identical report (including the brownout
mode-transition log).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.eval.report import Table
from repro.hw.net import Network
from repro.overload import (
    AdmissionController,
    BrownoutController,
    Priority,
    QueuePolicy,
)
from repro.sim import Simulator
from repro.telemetry import Sampler, SloMonitor, SloRule, percentile
from repro.transport import RetryBudget, RpcClient, RpcError, RpcServer, UdpSocket

#: Service time of one request on the wimpy core: capacity = 10k ops/s.
SERVICE_TIME = 100e-6

#: Offered load as multiples of the service capacity.
LOAD_MULTIPLES = (0.5, 1.0, 1.5, 2.0, 3.0)

#: Measured arrival window per load point (simulated seconds).
DURATION = 30e-3

#: Extra simulated time for in-flight calls to resolve after arrivals end.
GRACE = 10e-3

#: Client-side retransmission behaviour (at-least-once RPC).
CLIENT_TIMEOUT = 1e-3
CLIENT_RETRIES = 2

#: A response this late is useless to the caller: the goodput deadline.
GOODPUT_DEADLINE = 5e-3

#: Controlled-variant knobs.
QUEUE_CAPACITY = 32
CODEL_TARGET = 500e-6
CODEL_INTERVAL = 2e-3
RETRY_BUDGET = 20
RETRY_WINDOW = 10e-3
AIMD_PERIOD = 1e-3

#: The uncontrolled variant's "unbounded" queue: large enough that no
#: arrival is ever refused inside the experiment horizon.
UNBOUNDED_CAPACITY = 1_000_000

#: Sampling period for queue-pressure telemetry and brownout decisions.
SAMPLE_PERIOD = 0.5e-3

#: Queue saturation above this for 1 ms trips the brownout ladder.
PRESSURE_RULE = "value <= 0.7 for 1ms"


@dataclass
class OverloadPoint:
    """One (load multiple, variant) measurement."""

    controlled: bool
    multiple: float
    offered: int
    succeeded: int
    failed: int
    goodput: float
    p50_latency: float
    p99_latency: float
    retransmits: int
    retry_budget_exhausted: int
    server_shed: int
    queue_dropped_full: int
    queue_dropped_deadline: int
    shed_user: int
    shed_background: int
    shed_scrub: int
    brownout_peak_level: int

    def line(self) -> str:
        """Canonical one-line form (same seed => same bytes)."""
        variant = "controlled" if self.controlled else "uncontrolled"
        return (
            f"point variant={variant} multiple={self.multiple!r} "
            f"offered={self.offered} succeeded={self.succeeded} "
            f"goodput={self.goodput!r} p99={self.p99_latency!r} "
            f"retransmits={self.retransmits} shed={self.server_shed} "
            f"dropped_full={self.queue_dropped_full} "
            f"dropped_deadline={self.queue_dropped_deadline} "
            f"shed_scrub={self.shed_scrub} "
            f"brownout_peak={self.brownout_peak_level}"
        )


@dataclass
class OverloadReport:
    """What E15 measured for one seed."""

    seed: int
    service_time: float
    duration: float
    uncontrolled: List[OverloadPoint]
    controlled: List[OverloadPoint]
    #: Best controlled goodput across the sweep.
    peak_goodput: float
    #: Controlled goodput at 2x the service capacity.
    goodput_at_2x: float
    #: goodput_at_2x / peak_goodput — the headline "no collapse" number.
    goodput_retention_at_2x: float
    #: Uncontrolled goodput at the top multiple / uncontrolled peak —
    #: the headline collapse number (small is collapsed).
    uncontrolled_collapse_ratio: float
    #: From the top-load controlled run:
    brownout_transitions: int
    brownout_log: bytes
    slo_alerts_fired: int
    slo_alert_log: bytes
    telemetry: bytes
    series: bytes
    samples: int

    def canonical_bytes(self) -> bytes:
        """The whole sweep as canonical bytes — same seed, same bytes."""
        lines = [p.line() for p in self.uncontrolled]
        lines += [p.line() for p in self.controlled]
        blob = "\n".join(lines).encode()
        return b"\n".join(
            part for part in
            (blob, self.brownout_log, self.slo_alert_log) if part
        )


def _priority_for(index: int) -> int:
    """60% user, 20% background, 20% scrub — deterministic striping."""
    phase = index % 5
    if phase == 3:
        return int(Priority.BACKGROUND)
    if phase == 4:
        return int(Priority.SCRUB)
    return int(Priority.USER)


def _run_point(
    seed: int,
    multiple: float,
    controlled: bool,
    service_time: float,
    duration: float,
):
    """One fresh simulation: open-loop arrivals against one RPC server."""
    sim = Simulator()
    network = Network(sim)
    server_address = "overload-server"

    admission: Optional[AdmissionController] = None
    if controlled:
        admission = AdmissionController(
            sim, sim.telemetry.unique_scope("eval.overload.admission"),
            rate=1.0 / service_time,
            # A harsh halving oscillates the admitted rate far below
            # capacity; a gentle step keeps it hugging the service rate.
            multiplicative_decrease=0.85,
        )
    server = RpcServer(
        sim, UdpSocket(sim, network.endpoint(server_address)),
        admission=admission,
        queue_capacity=QUEUE_CAPACITY if controlled else UNBOUNDED_CAPACITY,
        queue_policy=QueuePolicy.CODEL if controlled else QueuePolicy.FIFO,
        workers=1,
        codel_target=CODEL_TARGET,
        codel_interval=CODEL_INTERVAL,
    )

    sampler = Sampler(sim.telemetry, sim, period=SAMPLE_PERIOD)
    sampler.watch(f"rpc.server.{server_address}.queue.saturation")
    sampler.watch(f"rpc.server.{server_address}.queue.depth")
    monitor: Optional[SloMonitor] = None
    brownout: Optional[BrownoutController] = None
    if controlled:
        monitor = SloMonitor(sampler, [SloRule.parse(
            f"rpc.server.{server_address}.queue.saturation {PRESSURE_RULE}",
            name="queue-pressure",
        )])
        brownout = BrownoutController(
            monitor, sim.telemetry.unique_scope("eval.overload.brownout"),
            dwell=2e-3, recovery=4e-3,
        )

    def work(index):
        # Brownout buys capacity: smaller batches cost less service time,
        # stale reads skip the backend entirely.
        scale = 1.0
        if brownout is not None:
            mode = brownout.mode
            scale = 0.5 + 0.5 * mode.batch_scale
            if mode.serve_stale:
                scale *= 0.75
        yield sim.timeout(service_time * scale)
        return index

    server.register("work", work)

    budget = (
        RetryBudget(sim, budget=RETRY_BUDGET, window=RETRY_WINDOW)
        if controlled else None
    )
    client = RpcClient(
        sim, UdpSocket(sim, network.endpoint("overload-client")),
        retry_budget=budget,
    )

    #: (started, finished, ok) per arrival.
    outcomes: List[Tuple[float, float, bool]] = []

    def one_call(index: int, priority: int):
        started = sim.now
        try:
            yield from client.call(
                server_address, "work", index,
                timeout=CLIENT_TIMEOUT, retries=CLIENT_RETRIES,
                priority=priority,
            )
            ok = True
        except RpcError:
            ok = False
        outcomes.append((started, sim.now, ok))

    done = [False]

    def sampling():
        while not done[0]:
            yield sim.timeout(sampler.period)
            sampler.sample()

    def aimd_loop():
        while not done[0]:
            yield sim.timeout(AIMD_PERIOD)
            admission.tick(overloaded=server.queue.saturation >= 1.0)

    def arrivals():
        rng = random.Random(f"{seed}/{multiple}/{int(controlled)}")
        rate = multiple / service_time
        index = 0
        while True:
            yield sim.timeout(rng.expovariate(rate))
            if sim.now >= duration:
                break
            sim.process(one_call(index, _priority_for(index)))
            index += 1
        yield sim.timeout(GRACE)
        done[0] = True

    sim.process(sampling())
    if controlled:
        sim.process(aimd_loop())
    sim.run_process(arrivals())

    successes = [(s, f) for s, f, ok in outcomes if ok]
    in_deadline = [
        f - s for s, f in successes if f - s <= GOODPUT_DEADLINE
    ]
    latencies = sorted(f - s for s, f in successes)
    peak_level = 0
    if brownout is not None:
        names = {mode.name: i for i, mode in enumerate(brownout.modes)}
        for __, __, to, __ in brownout.transitions:
            peak_level = max(peak_level, names[to])
    point = OverloadPoint(
        controlled=controlled,
        multiple=multiple,
        offered=len(outcomes),
        succeeded=len(successes),
        failed=len(outcomes) - len(successes),
        goodput=len(in_deadline) / duration,
        p50_latency=percentile(latencies, 0.50) if latencies else 0.0,
        p99_latency=percentile(latencies, 0.99) if latencies else 0.0,
        retransmits=client.retransmits,
        retry_budget_exhausted=client.retry_budget_exhausted,
        server_shed=server.requests_shed,
        queue_dropped_full=server.queue.dropped_full,
        queue_dropped_deadline=server.queue.dropped_deadline,
        shed_user=admission.shed(Priority.USER) if admission else 0,
        shed_background=(
            admission.shed(Priority.BACKGROUND) if admission else 0),
        shed_scrub=admission.shed(Priority.SCRUB) if admission else 0,
        brownout_peak_level=peak_level,
    )
    return point, sim, sampler, monitor, brownout


def run_overload(
    seed: int = 11,
    multiples: Tuple[float, ...] = LOAD_MULTIPLES,
    service_time: float = SERVICE_TIME,
    duration: float = DURATION,
) -> OverloadReport:
    uncontrolled: List[OverloadPoint] = []
    controlled: List[OverloadPoint] = []
    top_artifacts = None
    for multiple in multiples:
        point, *_ = _run_point(seed, multiple, False, service_time, duration)
        uncontrolled.append(point)
    for multiple in multiples:
        point, sim, sampler, monitor, brownout = _run_point(
            seed, multiple, True, service_time, duration
        )
        controlled.append(point)
        top_artifacts = (sim, sampler, monitor, brownout)

    sim, sampler, monitor, brownout = top_artifacts
    peak = max(p.goodput for p in controlled)
    at_2x = next(
        (p.goodput for p in controlled if p.multiple == 2.0),
        controlled[-1].goodput,
    )
    unc_peak = max(p.goodput for p in uncontrolled)
    unc_last = uncontrolled[-1].goodput
    return OverloadReport(
        seed=seed,
        service_time=service_time,
        duration=duration,
        uncontrolled=uncontrolled,
        controlled=controlled,
        peak_goodput=peak,
        goodput_at_2x=at_2x,
        goodput_retention_at_2x=at_2x / peak if peak else 0.0,
        uncontrolled_collapse_ratio=unc_last / unc_peak if unc_peak else 0.0,
        brownout_transitions=len(brownout.transitions),
        brownout_log=brownout.transition_log_bytes(),
        slo_alerts_fired=monitor.fired_count(),
        slo_alert_log=monitor.alert_log_bytes(),
        telemetry=sim.telemetry.snapshot_bytes(),
        series=sampler.snapshot_bytes(),
        samples=sampler.ticks,
    )


def format_overload(report: OverloadReport) -> str:
    table = Table(
        "E15: open-loop overload — congestion collapse vs graceful "
        f"brownout (capacity={1.0 / report.service_time:.0f} ops/s, "
        f"seed={report.seed})",
        ["variant", "load", "offered", "ok", "goodput (ops/s)",
         "p99 (ms)", "shed", "retransmits"],
    )
    for point in report.uncontrolled + report.controlled:
        table.add_row(
            "controlled" if point.controlled else "uncontrolled",
            f"{point.multiple:.1f}x",
            point.offered,
            point.succeeded,
            f"{point.goodput:.0f}",
            f"{point.p99_latency * 1e3:.2f}",
            point.server_shed,
            point.retransmits,
        )
    rendered = table.render()
    rendered += (
        f"\n\ncontrolled goodput at 2.0x: {report.goodput_at_2x:.0f} ops/s "
        f"({report.goodput_retention_at_2x * 100:.1f}% of peak "
        f"{report.peak_goodput:.0f})"
    )
    rendered += (
        f"\nuncontrolled goodput at {report.uncontrolled[-1].multiple:.1f}x: "
        f"{report.uncontrolled[-1].goodput:.0f} ops/s "
        f"({report.uncontrolled_collapse_ratio * 100:.1f}% of its peak — "
        "congestion collapse)"
    )
    rendered += (
        f"\nbrownout transitions (top load): {report.brownout_transitions}, "
        f"SLO alerts fired: {report.slo_alerts_fired}"
    )
    if report.brownout_log:
        lines = report.brownout_log.decode().splitlines()
        shown = lines[:8]
        rendered += "\n\nBrownout transition log:\n" + "\n".join(
            f"  {line}" for line in shown
        )
        if len(lines) > len(shown):
            rendered += f"\n  ... (+{len(lines) - len(shown)} more entries)"
    return rendered
