"""EXT: NIC-to-SSD data movement — bounce vs P2P DMA vs Hyperion.

Paper §2: "Commercially, NICs and storage devices are sold as separate PCIe
devices. Communication between the two requires control coordination with
P2P DMA from the CPU (if supported, e.g., NVMe Controller Memory Buffers)
via the PCIe root complex." (and §1's [122], "How Beneficial is
Peer-to-Peer DMA?").

Three ways to land a stream of network payloads on flash, measured at queue
depth (transfers pipeline; flash dies absorb parallel programs):

* **bounce** — NIC DMAs into host DRAM; the CPU serially takes an
  interrupt, copies, and issues the write syscall for every transfer
  before a second DMA reaches the SSD;
* **p2p** — NIC DMAs straight into the SSD's CMB through the host root
  complex; no copy, but the *CPU still coordinates* every transfer
  (descriptor setup + doorbells) on one core;
* **hyperion** — the DPU's fabric issues descriptors in hardware; no CPU.

Expected shape: at small transfers the serialized CPU section is the
bottleneck, so hyperion >> p2p >> bounce in throughput; at large transfers
all paths converge toward the PCIe/flash bandwidth, with bounce still
paying its copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.baseline.cpu import CpuCosts, CpuModel
from repro.baseline.os_model import OsModel
from repro.eval.report import Table
from repro.hw.nvme import Namespace, NvmeCommand, NvmeController, NvmeOpcode
from repro.hw.pcie.link import PcieLink
from repro.sim import Resource, Simulator

#: CPU-side control work per P2P transfer: map the CMB window, build the
#: descriptor, ring two doorbells through the kernel.
P2P_CONTROL_COST = 5e-6
#: FPGA-side control: a pipelined descriptor in fabric logic.
HYPERION_CONTROL_COST = 100e-9


@dataclass
class DatapathPoint:
    """One movement-path measurement at a given transfer size."""

    path: str
    transfer_size: int
    transfers: int
    total_time: float

    @property
    def per_transfer(self) -> float:
        return self.total_time / self.transfers

    @property
    def goodput(self) -> float:
        return self.transfer_size * self.transfers / self.total_time


def _make_ssd(sim):
    # A datacenter-class drive: 16 channels x 8 dies soak up the queue
    # depth, so the *movement* path (not the flash) sets the pace.
    from repro.hw.nvme.flash import FlashArray

    ssd = NvmeController(
        sim,
        "target-ssd",
        flash=FlashArray(sim, channels=16, dies_per_channel=8),
        link=PcieLink(sim, lanes=4),
        queue_depth=1024,
    )
    ssd.add_namespace(Namespace(1, 1 << 20))
    qp = ssd.create_queue_pair()
    ssd.start()
    return ssd, qp


def _run_pipelined(path: str, size: int, transfers: int,
                   control_section: Callable, data_link: PcieLink,
                   sim: Simulator, qp) -> DatapathPoint:
    """Issue all transfers concurrently; the control section serializes."""
    done = []

    def one(index):
        yield from control_section(size)
        yield from data_link.transfer(size)
        completion = yield qp.submit(
            NvmeCommand(
                NvmeOpcode.WRITE,
                lba=index * max(1, size // 4096),
                data=b"\x00" * size,
            )
        )
        assert completion.ok
        done.append(sim.now)

    for index in range(transfers):
        sim.process(one(index))
    sim.run()
    return DatapathPoint(path, size, transfers, max(done))


def _run_bounce(size: int, transfers: int) -> DatapathPoint:
    sim = Simulator()
    cpu = CpuModel(sim, costs=CpuCosts(jitter_fraction=0.0,
                                       preemption_probability=0.0))
    os_model = OsModel(sim, cpu)
    core = Resource(sim, capacity=1)  # one CPU core runs the datapath
    ssd, qp = _make_ssd(sim)
    host_link = PcieLink(sim, lanes=8)  # NIC -> host DRAM
    dram_to_ssd = PcieLink(sim, lanes=4)

    def control(size_bytes):
        yield from host_link.transfer(size_bytes)  # NIC DMA to DRAM
        yield core.request()
        try:
            yield from os_model.receive_packet(size_bytes)
            yield from os_model.write_storage(size_bytes)
        finally:
            core.release()

    return _run_pipelined("bounce", size, transfers, control, dram_to_ssd, sim, qp)


def _run_p2p(size: int, transfers: int) -> DatapathPoint:
    sim = Simulator()
    core = Resource(sim, capacity=1)
    ssd, qp = _make_ssd(sim)
    nic_to_ssd = PcieLink(sim, lanes=4)  # through the host root complex

    def control(size_bytes):
        yield core.request()
        try:
            yield sim.timeout(P2P_CONTROL_COST)
        finally:
            core.release()

    return _run_pipelined("p2p-dma", size, transfers, control, nic_to_ssd, sim, qp)


def _run_hyperion(size: int, transfers: int) -> DatapathPoint:
    sim = Simulator()
    ssd, qp = _make_ssd(sim)
    fabric_link = PcieLink(sim, lanes=4)  # FPGA -> SSD bifurcated x4

    def control(size_bytes):
        yield sim.timeout(HYPERION_CONTROL_COST)  # fabric descriptor engine

    return _run_pipelined("hyperion", size, transfers, control,
                          fabric_link, sim, qp)


def run_p2pdma(sizes=(4096, 65536, 1 << 20),
               transfers: int = 50) -> List[DatapathPoint]:
    points: List[DatapathPoint] = []
    for size in sizes:
        points.append(_run_bounce(size, transfers))
        points.append(_run_p2p(size, transfers))
        points.append(_run_hyperion(size, transfers))
    return points


def format_p2pdma(points: List[DatapathPoint]) -> str:
    table = Table(
        "EXT: NIC->SSD movement — host bounce vs P2P DMA vs Hyperion fabric",
        ["transfer", "path", "per transfer", "goodput"],
    )
    for p in points:
        table.add_row(
            f"{p.transfer_size >> 10} KiB",
            p.path,
            f"{p.per_transfer * 1e6:.1f} us",
            f"{p.goodput / 1e9:.2f} GB/s",
        )
    return table.render()
