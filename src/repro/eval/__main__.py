"""Run the complete evaluation and print every reproduced artifact.

Usage::

    python -m repro.eval             # everything
    python -m repro.eval e3 e6       # selected experiments
    python -m repro.eval --list
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, Tuple

from repro.eval.analytics import format_analytics, run_analytics
from repro.eval.chaos import format_chaos, run_chaos
from repro.eval.compiler import format_compiler, run_compiler
from repro.eval.corfu import format_corfu, run_corfu
from repro.eval.efficiency import format_efficiency, run_efficiency
from repro.eval.fail2ban import format_fail2ban, run_fail2ban
from repro.eval.figures import format_figures, run_figures
from repro.eval.kvssd import format_kvssd, run_kvssd
from repro.eval.loadbalancer import format_loadbalancer, run_loadbalancer
from repro.eval.pointer_chase import format_pointer_chase, run_pointer_chase
from repro.eval.predictability import format_predictability, run_predictability
from repro.eval.reconfig import format_reconfig, run_reconfig
from repro.eval.recovery import format_recovery, run_recovery
from repro.eval.p2pdma import format_p2pdma, run_p2pdma
from repro.eval.table1 import run_table1
from repro.eval.telemetry import format_telemetry, run_telemetry
from repro.eval.translation import format_translation, run_translation

EXPERIMENTS: Dict[str, Tuple[str, Callable[[], str]]] = {
    "t1": ("Table 1: state-of-the-art matrix",
           lambda: run_table1().render()),
    "f12": ("Figures 1+2: BOM and schematic",
            lambda: format_figures(run_figures())),
    "e1": ("E1: volume + energy efficiency",
           lambda: format_efficiency(run_efficiency())),
    "e2": ("E2: pointer chasing",
           lambda: format_pointer_chase(run_pointer_chase())),
    "e3": ("E3: fail2ban",
           lambda: format_fail2ban(run_fail2ban())),
    "e4": ("E4: load balancer overflow",
           lambda: format_loadbalancer(run_loadbalancer())),
    "e5": ("E5: segment vs page translation",
           lambda: format_translation(run_translation())),
    "e6": ("E6: predictability + energy",
           lambda: format_predictability(run_predictability())),
    "e7": ("E7: partial reconfiguration",
           lambda: format_reconfig(run_reconfig())),
    "e8": ("E8: Corfu shared log",
           lambda: format_corfu(run_corfu())),
    "e9": ("E9: Parquet/Arrow end to end",
           lambda: format_analytics(run_analytics())),
    "e10": ("E10: eBPF->HDL compiler corpus",
            lambda: format_compiler(run_compiler())),
    "e11": ("E11: persistence + recovery",
            lambda: format_recovery(run_recovery())),
    "e12": ("E12: KV-SSD transports",
            lambda: format_kvssd(run_kvssd())),
    "e13": ("E13: chaos storm + replicated failover",
            lambda: format_chaos(run_chaos())),
    "p2p": ("EXT: NIC->SSD bounce vs P2P DMA vs Hyperion",
            lambda: format_p2pdma(run_p2pdma())),
    "telemetry": ("TEL: unified telemetry plane — traced KV get + registry",
                  lambda: format_telemetry(run_telemetry())),
}


def main(argv) -> int:
    args = [arg.lower() for arg in argv[1:]]
    if "--list" in args:
        for key, (title, __) in EXPERIMENTS.items():
            print(f"{key:>4}  {title}")
        return 0
    selected = args if args else list(EXPERIMENTS)
    unknown = [key for key in selected if key not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print("use --list to see the available ids", file=sys.stderr)
        return 2
    for key in selected:
        title, runner = EXPERIMENTS[key]
        print(f"\n### {title}\n")
        print(runner())
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
