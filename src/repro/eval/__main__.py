"""Run the complete evaluation and print every reproduced artifact.

Usage::

    python -m repro.eval                 # everything
    python -m repro.eval e3 e6           # selected experiments
    python -m repro.eval --seed 42 e13   # reproducible alternate seed
    python -m repro.eval --list
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, Optional, Tuple

from repro.eval.analytics import format_analytics, run_analytics
from repro.eval.autoscale import format_autoscale, run_autoscale
from repro.eval.chaos import format_chaos, run_chaos
from repro.eval.compiler import format_compiler, run_compiler
from repro.eval.corfu import format_corfu, run_corfu
from repro.eval.efficiency import format_efficiency, run_efficiency
from repro.eval.fail2ban import format_fail2ban, run_fail2ban
from repro.eval.figures import format_figures, run_figures
from repro.eval.georep import format_georep, run_georep
from repro.eval.kvssd import format_kvssd, run_kvssd
from repro.eval.loadbalancer import format_loadbalancer, run_loadbalancer
from repro.eval.overload import format_overload, run_overload
from repro.eval.pointer_chase import format_pointer_chase, run_pointer_chase
from repro.eval.predictability import format_predictability, run_predictability
from repro.eval.reconfig import format_reconfig, run_reconfig
from repro.eval.recovery import format_recovery, run_recovery
from repro.eval.p2pdma import format_p2pdma, run_p2pdma
from repro.eval.scaleout import format_scaleout, run_scaleout
from repro.eval.table1 import run_table1
from repro.eval.telemetry import format_telemetry, run_telemetry
from repro.eval.trace import format_trace, run_trace
from repro.eval.translation import format_translation, run_translation
from repro.eval.verify import format_verify, run_verify


def _seeded(run, format_fn):
    """A runner forwarding ``--seed`` into a seed-accepting ``run_*``."""
    def runner(seed: Optional[int]) -> str:
        result = run() if seed is None else run(seed=seed)
        return format_fn(result)
    return runner


def _unseeded(run, format_fn):
    """A runner for deterministic experiments with no seed parameter."""
    def runner(seed: Optional[int]) -> str:
        return format_fn(run())
    return runner


#: id -> (title, runner(seed) -> rendered text). Seeded experiments
#: thread ``--seed`` into their ``run_*``; the rest ignore it.
EXPERIMENTS: Dict[str, Tuple[str, Callable[[Optional[int]], str]]] = {
    "t1": ("Table 1: state-of-the-art matrix",
           _unseeded(run_table1, lambda table: table.render())),
    "f12": ("Figures 1+2: BOM and schematic",
            _unseeded(run_figures, format_figures)),
    "e1": ("E1: volume + energy efficiency",
           _unseeded(run_efficiency, format_efficiency)),
    "e2": ("E2: pointer chasing",
           _seeded(run_pointer_chase, format_pointer_chase)),
    "e3": ("E3: fail2ban",
           _seeded(run_fail2ban, format_fail2ban)),
    "e4": ("E4: load balancer overflow",
           _seeded(run_loadbalancer, format_loadbalancer)),
    "e5": ("E5: segment vs page translation",
           _seeded(run_translation, format_translation)),
    "e6": ("E6: predictability + energy",
           _unseeded(run_predictability, format_predictability)),
    "e7": ("E7: partial reconfiguration",
           _unseeded(run_reconfig, format_reconfig)),
    "e8": ("E8: Corfu shared log",
           _unseeded(run_corfu, format_corfu)),
    "e9": ("E9: Parquet/Arrow end to end",
           _unseeded(run_analytics, format_analytics)),
    "e10": ("E10: eBPF->HDL compiler corpus",
            _unseeded(run_compiler, format_compiler)),
    "e11": ("E11: persistence + recovery",
            _unseeded(run_recovery, format_recovery)),
    "e12": ("E12: KV-SSD transports",
            _unseeded(run_kvssd, format_kvssd)),
    "e13": ("E13: chaos storm + replicated failover",
            _seeded(run_chaos, format_chaos)),
    "e15": ("E15: overload — congestion collapse vs graceful brownout",
            _seeded(run_overload, format_overload)),
    "e16": ("E16: scale-out data plane — sharding, batching, hot-key cache",
            _seeded(run_scaleout, format_scaleout)),
    "e17": ("E17: geo-replication — WAN log shipping + region-loss drill",
            _seeded(run_georep, format_georep)),
    "e19": ("E19: consistency verification — chaos search, linearizability, "
            "shrinking",
            _seeded(run_verify, format_verify)),
    "e20": ("E20: traffic plane — manual vs SLO-driven capacity under a "
            "daily curve",
            _seeded(run_autoscale, format_autoscale)),
    "p2p": ("EXT: NIC->SSD bounce vs P2P DMA vs Hyperion",
            _unseeded(run_p2pdma, format_p2pdma)),
    "telemetry": ("TEL: unified telemetry plane — traced KV get + registry",
                  _unseeded(run_telemetry, format_telemetry)),
    "trace": ("TRACE: causal trace analysis — cross-region quorum flows",
              _seeded(run_trace, format_trace)),
}


def main(argv) -> int:
    args = [arg.lower() for arg in argv[1:]]
    if "--list" in args:
        for key, (title, __) in EXPERIMENTS.items():
            print(f"{key:>4}  {title}")
        return 0
    seed: Optional[int] = None
    if "--seed" in args:
        at = args.index("--seed")
        try:
            seed = int(args[at + 1])
        except (IndexError, ValueError):
            print("--seed requires an integer argument", file=sys.stderr)
            return 2
        del args[at:at + 2]
    selected = args if args else list(EXPERIMENTS)
    unknown = [key for key in selected if key not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print("use --list to see the available ids", file=sys.stderr)
        return 2
    for key in selected:
        title, runner = EXPERIMENTS[key]
        print(f"\n### {title}\n")
        print(runner(seed))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
