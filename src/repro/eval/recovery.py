"""E11: segment-table persistence and power-loss recovery (paper §2.1).

Allocate durable and ephemeral segments, persist the table to the boot
area, power-cycle the DPU, and measure the recovery outcome and time as a
function of table size. Expected shape: durable segments and their bytes
survive, ephemeral segments vanish, recovery time grows linearly in table
size but stays milliseconds even for thousands of segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.ids import ObjectId
from repro.dpu import HyperionDpu
from repro.eval.report import Table
from repro.hw.net import Network
from repro.sim import Simulator


@dataclass
class RecoveryPoint:
    """One E11 run: persisted bytes and recovery verdicts at a table size."""

    durable_segments: int
    ephemeral_segments: int
    persist_bytes: int
    recovered_segments: int
    data_intact: bool
    ephemeral_gone: bool
    recovery_time: float


def _run_point(durable_count: int, ephemeral_count: int = 50) -> RecoveryPoint:
    sim = Simulator()
    dpu = HyperionDpu(sim, Network(sim), ssd_blocks=262144)
    sim.run_process(dpu.boot())

    durable_oids = []
    for index in range(durable_count):
        oid = ObjectId(1000 + index)
        dpu.store.allocate(64, durable=True, oid=oid)
        dpu.store.write(oid, f"durable-{index}".encode())
        durable_oids.append(oid)
    ephemeral_oids = []
    for index in range(ephemeral_count):
        segment = dpu.store.allocate(64)
        dpu.store.write(segment.oid, b"ephemeral")
        ephemeral_oids.append(segment.oid)

    def persist():
        written = yield from dpu.store.timed_persist_table()
        return written

    persist_bytes = sim.run_process(persist())

    # Power loss and standalone recovery.
    twin = dpu.power_cycle()
    recovery_started = sim.now
    report = sim.run_process(twin.boot(recover_store=True))
    recovery_time = sim.now - recovery_started - report.boot_time + (
        report.boot_time - 0.16
    )  # isolate the store-recovery share of boot

    data_intact = all(
        twin.store.read(oid, len(f"durable-{index}".encode()))
        == f"durable-{index}".encode()
        for index, oid in enumerate(durable_oids)
    )
    ephemeral_gone = all(oid not in twin.store.table for oid in ephemeral_oids)
    return RecoveryPoint(
        durable_segments=durable_count,
        ephemeral_segments=ephemeral_count,
        persist_bytes=persist_bytes,
        recovered_segments=report.recovered_segments,
        data_intact=data_intact,
        ephemeral_gone=ephemeral_gone,
        recovery_time=max(recovery_time, 0.0),
    )


def run_recovery(durable_counts=(10, 100, 1000)) -> List[RecoveryPoint]:
    return [_run_point(count) for count in durable_counts]


def format_recovery(points: List[RecoveryPoint]) -> str:
    table = Table(
        "E11: segment table persistence + power-loss recovery",
        ["durable segs", "ephemeral segs", "persisted bytes",
         "recovered", "data intact", "ephemeral gone"],
    )
    for p in points:
        table.add_row(
            p.durable_segments, p.ephemeral_segments, p.persist_bytes,
            p.recovered_segments, p.data_intact, p.ephemeral_gone,
        )
    return table.render()
