"""E1: the volume and energy-efficiency claims (paper §2).

"Hyperion is 5-10x more compact in volume, and 4-8x more energy efficient
with the maximum TDP energy specifications (approx. 230 Watts vs 1,600
Watts)."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baseline.server import SUPERMICRO_X12
from repro.eval.report import Table
from repro.power.energy import HYPERION_POWER, total_tdp
from repro.power.volume import HYPERION_VOLUME, DeviceVolume, volume_ratio


@dataclass
class EfficiencyReport:
    """E1 results: TDP and volume of both systems plus the ratios."""

    hyperion_tdp_w: float
    server_tdp_w: float
    energy_ratio: float
    hyperion_volume_l: float
    server_volume_l: float
    volume_ratio: float

    @property
    def energy_in_band(self) -> bool:
        return 4.0 <= self.energy_ratio <= 8.0

    @property
    def volume_in_band(self) -> bool:
        return 5.0 <= self.volume_ratio <= 10.0


def run_efficiency() -> EfficiencyReport:
    hyperion_tdp = total_tdp(HYPERION_POWER)
    server_tdp = SUPERMICRO_X12.max_tdp_watts
    server_volume = DeviceVolume("x12-1u", SUPERMICRO_X12.dimensions_mm)
    return EfficiencyReport(
        hyperion_tdp_w=hyperion_tdp,
        server_tdp_w=server_tdp,
        energy_ratio=server_tdp / hyperion_tdp,
        hyperion_volume_l=HYPERION_VOLUME.liters,
        server_volume_l=server_volume.liters,
        volume_ratio=volume_ratio(server_volume, HYPERION_VOLUME),
    )


def format_efficiency(report: EfficiencyReport) -> str:
    table = Table(
        "E1: compactness and energy efficiency (paper: 5-10x volume, "
        "4-8x energy, ~230 W vs ~1600 W)",
        ["metric", "hyperion", "1U server", "ratio", "paper band", "in band"],
    )
    table.add_row(
        "max TDP (W)", report.hyperion_tdp_w, report.server_tdp_w,
        f"{report.energy_ratio:.1f}x", "4-8x", report.energy_in_band,
    )
    table.add_row(
        "volume (L)", report.hyperion_volume_l, report.server_volume_l,
        f"{report.volume_ratio:.1f}x", "5-10x", report.volume_in_band,
    )
    return table.render()
