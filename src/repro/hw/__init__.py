"""Hardware substrates: FPGA fabric, PCIe, NVMe flash, and Ethernet."""
