"""NVMe substrate: flash timing, namespaces, controllers, queues, ZNS.

Four off-the-shelf NVMe SSDs hang off the Hyperion FPGA through bifurcated
PCIe (paper Figure 2). The model stores real bytes (so file systems and data
formats above it round-trip) and charges realistic flash timing through
per-die queueing.
"""

from repro.hw.nvme.flash import FlashTiming, FlashArray
from repro.hw.nvme.commands import NvmeCommand, NvmeCompletion, NvmeOpcode, NvmeStatus
from repro.hw.nvme.controller import NvmeController, NvmeQueuePair
from repro.hw.nvme.namespace import Namespace, LBA_SIZE
from repro.hw.nvme.zns import Zone, ZonedNamespace, ZoneState

__all__ = [
    "FlashTiming",
    "FlashArray",
    "NvmeCommand",
    "NvmeCompletion",
    "NvmeOpcode",
    "NvmeStatus",
    "NvmeController",
    "NvmeQueuePair",
    "Namespace",
    "LBA_SIZE",
    "Zone",
    "ZonedNamespace",
    "ZoneState",
]
