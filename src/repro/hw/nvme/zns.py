"""Zoned namespaces (ZNS): append-only zones with write pointers.

Paper §2 lists ZNS among the storage APIs the end-to-end hardware path can
be specialized with. Zones enforce sequential writes; ZONE_APPEND picks the
write location device-side and returns it — the primitive Corfu-style shared
logs build on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.common.errors import CapacityError, ProtocolError
from repro.hw.nvme.namespace import LBA_SIZE


class ZoneState(enum.Enum):
    """Zone lifecycle: empty, open (partially written), or full."""

    EMPTY = "empty"
    OPEN = "open"
    FULL = "full"


@dataclass
class Zone:
    """One zone: ``[start_lba, start_lba + capacity_blocks)``."""

    index: int
    start_lba: int
    capacity_blocks: int
    write_pointer: int = 0
    state: ZoneState = ZoneState.EMPTY

    @property
    def remaining_blocks(self) -> int:
        return self.capacity_blocks - self.write_pointer


class ZonedNamespace:
    """A namespace carved into fixed-size sequential-write zones."""

    def __init__(self, namespace_id: int, zone_count: int, zone_blocks: int):
        if zone_count < 1 or zone_blocks < 1:
            raise CapacityError("need at least one zone and one block per zone")
        self.namespace_id = namespace_id
        self.zone_blocks = zone_blocks
        self.zones: List[Zone] = [
            Zone(i, i * zone_blocks, zone_blocks) for i in range(zone_count)
        ]
        self._blocks: Dict[int, bytes] = {}

    @property
    def capacity_blocks(self) -> int:
        return len(self.zones) * self.zone_blocks

    def zone_for_lba(self, lba: int) -> Zone:
        if not 0 <= lba < self.capacity_blocks:
            raise CapacityError(f"LBA {lba} out of range")
        return self.zones[lba // self.zone_blocks]

    def append(self, zone_index: int, data: bytes) -> int:
        """Device-chosen write: returns the LBA the data landed on."""
        if not 0 <= zone_index < len(self.zones):
            raise CapacityError(f"no zone {zone_index}")
        zone = self.zones[zone_index]
        count = max(1, (len(data) + LBA_SIZE - 1) // LBA_SIZE)
        if zone.remaining_blocks < count:
            raise ProtocolError(f"zone {zone_index} full")
        lba = zone.start_lba + zone.write_pointer
        padded = data.ljust(count * LBA_SIZE, b"\x00")
        for i in range(count):
            self._blocks[lba + i] = padded[i * LBA_SIZE : (i + 1) * LBA_SIZE]
        zone.write_pointer += count
        zone.state = (
            ZoneState.FULL if zone.remaining_blocks == 0 else ZoneState.OPEN
        )
        return lba

    def write(self, lba: int, data: bytes) -> int:
        """Sequential-only write at the zone's write pointer."""
        zone = self.zone_for_lba(lba)
        expected = zone.start_lba + zone.write_pointer
        if lba != expected:
            raise ProtocolError(
                f"non-sequential write to zone {zone.index}: "
                f"lba {lba}, write pointer at {expected}"
            )
        return self.append(zone.index, data) and max(
            1, (len(data) + LBA_SIZE - 1) // LBA_SIZE
        )

    def read_blocks(self, lba: int, count: int) -> bytes:
        zone = self.zone_for_lba(lba)
        written_end = zone.start_lba + zone.write_pointer
        if lba + count > written_end:
            raise ProtocolError(
                f"read past write pointer in zone {zone.index}"
            )
        return b"".join(
            self._blocks.get(i, b"\x00" * LBA_SIZE) for i in range(lba, lba + count)
        )

    def reset_zone(self, zone_index: int) -> None:
        zone = self.zones[zone_index]
        for lba in range(zone.start_lba, zone.start_lba + zone.write_pointer):
            self._blocks.pop(lba, None)
        zone.write_pointer = 0
        zone.state = ZoneState.EMPTY

    def open_zones(self) -> List[Zone]:
        return [z for z in self.zones if z.state is ZoneState.OPEN]
