"""A conventional (block-interface) NVMe namespace storing real bytes."""

from __future__ import annotations

from typing import Dict

from repro.common.errors import CapacityError

LBA_SIZE = 4096


class Namespace:
    """An LBA-addressed block store.

    Blocks hold genuine byte payloads so the file systems and data formats
    built above the device can round-trip content; unwritten blocks read as
    zeroes, as they would from a freshly formatted namespace.
    """

    def __init__(self, namespace_id: int, capacity_blocks: int):
        if capacity_blocks < 1:
            raise CapacityError("namespace needs at least one block")
        self.namespace_id = namespace_id
        self.capacity_blocks = capacity_blocks
        self._blocks: Dict[int, bytes] = {}

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_blocks * LBA_SIZE

    def check_range(self, lba: int, count: int) -> bool:
        return 0 <= lba and lba + count <= self.capacity_blocks

    def read_blocks(self, lba: int, count: int) -> bytes:
        if not self.check_range(lba, count):
            raise CapacityError(f"read [{lba}, {lba + count}) out of range")
        parts = []
        for index in range(lba, lba + count):
            parts.append(self._blocks.get(index, b"\x00" * LBA_SIZE))
        return b"".join(parts)

    def write_blocks(self, lba: int, data: bytes) -> int:
        """Write ``data`` (padded to LBA granularity); returns blocks written."""
        count = (len(data) + LBA_SIZE - 1) // LBA_SIZE
        if count == 0:
            count = 1
        if not self.check_range(lba, count):
            raise CapacityError(f"write [{lba}, {lba + count}) out of range")
        padded = data.ljust(count * LBA_SIZE, b"\x00")
        for i in range(count):
            self._blocks[lba + i] = padded[i * LBA_SIZE : (i + 1) * LBA_SIZE]
        return count

    def written_block_count(self) -> int:
        return len(self._blocks)
