"""NAND flash timing: channels, dies, and per-die operation queueing."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.errors import ConfigurationError, FaultInjectedError
from repro.faults import FaultInjector, FaultKind
from repro.sim import Resource, Simulator

#: Extra busy time a stuck die serves per operation while a DIE_STUCK fault
#: window holds it (roughly an in-die retry/recalibration cycle).
STUCK_BUSY_PENALTY = 2e-3


@dataclass(frozen=True)
class FlashTiming:
    """Timing parameters of one NAND generation (TLC-class defaults)."""

    page_size: int = 4096
    read_latency: float = 80e-6
    program_latency: float = 500e-6
    erase_latency: float = 3e-3
    channel_bandwidth: float = 800e6  # ONFI transfer rate, bytes/s


class FlashArray:
    """``channels x dies_per_channel`` NAND dies with independent queues.

    Page addresses stripe across dies, so sequential and random multi-page
    workloads exploit die-level parallelism — the property NVMe queue depth
    is designed to expose.
    """

    def __init__(
        self,
        sim: Simulator,
        channels: int = 8,
        dies_per_channel: int = 4,
        timing: FlashTiming = FlashTiming(),
        injector: Optional[FaultInjector] = None,
        component: str = "flash",
    ):
        if channels < 1 or dies_per_channel < 1:
            raise ConfigurationError("need at least one channel and die")
        self.sim = sim
        self.timing = timing
        self.channels = channels
        self.dies_per_channel = dies_per_channel
        self._dies: List[Resource] = [
            Resource(sim, capacity=1) for _ in range(channels * dies_per_channel)
        ]
        self._channels: List[Resource] = [
            Resource(sim, capacity=1) for _ in range(channels)
        ]
        self.injector = injector
        self.component = component
        self._metrics = sim.telemetry.unique_scope(component)
        self._reads = self._metrics.counter("reads")
        self._programs = self._metrics.counter("programs")
        self._read_errors = self._metrics.counter("read_errors")
        self._stuck_busy_ops = self._metrics.counter("stuck_busy_ops")

    def attach_faults(self, injector: FaultInjector, component: str) -> "FlashArray":
        self.injector = injector
        self.component = component
        self._metrics.rename(component)
        return self

    # -- counter views (legacy attribute API) ------------------------------
    @property
    def reads(self) -> int:
        return self._reads.value

    @property
    def programs(self) -> int:
        return self._programs.value

    @property
    def read_errors(self) -> int:
        return self._read_errors.value

    @property
    def stuck_busy_ops(self) -> int:
        return self._stuck_busy_ops.value

    def _stuck_penalty(self) -> float:
        """Extra busy time if a DIE_STUCK window currently holds this array."""
        if self.injector is not None and self.injector.active(
            self.component, FaultKind.DIE_STUCK
        ):
            self._stuck_busy_ops.inc()
            return STUCK_BUSY_PENALTY
        return 0.0

    @property
    def die_count(self) -> int:
        return len(self._dies)

    def _die_for_page(self, page_index: int) -> int:
        return page_index % self.die_count

    def _channel_for_die(self, die_index: int) -> int:
        return die_index % self.channels

    def _transfer_time(self) -> float:
        return self.timing.page_size / self.timing.channel_bandwidth

    def read_page(self, page_index: int):
        """Process: one page read (array cell read + channel transfer).

        Raises :class:`FaultInjectedError` when a READ_ERROR fault fires:
        the cell read completed but ECC could not correct the data.
        """
        die_index = self._die_for_page(page_index)
        yield self._dies[die_index].request()
        try:
            yield self.sim.timeout(self.timing.read_latency + self._stuck_penalty())
        finally:
            self._dies[die_index].release()
        if self.injector is not None and self.injector.fires(
            self.component, FaultKind.READ_ERROR
        ):
            self._read_errors.inc()
            raise FaultInjectedError(
                f"{self.component}: uncorrectable read at page {page_index}"
            )
        channel = self._channels[self._channel_for_die(die_index)]
        yield channel.request()
        try:
            yield self.sim.timeout(self._transfer_time())
            self._reads.inc()
        finally:
            channel.release()

    def program_page(self, page_index: int):
        """Process: one page program (channel transfer + cell program)."""
        die_index = self._die_for_page(page_index)
        channel = self._channels[self._channel_for_die(die_index)]
        yield channel.request()
        try:
            yield self.sim.timeout(self._transfer_time())
        finally:
            channel.release()
        yield self._dies[die_index].request()
        try:
            yield self.sim.timeout(
                self.timing.program_latency + self._stuck_penalty()
            )
            self._programs.inc()
        finally:
            self._dies[die_index].release()

    def erase_block(self, page_index: int):
        """Process: erase the block containing ``page_index``."""
        die_index = self._die_for_page(page_index)
        yield self._dies[die_index].request()
        try:
            yield self.sim.timeout(self.timing.erase_latency)
        finally:
            self._dies[die_index].release()
