"""NAND flash timing: channels, dies, and per-die operation queueing."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.errors import ConfigurationError
from repro.sim import Resource, Simulator


@dataclass(frozen=True)
class FlashTiming:
    """Timing parameters of one NAND generation (TLC-class defaults)."""

    page_size: int = 4096
    read_latency: float = 80e-6
    program_latency: float = 500e-6
    erase_latency: float = 3e-3
    channel_bandwidth: float = 800e6  # ONFI transfer rate, bytes/s


class FlashArray:
    """``channels x dies_per_channel`` NAND dies with independent queues.

    Page addresses stripe across dies, so sequential and random multi-page
    workloads exploit die-level parallelism — the property NVMe queue depth
    is designed to expose.
    """

    def __init__(
        self,
        sim: Simulator,
        channels: int = 8,
        dies_per_channel: int = 4,
        timing: FlashTiming = FlashTiming(),
    ):
        if channels < 1 or dies_per_channel < 1:
            raise ConfigurationError("need at least one channel and die")
        self.sim = sim
        self.timing = timing
        self.channels = channels
        self.dies_per_channel = dies_per_channel
        self._dies: List[Resource] = [
            Resource(sim, capacity=1) for _ in range(channels * dies_per_channel)
        ]
        self._channels: List[Resource] = [
            Resource(sim, capacity=1) for _ in range(channels)
        ]
        self.reads = 0
        self.programs = 0

    @property
    def die_count(self) -> int:
        return len(self._dies)

    def _die_for_page(self, page_index: int) -> int:
        return page_index % self.die_count

    def _channel_for_die(self, die_index: int) -> int:
        return die_index % self.channels

    def _transfer_time(self) -> float:
        return self.timing.page_size / self.timing.channel_bandwidth

    def read_page(self, page_index: int):
        """Process: one page read (array cell read + channel transfer)."""
        die_index = self._die_for_page(page_index)
        yield self._dies[die_index].request()
        try:
            yield self.sim.timeout(self.timing.read_latency)
        finally:
            self._dies[die_index].release()
        channel = self._channels[self._channel_for_die(die_index)]
        yield channel.request()
        try:
            yield self.sim.timeout(self._transfer_time())
            self.reads += 1
        finally:
            channel.release()

    def program_page(self, page_index: int):
        """Process: one page program (channel transfer + cell program)."""
        die_index = self._die_for_page(page_index)
        channel = self._channels[self._channel_for_die(die_index)]
        yield channel.request()
        try:
            yield self.sim.timeout(self._transfer_time())
        finally:
            channel.release()
        yield self._dies[die_index].request()
        try:
            yield self.sim.timeout(self.timing.program_latency)
            self.programs += 1
        finally:
            self._dies[die_index].release()

    def erase_block(self, page_index: int):
        """Process: erase the block containing ``page_index``."""
        die_index = self._die_for_page(page_index)
        yield self._dies[die_index].request()
        try:
            yield self.sim.timeout(self.timing.erase_latency)
        finally:
            self._dies[die_index].release()
