"""The NVMe controller: queue pairs, command execution, flash timing.

Hyperion instantiates an "NVMe Host IP Core" on the FPGA (Figure 2): the
FPGA is the NVMe *host* and the SSDs are ordinary endpoints. This class
models one SSD's controller; the DPU submits commands into its queues over
the bifurcated PCIe links.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.common.errors import CapacityError, FaultInjectedError, ProtocolError
from repro.faults import FaultInjector, FaultKind
from repro.hw.nvme.commands import NvmeCommand, NvmeCompletion, NvmeOpcode, NvmeStatus
from repro.hw.nvme.flash import FlashArray
from repro.hw.nvme.namespace import LBA_SIZE, Namespace
from repro.hw.nvme.zns import ZonedNamespace
from repro.hw.pcie.device import Bar, PcieDevice
from repro.hw.pcie.link import PcieLink
from repro.overload.queues import BoundedQueue, QueuePolicy
from repro.sim import Event, Simulator, Store
from repro.telemetry import MetricScope

#: Firmware command decode + completion posting overhead.
CONTROLLER_LATENCY = 2e-6

#: Firmware watchdog: how long a command injected with COMMAND_TIMEOUT
#: stalls before being aborted with COMMAND_ABORTED status.
COMMAND_WATCHDOG_LATENCY = 10e-3

AnyNamespace = Union[Namespace, ZonedNamespace]


class NvmeQueuePair:
    """One submission/completion queue pair with bounded depth.

    The legacy mode (``policy=None``) keeps the blocking
    :class:`~repro.sim.Store` submission path: a full queue stalls the
    submitter — an *implicit unbounded queue* of blocked putter state.
    With a :class:`~repro.overload.QueuePolicy`, submission goes through
    a :class:`~repro.overload.BoundedQueue` instead: a full queue
    completes the command immediately with ``QUEUE_FULL`` (the host sees
    backpressure, not a stall), and the CoDel policy aborts commands
    whose queueing delay went stale before execution.
    """

    def __init__(
        self,
        sim: Simulator,
        qid: int,
        depth: int = 256,
        policy: Optional[QueuePolicy] = None,
        metrics: Optional[MetricScope] = None,
        codel_target: float = 200e-6,
        codel_interval: float = 1e-3,
    ):
        self.sim = sim
        self.qid = qid
        self.depth = depth
        self.policy = policy
        self.sq: Optional[Store] = None
        self.queue: Optional[BoundedQueue] = None
        if policy is None:
            self.sq = Store(sim, capacity=depth)
        else:
            if metrics is None:
                metrics = MetricScope.standalone(f"nvme.qp{qid}")
            self.queue = BoundedQueue(
                sim, metrics, depth, policy=policy,
                codel_target=codel_target, codel_interval=codel_interval,
                on_drop=self._on_drop,
            )
        self._waiters: Dict[int, Event] = {}

    def submit(self, command: NvmeCommand) -> Event:
        """Queue a command; the returned event fires with its completion."""
        done = Event(self.sim)
        self._waiters[command.cid] = done
        if self.queue is not None:
            # try_put completes the command with QUEUE_FULL via _on_drop
            # when at capacity — the submitter never blocks.
            self.queue.try_put(command)
        else:
            self.sim.process(self._enqueue(command))
        return done

    def _enqueue(self, command: NvmeCommand):
        yield self.sq.put(command)

    def _on_drop(self, command: NvmeCommand, reason: str) -> None:
        status = (
            NvmeStatus.QUEUE_FULL if reason == "full"
            else NvmeStatus.COMMAND_ABORTED
        )
        self.complete(NvmeCompletion(command.cid, status))

    def next_command(self) -> Event:
        """Event firing with the next submitted command (either mode)."""
        if self.queue is not None:
            return self.queue.get()
        return self.sq.get()

    def complete(self, completion: NvmeCompletion) -> None:
        waiter = self._waiters.pop(completion.cid, None)
        if waiter is None:
            raise ProtocolError(f"completion for unknown cid {completion.cid}")
        waiter.succeed(completion)


class NvmeController(PcieDevice):
    """One SSD: controller firmware + flash array + namespaces."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        namespaces: Optional[Dict[int, AnyNamespace]] = None,
        flash: Optional[FlashArray] = None,
        link: Optional[PcieLink] = None,
        queue_depth: int = 256,
        injector: Optional[FaultInjector] = None,
        queue_policy: Optional[QueuePolicy] = None,
    ):
        super().__init__(name, bars=[Bar(16 * 1024)])
        self.sim = sim
        self.namespaces: Dict[int, AnyNamespace] = namespaces or {}
        self.flash = flash if flash is not None else FlashArray(
            sim, injector=injector, component=f"{name}.flash"
        )
        self.link = link
        self.queue_pairs: List[NvmeQueuePair] = []
        self._queue_depth = queue_depth
        self._queue_policy = queue_policy
        self.injector = injector
        self._metrics = sim.telemetry.unique_scope(name)
        self._commands_executed = self._metrics.counter("commands_executed")
        self._commands_aborted = self._metrics.counter("commands_aborted")
        self._media_errors = self._metrics.counter("media_errors")
        self._cmd_latency = self._metrics.histogram("cmd_latency")
        self._started = False

    def attach_faults(self, injector: FaultInjector) -> "NvmeController":
        """Bind the controller (and its flash) to a fault injector.

        The controller consults component id ``<name>`` for COMMAND_TIMEOUT
        faults; the flash array consults ``<name>.flash`` for READ_ERROR
        and DIE_STUCK faults.
        """
        self.injector = injector
        self.flash.attach_faults(injector, f"{self.name}.flash")
        return self

    # -- counter views (legacy attribute API) ------------------------------
    @property
    def commands_executed(self) -> int:
        return self._commands_executed.value

    @property
    def commands_aborted(self) -> int:
        return self._commands_aborted.value

    @property
    def media_errors(self) -> int:
        return self._media_errors.value

    def add_namespace(self, namespace: AnyNamespace) -> None:
        self.namespaces[namespace.namespace_id] = namespace

    def create_queue_pair(self) -> NvmeQueuePair:
        qid = len(self.queue_pairs)
        metrics = (
            self._metrics.scope(f"qp{qid}")
            if self._queue_policy is not None else None
        )
        qp = NvmeQueuePair(
            self.sim, qid=qid, depth=self._queue_depth,
            policy=self._queue_policy, metrics=metrics,
        )
        self.queue_pairs.append(qp)
        if self._started:
            self.sim.process(self._queue_loop(qp))
        return qp

    def start(self) -> None:
        """Begin draining all queue pairs (call once after setup)."""
        if self._started:
            return
        self._started = True
        for qp in self.queue_pairs:
            self.sim.process(self._queue_loop(qp))

    def _queue_loop(self, qp: NvmeQueuePair):
        while True:
            command = yield qp.next_command()
            # Dispatch without waiting: NVMe executes queued commands in
            # parallel across flash dies.
            self.sim.process(self._execute(qp, command))

    # -- command execution ---------------------------------------------------
    def _execute(self, qp: NvmeQueuePair, command: NvmeCommand):
        started = self.sim.now
        with self.sim.tracer.span(
            "nvme.cmd", "nvme",
            device=self.name, opcode=command.opcode.name, lba=command.lba,
        ) as span:
            yield self.sim.timeout(CONTROLLER_LATENCY)
            if self.injector is not None and self.injector.fires(
                self.name, FaultKind.COMMAND_TIMEOUT
            ):
                # Firmware hang: the watchdog eventually aborts the command
                # and posts an error completion instead of silently losing it.
                yield self.sim.timeout(COMMAND_WATCHDOG_LATENCY)
                self._commands_aborted.inc()
                self._cmd_latency.observe(self.sim.now - started)
                span.annotate(status="COMMAND_ABORTED")
                qp.complete(
                    NvmeCompletion(command.cid, NvmeStatus.COMMAND_ABORTED)
                )
                return
            namespace = self.namespaces.get(command.namespace_id)
            if namespace is None:
                qp.complete(
                    NvmeCompletion(command.cid, NvmeStatus.LBA_OUT_OF_RANGE)
                )
                return
            try:
                if command.opcode is NvmeOpcode.READ:
                    completion = yield from self._do_read(namespace, command)
                elif command.opcode is NvmeOpcode.WRITE:
                    completion = yield from self._do_write(namespace, command)
                elif command.opcode is NvmeOpcode.FLUSH:
                    completion = NvmeCompletion(command.cid, NvmeStatus.SUCCESS)
                elif command.opcode is NvmeOpcode.ZONE_APPEND:
                    completion = yield from self._do_append(namespace, command)
                elif command.opcode is NvmeOpcode.ZONE_RESET:
                    completion = yield from self._do_reset(namespace, command)
                else:
                    completion = NvmeCompletion(
                        command.cid, NvmeStatus.INVALID_OPCODE
                    )
            except FaultInjectedError:
                self._media_errors.inc()
                completion = NvmeCompletion(
                    command.cid, NvmeStatus.UNRECOVERED_READ_ERROR
                )
            except (CapacityError, ProtocolError):
                completion = NvmeCompletion(
                    command.cid, NvmeStatus.LBA_OUT_OF_RANGE
                )
            self._commands_executed.inc()
            self._cmd_latency.observe(self.sim.now - started)
            span.annotate(status=completion.status.name)
        qp.complete(completion)

    def _dma(self, size_bytes: int):
        if self.link is not None:
            yield from self.link.transfer(size_bytes)

    def _do_read(self, namespace: AnyNamespace, command: NvmeCommand):
        # The FTL stripes a multi-block command across dies in parallel.
        reads = [
            self.sim.process(self.flash.read_page(command.lba + i))
            for i in range(command.block_count)
        ]
        yield self.sim.all_of(reads)
        try:
            data = namespace.read_blocks(command.lba, command.block_count)
        except ProtocolError:
            return NvmeCompletion(command.cid, NvmeStatus.ZONE_INVALID_WRITE)
        yield from self._dma(len(data))
        return NvmeCompletion(command.cid, NvmeStatus.SUCCESS, data=data)

    def _do_write(self, namespace: AnyNamespace, command: NvmeCommand):
        payload = command.data if command.data is not None else b""
        yield from self._dma(max(len(payload), command.block_count * LBA_SIZE))
        if isinstance(namespace, ZonedNamespace):
            try:
                namespace.write(command.lba, payload)
            except ProtocolError:
                return NvmeCompletion(command.cid, NvmeStatus.ZONE_INVALID_WRITE)
        else:
            namespace.write_blocks(command.lba, payload)
        count = max(1, (len(payload) + LBA_SIZE - 1) // LBA_SIZE)
        programs = [
            self.sim.process(self.flash.program_page(command.lba + i))
            for i in range(count)
        ]
        yield self.sim.all_of(programs)
        return NvmeCompletion(command.cid, NvmeStatus.SUCCESS)

    def _do_append(self, namespace: AnyNamespace, command: NvmeCommand):
        if not isinstance(namespace, ZonedNamespace):
            return NvmeCompletion(command.cid, NvmeStatus.INVALID_OPCODE)
        payload = command.data if command.data is not None else b""
        yield from self._dma(len(payload))
        try:
            # command.lba names the zone by its start LBA for appends.
            zone = namespace.zone_for_lba(command.lba)
            lba = namespace.append(zone.index, payload)
        except ProtocolError:
            return NvmeCompletion(command.cid, NvmeStatus.ZONE_FULL)
        count = max(1, (len(payload) + LBA_SIZE - 1) // LBA_SIZE)
        for i in range(count):
            yield from self.flash.program_page(lba + i)
        return NvmeCompletion(command.cid, NvmeStatus.SUCCESS, result_lba=lba)

    def _do_reset(self, namespace: AnyNamespace, command: NvmeCommand):
        if not isinstance(namespace, ZonedNamespace):
            return NvmeCompletion(command.cid, NvmeStatus.INVALID_OPCODE)
        zone = namespace.zone_for_lba(command.lba)
        yield from self.flash.erase_block(zone.start_lba)
        namespace.reset_zone(zone.index)
        return NvmeCompletion(command.cid, NvmeStatus.SUCCESS)
