"""NVMe command and completion formats (the subset Hyperion uses)."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional


class NvmeOpcode(enum.Enum):
    """Command opcodes (the subset of the NVMe spec Hyperion uses)."""

    READ = 0x02
    WRITE = 0x01
    FLUSH = 0x00
    ZONE_APPEND = 0x7D
    ZONE_RESET = 0x7C


class NvmeStatus(enum.Enum):
    """Completion status codes."""

    SUCCESS = 0x0
    INVALID_OPCODE = 0x1
    COMMAND_ABORTED = 0x07
    LBA_OUT_OF_RANGE = 0x80
    QUEUE_FULL = 0x86  # submission refused: bounded queue at capacity
    ZONE_FULL = 0xB9
    ZONE_INVALID_WRITE = 0xBC
    UNRECOVERED_READ_ERROR = 0x281  # media error SCT, injected or real


_cid_counter = itertools.count()


@dataclass
class NvmeCommand:
    """One submission-queue entry."""

    opcode: NvmeOpcode
    namespace_id: int = 1
    lba: int = 0
    block_count: int = 1
    data: Optional[bytes] = None
    cid: int = field(default_factory=lambda: next(_cid_counter))

    def __post_init__(self) -> None:
        if self.block_count < 1:
            raise ValueError("block_count must be >= 1")


@dataclass
class NvmeCompletion:
    """One completion-queue entry."""

    cid: int
    status: NvmeStatus
    data: Optional[bytes] = None
    result_lba: Optional[int] = None  # assigned LBA for ZONE_APPEND

    @property
    def ok(self) -> bool:
        return self.status is NvmeStatus.SUCCESS
