"""PCIe endpoints and bridges."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.errors import ConfigurationError
from repro.hw.pcie.link import PcieLink


@dataclass
class Bar:
    """A Base Address Register window; the root complex assigns ``base``."""

    size: int
    base: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size <= 0 or (self.size & (self.size - 1)) != 0:
            raise ConfigurationError("BAR size must be a positive power of two")


class PcieDevice:
    """An endpoint function (e.g. one NVMe controller)."""

    def __init__(self, name: str, bars: Optional[List[Bar]] = None):
        self.name = name
        self.bars = bars if bars is not None else [Bar(16 * 1024)]
        self.bus: Optional[int] = None
        self.device: Optional[int] = None
        self.upstream_link: Optional[PcieLink] = None

    @property
    def enumerated(self) -> bool:
        return self.bus is not None

    def bdf(self) -> str:
        """Bus:device.function string, post-enumeration."""
        if not self.enumerated:
            raise ConfigurationError(f"{self.name} not enumerated")
        return f"{self.bus:02x}:{self.device:02x}.0"


class PcieBridge:
    """A downstream bridge (one x4 bridge IP core in Figure 2)."""

    def __init__(self, name: str):
        self.name = name
        self.children: List[object] = []  # devices or bridges
        self.bus: Optional[int] = None
        self.upstream_link: Optional[PcieLink] = None

    def attach(self, child: object, link: PcieLink) -> None:
        if isinstance(child, PcieDevice) or isinstance(child, PcieBridge):
            child.upstream_link = link
            self.children.append(child)
        else:
            raise ConfigurationError("can only attach devices or bridges")
