"""PCIe substrate: links, devices, bifurcation, and a root complex.

The defining trick of Hyperion (paper §2) is that the PCIe *root complex*
runs on the FPGA itself — "all access to the storage is funneled through the
FPGA" — so NVMe SSDs attach to the DPU with no host CPU anywhere. The model
implements enumeration, BAR assignment, x16 bifurcation into four x4 bridge
cores (Figure 2), and DMA timing.
"""

from repro.hw.pcie.link import PcieLink, PCIE_GEN3_PER_LANE
from repro.hw.pcie.device import PcieDevice, PcieBridge, Bar
from repro.hw.pcie.root import RootComplex, EnumeratedDevice
from repro.hw.pcie.dma import DmaEngine

__all__ = [
    "PcieLink",
    "PCIE_GEN3_PER_LANE",
    "PcieDevice",
    "PcieBridge",
    "Bar",
    "RootComplex",
    "EnumeratedDevice",
    "DmaEngine",
]
