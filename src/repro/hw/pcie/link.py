"""PCIe link timing: lane width, generation, and TLP overhead."""

from __future__ import annotations

from typing import Optional

from repro.common.errors import ConfigurationError
from repro.faults import FaultInjector, FaultKind
from repro.sim import Resource, Simulator

#: Effective per-lane payload bandwidth (bytes/s) after 128b/130b encoding
#: and protocol overhead, per generation.
PCIE_GEN3_PER_LANE = 0.985e9
PCIE_GEN4_PER_LANE = 1.97e9

#: Transaction-layer packet header + DLLP overhead amortized per TLP, and
#: the max payload per TLP.
TLP_OVERHEAD_BYTES = 26
TLP_MAX_PAYLOAD = 256

#: One-way latency through a PCIe link + switch logic.
PCIE_HOP_LATENCY = 250e-9

#: A transient completion timeout: the requester waits out the completion
#: timer, then replays the TLP (spec timers are 50 us - 50 ms; we charge
#: the low end, modeling a single retrained retry).
COMPLETION_TIMEOUT_PENALTY = 50e-6


class PcieLink:
    """A bidirectional PCIe link of ``lanes`` width.

    ``transfer`` charges serialization (with per-TLP overhead) plus a fixed
    hop latency; concurrent transfers serialize on the link.
    """

    def __init__(
        self,
        sim: Simulator,
        lanes: int = 4,
        per_lane_bandwidth: float = PCIE_GEN3_PER_LANE,
        hop_latency: float = PCIE_HOP_LATENCY,
        injector: Optional[FaultInjector] = None,
        component: str = "pcie-link",
    ):
        if lanes not in (1, 2, 4, 8, 16):
            raise ConfigurationError(f"invalid PCIe lane width: {lanes}")
        self.sim = sim
        self.lanes = lanes
        self.bandwidth = lanes * per_lane_bandwidth
        self.hop_latency = hop_latency
        self._channel = Resource(sim, capacity=1)
        self.injector = injector
        self.component = component
        self._metrics = sim.telemetry.unique_scope(component)
        self._bytes_transferred = self._metrics.counter("bytes_transferred")
        self._completion_timeouts = self._metrics.counter("completion_timeouts")

    def attach_faults(self, injector: FaultInjector, component: str) -> "PcieLink":
        self.injector = injector
        self.component = component
        self._metrics.rename(component)
        return self

    # -- counter views (legacy attribute API) ------------------------------
    @property
    def bytes_transferred(self) -> int:
        return self._bytes_transferred.value

    @property
    def completion_timeouts(self) -> int:
        return self._completion_timeouts.value

    def wire_bytes(self, payload_bytes: int) -> int:
        """Payload plus amortized TLP overhead."""
        if payload_bytes <= 0:
            return TLP_OVERHEAD_BYTES
        tlps = (payload_bytes + TLP_MAX_PAYLOAD - 1) // TLP_MAX_PAYLOAD
        return payload_bytes + tlps * TLP_OVERHEAD_BYTES

    def transfer_latency(self, payload_bytes: int) -> float:
        return self.hop_latency + self.wire_bytes(payload_bytes) / self.bandwidth

    def transfer(self, payload_bytes: int):
        """Process: move ``payload_bytes`` across the link.

        A COMPLETION_TIMEOUT fault is transient: the requester waits out
        the completion timer and replays, so the transfer still succeeds
        but pays the penalty — visible as tail latency, not data loss.
        """
        with self.sim.tracer.span(
            "pcie.transfer", "pcie",
            component=self.component, bytes=payload_bytes,
        ):
            yield self._channel.request()
            try:
                if self.injector is not None and self.injector.fires(
                    self.component, FaultKind.COMPLETION_TIMEOUT
                ):
                    self._completion_timeouts.inc()
                    yield self.sim.timeout(COMPLETION_TIMEOUT_PENALTY)
                yield self.sim.timeout(self.transfer_latency(payload_bytes))
                self._bytes_transferred.inc(payload_bytes)
            finally:
                self._channel.release()
