"""DMA engines moving data across PCIe links without CPU copies."""

from __future__ import annotations

from repro.hw.pcie.link import PcieLink
from repro.sim import Resource, Simulator

#: Descriptor fetch + doorbell cost per DMA transfer.
DMA_SETUP_LATENCY = 300e-9


class DmaEngine:
    """A multi-channel DMA engine timed against a PCIe link.

    Each ``copy`` charges a setup cost plus the link's transfer time. The
    engine itself can have several channels (concurrent outstanding copies),
    but each copy still serializes on the underlying link.
    """

    def __init__(
        self,
        sim: Simulator,
        link: PcieLink,
        channels: int = 4,
        setup_latency: float = DMA_SETUP_LATENCY,
    ):
        self.sim = sim
        self.link = link
        self.setup_latency = setup_latency
        self._channels = Resource(sim, capacity=channels)
        self._metrics = sim.telemetry.unique_scope(f"{link.component}.dma")
        self._copies_completed = self._metrics.counter("copies_completed")

    @property
    def copies_completed(self) -> int:
        return self._copies_completed.value

    def copy(self, size_bytes: int):
        """Process: one DMA transfer of ``size_bytes`` over the link."""
        with self.sim.tracer.span("pcie.dma", "pcie", bytes=size_bytes):
            yield self._channels.request()
            try:
                yield self.sim.timeout(self.setup_latency)
                yield from self.link.transfer(size_bytes)
                self._copies_completed.inc()
            finally:
                self._channels.release()
