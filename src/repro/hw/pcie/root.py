"""The root complex: enumeration and BAR address assignment.

On a conventional server the host CPU's firmware performs the "complex PCIe
enumerations" the paper calls out; in Hyperion the FPGA hosts the root
complex, so enumeration runs on the DPU at boot with no CPU involved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.common.errors import ConfigurationError
from repro.hw.pcie.device import Bar, PcieBridge, PcieDevice
from repro.hw.pcie.link import PcieLink


@dataclass
class EnumeratedDevice:
    """The outcome of enumeration for one endpoint."""

    device: PcieDevice
    bdf: str
    bar_bases: List[int]


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


class RootComplex:
    """Walks the PCIe tree, numbers buses, and assigns BAR windows.

    The memory window handed to devices starts at ``mmio_base``; the AXI
    interconnect later routes this window to the NVMe controllers (paper
    §2.1's "NVMe PCIe BAR addresses").
    """

    def __init__(self, name: str = "fpga-root-complex", mmio_base: int = 0x4000_0000):
        self.name = name
        self.mmio_base = mmio_base
        self.root_ports: List[Tuple[PcieBridge, PcieLink]] = []
        self.devices: Dict[str, EnumeratedDevice] = {}
        self._next_bus = 0
        self._next_mmio = mmio_base
        self._enumerated = False

    def add_root_port(self, bridge: PcieBridge, link: PcieLink) -> None:
        if self._enumerated:
            raise ConfigurationError("cannot add ports after enumeration")
        bridge.upstream_link = link
        self.root_ports.append((bridge, link))

    # -- enumeration ---------------------------------------------------------
    def enumerate(self) -> List[EnumeratedDevice]:
        """Depth-first bus walk: number buses, then place BARs."""
        if self._enumerated:
            raise ConfigurationError("already enumerated")
        self._enumerated = True
        found: List[EnumeratedDevice] = []
        for bridge, __ in self.root_ports:
            found.extend(self._walk_bridge(bridge))
        return found

    def _walk_bridge(self, bridge: PcieBridge) -> List[EnumeratedDevice]:
        bridge.bus = self._next_bus
        self._next_bus += 1
        found: List[EnumeratedDevice] = []
        device_number = 0
        for child in bridge.children:
            if isinstance(child, PcieBridge):
                found.extend(self._walk_bridge(child))
            elif isinstance(child, PcieDevice):
                child.bus = bridge.bus
                child.device = device_number
                device_number += 1
                bases = [self._place_bar(bar) for bar in child.bars]
                record = EnumeratedDevice(child, child.bdf(), bases)
                self.devices[child.name] = record
                found.append(record)
        return found

    def _place_bar(self, bar: Bar) -> int:
        base = _align_up(self._next_mmio, bar.size)
        bar.base = base
        self._next_mmio = base + bar.size
        return base

    # -- address routing -----------------------------------------------------
    def device_for_address(self, address: int) -> PcieDevice:
        """Which endpoint claims a given MMIO address (BAR decoding)."""
        for record in self.devices.values():
            for bar in record.device.bars:
                if bar.base is not None and bar.base <= address < bar.base + bar.size:
                    return record.device
        raise ConfigurationError(f"MMIO address {address:#x} claimed by no BAR")

    @property
    def mmio_window(self) -> Tuple[int, int]:
        """``(base, end)`` of all assigned MMIO space."""
        return self.mmio_base, self._next_mmio
