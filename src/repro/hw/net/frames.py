"""Ethernet frames carried on simulated links."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

#: Ethernet header + FCS + preamble + IPG, amortized per frame.
ETHERNET_HEADER = 38
#: Standard (non-jumbo) MTU payload.
MAX_FRAME_PAYLOAD = 1500

_frame_counter = itertools.count()


@dataclass
class Frame:
    """A layer-2 frame. ``payload`` is an arbitrary protocol message.

    ``payload_size`` is the *modeled* size used for serialization-delay
    accounting (protocol messages are Python objects, not byte strings, so
    the sender must declare how large they would be on the wire).
    """

    src: str
    dst: str
    payload: Any
    payload_size: int
    frame_id: int = field(default_factory=lambda: next(_frame_counter))
    #: The sampled :class:`~repro.telemetry.TraceContext` of the flow
    #: that sent this frame, if any. Stamped by the first (in-flow) hop
    #: and read by switches so store-and-forward hops — which run as
    #: their own processes — still attach their spans to the right flow.
    trace: Any = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.payload_size < 0:
            raise ValueError("payload_size must be non-negative")

    @property
    def wire_size(self) -> int:
        return self.payload_size + ETHERNET_HEADER
