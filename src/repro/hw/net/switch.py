"""A store-and-forward switch and a convenience star-topology network."""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.common.errors import ConfigurationError
from repro.hw.net.link import DEFAULT_PROPAGATION, QSFP28_100G, Link
from repro.hw.net.port import NetworkPort
from repro.sim import Simulator

#: Cut-through datacenter switches forward in ~300-600 ns.
SWITCH_FORWARD_LATENCY = 500e-9


class Switch:
    """Forwards frames between attached links by destination address."""

    def __init__(self, sim: Simulator, forward_latency: float = SWITCH_FORWARD_LATENCY):
        self.sim = sim
        self._tracer = sim.tracer
        self.forward_latency = forward_latency
        self._egress: Dict[str, Link] = {}
        self._blackholed: Set[str] = set()
        self._blackholed_pairs: Set[Tuple[str, str]] = set()
        self._metrics = sim.telemetry.unique_scope("net.switch")
        self._frames_forwarded = self._metrics.counter("frames_forwarded")
        self._frames_blackholed = self._metrics.counter("frames_blackholed")

    @property
    def frames_forwarded(self) -> int:
        return self._frames_forwarded.value

    @property
    def frames_blackholed(self) -> int:
        return self._frames_blackholed.value

    def connect_egress(self, address: str, link: Link) -> None:
        self._egress[address] = link

    def blackhole(self, address: str) -> None:
        """Silently drop all frames to ``address`` (a dead endpoint)."""
        self._blackholed.add(address)

    def restore(self, address: str) -> None:
        self._blackholed.discard(address)

    def is_blackholed(self, address: str) -> bool:
        return address in self._blackholed

    def blackhole_pair(self, src: str, dst: str) -> None:
        """Silently drop frames from ``src`` to ``dst`` (one direction only).

        Unlike :meth:`blackhole` (a dead endpoint: nothing *reaches* it),
        this models an asymmetric partition — ``src``'s requests to
        ``dst`` vanish while ``dst``'s traffic to ``src`` still flows.
        """
        self._blackholed_pairs.add((src, dst))

    def restore_pair(self, src: str, dst: str) -> None:
        self._blackholed_pairs.discard((src, dst))

    def attach_ingress(self, link: Link) -> None:
        """Start a forwarding process draining the given ingress link."""
        self.sim.process(self._forward_loop(link))

    def _forward_loop(self, ingress: Link):
        while True:
            frame = yield ingress.receive()
            yield self.sim.timeout(self.forward_latency)
            if (frame.dst in self._blackholed
                    or (frame.src, frame.dst) in self._blackholed_pairs):
                self._frames_blackholed.inc()
                continue
            egress = self._egress.get(frame.dst)
            if egress is None:
                # Unknown destination: drop, as a real switch floods/drops.
                continue
            self._frames_forwarded.inc()
            if frame.trace is not None:
                # The egress transmit is its own process; re-enter the
                # sending flow so the hop's span lands in its trace.
                self.sim.process(
                    self._tracer.drive(egress.transmit(frame), frame.trace)
                )
            else:
                self.sim.process(egress.transmit(frame))


class Network:
    """A star topology: every endpoint hangs off one switch.

    ``network.endpoint("name")`` creates (or returns) a port whose frames
    traverse endpoint->switch and switch->destination links, giving a
    realistic two-hop RTT with serialization at each hop.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float = QSFP28_100G,
        propagation: float = DEFAULT_PROPAGATION,
    ):
        self.sim = sim
        self.bandwidth = bandwidth
        self.propagation = propagation
        self.switch = Switch(sim)
        self._ports: Dict[str, NetworkPort] = {}

    def endpoint(self, address: str) -> NetworkPort:
        if address in self._ports:
            return self._ports[address]
        port = NetworkPort(self.sim, address)
        uplink = Link(
            self.sim, self.bandwidth, self.propagation,
            component=f"net.link.{address}.up",
        )
        downlink = Link(
            self.sim, self.bandwidth, self.propagation,
            component=f"net.link.{address}.down",
        )
        port.add_route("*", uplink)
        port.attach_rx(downlink)
        self.switch.attach_ingress(uplink)
        self.switch.connect_egress(address, downlink)
        self._ports[address] = port
        return port

    def port(self, address: str) -> NetworkPort:
        if address not in self._ports:
            raise ConfigurationError(f"no endpoint named {address}")
        return self._ports[address]

    def one_way_delay(self, payload_size: int) -> float:
        """Analytic minimum latency endpoint-to-endpoint for one frame."""
        wire = payload_size + 38
        serialization = 2 * (wire / self.bandwidth)
        return serialization + 2 * self.propagation + self.switch.forward_latency

    def min_rtt(self, request_size: int, response_size: int) -> float:
        """Analytic minimum request/response round trip."""
        return self.one_way_delay(request_size) + self.one_way_delay(response_size)
