"""Ethernet substrate: frames, links, ports, and a simple switch.

Models the 2x100 Gbps QSFP28 ports of the Hyperion prototype and the
datacenter fabric between clients and DPUs. Latency is serialization delay
(size / bandwidth) plus propagation; switches add a store-and-forward hop.
"""

from repro.hw.net.frames import Frame, ETHERNET_HEADER, MAX_FRAME_PAYLOAD
from repro.hw.net.link import Link, LinkStats, QSFP28_100G
from repro.hw.net.port import NetworkPort, PortStats
from repro.hw.net.switch import Switch, Network

__all__ = [
    "Frame",
    "ETHERNET_HEADER",
    "MAX_FRAME_PAYLOAD",
    "Link",
    "LinkStats",
    "QSFP28_100G",
    "NetworkPort",
    "PortStats",
    "Switch",
    "Network",
]
