"""A named, bidirectional network endpoint (one QSFP cage or host NIC)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.errors import ConfigurationError
from repro.hw.net.frames import Frame
from repro.hw.net.link import Link, LinkStats
from repro.sim import Simulator


@dataclass
class PortStats:
    """Aggregated TX counters across a port's outgoing links, plus RX.

    A read-through snapshot: the underlying counts live in the telemetry
    registry (each TX link's counters plus the port's own RX counter).
    """

    tx: LinkStats
    frames_received: int = 0

    @property
    def frames_dropped(self) -> int:
        return self.tx.frames_dropped

    @property
    def frames_corrupted(self) -> int:
        return self.tx.frames_corrupted


class NetworkPort:
    """A device-side attachment point with a TX link per peer.

    Ports are wired together by a :class:`repro.hw.net.switch.Network`; the
    port only knows "to reach address X, transmit on link L".
    """

    def __init__(self, sim: Simulator, address: str):
        self.sim = sim
        self.address = address
        self._routes: Dict[str, Link] = {}
        self.rx_link: Optional[Link] = None
        self._metrics = sim.telemetry.unique_scope(f"net.port.{address}")
        self._tx_frames = self._metrics.counter("tx_frames")
        self._rx_frames = self._metrics.counter("rx_frames")

    def attach_rx(self, link: Link) -> None:
        self.rx_link = link

    def add_route(self, destination: str, link: Link) -> None:
        self._routes[destination] = link

    def route(self, destination: str = "*") -> Link:
        """The TX link used to reach ``destination`` (fault wiring hook)."""
        link = self._routes.get(destination) or self._routes.get("*")
        if link is None:
            raise ConfigurationError(
                f"port {self.address} has no route to {destination}"
            )
        return link

    def stats(self) -> PortStats:
        """Port-level view: every TX link's counters merged, plus RX."""
        tx = LinkStats()
        for link in dict.fromkeys(self._routes.values()):
            tx = tx.merge(link.stats())
        received = (
            self.rx_link.stats().frames_delivered
            if self.rx_link is not None else 0
        )
        # Mirror the derived RX count into the registry so the metric
        # tree shows it without anyone polling stats().
        self._rx_frames._set(max(self._rx_frames.value, received))
        return PortStats(tx=tx, frames_received=received)

    def send(self, frame: Frame):
        """Process: transmit a frame toward its destination."""
        link = self._routes.get(frame.dst)
        if link is None:
            link = self._routes.get("*")
        if link is None:
            raise ConfigurationError(
                f"port {self.address} has no route to {frame.dst}"
            )
        self._tx_frames.inc()
        yield from link.transmit(frame)

    def receive(self):
        """Event: next frame arriving at this port."""
        if self.rx_link is None:
            raise ConfigurationError(f"port {self.address} has no RX link")
        return self.rx_link.receive()
