"""Point-to-point links with serialization and propagation delay."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.units import gbps
from repro.faults import FaultInjector, FaultKind
from repro.hw.net.frames import Frame
from repro.sim import Resource, Simulator, Store

#: 100 Gbit/s in bytes/second.
QSFP28_100G = gbps(100)

#: Propagation within one datacenter rack/row (~2-5 us is typical including
#: switch transit; links default to 1 us each way and switches add more).
DEFAULT_PROPAGATION = 1e-6


@dataclass
class LinkStats:
    """Counters for one link's TX side, including every loss cause."""

    frames_sent: int = 0
    frames_dropped: int = 0
    frames_corrupted: int = 0
    bytes_sent: int = 0

    @property
    def frames_delivered(self) -> int:
        return self.frames_sent - self.frames_dropped - self.frames_corrupted

    def merge(self, other: "LinkStats") -> "LinkStats":
        return LinkStats(
            self.frames_sent + other.frames_sent,
            self.frames_dropped + other.frames_dropped,
            self.frames_corrupted + other.frames_corrupted,
            self.bytes_sent + other.bytes_sent,
        )


class Link:
    """A unidirectional link delivering frames into a receive queue.

    The transmitter is a unit-capacity resource, so back-to-back frames
    serialize at line rate; propagation is pipelined (multiple frames can be
    in flight). A fault injector attached via :meth:`attach_faults` can drop
    frames (FRAME_DROP), corrupt them (FRAME_CORRUPT — the receiver's FCS
    check discards them), or hold the link down for a window (LINK_DOWN).
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float = QSFP28_100G,
        propagation: float = DEFAULT_PROPAGATION,
        loss_fn: Optional[Callable[[Frame], bool]] = None,
        injector: Optional[FaultInjector] = None,
        component: str = "link",
    ):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if propagation < 0:
            raise ValueError("propagation must be non-negative")
        self.sim = sim
        self.bandwidth = bandwidth
        self.propagation = propagation
        self.rx_queue: Store = Store(sim)
        self._tx = Resource(sim, capacity=1)
        self._loss_fn = loss_fn
        self.injector = injector
        self.component = component
        self.frames_sent = 0
        self.frames_dropped = 0
        self.frames_corrupted = 0
        self.bytes_sent = 0

    def attach_faults(self, injector: FaultInjector, component: str) -> "Link":
        """Bind this link to a fault injector under the given component id."""
        self.injector = injector
        self.component = component
        return self

    def stats(self) -> LinkStats:
        return LinkStats(
            self.frames_sent,
            self.frames_dropped,
            self.frames_corrupted,
            self.bytes_sent,
        )

    def serialization_delay(self, frame: Frame) -> float:
        return frame.wire_size / self.bandwidth

    def _fault_outcome(self, frame: Frame) -> Optional[str]:
        """Consult the injector once per transmitted frame."""
        if self.injector is None:
            return None
        if self.injector.active(self.component, FaultKind.LINK_DOWN):
            return "drop"
        if self.injector.fires(self.component, FaultKind.FRAME_DROP):
            return "drop"
        if self.injector.fires(self.component, FaultKind.FRAME_CORRUPT):
            return "corrupt"
        return None

    def transmit(self, frame: Frame):
        """Process: serialize the frame, then deliver after propagation."""
        yield self._tx.request()
        try:
            yield self.sim.timeout(self.serialization_delay(frame))
        finally:
            self._tx.release()
        self.frames_sent += 1
        self.bytes_sent += frame.wire_size
        if self._loss_fn is not None and self._loss_fn(frame):
            self.frames_dropped += 1
            return
        outcome = self._fault_outcome(frame)
        if outcome == "drop":
            self.frames_dropped += 1
            return
        if outcome == "corrupt":
            self.frames_corrupted += 1
            return
        self.sim.process(self._deliver(frame))

    def _deliver(self, frame: Frame):
        yield self.sim.timeout(self.propagation)
        yield self.rx_queue.put(frame)

    def receive(self):
        """Event: the next frame out of the receive queue."""
        return self.rx_queue.get()
