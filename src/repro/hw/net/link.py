"""Point-to-point links with serialization and propagation delay."""

from __future__ import annotations

from typing import Callable, Optional

from repro.common.units import gbps
from repro.hw.net.frames import Frame
from repro.sim import Resource, Simulator, Store

#: 100 Gbit/s in bytes/second.
QSFP28_100G = gbps(100)

#: Propagation within one datacenter rack/row (~2-5 us is typical including
#: switch transit; links default to 1 us each way and switches add more).
DEFAULT_PROPAGATION = 1e-6


class Link:
    """A unidirectional link delivering frames into a receive queue.

    The transmitter is a unit-capacity resource, so back-to-back frames
    serialize at line rate; propagation is pipelined (multiple frames can be
    in flight).
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float = QSFP28_100G,
        propagation: float = DEFAULT_PROPAGATION,
        loss_fn: Optional[Callable[[Frame], bool]] = None,
    ):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if propagation < 0:
            raise ValueError("propagation must be non-negative")
        self.sim = sim
        self.bandwidth = bandwidth
        self.propagation = propagation
        self.rx_queue: Store = Store(sim)
        self._tx = Resource(sim, capacity=1)
        self._loss_fn = loss_fn
        self.frames_sent = 0
        self.frames_dropped = 0
        self.bytes_sent = 0

    def serialization_delay(self, frame: Frame) -> float:
        return frame.wire_size / self.bandwidth

    def transmit(self, frame: Frame):
        """Process: serialize the frame, then deliver after propagation."""
        yield self._tx.request()
        try:
            yield self.sim.timeout(self.serialization_delay(frame))
        finally:
            self._tx.release()
        self.frames_sent += 1
        self.bytes_sent += frame.wire_size
        if self._loss_fn is not None and self._loss_fn(frame):
            self.frames_dropped += 1
            return
        self.sim.process(self._deliver(frame))

    def _deliver(self, frame: Frame):
        yield self.sim.timeout(self.propagation)
        yield self.rx_queue.put(frame)

    def receive(self):
        """Event: the next frame out of the receive queue."""
        return self.rx_queue.get()
