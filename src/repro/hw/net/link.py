"""Point-to-point links with serialization and propagation delay."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.units import gbps
from repro.faults import FaultInjector, FaultKind
from repro.hw.net.frames import Frame
from repro.sim import Resource, Simulator, Store
from repro.telemetry.tracing import NULL_SPAN as _NULL_SPAN

#: 100 Gbit/s in bytes/second.
QSFP28_100G = gbps(100)

#: Propagation within one datacenter rack/row (~2-5 us is typical including
#: switch transit; links default to 1 us each way and switches add more).
DEFAULT_PROPAGATION = 1e-6


@dataclass
class LinkStats:
    """Counters for one link's TX side, including every loss cause.

    A read-through snapshot of the link's registry counters (see
    ``Link.stats``); kept as a plain dataclass so port-level merging and
    existing call sites work unchanged.
    """

    frames_sent: int = 0
    frames_dropped: int = 0
    frames_corrupted: int = 0
    bytes_sent: int = 0

    @property
    def frames_delivered(self) -> int:
        return self.frames_sent - self.frames_dropped - self.frames_corrupted

    def merge(self, other: "LinkStats") -> "LinkStats":
        return LinkStats(
            self.frames_sent + other.frames_sent,
            self.frames_dropped + other.frames_dropped,
            self.frames_corrupted + other.frames_corrupted,
            self.bytes_sent + other.bytes_sent,
        )


class Link:
    """A unidirectional link delivering frames into a receive queue.

    The transmitter is a unit-capacity resource, so back-to-back frames
    serialize at line rate; propagation is pipelined (multiple frames can be
    in flight). A fault injector attached via :meth:`attach_faults` can drop
    frames (FRAME_DROP), corrupt them (FRAME_CORRUPT — the receiver's FCS
    check discards them), or hold the link down for a window (LINK_DOWN).

    All counters live in the simulator's telemetry registry under this
    link's component path (the same id the fault injector consults).
    """

    #: Span name/substrate for transmits; WAN links override these so a
    #: cross-region trace shows where the flow left the datacenter.
    TX_SPAN = "net.tx"
    TX_SUBSTRATE = "net"

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float = QSFP28_100G,
        propagation: float = DEFAULT_PROPAGATION,
        loss_fn: Optional[Callable[[Frame], bool]] = None,
        injector: Optional[FaultInjector] = None,
        component: str = "link",
    ):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if propagation < 0:
            raise ValueError("propagation must be non-negative")
        self.sim = sim
        self._tracer = sim.tracer
        self.bandwidth = bandwidth
        self.propagation = propagation
        self.rx_queue: Store = Store(sim)
        self._tx = Resource(sim, capacity=1)
        self._loss_fn = loss_fn
        self.injector = injector
        self.component = component
        self._metrics = sim.telemetry.unique_scope(component)
        self._frames_sent = self._metrics.counter("frames_sent")
        self._frames_dropped = self._metrics.counter("frames_dropped")
        self._frames_corrupted = self._metrics.counter("frames_corrupted")
        self._bytes_sent = self._metrics.counter("bytes_sent")

    def attach_faults(self, injector: FaultInjector, component: str) -> "Link":
        """Bind this link to a fault injector under the given component id.

        The link's metrics move to the same path, so the fault schedule
        and the telemetry snapshot agree on names.
        """
        self.injector = injector
        self.component = component
        self._metrics.rename(component)
        return self

    # -- counter views (legacy attribute API) ---------------------------------
    @property
    def frames_sent(self) -> int:
        return self._frames_sent.value

    @property
    def frames_dropped(self) -> int:
        return self._frames_dropped.value

    @property
    def frames_corrupted(self) -> int:
        return self._frames_corrupted.value

    @property
    def bytes_sent(self) -> int:
        return self._bytes_sent.value

    def stats(self) -> LinkStats:
        return LinkStats(
            self._frames_sent.value,
            self._frames_dropped.value,
            self._frames_corrupted.value,
            self._bytes_sent.value,
        )

    def serialization_delay(self, frame: Frame) -> float:
        return frame.wire_size / self.bandwidth

    def _fault_outcome(self, frame: Frame) -> Optional[str]:
        """Consult the injector once per transmitted frame."""
        if self.injector is None:
            return None
        if self.injector.active(self.component, FaultKind.LINK_DOWN):
            return "drop"
        if self.injector.fires(self.component, FaultKind.FRAME_DROP):
            return "drop"
        if self.injector.fires(self.component, FaultKind.FRAME_CORRUPT):
            return "corrupt"
        return None

    def transmit(self, frame: Frame):
        """Process: serialize the frame, then deliver after propagation."""
        # net.tx is the highest-frequency span site in the system; the
        # attrs dict is only built when tracing is actually on.
        tracer = self._tracer
        if tracer.enabled:
            if frame.trace is None:
                # First hop runs inside the sender's generator: stamp the
                # active flow onto the frame so downstream switch hops
                # (separate processes) can rejoin it.
                frame.trace = tracer.active_context
            span = tracer.span(
                self.TX_SPAN, self.TX_SUBSTRATE,
                component=self.component, bytes=frame.wire_size,
            )
        else:
            span = _NULL_SPAN
        with span:
            yield self._tx.request()
            try:
                yield self.sim.timeout(self.serialization_delay(frame))
            finally:
                self._tx.release()
            self._frames_sent.inc()
            self._bytes_sent.inc(frame.wire_size)
            if self._loss_fn is not None and self._loss_fn(frame):
                self._frames_dropped.inc()
                return
            outcome = self._fault_outcome(frame)
            if outcome == "drop":
                self._frames_dropped.inc()
                return
            if outcome == "corrupt":
                self._frames_corrupted.inc()
                return
        self.sim.process(self._deliver(frame))

    def _deliver(self, frame: Frame):
        yield self.sim.timeout(self.propagation)
        yield self.rx_queue.put(frame)

    def receive(self):
        """Event: the next frame out of the receive queue."""
        return self.rx_queue.get()
