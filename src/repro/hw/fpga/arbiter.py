"""Weighted AXI-stream arbitration for tenant isolation (paper §4(4)).

"Can or should the micro-architectural resources of Hyperion be managed
explicitly with tenants to ensure sufficient isolation?" — here the shared
microarchitectural resource is the AXIS interconnect's bandwidth. The
arbiter grants transfer slots by explicit per-tenant weights (weighted
round robin), so a tenant's share is enforced by construction; a bursty
neighbour cannot push another tenant below its reservation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.common.errors import ConfigurationError
from repro.sim import Event, Simulator, Store


@dataclass
class _PendingTransfer:
    tenant: str
    size_bytes: int
    done: Event


class WeightedAxisArbiter:
    """Shares one bus of ``bandwidth`` bytes/s among weighted tenants."""

    def __init__(self, sim: Simulator, bandwidth: float,
                 quantum_bytes: int = 4096):
        if bandwidth <= 0 or quantum_bytes <= 0:
            raise ConfigurationError("bandwidth and quantum must be positive")
        self.sim = sim
        self.bandwidth = bandwidth
        self.quantum_bytes = quantum_bytes
        self._weights: Dict[str, int] = {}
        self._queues: Dict[str, List[_PendingTransfer]] = {}
        self._deficits: Dict[str, int] = {}
        self._wakeup: Store = Store(sim)
        self.bytes_served: Dict[str, int] = {}
        sim.process(self._arbiter_loop())

    def register_tenant(self, tenant: str, weight: int = 1) -> None:
        if weight < 1:
            raise ConfigurationError("weight must be >= 1")
        if tenant in self._weights:
            raise ConfigurationError(f"tenant {tenant} already registered")
        self._weights[tenant] = weight
        self._queues[tenant] = []
        self._deficits[tenant] = 0
        self.bytes_served[tenant] = 0

    def transfer(self, tenant: str, size_bytes: int):
        """Process: move ``size_bytes`` under this tenant's share."""
        if tenant not in self._weights:
            raise ConfigurationError(f"unknown tenant {tenant}")
        pending = _PendingTransfer(tenant, size_bytes, Event(self.sim))
        self._queues[tenant].append(pending)
        yield self._wakeup.put(None)
        yield pending.done

    def _backlogged(self) -> List[str]:
        return [t for t, queue in self._queues.items() if queue]

    def _arbiter_loop(self):
        """Deficit-weighted round robin over backlogged tenants."""
        while True:
            yield self._wakeup.get()
            while self._backlogged():
                for tenant in list(self._weights):
                    queue = self._queues[tenant]
                    if not queue:
                        self._deficits[tenant] = 0
                        continue
                    self._deficits[tenant] += (
                        self._weights[tenant] * self.quantum_bytes
                    )
                    while queue and self._deficits[tenant] > 0:
                        head = queue[0]
                        chunk = min(head.size_bytes, self._deficits[tenant])
                        yield self.sim.timeout(chunk / self.bandwidth)
                        head.size_bytes -= chunk
                        self._deficits[tenant] -= chunk
                        self.bytes_served[tenant] += chunk
                        if head.size_bytes <= 0:
                            queue.pop(0)
                            head.done.succeed(None)
            # Drain stale wakeups so the loop blocks until new work.
            while len(self._wakeup) > 0:
                yield self._wakeup.get()

    def share_of(self, tenant: str) -> float:
        total = sum(self.bytes_served.values())
        return self.bytes_served[tenant] / total if total else 0.0
