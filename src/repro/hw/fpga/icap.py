"""ICAP: the Internal Configuration Access Port for partial reconfiguration.

Paper §2: Hyperion programs slots "leveraging Partial Dynamic
Reconfiguration through the Internal Configuration Access Port (ICAP)", and
FPGAs "excel in coarse-grained spatial multiplexing with longer time-scales
(10-100 msecs, partial reconfiguration)". The ICAP is a single shared port:
reconfigurations serialize, and the latency is bitstream-size / ICAP
bandwidth plus a fixed setup cost — which lands typical partial bitstreams
squarely in the paper's 10-100 ms band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sim import Resource, Simulator
from repro.hw.fpga.bitstream import Bitstream
from repro.hw.fpga.fabric import ReconfigurableSlot

#: ICAPE3 on UltraScale+: 32-bit wide at 200 MHz -> 0.8 GB/s.
ICAP_BANDWIDTH = 0.8e9
#: Frame setup, device sync words, and CRC check overhead.
ICAP_SETUP_LATENCY = 2e-3


@dataclass
class ReconfigurationRecord:
    """One completed partial reconfiguration, for the E7 bench."""

    slot_index: int
    bitstream_name: str
    started_at: float
    latency: float


class Icap:
    """The (single) configuration port; reconfigurations serialize here."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float = ICAP_BANDWIDTH,
        setup_latency: float = ICAP_SETUP_LATENCY,
    ):
        self.sim = sim
        self.bandwidth = bandwidth
        self.setup_latency = setup_latency
        self._port = Resource(sim, capacity=1)
        self.history: List[ReconfigurationRecord] = []

    def reconfiguration_latency(self, bitstream: Bitstream) -> float:
        """Pure configuration time for one bitstream (no queueing)."""
        return self.setup_latency + bitstream.size_bytes / self.bandwidth

    def load(
        self,
        slot: ReconfigurableSlot,
        bitstream: Bitstream,
        tenant: Optional[str] = None,
    ):
        """Process: evict the slot's current image (if any) and load a new one.

        Yields until the ICAP is free and configuration frames are written.
        Returns the wall-clock latency experienced (queueing included).
        """
        requested_at = self.sim.now
        yield self._port.request()
        try:
            started_at = self.sim.now
            if slot.occupied:
                slot.unload()
            config_time = self.reconfiguration_latency(bitstream)
            yield self.sim.timeout(config_time)
            slot.load(bitstream, tenant)
            self.history.append(
                ReconfigurationRecord(
                    slot.index, bitstream.name, started_at, config_time
                )
            )
        finally:
            self._port.release()
        return self.sim.now - requested_at
