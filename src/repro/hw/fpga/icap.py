"""ICAP: the Internal Configuration Access Port for partial reconfiguration.

Paper §2: Hyperion programs slots "leveraging Partial Dynamic
Reconfiguration through the Internal Configuration Access Port (ICAP)", and
FPGAs "excel in coarse-grained spatial multiplexing with longer time-scales
(10-100 msecs, partial reconfiguration)". The ICAP is a single shared port:
reconfigurations serialize, and the latency is bitstream-size / ICAP
bandwidth plus a fixed setup cost — which lands typical partial bitstreams
squarely in the paper's 10-100 ms band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.faults import FaultInjector, FaultKind
from repro.sim import Resource, Simulator
from repro.hw.fpga.bitstream import Bitstream
from repro.hw.fpga.fabric import Fabric, ReconfigurableSlot

#: ICAPE3 on UltraScale+: 32-bit wide at 200 MHz -> 0.8 GB/s.
ICAP_BANDWIDTH = 0.8e9
#: Frame setup, device sync words, and CRC check overhead.
ICAP_SETUP_LATENCY = 2e-3


@dataclass
class ReconfigurationRecord:
    """One completed partial reconfiguration, for the E7 bench."""

    slot_index: int
    bitstream_name: str
    started_at: float
    latency: float


class Icap:
    """The (single) configuration port; reconfigurations serialize here."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float = ICAP_BANDWIDTH,
        setup_latency: float = ICAP_SETUP_LATENCY,
    ):
        self.sim = sim
        self.bandwidth = bandwidth
        self.setup_latency = setup_latency
        self._port = Resource(sim, capacity=1)
        self.history: List[ReconfigurationRecord] = []
        self._metrics = sim.telemetry.unique_scope("fpga.icap")
        self._loads = self._metrics.counter("loads")
        self._scrubs = self._metrics.counter("scrubs")
        self._reconfig_latency = self._metrics.histogram("reconfig_latency")

    @property
    def scrubs(self) -> int:
        return self._scrubs.value

    def reconfiguration_latency(self, bitstream: Bitstream) -> float:
        """Pure configuration time for one bitstream (no queueing)."""
        return self.setup_latency + bitstream.size_bytes / self.bandwidth

    def load(
        self,
        slot: ReconfigurableSlot,
        bitstream: Bitstream,
        tenant: Optional[str] = None,
    ):
        """Process: evict the slot's current image (if any) and load a new one.

        Yields until the ICAP is free and configuration frames are written.
        Returns the wall-clock latency experienced (queueing included).
        """
        requested_at = self.sim.now
        with self.sim.tracer.span(
            "fpga.icap.load", "fpga",
            slot=slot.index, bitstream=bitstream.name,
        ):
            yield self._port.request()
            try:
                started_at = self.sim.now
                if slot.occupied:
                    slot.unload()
                config_time = self.reconfiguration_latency(bitstream)
                yield self.sim.timeout(config_time)
                slot.load(bitstream, tenant)
                self.history.append(
                    ReconfigurationRecord(
                        slot.index, bitstream.name, started_at, config_time
                    )
                )
            finally:
                self._port.release()
        self._loads.inc()
        self._reconfig_latency.observe(self.sim.now - requested_at)
        return self.sim.now - requested_at

    def scrub(self, slot: ReconfigurableSlot):
        """Process: repair an SEU-hit slot by rewriting its own bitstream.

        This is a full partial reconfiguration of the same image through the
        same serialized port, so it costs exactly the ICAP latency model —
        the recovery the paper's "self-hosting" claim needs with no CPU to
        reprogram the device.
        """
        if not slot.occupied:
            raise ConfigurationError(f"slot {slot.index} is empty; nothing to scrub")
        bitstream, tenant = slot.loaded, slot.tenant
        latency = yield from self.load(slot, bitstream, tenant)
        self._scrubs.inc()
        return latency


class ConfigScrubber:
    """Polls for injected SEUs and repairs hit slots through the ICAP.

    Consults component id ``<component>.slot<i>`` with :data:`FaultKind.SEU`
    for each occupied slot. The loop ends once the plan has no pending SEU
    specs, so a finished fault plan never keeps the simulation alive.
    """

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        icap: Icap,
        injector: FaultInjector,
        component: str = "fabric",
        poll_interval: float = 1e-3,
    ):
        self.sim = sim
        self.fabric = fabric
        self.icap = icap
        self.injector = injector
        self.component = component
        self.poll_interval = poll_interval
        #: (slot index, repair completion time, scrub latency) per repair.
        self.repairs: List[Tuple[int, float, float]] = []
        sim.process(self._run())

    def _slot_component(self, slot: ReconfigurableSlot) -> str:
        return f"{self.component}.slot{slot.index}"

    def _pending(self) -> bool:
        return any(
            self.injector.pending(self._slot_component(slot), FaultKind.SEU)
            for slot in self.fabric.slots
        )

    def _run(self):
        while self._pending():
            yield self.sim.timeout(self.poll_interval)
            for slot in self.fabric.slots:
                if not slot.occupied:
                    continue
                if self.injector.fires(self._slot_component(slot), FaultKind.SEU):
                    slot.take_seu()
                    latency = yield from self.icap.scrub(slot)
                    self.repairs.append((slot.index, self.sim.now, latency))
