"""The reconfigurable fabric: resource budgets, slots, and memory banks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import CapacityError, ConfigurationError
from repro.common.units import GIB
from repro.hw.fpga.bitstream import Bitstream
from repro.hw.fpga.resources import ALVEO_U280, FabricResources
from repro.telemetry import MetricScope

__all__ = [
    "ALVEO_U280",
    "FabricResources",
    "MemoryBank",
    "ReconfigurableSlot",
    "Fabric",
    "u280_memory_banks",
]


@dataclass
class MemoryBank:
    """An on-card memory bank (DDR4 DRAM or HBM2 stack)."""

    name: str
    capacity: int
    bandwidth: float  # bytes/second
    access_latency: float  # seconds, closed-page random access

    def transfer_time(self, size: int) -> float:
        """Latency + serialization for one access of ``size`` bytes."""
        return self.access_latency + size / self.bandwidth


def u280_memory_banks() -> List[MemoryBank]:
    """The U280's two DDR4 DIMMs and 8 GiB of HBM2."""
    return [
        MemoryBank("ddr4-0", 16 * GIB, 19.2e9, 80e-9),
        MemoryBank("ddr4-1", 16 * GIB, 19.2e9, 80e-9),
        MemoryBank("hbm", 8 * GIB, 460e9, 120e-9),
    ]


@dataclass
class ReconfigurableSlot:
    """One partially-reconfigurable region, multiplexed between tenants.

    Paper §2.2: "slot-style spatial slicing of FPGA resources" — each slot
    has a fixed area budget and hosts at most one loaded bitstream.
    """

    index: int
    budget: FabricResources
    loaded: Optional[Bitstream] = None
    tenant: Optional[str] = None
    metrics: Optional[MetricScope] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.metrics is None:
            self.metrics = MetricScope.standalone(f"fpga.slot{self.index}")
        self._load_count = self.metrics.counter("load_count")
        self._seu_count = self.metrics.counter("seu_count")

    @property
    def load_count(self) -> int:
        return self._load_count.value

    @property
    def seu_count(self) -> int:
        return self._seu_count.value

    @property
    def occupied(self) -> bool:
        return self.loaded is not None

    def take_seu(self) -> None:
        """A single-event upset flipped configuration bits in this slot.

        The slot keeps "running" (possibly corrupt) until the configuration
        scrubber rewrites it through the ICAP; we only count the hit here.
        """
        self._seu_count.inc()

    def can_host(self, bitstream: Bitstream) -> bool:
        return bitstream.resources.fits_within(self.budget)

    def load(self, bitstream: Bitstream, tenant: Optional[str] = None) -> None:
        if self.occupied:
            raise CapacityError(f"slot {self.index} already hosts {self.loaded.name}")
        if not self.can_host(bitstream):
            raise CapacityError(
                f"bitstream {bitstream.name} does not fit slot {self.index}"
            )
        self.loaded = bitstream
        self.tenant = tenant
        self._load_count.inc()

    def unload(self) -> Bitstream:
        if not self.occupied:
            raise ConfigurationError(f"slot {self.index} is empty")
        bitstream, self.loaded, self.tenant = self.loaded, None, None
        return bitstream


class Fabric:
    """A whole FPGA: a static shell plus N reconfigurable slots.

    The static shell (network MAC/MUX, PCIe bridges, runtime config engine —
    the fixed blocks in paper Figure 2) reserves a fraction of the device;
    the rest is carved into equal slots.
    """

    def __init__(
        self,
        total: FabricResources = ALVEO_U280,
        num_slots: int = 5,
        shell_fraction: float = 0.25,
        memory_banks: Optional[List[MemoryBank]] = None,
        metrics: Optional[MetricScope] = None,
    ):
        if not 0 < shell_fraction < 1:
            raise ConfigurationError("shell_fraction must be in (0, 1)")
        if num_slots < 1:
            raise ConfigurationError("need at least one slot")
        self.total = total
        self.shell = total.scaled(shell_fraction)
        # A fabric has no simulator of its own: slot counters live either
        # under an owner-provided scope (the DPU's central registry) or in
        # a private standalone one.
        self.metrics = metrics if metrics is not None else MetricScope.standalone("fpga")
        slot_budget = total.scaled((1.0 - shell_fraction) / num_slots)
        self.slots = [
            ReconfigurableSlot(
                i, slot_budget, metrics=self.metrics.scope(f"slot{i}")
            )
            for i in range(num_slots)
        ]
        self.memory_banks = (
            memory_banks if memory_banks is not None else u280_memory_banks()
        )

    @property
    def dram(self) -> MemoryBank:
        return self._bank("ddr4-0")

    @property
    def hbm(self) -> MemoryBank:
        return self._bank("hbm")

    def _bank(self, name: str) -> MemoryBank:
        for bank in self.memory_banks:
            if bank.name == name:
                return bank
        raise ConfigurationError(f"no memory bank named {name}")

    def free_slot(self) -> Optional[ReconfigurableSlot]:
        for slot in self.slots:
            if not slot.occupied:
                return slot
        return None

    def slot_for(self, bitstream_name: str) -> Optional[ReconfigurableSlot]:
        for slot in self.slots:
            if slot.loaded is not None and slot.loaded.name == bitstream_name:
                return slot
        return None

    def utilization(self) -> float:
        """Fraction of slots currently occupied."""
        occupied = sum(1 for slot in self.slots if slot.occupied)
        return occupied / len(self.slots)

    def inventory(self) -> Dict[str, object]:
        """Bill-of-materials summary used by the Figure 1/2 harness."""
        return {
            "device": "alveo-u280",
            "slots": len(self.slots),
            "luts": self.total.luts,
            "brams": self.total.brams,
            "urams": self.total.urams,
            "dsps": self.total.dsps,
            "memory_banks": [bank.name for bank in self.memory_banks],
            "dram_bytes": sum(
                bank.capacity for bank in self.memory_banks if "ddr" in bank.name
            ),
            "hbm_bytes": sum(
                bank.capacity for bank in self.memory_banks if bank.name == "hbm"
            ),
        }
