"""FPGA area resource bundles (LUTs, FFs, BRAM, URAM, DSP)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FabricResources:
    """A bundle of FPGA area resources.

    Bundles support addition, subtraction, and budget checks so slots and
    compiled pipelines can negotiate placement.
    """

    luts: int = 0
    ffs: int = 0
    brams: int = 0
    urams: int = 0
    dsps: int = 0

    def __add__(self, other: "FabricResources") -> "FabricResources":
        return FabricResources(
            self.luts + other.luts,
            self.ffs + other.ffs,
            self.brams + other.brams,
            self.urams + other.urams,
            self.dsps + other.dsps,
        )

    def __sub__(self, other: "FabricResources") -> "FabricResources":
        return FabricResources(
            self.luts - other.luts,
            self.ffs - other.ffs,
            self.brams - other.brams,
            self.urams - other.urams,
            self.dsps - other.dsps,
        )

    def fits_within(self, budget: "FabricResources") -> bool:
        return (
            self.luts <= budget.luts
            and self.ffs <= budget.ffs
            and self.brams <= budget.brams
            and self.urams <= budget.urams
            and self.dsps <= budget.dsps
        )

    def scaled(self, fraction: float) -> "FabricResources":
        """A proportional share of this bundle (used to carve slots)."""
        return FabricResources(
            int(self.luts * fraction),
            int(self.ffs * fraction),
            int(self.brams * fraction),
            int(self.urams * fraction),
            int(self.dsps * fraction),
        )


#: Alveo U280 device resources (XCU280 datasheet).
ALVEO_U280 = FabricResources(
    luts=1_304_000,
    ffs=2_607_000,
    brams=2_016,
    urams=960,
    dsps=9_024,
)
