"""Bitstreams and the signing/encryption authority for remote loading.

Paper §2.2: "Hyperion can run a privileged configuration kernel that can
receive authorized, encrypted FPGA bitstreams over a certain control network
port and assign slices to it." We model authorization with an HMAC over the
bitstream body and encryption as an opaque sealed payload.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any

from repro.common.errors import ConfigurationError
from repro.hw.fpga.resources import FabricResources


@dataclass(frozen=True)
class Bitstream:
    """A compiled accelerator image targeting one reconfigurable slot.

    ``kernel`` carries the executable model of the accelerator (for eBPF
    programs, a :class:`repro.hdl.engine.HardwarePipeline`); the fabric never
    inspects it, mirroring how a real FPGA treats configuration frames.
    """

    name: str
    resources: FabricResources
    size_bytes: int
    clock_hz: float = 250e6
    kernel: Any = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError("bitstream size must be positive")
        if self.clock_hz <= 0:
            raise ConfigurationError("clock frequency must be positive")


@dataclass(frozen=True)
class SignedBitstream:
    """A bitstream sealed for transport over the control network."""

    bitstream: Bitstream
    signature: bytes
    encrypted: bool = True


class BitstreamAuthority:
    """Signs bitstreams for tenants and verifies them at the DPU.

    A shared-key HMAC stands in for the vendor PKI; what matters for the
    blueprint is that *only* authorized images reach a slot.
    """

    def __init__(self, key: bytes):
        if not key:
            raise ConfigurationError("authority key must be non-empty")
        self._key = key

    def _digest(self, bitstream: Bitstream) -> bytes:
        material = f"{bitstream.name}:{bitstream.size_bytes}:{bitstream.clock_hz}"
        return hmac.new(self._key, material.encode(), hashlib.sha256).digest()

    def sign(self, bitstream: Bitstream, encrypt: bool = True) -> SignedBitstream:
        return SignedBitstream(bitstream, self._digest(bitstream), encrypt)

    def verify(self, signed: SignedBitstream) -> bool:
        return hmac.compare_digest(self._digest(signed.bitstream), signed.signature)
