"""AXI-stream interconnect with address-range routing.

Paper §2.1: "we statically divide FPGA AXI-streaming bus address ranges to
map to FPGA DRAM addresses, and others to NVMe PCIe BAR addresses". The
interconnect is what makes the single-level store work: a 64-bit *bus
address* resolves to a backing target (a DRAM bank, the HBM stack, or an
NVMe controller BAR) purely by range."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Tuple

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class AddressRange:
    """A half-open window ``[base, base + size)`` routed to one target."""

    base: int
    size: int
    target: Any
    name: str

    def __post_init__(self) -> None:
        if self.base < 0 or self.size <= 0:
            raise ConfigurationError("address range must be non-empty and positive")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def overlaps(self, other: "AddressRange") -> bool:
        return self.base < other.end and other.base < self.end


class AxiStreamInterconnect:
    """Routes bus addresses to targets; the arbiter of paper Figure 2."""

    def __init__(self) -> None:
        self._ranges: List[AddressRange] = []

    def add_range(self, window: AddressRange) -> None:
        for existing in self._ranges:
            if window.overlaps(existing):
                raise ConfigurationError(
                    f"range {window.name} overlaps {existing.name}"
                )
        self._ranges.append(window)
        self._ranges.sort(key=lambda r: r.base)

    def route(self, address: int) -> Tuple[AddressRange, int]:
        """Resolve an address to ``(range, offset_within_range)``."""
        for window in self._ranges:
            if window.contains(address):
                return window, address - window.base
        raise ConfigurationError(f"bus address {address:#x} is unmapped")

    def target_for(self, address: int) -> Any:
        return self.route(address)[0].target

    @property
    def ranges(self) -> List[AddressRange]:
        return list(self._ranges)
