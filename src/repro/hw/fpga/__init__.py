"""FPGA fabric model: resources, reconfigurable slots, ICAP, AXI-stream.

The model is sized after the Xilinx Alveo U280 used by the Hyperion
prototype (paper Figure 1): HBM + DDR4, a static shell region, and a set of
dynamically reconfigurable slots multiplexed via the Internal Configuration
Access Port (ICAP) at 10-100 ms timescales (paper §2).
"""

from repro.hw.fpga.fabric import (
    ALVEO_U280,
    Fabric,
    FabricResources,
    MemoryBank,
    ReconfigurableSlot,
)
from repro.hw.fpga.bitstream import Bitstream, BitstreamAuthority, SignedBitstream
from repro.hw.fpga.icap import ConfigScrubber, Icap
from repro.hw.fpga.axi import AxiStreamInterconnect, AddressRange

__all__ = [
    "ALVEO_U280",
    "Fabric",
    "FabricResources",
    "MemoryBank",
    "ReconfigurableSlot",
    "Bitstream",
    "SignedBitstream",
    "BitstreamAuthority",
    "Icap",
    "ConfigScrubber",
    "AxiStreamInterconnect",
    "AddressRange",
]
