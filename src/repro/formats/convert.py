"""Parquet <-> Arrow conversion: the pipeline of paper §2.3 / [130].

On real Hyperion this is an FPGA kernel ("Battling the CPU Bottleneck in
Apache Parquet to Arrow Conversion Using FPGA"); here the functions define
the data path the analytics experiment charges to the DPU.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.formats.columnar import RecordBatch
from repro.formats.parquet import ReadStats, read_table, write_table


def parquet_to_batch(
    raw: bytes,
    columns: Optional[Sequence[str]] = None,
    predicate_column: Optional[str] = None,
    predicate_range: Optional[Tuple] = None,
    stats: Optional[ReadStats] = None,
) -> RecordBatch:
    """Decode storage bytes into the in-memory representation."""
    return read_table(
        raw,
        columns=columns,
        predicate_column=predicate_column,
        predicate_range=predicate_range,
        stats=stats,
    )


def batch_to_parquet(batch: RecordBatch, rows_per_group: int = 1024) -> bytes:
    """Encode an in-memory batch for storage."""
    return write_table(batch, rows_per_group=rows_per_group)
