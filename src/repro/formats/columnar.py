"""The Arrow-like in-memory columnar representation.

Data-in-motion (paper §2.1/§2.3): typed columns in contiguous arrays, with
the relational kernels (filter, project, aggregate) analytics pipelines
push down to the DPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Sequence, Tuple

from repro.common.errors import ConfigurationError, ProtocolError

SUPPORTED_TYPES = ("int64", "float64", "string")


@dataclass(frozen=True)
class Schema:
    """Ordered (name, type) pairs."""

    fields: Tuple[Tuple[str, str], ...]

    def __post_init__(self) -> None:
        names = [name for name, __ in self.fields]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate column names")
        for name, kind in self.fields:
            if kind not in SUPPORTED_TYPES:
                raise ConfigurationError(f"unsupported type {kind!r} for {name}")

    @classmethod
    def of(cls, **kwargs: str) -> "Schema":
        return cls(tuple(kwargs.items()))

    @property
    def names(self) -> List[str]:
        return [name for name, __ in self.fields]

    def type_of(self, name: str) -> str:
        for field_name, kind in self.fields:
            if field_name == name:
                return kind
        raise KeyError(name)

    def select(self, names: Sequence[str]) -> "Schema":
        return Schema(tuple((n, self.type_of(n)) for n in names))


@dataclass
class Column:
    """One typed value vector."""

    name: str
    kind: str
    values: List[Any]

    def __post_init__(self) -> None:
        caster = {"int64": int, "float64": float, "string": str}[self.kind]
        self.values = [caster(v) for v in self.values]

    def __len__(self) -> int:
        return len(self.values)


class RecordBatch:
    """A set of equal-length columns conforming to a schema."""

    def __init__(self, schema: Schema, columns: Dict[str, List[Any]]):
        if set(columns) != set(schema.names):
            raise ConfigurationError("columns do not match schema")
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise ProtocolError(f"ragged columns: lengths {sorted(lengths)}")
        self.schema = schema
        self.columns = {
            name: Column(name, schema.type_of(name), columns[name])
            for name in schema.names
        }

    def __len__(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def column(self, name: str) -> Column:
        if name not in self.columns:
            raise KeyError(name)
        return self.columns[name]

    def rows(self) -> Iterator[Tuple]:
        names = self.schema.names
        for index in range(len(self)):
            yield tuple(self.columns[name].values[index] for name in names)

    # -- kernels -----------------------------------------------------------
    def project(self, names: Sequence[str]) -> "RecordBatch":
        schema = self.schema.select(names)
        return RecordBatch(
            schema, {name: list(self.columns[name].values) for name in names}
        )

    def filter(self, predicate: Callable[[Dict[str, Any]], bool]) -> "RecordBatch":
        names = self.schema.names
        keep: List[int] = []
        for index in range(len(self)):
            row = {name: self.columns[name].values[index] for name in names}
            if predicate(row):
                keep.append(index)
        return RecordBatch(
            self.schema,
            {
                name: [self.columns[name].values[i] for i in keep]
                for name in names
            },
        )

    def aggregate(self, column: str, how: str = "sum") -> Any:
        values = self.column(column).values
        if how == "sum":
            return sum(values)
        if how == "min":
            return min(values)
        if how == "max":
            return max(values)
        if how == "count":
            return len(values)
        if how == "mean":
            return sum(values) / len(values) if values else 0.0
        raise ConfigurationError(f"unknown aggregate {how!r}")

    def concat(self, other: "RecordBatch") -> "RecordBatch":
        if other.schema != self.schema:
            raise ConfigurationError("schema mismatch in concat")
        return RecordBatch(
            self.schema,
            {
                name: self.columns[name].values + other.columns[name].values
                for name in self.schema.names
            },
        )

    @classmethod
    def from_rows(cls, schema: Schema, rows: Sequence[Sequence[Any]]) -> "RecordBatch":
        names = schema.names
        columns: Dict[str, List[Any]] = {name: [] for name in names}
        for row in rows:
            if len(row) != len(names):
                raise ProtocolError("row width does not match schema")
            for name, value in zip(names, row):
                columns[name].append(value)
        return cls(schema, columns)
