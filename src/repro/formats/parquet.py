"""HyperParquet: the on-storage columnar format.

Structure (mirroring Parquet's essentials)::

    [row group 0: column chunk, column chunk, ...]
    [row group 1: ...]
    footer: schema, per-chunk (offset, length, min, max), row counts
    footer_length u32 | magic "HPQ1"

Why it matters for the paper: column *projection* reads only the needed
chunks and min/max *statistics* skip whole row groups — the I/O the DPU
avoids without any CPU-side format translation (§2.3).
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ProtocolError
from repro.formats.columnar import RecordBatch, Schema
from repro.telemetry import MetricScope

MAGIC = b"HPQ1"


def _encode_chunk(kind: str, values: List[Any]) -> bytes:
    if kind == "int64":
        return b"".join(
            struct.pack("<q", v) for v in values
        )
    if kind == "float64":
        return b"".join(struct.pack("<d", v) for v in values)
    # strings: dictionary encoding — unique values + u32 indices.
    unique: Dict[str, int] = {}
    indices = []
    for value in values:
        indices.append(unique.setdefault(value, len(unique)))
    words = list(unique)
    dictionary = json.dumps(words).encode()
    return (
        struct.pack("<I", len(dictionary))
        + dictionary
        + b"".join(struct.pack("<I", i) for i in indices)
    )


def _decode_chunk(kind: str, raw: bytes, count: int) -> List[Any]:
    if kind == "int64":
        return [v[0] for v in struct.iter_unpack("<q", raw[: 8 * count])]
    if kind == "float64":
        return [v[0] for v in struct.iter_unpack("<d", raw[: 8 * count])]
    (dict_len,) = struct.unpack_from("<I", raw, 0)
    words = json.loads(raw[4 : 4 + dict_len].decode())
    at = 4 + dict_len
    indices = [
        v[0] for v in struct.iter_unpack("<I", raw[at : at + 4 * count])
    ]
    return [words[i] for i in indices]


@dataclass
class ChunkMeta:
    """Footer metadata of one column chunk: location and min/max stats."""

    column: str
    offset: int
    length: int
    min_value: Any
    max_value: Any


@dataclass
class RowGroupMeta:
    """Footer metadata of one row group: row count and its chunks."""

    row_count: int
    chunks: Dict[str, ChunkMeta] = field(default_factory=dict)


@dataclass
class ParquetFooter:
    """The decoded footer: schema plus row-group/chunk metadata."""

    schema: Schema
    row_groups: List[RowGroupMeta]

    @property
    def total_rows(self) -> int:
        return sum(group.row_count for group in self.row_groups)


def write_table(batch: RecordBatch, rows_per_group: int = 1024) -> bytes:
    """Serialize a batch into HyperParquet bytes."""
    body = bytearray()
    groups: List[RowGroupMeta] = []
    total = len(batch)
    for start in range(0, max(total, 1), rows_per_group):
        end = min(start + rows_per_group, total)
        if start >= total and total > 0:
            break
        group = RowGroupMeta(row_count=end - start)
        for name in batch.schema.names:
            column = batch.column(name)
            values = column.values[start:end]
            encoded = _encode_chunk(column.kind, values)
            group.chunks[name] = ChunkMeta(
                column=name,
                offset=len(body),
                length=len(encoded),
                min_value=min(values) if values else None,
                max_value=max(values) if values else None,
            )
            body.extend(encoded)
        groups.append(group)
        if total == 0:
            break
    footer = {
        "schema": list(batch.schema.fields),
        "row_groups": [
            {
                "rows": group.row_count,
                "chunks": {
                    name: {
                        "offset": meta.offset,
                        "length": meta.length,
                        "min": meta.min_value,
                        "max": meta.max_value,
                    }
                    for name, meta in group.chunks.items()
                },
            }
            for group in groups
        ],
    }
    footer_bytes = json.dumps(footer).encode()
    return bytes(body) + footer_bytes + struct.pack("<I", len(footer_bytes)) + MAGIC


def read_footer(raw: bytes) -> ParquetFooter:
    if len(raw) < 8 or raw[-4:] != MAGIC:
        raise ProtocolError("not a HyperParquet file")
    (footer_len,) = struct.unpack_from("<I", raw, len(raw) - 8)
    footer_start = len(raw) - 8 - footer_len
    if footer_start < 0:
        raise ProtocolError("corrupt HyperParquet footer")
    meta = json.loads(raw[footer_start : footer_start + footer_len].decode())
    schema = Schema(tuple((n, t) for n, t in meta["schema"]))
    groups = []
    for group_meta in meta["row_groups"]:
        group = RowGroupMeta(row_count=group_meta["rows"])
        for name, chunk in group_meta["chunks"].items():
            group.chunks[name] = ChunkMeta(
                column=name,
                offset=chunk["offset"],
                length=chunk["length"],
                min_value=chunk["min"],
                max_value=chunk["max"],
            )
        groups.append(group)
    return ParquetFooter(schema=schema, row_groups=groups)


class ReadStats:
    """I/O accounting: what projection + pushdown actually saved.

    A facade over telemetry counters. Readers usually construct one
    standalone (private registry); a DPU pipeline can pass a scope from
    its simulator's central registry instead.
    """

    def __init__(self, metrics: Optional[MetricScope] = None):
        self._metrics = (
            metrics if metrics is not None
            else MetricScope.standalone("formats.read")
        )
        self._bytes_read = self._metrics.counter("bytes_read")
        self._chunks_read = self._metrics.counter("chunks_read")
        self._row_groups_skipped = self._metrics.counter("row_groups_skipped")

    @property
    def bytes_read(self) -> int:
        return self._bytes_read.value

    @bytes_read.setter
    def bytes_read(self, value: int) -> None:
        self._bytes_read._set(value)

    @property
    def chunks_read(self) -> int:
        return self._chunks_read.value

    @chunks_read.setter
    def chunks_read(self, value: int) -> None:
        self._chunks_read._set(value)

    @property
    def row_groups_skipped(self) -> int:
        return self._row_groups_skipped.value

    @row_groups_skipped.setter
    def row_groups_skipped(self, value: int) -> None:
        self._row_groups_skipped._set(value)


def read_table(
    raw: bytes,
    columns: Optional[Sequence[str]] = None,
    predicate_column: Optional[str] = None,
    predicate_range: Optional[Tuple[Any, Any]] = None,
    stats: Optional[ReadStats] = None,
) -> RecordBatch:
    """Read with column projection and min/max row-group pushdown.

    ``predicate_range=(low, high)`` skips row groups whose statistics prove
    no value of ``predicate_column`` falls in ``[low, high]``. The caller
    still must filter rows exactly; pushdown only prunes I/O.
    """
    footer = read_footer(raw)
    names = list(columns) if columns is not None else footer.schema.names
    schema = footer.schema.select(names)
    out: Dict[str, List[Any]] = {name: [] for name in names}
    for group in footer.row_groups:
        if predicate_column is not None and predicate_range is not None:
            meta = group.chunks[predicate_column]
            low, high = predicate_range
            if meta.min_value is not None and (
                meta.max_value < low or meta.min_value > high
            ):
                if stats is not None:
                    stats.row_groups_skipped += 1
                continue
        for name in names:
            meta = group.chunks[name]
            chunk_raw = raw[meta.offset : meta.offset + meta.length]
            if stats is not None:
                stats.bytes_read += meta.length
                stats.chunks_read += 1
            out[name].extend(
                _decode_chunk(schema.type_of(name), chunk_raw, group.row_count)
            )
    return RecordBatch(schema, out)
