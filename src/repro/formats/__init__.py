"""Columnar data formats (paper §2.3): on-storage and in-memory.

``HyperParquet`` is a structurally faithful columnar *storage* format (row
groups, column chunks, min/max statistics, footer-at-end) and ``columnar``
is the Arrow-like *in-memory* representation. The conversion pipeline
between them is the workload the paper cites FPGA support for [130], and
the end-to-end analytics experiment (E9) drives it over the annotation
walker + NVMe path with no CPU in the loop.
"""

from repro.formats.columnar import Column, RecordBatch, Schema
from repro.formats.parquet import (
    ParquetFooter,
    read_footer,
    read_table,
    write_table,
)
from repro.formats.convert import parquet_to_batch, batch_to_parquet

__all__ = [
    "Schema",
    "Column",
    "RecordBatch",
    "write_table",
    "read_table",
    "read_footer",
    "ParquetFooter",
    "parquet_to_batch",
    "batch_to_parquet",
]
