"""128-bit object identifiers for the single-level segment store.

Hyperion's memory/storage model (paper §2.1, inspired by Twizzler) names
every segment with a 128-bit identifier. The identifier is location
independent: the segment translation table maps it to a bus address in DRAM,
HBM, or on NVMe flash.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

_MASK_128 = (1 << 128) - 1


@dataclass(frozen=True, order=True)
class ObjectId:
    """An immutable 128-bit identifier.

    Instances are hashable and totally ordered so they can be used as keys
    in translation tables and B+ trees.
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= _MASK_128:
            raise ValueError(f"ObjectId out of 128-bit range: {self.value:#x}")

    @classmethod
    def random(cls, rng: random.Random | None = None) -> "ObjectId":
        """Draw a uniformly random identifier (collision chance ~2^-128)."""
        source = rng if rng is not None else random
        return cls(source.getrandbits(128))

    @classmethod
    def from_bytes(cls, raw: bytes) -> "ObjectId":
        if len(raw) != 16:
            raise ValueError("ObjectId requires exactly 16 bytes")
        return cls(int.from_bytes(raw, "big"))

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(16, "big")

    def __str__(self) -> str:
        return f"{self.value:032x}"

    def __repr__(self) -> str:
        return f"ObjectId({self})"


#: The well-known identifier of the boot/control area that stores the
#: persisted segment translation table (paper §2.1).
BOOT_AREA_ID = ObjectId(1)
