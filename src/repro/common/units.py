"""Units of size, time, and bandwidth used throughout the simulator.

Conventions
-----------
* Simulated time is a ``float`` measured in **seconds**.
* Sizes are ``int`` **bytes**.
* Bandwidths are ``float`` **bytes per second** (helpers accept Gbit/s).
"""

# --- sizes (bytes) ---------------------------------------------------------
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

# --- times (seconds) -------------------------------------------------------
NSEC = 1e-9
USEC = 1e-6
MSEC = 1e-3
SEC = 1.0

# --- bandwidth -------------------------------------------------------------
GBPS = 1e9 / 8.0  # one gigabit per second, expressed in bytes/second


def gbps(rate_gbit: float) -> float:
    """Convert a rate in Gbit/s into bytes/second."""
    return rate_gbit * GBPS


def transfer_time(size_bytes: int, bandwidth_bytes_per_s: float) -> float:
    """Serialization delay of ``size_bytes`` at the given bandwidth."""
    if bandwidth_bytes_per_s <= 0:
        raise ValueError("bandwidth must be positive")
    return size_bytes / bandwidth_bytes_per_s


def format_bytes(size: int) -> str:
    """Render a byte count using binary units, e.g. ``1.5 MiB``."""
    if size < 0:
        raise ValueError("size must be non-negative")
    value = float(size)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or unit == "TiB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")


def format_time(seconds: float) -> str:
    """Render a duration with the most natural unit, e.g. ``12.3 us``."""
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    if seconds == 0:
        return "0 s"
    if seconds < USEC:
        return f"{seconds / NSEC:.1f} ns"
    if seconds < MSEC:
        return f"{seconds / USEC:.1f} us"
    if seconds < SEC:
        return f"{seconds / MSEC:.1f} ms"
    return f"{seconds:.3f} s"
