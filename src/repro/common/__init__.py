"""Shared primitives: units, errors, and 128-bit object identifiers.

These helpers are deliberately dependency-free; every other subpackage in
:mod:`repro` builds on them.
"""

from repro.common.errors import (
    ReproError,
    CapacityError,
    ConfigurationError,
    ProtocolError,
    VerificationError,
)
from repro.common.ids import ObjectId
from repro.common.units import (
    KIB,
    MIB,
    GIB,
    TIB,
    USEC,
    MSEC,
    SEC,
    NSEC,
    GBPS,
    format_bytes,
    format_time,
)

__all__ = [
    "ReproError",
    "CapacityError",
    "ConfigurationError",
    "ProtocolError",
    "VerificationError",
    "ObjectId",
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "NSEC",
    "USEC",
    "MSEC",
    "SEC",
    "GBPS",
    "format_bytes",
    "format_time",
]
