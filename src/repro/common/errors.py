"""Exception hierarchy shared across the Hyperion reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class CapacityError(ReproError):
    """A resource (memory, flash, FPGA area, queue) is exhausted."""


class ConfigurationError(ReproError):
    """A component was composed or configured inconsistently."""


class ProtocolError(ReproError):
    """A wire- or command-level protocol invariant was violated."""


class VerificationError(ReproError):
    """An eBPF program was rejected by the verifier."""


class PowerLossError(ReproError):
    """Raised to model an abrupt power failure on a device."""
