"""Exception hierarchy shared across the Hyperion reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class CapacityError(ReproError):
    """A resource (memory, flash, FPGA area, queue) is exhausted."""


class ConfigurationError(ReproError):
    """A component was composed or configured inconsistently."""


class ProtocolError(ReproError):
    """A wire- or command-level protocol invariant was violated."""


class VerificationError(ReproError):
    """An eBPF program was rejected by the verifier."""


class PowerLossError(ReproError):
    """Raised to model an abrupt power failure on a device."""


class FaultInjectedError(ReproError):
    """A fault scheduled by :mod:`repro.faults` fired inside a component.

    Raised at the point of injection (a flash die, a PCIe link, a fabric
    slot) so the surrounding layer can surface it through its native error
    channel — an NVMe status code, a dropped frame, a failed RPC.
    """


class DegradedError(ReproError):
    """An operation completed only partially, or a component is running in
    a degraded mode (e.g. all replicas of a key are unreachable, or a
    promotion target tier is down and the segment stayed on flash)."""
