"""Shared resources for simulated contention: counted resources and queues."""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List

from repro.sim.engine import Event, Simulator


class Resource:
    """A counted resource (e.g. a DMA engine with N channels).

    ``request()`` returns an event that fires when a unit is granted; the
    holder must call ``release()`` exactly once per grant.
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    def request(self) -> Event:
        event = Event(self.sim)
        if self.in_use < self.capacity:
            self.in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self.in_use <= 0:
            raise RuntimeError("release() without a matching request()")
        if self._waiters:
            # Hand the unit directly to the next waiter.
            self._waiters.popleft().succeed(self)
        else:
            self.in_use -= 1

    def acquire(self):
        """Generator helper: ``yield from resource.acquire()``."""
        yield self.request()

    @property
    def queue_length(self) -> int:
        return len(self._waiters)


class Store:
    """An unbounded-or-bounded FIFO of items passed between processes."""

    def __init__(self, sim: Simulator, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: List = []

    def put(self, item: Any) -> Event:
        event = Event(self.sim)
        if self._getters:
            self._getters.popleft().succeed(item)
            event.succeed(None)
        elif self.capacity is None or len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed(None)
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        event = Event(self.sim)
        if self.items:
            item = self.items.popleft()
            event.succeed(item)
            if self._putters:
                put_event, pending = self._putters.pop(0)
                self.items.append(pending)
                put_event.succeed(None)
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self.items)
