"""Clock sources for anything scheduled against simulated time.

Fault plans, telemetry spans, and every substrate model run strictly
against *simulated* time — never the wall clock — so runs are
reproducible. Any object exposing a ``now`` attribute works as a clock;
:class:`repro.sim.Simulator` already does. :class:`ManualClock` exists
for unit tests that want to step time by hand; :class:`SimClock` adapts
a simulator into a read-only clock.

(Home of these classes; ``repro.faults.clock`` re-exports them for
backwards compatibility.)
"""

from __future__ import annotations

__all__ = ["ManualClock", "SimClock"]


class ManualClock:
    """A hand-advanced clock for testing plans without a simulator."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def advance(self, delta: float) -> float:
        if delta < 0:
            raise ValueError("clock cannot run backwards")
        self.now += delta
        return self.now


class SimClock:
    """Adapter exposing a simulator's current time as a read-only clock."""

    def __init__(self, sim) -> None:
        self._sim = sim

    @property
    def now(self) -> float:
        return self._sim.now
