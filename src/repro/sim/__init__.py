"""A small discrete-event simulation kernel (simpy-flavoured, no deps).

Every hardware and protocol model in the Hyperion reproduction runs as a
generator-based :class:`Process` on top of a :class:`Simulator`. Processes
yield :class:`Event` objects (timeouts, resource grants, store gets) and are
resumed when those events fire.
"""

from repro.sim.clock import ManualClock, SimClock
from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Simulator,
    Timeout,
)
from repro.sim.resources import Resource, Store

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "Resource",
    "Store",
    "ManualClock",
    "SimClock",
]
