"""Core event loop, events, and generator-driven processes."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import Tracer


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* once :meth:`succeed` or :meth:`fail` is called;
    its callbacks run when the simulator reaches the trigger time.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok = True

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise RuntimeError("event has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise RuntimeError("event has not been triggered")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with an optional payload."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self._value = value
        self._ok = True
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on it.
        """
        if self.triggered:
            raise RuntimeError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self.sim._schedule(self, delay)
        return self

    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run the callback immediately so late
            # waiters still observe the value.
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        self._ok = True
        sim._schedule(self, delay)


class Process(Event):
    """A generator executing in simulated time.

    The process is itself an event: it triggers with the generator's return
    value when the generator finishes, or fails with the uncaught exception.
    """

    def __init__(self, sim: "Simulator", generator: Generator):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick off the process on the next simulator step.
        bootstrap = Event(sim)
        bootstrap._value = None
        sim._schedule(bootstrap, 0.0)
        bootstrap._add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            return
        poke = Event(self.sim)
        poke._value = Interrupt(cause)
        poke._ok = False
        self.sim._schedule(poke, 0.0)
        # Detach from whatever we were waiting on; the stale event's
        # callback becomes a no-op because _waiting_on no longer matches.
        poke._add_callback(self._resume_interrupt)

    def _resume_interrupt(self, poke: Event) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        self._step(poke)

    def _resume(self, event: Event) -> None:
        # Ignore wakeups after the process finished, or from events we
        # stopped waiting on (interrupts).
        if self.triggered:
            return
        if self._waiting_on is not None and event is not self._waiting_on:
            return
        self._waiting_on = None
        self._step(event)

    def _step(self, event: Event) -> None:
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self._value = stop.value
            self._ok = True
            self.sim._schedule(self, 0.0)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            self._value = exc
            self._ok = False
            self.sim._schedule(self, 0.0)
            return
        if not isinstance(target, Event):
            raise TypeError(
                f"process yielded {target!r}; processes must yield Event objects"
            )
        self._waiting_on = target
        target._add_callback(self._resume)


class _MultiEvent(Event):
    """Base for AnyOf/AllOf composition events."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._done = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event._add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_MultiEvent):
    """Triggers when the first of its child events triggers."""

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event._ok:
            # Collect events that have been *processed* by the event loop
            # (Timeouts are "triggered" from creation, so `triggered` would
            # wrongly include pending ones).
            self.succeed(
                {e: e._value for e in self.events if e.processed and e._ok}
            )
        else:
            self.fail(event._value)


class AllOf(_MultiEvent):
    """Triggers when all child events have triggered."""

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._done += 1
        if self._done == len(self.events):
            self.succeed({e: e._value for e in self.events})


class Simulator:
    """The event loop: a time-ordered heap of triggered events."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List = []
        self._eid = 0
        self._telemetry: Optional[MetricsRegistry] = None
        self._tracer: Optional[Tracer] = None

    # -- telemetry ---------------------------------------------------------
    @property
    def telemetry(self) -> MetricsRegistry:
        """The metrics registry for everything running on this simulator.

        Lazily created, so a fresh simulator always measures from a
        clean slate — the root of the same-seed => byte-identical
        snapshot guarantee.
        """
        if self._telemetry is None:
            self._telemetry = MetricsRegistry()
        return self._telemetry

    @property
    def tracer(self) -> Tracer:
        """The span tracer bound to this simulator's clock (off by default)."""
        if self._tracer is None:
            self._tracer = Tracer(self)
        return self._tracer

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        self._eid += 1
        heapq.heappush(self._heap, (self.now + delay, self._eid, event))

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- execution ---------------------------------------------------------
    def step(self) -> None:
        """Process the single next event in the heap."""
        when, __, event = heapq.heappop(self._heap)
        self.now = when
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or simulated time passes ``until``."""
        while self._heap:
            when = self._heap[0][0]
            if until is not None and when > until:
                self.now = until
                return
            self.step()
        if until is not None and until > self.now:
            self.now = until

    def run_process(self, generator: Generator) -> Any:
        """Convenience: run a generator to completion and return its value."""
        process = self.process(generator)
        self.run()
        if not process.triggered:
            raise RuntimeError("process did not finish (deadlock?)")
        if not process._ok:
            raise process._value
        return process._value
