"""Core event loop, events, and generator-driven processes.

Hot-path design notes (every simulated operation crosses this module):

* All event classes carry ``__slots__`` — at E16 scale the engine
  allocates millions of events per run, and slotted instances are both
  smaller and faster to touch than ``__dict__``-backed ones.
* Queue entries are plain ``(when, eid, event, thunk)`` tuples. ``eid``
  is a global monotonically increasing sequence number, so ``(when,
  eid)`` is a total order over everything ever scheduled: same-time
  events run in exact scheduling order, which is the root of the
  same-seed => byte-identical guarantee.
* The dominant ``delay == 0.0`` case (event completions, process
  wakeups) skips the heap entirely: zero-delay entries go to an append
  /popleft *immediate lane* (a deque). Because simulated time never
  moves backwards, every lane entry's timestamp equals the current
  ``now`` and lane entries are already in ``(when, eid)`` order, so a
  two-way merge against the heap head preserves the exact total order
  the single heap produced.
* Spawning a :class:`Process` does not allocate a bootstrap event: the
  first generator resume is scheduled directly as a *thunk* entry
  (``event is None``), consuming one eid exactly like the old bootstrap
  event did. Interrupt delivery uses the same mechanism.
* The ``_schedule`` -> push path is inlined at the hot call sites
  (``Timeout.__init__``, ``succeed``/``fail``, process completion), and
  ``run()`` inlines the drain loop rather than calling :meth:`step` per
  entry. ``step()`` remains the single-entry API and both share the
  exact pop order.
* Scheduling into the past is rejected (``delay < 0``) — the immediate
  lane's ordering proof needs monotonic time, and a negative delay was
  never meaningful in a causal simulation anyway. (:class:`Timeout`
  already enforced this at construction.)
"""

from __future__ import annotations

from collections import deque
from functools import partial
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.telemetry.flightrec import FlightRecorder
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import Tracer


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* once :meth:`succeed` or :meth:`fail` is called;
    its callbacks run when the simulator reaches the trigger time (the
    event's ``_fire_at``, recorded when it is scheduled).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_fire_at")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok = True

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._value is _PENDING:
            raise RuntimeError("event has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise RuntimeError("event has not been triggered")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with an optional payload."""
        if self._value is not _PENDING:
            raise RuntimeError("event already triggered")
        sim = self.sim
        # Schedule before mutating: a rejected delay (< 0) must leave the
        # event untriggered. Nothing runs callbacks between the push and
        # the field writes, so the ordering is unobservable otherwise.
        if delay == 0.0:
            self._fire_at = now = sim.now
            sim._eid = eid = sim._eid + 1
            sim._imm.append((now, eid, self, None))
        else:
            self._fire_at = sim._schedule(self, delay)
        self._value = value
        self._ok = True
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on it.
        """
        if self._value is not _PENDING:
            raise RuntimeError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        sim = self.sim
        if delay == 0.0:
            self._fire_at = now = sim.now
            sim._eid = eid = sim._eid + 1
            sim._imm.append((now, eid, self, None))
        else:
            self._fire_at = sim._schedule(self, delay)
        self._value = exception
        self._ok = False
        return self

    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run the callback immediately so late
            # waiters still observe the value (success or failure alike).
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Inlined Event.__init__ + schedule: this constructor runs once
        # per modeled latency, which makes it the hottest allocation site
        # in the whole simulation.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self.delay = delay
        sim._eid = eid = sim._eid + 1
        if delay == 0.0:
            self._fire_at = now = sim.now
            sim._imm.append((now, eid, self, None))
        else:
            self._fire_at = when = sim.now + delay
            heappush(sim._heap, (when, eid, self, None))


class _Bootstrap:
    """Sentinel 'event' that resumes a process generator for the first time."""

    __slots__ = ()
    _ok = True
    _value = None


_BOOT = _Bootstrap()


class _Poke:
    """Sentinel 'event' that delivers an :class:`Interrupt` into a process."""

    __slots__ = ("_value",)
    _ok = False

    def __init__(self, exc: BaseException):
        self._value = exc


class Process(Event):
    """A generator executing in simulated time.

    The process is itself an event: it triggers with the generator's return
    value when the generator finishes, or fails with the uncaught exception.
    """

    __slots__ = ("_generator", "_waiting_on", "_resume_cb")

    def __init__(self, sim: "Simulator", generator: Generator):
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator")
        Event.__init__(self, sim)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # One bound method per process instead of one per yield: the same
        # callback object is appended to every event this process waits on.
        self._resume_cb = self._resume
        # Kick off the process on the next simulator step. Scheduled as a
        # bare thunk: no bootstrap Event allocation, same eid accounting.
        sim._schedule_thunk(self._bootstrap)

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def _bootstrap(self) -> None:
        self._resume(_BOOT)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._value is not _PENDING:
            return
        poke = _Poke(Interrupt(cause))

        def deliver() -> None:
            if self._value is not _PENDING:
                return
            # Detach from whatever we were waiting on; the stale event's
            # callback becomes a no-op because _waiting_on no longer
            # matches.
            self._waiting_on = None
            self._resume(poke)

        self.sim._schedule_thunk(deliver)

    def _resume(self, event) -> None:
        # Ignore wakeups after the process finished, or from events we
        # stopped waiting on (interrupts).
        if self._value is not _PENDING:
            return
        waiting = self._waiting_on
        if waiting is not None and event is not waiting:
            return
        self._waiting_on = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self._value = stop.value
            self._ok = True
            sim = self.sim
            self._fire_at = now = sim.now
            sim._eid = eid = sim._eid + 1
            sim._imm.append((now, eid, self, None))
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            self._value = exc
            self._ok = False
            sim = self.sim
            self._fire_at = now = sim.now
            sim._eid = eid = sim._eid + 1
            sim._imm.append((now, eid, self, None))
            return
        if not isinstance(target, Event):
            raise TypeError(
                f"process yielded {target!r}; processes must yield Event objects"
            )
        self._waiting_on = target
        callbacks = target.callbacks
        if callbacks is None:
            # Already processed: resume immediately (late waiter).
            self._resume(target)
        else:
            callbacks.append(self._resume_cb)


class _MultiEvent(Event):
    """Base for AnyOf/AllOf composition events."""

    __slots__ = ("events", "_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        Event.__init__(self, sim)
        self.events = list(events)
        self._done = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event._add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_MultiEvent):
    """Triggers when the first of its child events triggers.

    The result dict contains every successful child whose occurrence
    time has arrived: children already processed by the event loop *and*
    children that triggered with a fire time at (or before) the current
    timestamp but are still queued behind this one. A ``Timeout`` or a
    ``succeed(delay=...)`` due strictly in the future is excluded — it
    has not happened yet — but a same-timestamp completion is never
    silently dropped just because its callbacks have not run yet (the
    old ``processed``-only filter's bug, pinned by a regression test).
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if event._ok:
            now = self.sim.now
            self.succeed({
                e: e._value for e in self.events
                if e._ok and (
                    e.callbacks is None
                    or (e._value is not _PENDING and e._fire_at <= now)
                )
            })
        else:
            self.fail(event._value)


class AllOf(_MultiEvent):
    """Triggers when all child events have triggered."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._done += 1
        if self._done == len(self.events):
            self.succeed({e: e._value for e in self.events})


class Simulator:
    """The event loop: a time-ordered heap plus a zero-delay fast lane."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List = []
        #: Zero-delay fast lane; every entry's time equals the current
        #: ``now`` and eids are appended in increasing order, so the
        #: deque is always sorted by (when, eid).
        self._imm: deque = deque()
        self._eid = 0
        self._telemetry: Optional[MetricsRegistry] = None
        self._tracer: Optional[Tracer] = None
        self._recorder: Optional[FlightRecorder] = None
        # C-level factories: shadow the identically-named methods below
        # with ``partial`` objects, skipping one Python call frame per
        # spawned event/timeout/process (the methods stay as the
        # documented API surface).
        self.event = partial(Event, self)
        self.timeout = partial(Timeout, self)
        self.process = partial(Process, self)

    # -- telemetry ---------------------------------------------------------
    @property
    def telemetry(self) -> MetricsRegistry:
        """The metrics registry for everything running on this simulator.

        Lazily created, so a fresh simulator always measures from a
        clean slate — the root of the same-seed => byte-identical
        snapshot guarantee.
        """
        if self._telemetry is None:
            self._telemetry = MetricsRegistry()
        return self._telemetry

    @property
    def tracer(self) -> Tracer:
        """The span tracer bound to this simulator's clock (off by default)."""
        if self._tracer is None:
            self._tracer = Tracer(self)
        return self._tracer

    @property
    def recorder(self) -> FlightRecorder:
        """The always-on flight recorder (journal + sampled-trace ring).

        Lazily created like the registry and tracer; control-plane
        components (breakers, the SLO monitor, the fault injector...)
        resolve it once at construction via
        ``getattr(clock, "recorder", None)``.
        """
        if self._recorder is None:
            self._recorder = FlightRecorder(self)
        return self._recorder

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> float:
        """Queue *event* after *delay*; returns its absolute fire time."""
        self._eid = eid = self._eid + 1
        if delay == 0.0:
            when = self.now
            self._imm.append((when, eid, event, None))
        else:
            if delay < 0:
                raise ValueError(f"cannot schedule into the past: {delay}")
            when = self.now + delay
            heappush(self._heap, (when, eid, event, None))
        return when

    def _schedule_thunk(self, thunk: Callable[[], None]) -> None:
        """Schedule a bare callable at the current time (one eid, no Event)."""
        self._eid = eid = self._eid + 1
        self._imm.append((self.now, eid, None, thunk))

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- execution ---------------------------------------------------------
    def step(self) -> None:
        """Process the single next entry in exact (when, eid) order."""
        imm = self._imm
        if imm:
            heap = self._heap
            if heap:
                head = heap[0]
                first = imm[0]
                # Heap entries are >= now; lane entries are == now. The
                # heap head wins only on a same-time, smaller-eid tie.
                if head[0] < first[0] or (
                    head[0] == first[0] and head[1] < first[1]
                ):
                    entry = heappop(heap)
                else:
                    entry = imm.popleft()
            else:
                entry = imm.popleft()
        else:
            entry = heappop(self._heap)
        when, __, event, thunk = entry
        self.now = when
        if event is None:
            thunk()
            return
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queues drain or simulated time passes ``until``.

        Boundary semantics (pinned by tests): entries scheduled exactly
        at ``until`` still run; the first entry strictly later does not,
        and the clock is left at ``until`` — also when the queues drain
        before reaching it.
        """
        imm = self._imm
        heap = self._heap
        if until is None:
            # Drain loop with the step body inlined: one call frame per
            # event saved, identical (when, eid) pop order.
            while True:
                if imm:
                    if heap:
                        head = heap[0]
                        first = imm[0]
                        if head[0] < first[0] or (
                            head[0] == first[0] and head[1] < first[1]
                        ):
                            entry = heappop(heap)
                        else:
                            entry = imm.popleft()
                    else:
                        entry = imm.popleft()
                elif heap:
                    entry = heappop(heap)
                else:
                    return
                when, __, event, thunk = entry
                self.now = when
                if event is None:
                    thunk()
                    continue
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
        else:
            step = self.step
            while imm or heap:
                # The lane front (== now) is never later than the heap
                # head, so it is the next event time when non-empty.
                when = imm[0][0] if imm else heap[0][0]
                if when > until:
                    self.now = until
                    return
                step()
            if until > self.now:
                self.now = until

    def run_process(self, generator: Generator) -> Any:
        """Convenience: run a generator to completion and return its value."""
        process = self.process(generator)
        self.run()
        if not process.triggered:
            raise RuntimeError("process did not finish (deadlock?)")
        if not process._ok:
            raise process._value
        return process._value
