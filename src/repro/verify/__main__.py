"""A bounded verification smoke run: ``python -m repro.verify``.

The CI seed matrix calls this with a handful of seeds: one sharded and
one geo chaos-search schedule plus the planted-bug detection (no
shrinking — the full E19 run owns that), printed as canonical verdict
lines. Exit status 0 means every verdict came out as the model
predicts — searched schedules consistent, the planted async bug caught,
quorum and sync clean on the identical schedule; 2 means a verdict
went the wrong way, and the printed lines are the evidence.
"""

from __future__ import annotations

import argparse
import sys

from repro.eval.verify import (
    _planted_mode,
    _run_geo_schedule,
    _run_sharded_schedule,
    PB_T_HEAL,
    PB_T_KILL,
    PRIMARY,
    REGIONS,
)
from repro.georep import Consistency
from repro.verify.nemesis import primary_kill_plan


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="bounded consistency-verification smoke run",
    )
    parser.add_argument("--seed", type=int, default=23,
                        help="schedule seed (default 23)")
    parser.add_argument("--schedules", type=int, default=1,
                        help="chaos-search schedules per stack (default 1)")
    options = parser.parse_args(argv)

    failures = 0
    for index in range(options.schedules):
        verdict = _run_sharded_schedule(options.seed, index)
        print(verdict.line())
        if not verdict.clean:
            failures += 1
    for mode in (Consistency.QUORUM, Consistency.SYNC):
        for index in range(options.schedules):
            verdict = _run_geo_schedule(options.seed, index, mode)
            print(verdict.line())
            if not verdict.clean:
                failures += 1

    plan = primary_kill_plan(options.seed, REGIONS, PRIMARY,
                             PB_T_KILL, PB_T_HEAL)
    for mode in (Consistency.ASYNC, Consistency.QUORUM, Consistency.SYNC):
        outcome = _planted_mode(plan, mode, options.seed)
        print(outcome.line())
        caught = not outcome.linearizable
        if caught != (mode is Consistency.ASYNC):
            failures += 1

    verdict = "ok" if failures == 0 else f"FAILED ({failures} wrong verdicts)"
    print(f"smoke seed={options.seed} {verdict}")
    return 0 if failures == 0 else 2


if __name__ == "__main__":
    sys.exit(main())
