"""Consistency verification: histories, checkers, chaos search, shrinking.

The paper's blueprint stands or falls on a claim no single scripted
scenario can establish: that a CPU-free data plane keeps its consistency
contract *under faults it did not script*. This package turns the
deterministic simulator into a verification engine, in four parts:

* :mod:`repro.verify.history` — record what *clients observed*: every
  invoke/ok/fail outcome on the simulated clock, including the
  indeterminate ones (a timed-out write may or may not have happened).
* :mod:`repro.verify.linearizability` — check each key's observed
  history against the sequential KV-register model (Wing & Gong-style
  search; per-key independence is the P-compositionality that keeps it
  tractable), plus the cheaper whole-history invariants: zero lost
  acknowledged writes, no divergence after heal, bounded staleness.
* :mod:`repro.verify.nemesis` — *search* the fault space: seeded,
  randomized :class:`~repro.faults.FaultPlan` compositions (partitions,
  WAN windows, stuck dies, mid-migration kills) layered over live
  workload. Every schedule is pure data, so any violation replays
  byte-identically from its seed.
* :mod:`repro.verify.shrink` — delta-debug a violating fault schedule
  down to a minimal reproducer: drop specs ddmin-style, then narrow the
  surviving windows, re-running the deterministic scenario each step.

E19 (:mod:`repro.eval.verify`) drives the whole loop and demonstrates it
end to end: async-consistency geo writes under a partition produce a
non-linearizable history that the checker catches and the shrinker
reduces, while quorum/sync survive the identical schedule.
"""

from repro.verify.history import HistoryRecorder, Op, OpStatus, PendingOp
from repro.verify.invariants import (
    bounded_staleness,
    final_state_check,
    zero_lost_acks,
)
from repro.verify.linearizability import (
    CheckResult,
    KeyResult,
    check_history,
    check_register,
)
from repro.verify.shrink import ShrinkResult, shrink_plan

__all__ = [
    "CheckResult",
    "HistoryRecorder",
    "KeyResult",
    "Op",
    "OpStatus",
    "PendingOp",
    "ShrinkResult",
    "bounded_staleness",
    "check_history",
    "check_register",
    "final_state_check",
    "shrink_plan",
    "zero_lost_acks",
]
