"""Client-observed operation histories on the simulated clock.

A history is the *outside* view of the system: what each client invoked,
when, and what it saw come back. Consistency is a property of exactly
this record — the servers' internal state is evidence, not verdict. The
model here is Jepsen's: an operation is an interval ``[invoked,
completed]`` with one of three outcomes:

* ``OK`` — the client got an answer; the op definitely took effect (for
  writes) or definitely returned that value (for reads).
* ``FAIL`` — the client got a definite error *before* the op could take
  effect (a refused read). Failed ops are excluded from checking.
* ``INDETERMINATE`` — a timeout or degraded error on a write: the ack
  was lost, but the write may have landed. The checker must allow the
  op to take effect at any point after its invocation *or never* —
  collapsing this to "failed" is how real systems lose acked data
  silently.

Recorders hand out :class:`PendingOp` tokens at invocation;
the client resolves each exactly once. Histories render to canonical
bytes (:meth:`HistoryRecorder.canonical_bytes`), so a same-seed rerun
is byte-identical — the property chaos search and shrinking lean on.
"""

from __future__ import annotations

import enum
import hashlib
import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import ConfigurationError

__all__ = ["HistoryRecorder", "Op", "OpStatus", "PendingOp"]


class OpStatus(enum.Enum):
    """How an invoked operation resolved, from the client's seat."""

    OK = "ok"
    FAIL = "fail"
    INDETERMINATE = "indeterminate"


@dataclass(frozen=True)
class Op:
    """One completed client operation (a closed invoke/complete interval).

    Attributes:
        index: per-recorder sequence number (invocation order).
        client: name of the invoking client.
        action: ``"r"`` (get), ``"w"`` (put) or ``"d"`` (delete).
        key: the key operated on.
        value: the value written, or the value a read returned
            (``None`` for a miss / a delete).
        status: OK / FAIL / INDETERMINATE.
        invoked / completed: simulated-time interval bounds. An
            indeterminate or still-open op completes at ``+inf``: no
            later op is ever constrained to follow it.
        stamp: the server-assigned LWW stamp for acknowledged geo
            writes (``None`` elsewhere) — lets the lost-ack invariant
            rank concurrent writes exactly as the system did.
        staleness: for reads served under an explicit staleness bound
            (follower reads), the staleness the server reported.
            Such reads are checked against the bound, not against
            linearizability — bounded staleness is their contract.
    """

    index: int
    client: str
    action: str
    key: bytes
    value: Optional[bytes]
    status: OpStatus
    invoked: float
    completed: float
    stamp: Optional[float] = None
    staleness: Optional[float] = None

    def line(self) -> str:
        """Canonical one-line rendering (stable across runs and seeds)."""
        value = self.value.hex() if self.value is not None else "-"
        extra = ""
        if self.stamp is not None:
            extra += f" stamp={self.stamp!r}"
        if self.staleness is not None:
            extra += f" staleness={self.staleness!r}"
        return (
            f"{self.index} {self.client} {self.action} {self.key.hex()} "
            f"{value} {self.status.value} inv={self.invoked!r} "
            f"ret={self.completed!r}{extra}"
        )


class PendingOp:
    """An invoked-but-unresolved operation; resolve it exactly once."""

    def __init__(self, recorder: "HistoryRecorder", index: int, client: str,
                 action: str, key: bytes, value: Optional[bytes],
                 invoked: float):
        self._recorder = recorder
        self.index = index
        self.client = client
        self.action = action
        self.key = key
        self.value = value
        self.invoked = invoked
        self.resolved = False

    def _close(self, status: OpStatus, value: Optional[bytes],
               completed: float, stamp: Optional[float],
               staleness: Optional[float]) -> Op:
        if self.resolved:
            raise ConfigurationError(
                f"operation {self.index} resolved twice"
            )
        self.resolved = True
        op = Op(self.index, self.client, self.action, self.key, value,
                status, self.invoked, completed, stamp, staleness)
        self._recorder._closed(op)
        return op

    def ok(self, value: Optional[bytes] = None, *,
           stamp: Optional[float] = None,
           staleness: Optional[float] = None) -> Op:
        """The op definitely happened; for reads, *value* is what it saw."""
        value = value if self.action == "r" else self.value
        return self._close(OpStatus.OK, value, self._recorder.now(),
                           stamp, staleness)

    def fail(self) -> Op:
        """The op definitely did *not* take effect (definite error)."""
        return self._close(OpStatus.FAIL, self.value, self._recorder.now(),
                           None, None)

    def indeterminate(self) -> Op:
        """The outcome is unknown (lost ack): it may have taken effect."""
        return self._close(OpStatus.INDETERMINATE, self.value, math.inf,
                           None, None)


class HistoryRecorder:
    """Collects one run's client-observed operations.

    One recorder per scenario; every client under test shares it, so op
    indices give a global invocation order. Clients call
    :meth:`invoke` before the attempt and resolve the returned
    :class:`PendingOp` with the outcome.
    """

    def __init__(self, clock):
        self._clock = clock
        self.ops: List[Op] = []
        self._next_index = 0
        self._open: Dict[int, PendingOp] = {}

    def now(self) -> float:
        return self._clock.now

    def invoke(self, client: str, action: str, key: bytes,
               value: Optional[bytes] = None) -> PendingOp:
        if action not in ("r", "w", "d"):
            raise ConfigurationError(f"unknown history action {action!r}")
        pending = PendingOp(self, self._next_index, client, action,
                            bytes(key), value, self._clock.now)
        self._open[pending.index] = pending
        self._next_index += 1
        return pending

    def _closed(self, op: Op) -> None:
        self._open.pop(op.index, None)
        self.ops.append(op)

    def close_open_ops(self) -> int:
        """Mark every still-open op indeterminate (end-of-run cleanup).

        A client process parked on a dead replica when the scenario's
        horizon hits is exactly a lost ack: the op was invoked, no
        answer ever came. Returns how many ops were closed.
        """
        pending = sorted(self._open.values(), key=lambda p: p.index)
        for open_op in pending:
            open_op.indeterminate()
        return len(pending)

    # -- views ---------------------------------------------------------------
    def by_key(self) -> Dict[bytes, List[Op]]:
        """Ops grouped per key, each list in invocation order."""
        grouped: Dict[bytes, List[Op]] = {}
        for op in sorted(self.ops, key=lambda o: o.index):
            grouped.setdefault(op.key, []).append(op)
        return grouped

    def counts(self) -> Dict[str, int]:
        out = {"ok": 0, "fail": 0, "indeterminate": 0}
        for op in self.ops:
            out[op.status.value] += 1
        return out

    # -- canonical form ------------------------------------------------------
    def canonical_bytes(self) -> bytes:
        """The history as canonical bytes, one op per line, by index."""
        lines = [op.line() for op in sorted(self.ops, key=lambda o: o.index)]
        return ("\n".join(lines) + "\n").encode() if lines else b""

    def digest(self) -> str:
        """Short stable digest of the canonical history."""
        return hashlib.sha256(self.canonical_bytes()).hexdigest()[:16]
