"""A per-key linearizability checker for the KV register model.

Linearizability asks: does there exist a single sequential order of the
observed operations that (a) respects real time — if op *p* completed
before op *o* was invoked, *p* comes first — and (b) is legal for the
data type — every read returns the latest preceding write? This module
answers it with the classic Wing & Gong search: repeatedly pick a
*minimal* op (one no other pending op completed before), apply it to the
model register, and backtrack on contradiction. Two standard refinements
keep it tractable:

* **P-compositionality**: a KV store whose keys are independent is
  linearizable iff each key's sub-history is. We check per key, turning
  one exponential search over N ops into many small ones
  (:func:`check_history`).
* **Memoization** (Lowe): two search branches that linearized different
  *orders* of the same *set* of ops into the same register value are
  equivalent; cache ``(remaining-set, value)`` and prune.

Indeterminate ops (lost acks) are the subtle part: an unacknowledged
write is allowed to take effect at any point after its invocation *or
never*. It enters the search as a never-completing op (no one is
ordered after it) that the search may linearize or leave unlinearized —
acceptance only requires every *acknowledged* op to be placed.

On violation the checker reports a witness: the first completed
operation (in completion order) whose inclusion makes the sub-history
unsatisfiable — invariably the stale read in the planted-bug demo.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

from repro.verify.history import HistoryRecorder, Op, OpStatus

__all__ = [
    "BudgetExceeded",
    "CheckResult",
    "KeyResult",
    "check_history",
    "check_register",
]

#: Search-state budget per key; generous for the op counts E19 produces
#: (tens of ops per key), a hard stop against pathological histories.
DEFAULT_MAX_STATES = 500_000


class BudgetExceeded(Exception):
    """The search exceeded its state budget — verdict *unknown*, not OK."""


@dataclass(frozen=True)
class _Entry:
    """One op as the search sees it."""

    op: Op
    #: Effect on the register when linearized (None = absent/deleted).
    effect: Optional[bytes]
    read: bool
    inv: float
    ret: float
    #: Acknowledged ops must be linearized; indeterminate ones may be.
    required: bool


def _entries(ops: Iterable[Op]) -> List[_Entry]:
    """The checkable subset of *ops*, as search entries.

    Dropped: definite failures (never took effect), timed-out reads (no
    observed value, no effect), and staleness-bounded follower reads
    (their contract is the bound, checked by
    :func:`repro.verify.invariants.bounded_staleness`, not
    linearizability).
    """
    entries = []
    for op in ops:
        if op.status is OpStatus.FAIL:
            continue
        if op.staleness is not None:
            continue
        if op.action == "r":
            if op.status is not OpStatus.OK:
                continue
            entries.append(_Entry(op, op.value, True, op.invoked,
                                  op.completed, True))
        else:
            effect = op.value if op.action == "w" else None
            required = op.status is OpStatus.OK
            ret = op.completed if required else math.inf
            entries.append(_Entry(op, effect, False, op.invoked, ret,
                                  required))
    return entries


@dataclass
class KeyResult:
    """Verdict for one key's sub-history."""

    key: bytes
    ok: bool
    checked_ops: int
    states: int
    #: On violation: the first completed op whose inclusion makes the
    #: sub-history unsatisfiable (by completion order).
    witness: Optional[Op] = None
    #: On success: op indices in one legal sequential order.
    linearization: List[int] = field(default_factory=list)

    def line(self) -> str:
        verdict = "linearizable" if self.ok else "NON-LINEARIZABLE"
        witness = (
            f" witness=[{self.witness.line()}]" if self.witness else ""
        )
        return (f"key={self.key.hex()} {verdict} ops={self.checked_ops} "
                f"states={self.states}{witness}")


@dataclass
class CheckResult:
    """Whole-history verdict: every key linearizable, or the violators."""

    ok: bool
    keys: List[KeyResult]
    states: int

    @property
    def violations(self) -> List[KeyResult]:
        return [result for result in self.keys if not result.ok]

    def lines(self) -> List[str]:
        return [result.line() for result in self.keys]


def _search(entries: List[_Entry], initial: Optional[bytes],
            budget: List[int]) -> Optional[List[int]]:
    """One Wing & Gong search; a linearization (entry indexes) or None."""
    count = len(entries)
    if count == 0:
        return []
    required_mask = 0
    for i, entry in enumerate(entries):
        if entry.required:
            required_mask |= 1 << i
    seen = set()
    order: List[int] = []

    def recurse(remaining: int, value: Optional[bytes]) -> bool:
        if remaining & required_mask == 0:
            return True
        state = (remaining, value)
        if state in seen:
            return False
        seen.add(state)
        budget[0] -= 1
        if budget[0] < 0:
            raise BudgetExceeded(
                f"linearizability search exceeded its state budget "
                f"({len(entries)} ops)"
            )
        # Minimal ops: nothing still remaining completed before their
        # invocation. min() over the remaining completion times decides
        # membership in O(1) per op.
        min_ret = math.inf
        mask = remaining
        while mask:
            low = mask & -mask
            ret = entries[low.bit_length() - 1].ret
            if ret < min_ret:
                min_ret = ret
            mask ^= low
        mask = remaining
        while mask:
            low = mask & -mask
            index = low.bit_length() - 1
            entry = entries[index]
            mask ^= low
            if entry.inv > min_ret:
                continue  # some remaining op precedes it in real time
            if entry.read:
                if entry.effect != value:
                    continue  # would read the wrong value here
                order.append(index)
                if recurse(remaining ^ low, value):
                    return True
                order.pop()
            else:
                order.append(index)
                if recurse(remaining ^ low, entry.effect):
                    return True
                order.pop()
        return False

    full = (1 << count) - 1
    if recurse(full, initial):
        return list(order)
    return None


def _prefix_at(entries: List[_Entry], cutoff: float) -> List[_Entry]:
    """The history as it looked at *cutoff*: ops invoked by then, with
    ops still open at *cutoff* demoted to indeterminate (writes) or
    dropped (reads — no observed value yet, no constraint)."""
    prefix = []
    for entry in entries:
        if entry.inv > cutoff:
            continue
        if entry.ret <= cutoff:
            prefix.append(entry)
        elif not entry.read:
            prefix.append(_Entry(entry.op, entry.effect, False, entry.inv,
                                 math.inf, False))
    return prefix


def check_register(ops: Iterable[Op], *, initial: Optional[bytes] = None,
                   max_states: int = DEFAULT_MAX_STATES,
                   key: bytes = b"") -> KeyResult:
    """Check one key's ops against the sequential register model."""
    entries = _entries(ops)
    budget = [max_states]
    order = _search(entries, initial, budget)
    states = max_states - budget[0]
    if order is not None:
        return KeyResult(key, True, len(entries), states,
                         linearization=[entries[i].op.index for i in order])
    # Non-linearizable: find the earliest completion whose prefix
    # already fails — the op to stare at in the post-mortem. Each
    # prefix search gets a fresh budget; `states` reports the main
    # search only.
    witness = None
    for cutoff in sorted({e.ret for e in entries if math.isfinite(e.ret)}):
        prefix = _prefix_at(entries, cutoff)
        if _search(prefix, initial, [max_states]) is None:
            closers = [e.op for e in entries if e.ret == cutoff]
            witness = min(closers, key=lambda op: op.index)
            break
    return KeyResult(key, False, len(entries), states, witness=witness)


def check_history(
    history: Union[HistoryRecorder, Iterable[Op]],
    *,
    initial: Optional[bytes] = None,
    max_states: int = DEFAULT_MAX_STATES,
) -> CheckResult:
    """Check a whole multi-key history, one register search per key.

    P-compositionality: keys are independent in every stack under test
    (hash-sharded stores, per-key LWW replication), so the history is
    linearizable iff every per-key sub-history is.
    """
    ops = history.ops if isinstance(history, HistoryRecorder) else history
    grouped: Dict[bytes, List[Op]] = {}
    for op in sorted(ops, key=lambda o: o.index):
        grouped.setdefault(op.key, []).append(op)
    results = []
    total_states = 0
    for key in sorted(grouped):
        result = check_register(grouped[key], initial=initial,
                                max_states=max_states, key=key)
        total_states += result.states
        results.append(result)
    ok = all(result.ok for result in results)
    return CheckResult(ok, results, total_states)
