"""Shrink a violating fault schedule to a minimal reproducer.

A chaos-search hit usually arrives wrapped in noise: five fault windows
layered over the run, of which one edge cut actually produced the
non-linearizable read. Because every scenario here is a *deterministic
function of (plan, seed)*, shrinking is just re-running that function on
candidate sub-plans — no flaky reproduction step, ever.

Two passes, in the delta-debugging tradition:

1. **ddmin over specs** — try dropping chunks of the plan's specs
   (halves, then quarters, ...), keeping any reduction that still
   violates, until no single spec can be removed.
2. **window narrowing** — for each surviving windowed spec, repeatedly
   halve the window from the end and then from the start, keeping every
   half that still violates.

The result is 1-minimal per spec (removing any one remaining spec makes
the violation vanish) with windows locally tight, plus the exact replay
count — the cost of the shrink in scenario re-runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.faults.plan import FaultPlan, FaultSpec

__all__ = ["ShrinkResult", "shrink_plan"]

#: Stop narrowing a window below this duration (seconds); windows
#: shorter than a couple of shipper intervals stop meaning anything.
MIN_WINDOW = 2e-3


def _rebuild(seed: int, specs: Sequence[FaultSpec]) -> FaultPlan:
    """A fresh plan with exactly *specs*, preserving their order.

    The injector keys each spec's RNG on ``{seed}/{name}``, so a
    sub-plan replays the surviving specs' draws bit-for-bit — the
    property that makes candidate runs trustworthy evidence.
    """
    plan = FaultPlan(seed=seed)
    for spec in specs:
        plan.add(spec)
    return plan


@dataclass
class ShrinkResult:
    """A minimal violating plan and what it cost to find."""

    plan: FaultPlan
    runs: int
    removed_specs: int
    narrowed_windows: int

    def line(self) -> str:
        return (
            f"shrink runs={self.runs} removed={self.removed_specs} "
            f"narrowed={self.narrowed_windows} "
            f"minimal_specs={len(self.plan.specs)}"
        )


def shrink_plan(
    plan: FaultPlan,
    violates: Callable[[FaultPlan], bool],
    *,
    max_runs: int = 64,
    min_window: float = MIN_WINDOW,
) -> ShrinkResult:
    """Delta-debug *plan* down to a minimal still-violating reproducer.

    Args:
        plan: the violating fault plan chaos search found.
        violates: re-runs the deterministic scenario under a candidate
            plan and reports whether the violation still occurs. Must be
            a pure function of the plan (same plan => same verdict).
        max_runs: hard cap on scenario re-runs across both passes.
        min_window: stop narrowing windows below this duration.
    """
    runs = [0]

    def attempt(specs: Sequence[FaultSpec]) -> bool:
        if runs[0] >= max_runs:
            return False
        runs[0] += 1
        return violates(_rebuild(plan.seed, specs))

    # -- pass 1: ddmin over the spec list ---------------------------------
    specs: List[FaultSpec] = list(plan.specs)
    removed = 0
    chunks = 2
    while len(specs) >= 2:
        size = math.ceil(len(specs) / chunks)
        reduced = False
        for start in range(0, len(specs), size):
            candidate = specs[:start] + specs[start + size:]
            if not candidate:
                continue
            if attempt(candidate):
                removed += len(specs) - len(candidate)
                specs = candidate
                chunks = max(chunks - 1, 2)
                reduced = True
                break
        if not reduced:
            if chunks >= len(specs):
                break
            chunks = min(len(specs), chunks * 2)
        if runs[0] >= max_runs:
            break

    # -- pass 2: narrow surviving windows ---------------------------------
    narrowed = 0
    for index, spec in enumerate(list(specs)):
        if spec.window is None:
            continue
        start, end = spec.window
        # Halve from the end, then from the start, keeping halves that
        # still violate. Each accepted halving tightens the reproducer.
        for side in ("end", "start"):
            while end - start > min_window and runs[0] < max_runs:
                if side == "end":
                    trial = (start, max(start + (end - start) / 2,
                                        start + min_window))
                else:
                    trial = (min(end - (end - start) / 2,
                                 end - min_window), end)
                if trial == (start, end):
                    break
                candidate = list(specs)
                candidate[index] = FaultSpec(
                    spec.name, spec.component, spec.kind,
                    probability=spec.probability, window=trial,
                    max_fires=spec.max_fires,
                )
                if attempt(candidate):
                    start, end = trial
                    specs = candidate
                    narrowed += 1
                else:
                    break

    return ShrinkResult(_rebuild(plan.seed, specs), runs[0], removed,
                        narrowed)
