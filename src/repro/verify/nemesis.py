"""The chaos-search nemesis: seeded, randomized fault-plan composition.

A *nemesis* (the Jepsen term) is the adversary that injects faults while
the workload runs. Here it is a pure plan generator: given a schedule
seed it draws a randomized composition of fault windows — node
outages, power cuts, stuck flash dies, lossy uplinks, mid-migration
kills for the sharded stack; WAN partition windows for the geo stack —
as plain :class:`~repro.faults.FaultPlan` data. Nothing fires at
composition time; the same seed always composes the same schedule, so
chaos search is an enumeration of deterministic scenarios, and any hit
replays (and shrinks) exactly.

Layers are built as separate plans and composed with
:meth:`~repro.faults.FaultPlan.merge`, which name-sorts the union —
composition order never changes the schedule.

The RNG is ``random.Random(f"verify/nemesis/{seed}")``: string seeding
hashes with SHA-512 internally, so schedules are identical across
``PYTHONHASHSEED`` values — the cross-hash-seed CI diff depends on it.

Geo plans only ever cut the *primary's* links symmetrically (both
directions of every primary edge at once). That is deliberate; the
excluded shapes are real — and known — anomaly classes of this stack,
distinct from the planted async demonstration:

* under an *asymmetric* primary cut a quorum write can be acknowledged
  via one follower while clients fail over to the other — genuinely
  non-linearizable;
* a single-direction *follower* cut drops only responses, so a client
  whose call timed out replays a write that already applied — and the
  replayed/late attempt can re-apply it with a fresh LWW stamp *after*
  another client's acknowledged write, a duplicate-delivery anomaly
  the verifier surfaced while this schedule space was being built.

Symmetric primary cuts admit neither (requests to the dead primary
never arrive, so abandoned attempts leave no late-applying ghosts),
which is what makes "quorum and sync pass every schedule" a meaningful
verdict rather than a coin flip over known bugs.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.faults.plan import FaultKind, FaultPlan

__all__ = ["geo_plan", "primary_kill_plan", "sharded_plan"]


def _window(rng: random.Random, lo: float, hi: float,
            min_dur: float, max_dur: float) -> tuple:
    """A random (start, end) window inside [lo, hi]."""
    duration = rng.uniform(min_dur, max_dur)
    start = rng.uniform(lo, max(lo, hi - duration))
    return (start, start + duration)


def sharded_plan(
    seed: int,
    addresses: Sequence[str],
    *,
    horizon: float,
    uplink: str = "client.uplink",
    migration_at: Optional[float] = None,
) -> FaultPlan:
    """A randomized schedule against one sharded KV cluster.

    Composes (seeded per schedule):

    * one node-outage window on a random DPU (the controller maps it to
      a switch blackhole, E13-style);
    * with probability 1/2, one fire-once power cut on another DPU —
      down for the rest of the run;
    * one stuck-die window on a random DPU's flash (latency, not loss);
    * a lossy client-uplink window (bounded probabilistic frame drops);
    * when *migration_at* is given, a kill window on the first DPU
      timed to land mid-``shard.handoff``.
    """
    rng = random.Random(f"verify/nemesis/{seed}")
    addresses = list(addresses)

    outages = FaultPlan(seed=seed)
    victim = rng.choice(addresses)
    outages.windowed(
        "node-outage", victim, FaultKind.NODE_DOWN,
        *_window(rng, 0.15 * horizon, 0.7 * horizon,
                 0.08 * horizon, 0.2 * horizon),
    )
    if rng.random() < 0.5:
        survivor_pool = [a for a in addresses if a != victim]
        outages.once(
            "power-cut", rng.choice(survivor_pool), FaultKind.POWER_LOSS,
            at=rng.uniform(0.5 * horizon, 0.8 * horizon),
        )

    devices = FaultPlan(seed=seed)
    stuck = rng.choice(addresses)
    devices.windowed(
        "die-stuck", f"{stuck}-flash.flash", FaultKind.DIE_STUCK,
        *_window(rng, 0.1 * horizon, 0.8 * horizon,
                 0.1 * horizon, 0.25 * horizon),
    )
    devices.probabilistic(
        "lossy-uplink", uplink, FaultKind.FRAME_DROP,
        probability=rng.uniform(0.004, 0.015),
        window=_window(rng, 0.0, horizon, 0.3 * horizon, 0.6 * horizon),
        max_fires=rng.randint(4, 10),
    )

    plan = outages.merge(devices)
    if migration_at is not None:
        kills = FaultPlan(seed=seed)
        kills.windowed(
            "migration-kill", addresses[0], FaultKind.NODE_DOWN,
            migration_at + 0.5e-3, migration_at + 0.5e-3 + 0.06 * horizon,
        )
        plan = plan.merge(kills)
    return plan


def _primary_edges(regions: Sequence[str], primary: str):
    for region in regions:
        if region != primary:
            yield (primary, region)
            yield (region, primary)


def primary_kill_plan(seed: int, regions: Sequence[str], primary: str,
                      start: float, end: float,
                      prefix: str = "kill") -> FaultPlan:
    """Symmetrically cut every WAN edge of *primary* over one window."""
    plan = FaultPlan(seed=seed)
    for src, dst in _primary_edges(regions, primary):
        plan.wan_partition(f"{prefix}-{src}-{dst}", src, dst, start, end)
    return plan


def geo_plan(
    seed: int,
    regions: Sequence[str],
    primary: str,
    *,
    horizon: float,
    windows: int = 2,
) -> FaultPlan:
    """A randomized WAN schedule against one geo cluster.

    Composes up to *windows* non-overlapping symmetric primary-kill
    windows (see the module docstring for why the space is exactly
    this). Sync schedules still exercise the checker's indeterminate
    handling hard — every write invoked inside a window times out
    everywhere — without ever flagging mere unavailability.
    """
    rng = random.Random(f"verify/nemesis/{seed}")

    kills = FaultPlan(seed=seed)
    cursor = 0.15 * horizon
    for index in range(windows):
        if cursor >= 0.65 * horizon:
            break
        start, end = _window(rng, cursor, min(cursor + 0.25 * horizon,
                                              0.65 * horizon),
                             0.05 * horizon, 0.12 * horizon)
        for src, dst in _primary_edges(regions, primary):
            kills.wan_partition(
                f"kill{index}-{src}-{dst}", src, dst, start, end,
            )
        cursor = end + 0.05 * horizon
    return kills
