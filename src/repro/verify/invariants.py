"""Cheap whole-history invariants that complement the per-key search.

Linearizability is the strong check; these are the fast, targeted ones
that name the failure directly when they fire:

* :func:`zero_lost_acks` / :func:`final_state_check` — every
  acknowledged write whose key saw no later (or indeterminate)
  overwrite must be readable in the final swept state, and after a heal
  every replica must agree on it. "Lost acked write" and "divergence
  after heal" are the two headline failure modes of replicated stores.
* :func:`bounded_staleness` — follower reads served under an explicit
  staleness bound must never exceed it; that bound *is* their contract
  (they are exempt from the linearizability search for the same
  reason).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.verify.history import HistoryRecorder, Op, OpStatus

__all__ = [
    "FinalStateResult",
    "bounded_staleness",
    "final_state_check",
    "zero_lost_acks",
]


def _expected_finals(ops: Iterable[Op]) -> Dict[bytes, Tuple[Op, bool]]:
    """Per key: the last acknowledged write and whether it is *binding*.

    The winner ranks by server LWW stamp when present, else invocation
    order. It is binding only if the key saw no indeterminate write at
    all: an unacked write may have landed — possibly *after* the winner,
    since a delayed request picks up its stamp on arrival — so either
    final value would be legal and the key is skipped, not guessed at.
    """
    finals: Dict[bytes, Tuple[Op, bool]] = {}
    writes: Dict[bytes, List[Op]] = {}
    for op in ops:
        if op.action in ("w", "d") and op.status is not OpStatus.FAIL:
            writes.setdefault(op.key, []).append(op)
    for key, key_writes in writes.items():
        acked = [op for op in key_writes if op.status is OpStatus.OK]
        if not acked:
            continue
        winner = max(
            acked,
            key=lambda op: (op.stamp, op.index) if op.stamp is not None
            else (-1.0, op.index),
        )
        binding = not any(
            op.status is OpStatus.INDETERMINATE for op in key_writes
        )
        finals[key] = (winner, binding)
    return finals


@dataclass
class FinalStateResult:
    """Outcome of the post-run sweep checks."""

    lost: List[str] = field(default_factory=list)
    diverged: List[str] = field(default_factory=list)
    checked: int = 0
    skipped: int = 0

    @property
    def ok(self) -> bool:
        return not self.lost and not self.diverged

    def lines(self) -> List[str]:
        return sorted(self.lost) + sorted(self.diverged)


def zero_lost_acks(history: HistoryRecorder,
                   final: Dict[bytes, Optional[bytes]]) -> FinalStateResult:
    """No acknowledged write silently dropped: check one final sweep."""
    return final_state_check(history, {"": final})


def final_state_check(
    history: HistoryRecorder,
    sweeps: Dict[str, Dict[bytes, Optional[bytes]]],
) -> FinalStateResult:
    """Check final swept state(s) against the history's binding writes.

    Args:
        history: the run's client-observed history.
        sweeps: per-replica (or per-region) final ``key -> value`` maps,
            read *after* faults healed and replication quiesced.

    Lost: a binding acknowledged write whose value a sweep does not
    hold. Diverged: two sweeps that disagree on any key — heal-time
    convergence is unconditional, binding or not.
    """
    result = FinalStateResult()
    finals = _expected_finals(history.ops)
    names = sorted(sweeps)
    for key, (winner, binding) in sorted(finals.items()):
        if not binding:
            result.skipped += 1
            continue
        result.checked += 1
        expected = winner.value if winner.action == "w" else None
        for name in names:
            got = sweeps[name].get(key)
            if got != expected:
                where = f" at {name}" if name else ""
                result.lost.append(
                    f"lost-ack{where}: key={key.hex()} "
                    f"expected={expected.hex() if expected else '-'} "
                    f"got={got.hex() if got else '-'} "
                    f"write=[{winner.line()}]"
                )
    if len(names) > 1:
        keys = sorted({key for sweep in sweeps.values() for key in sweep})
        for key in keys:
            values = {name: sweeps[name].get(key) for name in names}
            distinct = set(values.values())
            if len(distinct) > 1:
                detail = " ".join(
                    f"{name}={(value.hex() if value else '-')}"
                    for name, value in sorted(values.items())
                )
                result.diverged.append(
                    f"diverged: key={key.hex()} {detail}"
                )
    return result


def bounded_staleness(history: HistoryRecorder, bound: float) -> List[str]:
    """Every staleness-tagged read must respect *bound* (seconds)."""
    violations = []
    for op in sorted(history.ops, key=lambda o: o.index):
        if op.staleness is not None and op.staleness > bound:
            violations.append(
                f"staleness: op={op.index} key={op.key.hex()} "
                f"served={op.staleness!r} bound={bound!r}"
            )
    return violations
