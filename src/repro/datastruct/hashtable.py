"""A bucketed hash table with byte serialization.

The lookup-table abstraction of §2.4's network-attached SSDs (cf. KV-SSD):
fixed bucket array, chained entries, whole-structure serialization so a
table can be persisted into a durable segment and recovered.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

from repro.common.errors import CapacityError, ProtocolError

_MAGIC = b"HTBL"


def _fnv1a(data: bytes) -> int:
    value = 0xCBF29CE484222325
    for byte in data:
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFF_FFFF_FFFF_FFFF
    return value


class BucketHashTable:
    """Chained-bucket hash map of bytes -> bytes."""

    def __init__(self, bucket_count: int = 64, max_entries: int = 100_000):
        if bucket_count < 1:
            raise ProtocolError("need at least one bucket")
        self.bucket_count = bucket_count
        self.max_entries = max_entries
        self._buckets: List[List[Tuple[bytes, bytes]]] = [
            [] for _ in range(bucket_count)
        ]
        self._count = 0

    def _bucket(self, key: bytes) -> List[Tuple[bytes, bytes]]:
        return self._buckets[_fnv1a(key) % self.bucket_count]

    def put(self, key: bytes, value: bytes) -> None:
        key, value = bytes(key), bytes(value)
        bucket = self._bucket(key)
        for index, (existing, __) in enumerate(bucket):
            if existing == key:
                bucket[index] = (key, value)
                return
        if self._count >= self.max_entries:
            raise CapacityError("hash table full")
        bucket.append((key, value))
        self._count += 1

    def get(self, key: bytes) -> Optional[bytes]:
        key = bytes(key)
        for existing, value in self._bucket(key):
            if existing == key:
                return value
        return None

    def delete(self, key: bytes) -> bool:
        key = bytes(key)
        bucket = self._bucket(key)
        for index, (existing, __) in enumerate(bucket):
            if existing == key:
                bucket.pop(index)
                self._count -= 1
                return True
        return False

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        for bucket in self._buckets:
            yield from bucket

    def load_factor(self) -> float:
        return self._count / self.bucket_count

    # -- serialization -------------------------------------------------------
    def serialize(self) -> bytes:
        parts = [_MAGIC, struct.pack("<II", self.bucket_count, self._count)]
        for key, value in self.items():
            parts.append(struct.pack("<II", len(key), len(value)))
            parts.append(key)
            parts.append(value)
        return b"".join(parts)

    @classmethod
    def deserialize(cls, raw: bytes, max_entries: int = 100_000) -> "BucketHashTable":
        if raw[:4] != _MAGIC:
            raise ProtocolError("bad hash table image")
        bucket_count, count = struct.unpack_from("<II", raw, 4)
        table = cls(bucket_count=bucket_count, max_entries=max(max_entries, count))
        offset = 12
        for _ in range(count):
            key_len, value_len = struct.unpack_from("<II", raw, offset)
            offset += 8
            key = raw[offset : offset + key_len]
            offset += key_len
            value = raw[offset : offset + value_len]
            offset += value_len
            table.put(key, value)
        return table
