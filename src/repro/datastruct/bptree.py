"""A B+ tree over an explicit node store.

Nodes are addressed by integer ids through a :class:`NodeStore`; every
traversal step is a ``fetch`` — in memory it is free, on a disaggregated
store each fetch is a network round trip (paper §2.4: "pointer chasing over
B+ trees ... results in multiple network RTTs with significant performance
degradation"). ``search_path`` exposes the chased pointers so experiments
can count them.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.common.errors import ConfigurationError


@dataclass
class BPlusNode:
    """One node; ``children`` holds node ids (never object references)."""

    node_id: int
    is_leaf: bool
    keys: List[Any] = field(default_factory=list)
    children: List[int] = field(default_factory=list)  # internal nodes
    values: List[Any] = field(default_factory=list)  # leaves
    next_leaf: Optional[int] = None


class NodeStore:
    """Where nodes live; subclasses define fetch/store semantics."""

    def allocate(self) -> int:
        raise NotImplementedError

    def fetch(self, node_id: int) -> BPlusNode:
        raise NotImplementedError

    def store(self, node: BPlusNode) -> None:
        raise NotImplementedError


class InMemoryNodeStore(NodeStore):
    """Plain dict-backed store with fetch counting."""

    def __init__(self) -> None:
        self._nodes: Dict[int, BPlusNode] = {}
        self._next_id = 0
        self.fetches = 0
        self.stores = 0

    def allocate(self) -> int:
        node_id = self._next_id
        self._next_id += 1
        return node_id

    def fetch(self, node_id: int) -> BPlusNode:
        self.fetches += 1
        node = self._nodes.get(node_id)
        if node is None:
            raise KeyError(f"no node {node_id}")
        return node

    def store(self, node: BPlusNode) -> None:
        self.stores += 1
        self._nodes[node.node_id] = node


class BPlusTree:
    """Ordered map with range scans; order = max children per node."""

    def __init__(self, order: int = 16, store: Optional[NodeStore] = None):
        if order < 3:
            raise ConfigurationError("B+ tree order must be >= 3")
        self.order = order
        self.store = store if store is not None else InMemoryNodeStore()
        root = BPlusNode(self.store.allocate(), is_leaf=True)
        self.store.store(root)
        self.root_id = root.node_id
        self.size = 0

    # -- lookup ----------------------------------------------------------------
    def _walk(self, key: Any) -> Tuple[List[int], BPlusNode]:
        """Root-to-leaf walk; returns (visited node ids, leaf node)."""
        path = [self.root_id]
        node = self.store.fetch(self.root_id)
        while not node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            child_id = node.children[index]
            path.append(child_id)
            node = self.store.fetch(child_id)
        return path, node

    def search_path(self, key: Any) -> List[int]:
        """Node ids visited from root to the leaf responsible for ``key``."""
        return self._walk(key)[0]

    def get(self, key: Any) -> Optional[Any]:
        __, leaf = self._walk(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return None

    def __contains__(self, key: Any) -> bool:
        return self.get(key) is not None

    @property
    def height(self) -> int:
        """Levels from root to leaf (1 for a lone leaf)."""
        height = 1
        node = self.store.fetch(self.root_id)
        while not node.is_leaf:
            height += 1
            node = self.store.fetch(node.children[0])
        return height

    # -- mutation -------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> None:
        root = self.store.fetch(self.root_id)
        split = self._insert_into(root, key, value)
        if split is not None:
            middle_key, right_id = split
            new_root = BPlusNode(
                self.store.allocate(),
                is_leaf=False,
                keys=[middle_key],
                children=[self.root_id, right_id],
            )
            self.store.store(new_root)
            self.root_id = new_root.node_id

    def _insert_into(
        self, node: BPlusNode, key: Any, value: Any
    ) -> Optional[Tuple[Any, int]]:
        if node.is_leaf:
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value  # overwrite
            else:
                node.keys.insert(index, key)
                node.values.insert(index, value)
                self.size += 1
            self.store.store(node)
            if len(node.keys) >= self.order:
                return self._split_leaf(node)
            return None
        index = bisect.bisect_right(node.keys, key)
        child = self.store.fetch(node.children[index])
        split = self._insert_into(child, key, value)
        if split is None:
            return None
        middle_key, right_id = split
        node.keys.insert(index, middle_key)
        node.children.insert(index + 1, right_id)
        self.store.store(node)
        if len(node.children) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: BPlusNode) -> Tuple[Any, int]:
        mid = len(node.keys) // 2
        right = BPlusNode(
            self.store.allocate(),
            is_leaf=True,
            keys=node.keys[mid:],
            values=node.values[mid:],
            next_leaf=node.next_leaf,
        )
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        node.next_leaf = right.node_id
        self.store.store(node)
        self.store.store(right)
        return right.keys[0], right.node_id

    def _split_internal(self, node: BPlusNode) -> Tuple[Any, int]:
        mid = len(node.keys) // 2
        middle_key = node.keys[mid]
        right = BPlusNode(
            self.store.allocate(),
            is_leaf=False,
            keys=node.keys[mid + 1 :],
            children=node.children[mid + 1 :],
        )
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        self.store.store(node)
        self.store.store(right)
        return middle_key, right.node_id

    def delete(self, key: Any) -> bool:
        """Remove a key (leaves may underflow; no rebalancing, as in many
        production B+ trees that defer it to compaction)."""
        __, leaf = self._walk(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return False
        leaf.keys.pop(index)
        leaf.values.pop(index)
        self.store.store(leaf)
        self.size -= 1
        return True

    # -- scans ---------------------------------------------------------------
    def range(self, start: Any, end: Any) -> Iterator[Tuple[Any, Any]]:
        """Yield (key, value) for start <= key < end, via leaf chaining."""
        __, leaf = self._walk(start)
        while leaf is not None:
            for key, value in zip(leaf.keys, leaf.values):
                if key >= end:
                    return
                if key >= start:
                    yield key, value
            if leaf.next_leaf is None:
                return
            leaf = self.store.fetch(leaf.next_leaf)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        node = self.store.fetch(self.root_id)
        while not node.is_leaf:
            node = self.store.fetch(node.children[0])
        while True:
            yield from zip(node.keys, node.values)
            if node.next_leaf is None:
                return
            node = self.store.fetch(node.next_leaf)
