"""Extent trees: sorted logical-to-physical range maps.

The ext4-style file mapping structure: a file's logical byte ranges map to
physical block extents. The annotation-driven file-system walkers
(paper §2.3, Spiffy) resolve file reads through exactly this structure.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class Extent:
    """``[logical, logical + length)`` maps to ``physical`` (block units)."""

    logical: int
    physical: int
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ConfigurationError("extent length must be positive")
        if self.logical < 0 or self.physical < 0:
            raise ConfigurationError("extent addresses must be non-negative")

    @property
    def logical_end(self) -> int:
        return self.logical + self.length

    def translate(self, logical_block: int) -> int:
        if not self.logical <= logical_block < self.logical_end:
            raise ConfigurationError("block outside extent")
        return self.physical + (logical_block - self.logical)


class ExtentTree:
    """Sorted, non-overlapping extents with binary-search lookup."""

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._extents: List[Extent] = []

    def __len__(self) -> int:
        return len(self._extents)

    def insert(self, extent: Extent) -> None:
        index = bisect.bisect_left(self._starts, extent.logical)
        if index > 0 and self._extents[index - 1].logical_end > extent.logical:
            raise ConfigurationError("extent overlaps its predecessor")
        if index < len(self._extents) and extent.logical_end > self._starts[index]:
            raise ConfigurationError("extent overlaps its successor")
        self._starts.insert(index, extent.logical)
        self._extents.insert(index, extent)

    def lookup(self, logical_block: int) -> Optional[Extent]:
        index = bisect.bisect_right(self._starts, logical_block) - 1
        if index < 0:
            return None
        extent = self._extents[index]
        if logical_block < extent.logical_end:
            return extent
        return None

    def translate(self, logical_block: int) -> int:
        extent = self.lookup(logical_block)
        if extent is None:
            raise KeyError(f"unmapped logical block {logical_block}")
        return extent.translate(logical_block)

    def translate_range(self, logical_block: int, count: int) -> List[Tuple[int, int]]:
        """``(physical, run_length)`` pieces covering the logical range."""
        pieces: List[Tuple[int, int]] = []
        remaining = count
        cursor = logical_block
        while remaining > 0:
            extent = self.lookup(cursor)
            if extent is None:
                raise KeyError(f"unmapped logical block {cursor}")
            run = min(remaining, extent.logical_end - cursor)
            pieces.append((extent.translate(cursor), run))
            cursor += run
            remaining -= run
        return pieces

    def __iter__(self) -> Iterator[Extent]:
        return iter(self._extents)
