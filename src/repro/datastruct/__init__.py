"""Reusable core storage data structures (paper §4: "trees (B+, LSM), hash
tables" as the abstraction-design building blocks).

Every structure is built around explicit node/page identities rather than
Python references, so the same code runs in three places: in memory, over
the single-level segment store, and *remotely* over a network — which is
exactly what the pointer-chasing experiment (E2) needs to count round trips
per traversal hop.
"""

from repro.datastruct.bptree import BPlusTree, InMemoryNodeStore, NodeStore
from repro.datastruct.lsm import LsmTree, SsTable
from repro.datastruct.hashtable import BucketHashTable
from repro.datastruct.extent import ExtentTree, Extent

__all__ = [
    "BPlusTree",
    "NodeStore",
    "InMemoryNodeStore",
    "LsmTree",
    "SsTable",
    "BucketHashTable",
    "ExtentTree",
    "Extent",
]
