"""A log-structured merge tree: memtable, SSTables, and compaction.

LSM trees are the paper's second headline pointer-chased structure (§2.4)
and the substrate for key-value stores with "B+/LSM tree search, compaction
and insertions" offloaded near the data. SSTables serialize to bytes so
they can live on NVMe blocks or durable segments.
"""

from __future__ import annotations

import bisect
import struct
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.errors import ProtocolError
from repro.telemetry import MetricScope

_TOMBSTONE = b"\x00__tombstone__"
_MAGIC = b"SSTB"


class SsTable:
    """An immutable, sorted run of key/value byte pairs."""

    def __init__(self, entries: List[Tuple[bytes, bytes]]):
        keys = [key for key, __ in entries]
        if keys != sorted(keys):
            raise ProtocolError("SSTable entries must be sorted")
        if len(set(keys)) != len(keys):
            raise ProtocolError("SSTable keys must be unique")
        self._keys = keys
        self._values = [value for __, value in entries]
        # A cheap membership filter (stands in for a Bloom filter).
        self._filter = {hash(key) & 0xFFFF for key in keys}

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def key_range(self) -> Tuple[bytes, bytes]:
        return self._keys[0], self._keys[-1]

    def might_contain(self, key: bytes) -> bool:
        return (hash(key) & 0xFFFF) in self._filter

    def get(self, key: bytes) -> Optional[bytes]:
        if not self.might_contain(key):
            return None
        index = bisect.bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            return self._values[index]
        return None

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        return iter(zip(self._keys, self._values))

    # -- serialization -------------------------------------------------------
    def serialize(self) -> bytes:
        parts = [_MAGIC, struct.pack("<I", len(self._keys))]
        for key, value in zip(self._keys, self._values):
            parts.append(struct.pack("<II", len(key), len(value)))
            parts.append(key)
            parts.append(value)
        return b"".join(parts)

    @classmethod
    def deserialize(cls, raw: bytes) -> "SsTable":
        if raw[:4] != _MAGIC:
            raise ProtocolError("bad SSTable image")
        (count,) = struct.unpack_from("<I", raw, 4)
        entries: List[Tuple[bytes, bytes]] = []
        offset = 8
        for _ in range(count):
            key_len, value_len = struct.unpack_from("<II", raw, offset)
            offset += 8
            key = raw[offset : offset + key_len]
            offset += key_len
            value = raw[offset : offset + value_len]
            offset += value_len
            entries.append((key, value))
        return cls(entries)


class LsmStats:
    """Counters for flushes, compactions, and compacted bytes.

    A facade over telemetry counters. The LSM tree itself is a pure data
    structure with no simulator, so by default the counters live in a
    private standalone registry; an owner (e.g. a KV-SSD) can pass a scope
    from its central registry instead.
    """

    def __init__(self, metrics: Optional[MetricScope] = None):
        self._metrics = (
            metrics if metrics is not None else MetricScope.standalone("lsm")
        )
        self._flushes = self._metrics.counter("flushes")
        self._compactions = self._metrics.counter("compactions")
        self._bytes_compacted = self._metrics.counter("bytes_compacted")

    @property
    def flushes(self) -> int:
        return self._flushes.value

    @flushes.setter
    def flushes(self, value: int) -> None:
        self._flushes._set(value)

    @property
    def compactions(self) -> int:
        return self._compactions.value

    @compactions.setter
    def compactions(self, value: int) -> None:
        self._compactions._set(value)

    @property
    def bytes_compacted(self) -> int:
        return self._bytes_compacted.value

    @bytes_compacted.setter
    def bytes_compacted(self, value: int) -> None:
        self._bytes_compacted._set(value)


class LsmTree:
    """Leveled LSM: writes hit the memtable; reads check newest-first.

    L0 collects flushed memtables (possibly overlapping); when L0 exceeds
    ``l0_limit`` tables they merge with L1 into a single sorted run — the
    compaction workload §2.4 proposes pushing into the DPU.
    """

    def __init__(
        self,
        memtable_limit: int = 64,
        l0_limit: int = 4,
        metrics: Optional[MetricScope] = None,
    ):
        if memtable_limit < 1 or l0_limit < 1:
            raise ProtocolError("limits must be positive")
        self.memtable_limit = memtable_limit
        self.l0_limit = l0_limit
        self._memtable: Dict[bytes, bytes] = {}
        self.l0: List[SsTable] = []  # newest first
        self.l1: Optional[SsTable] = None
        self.stats = LsmStats(metrics)

    def __len__(self) -> int:
        return sum(1 for __ in self.items())

    # -- writes --------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        if value.startswith(_TOMBSTONE):
            raise ProtocolError("value collides with the tombstone marker")
        self._memtable[bytes(key)] = bytes(value)
        if len(self._memtable) >= self.memtable_limit:
            self.flush()

    def delete(self, key: bytes) -> None:
        self._memtable[bytes(key)] = _TOMBSTONE
        if len(self._memtable) >= self.memtable_limit:
            self.flush()

    def flush(self) -> None:
        """Freeze the memtable into a new L0 SSTable."""
        if not self._memtable:
            return
        entries = sorted(self._memtable.items())
        self.l0.insert(0, SsTable(entries))
        self._memtable = {}
        self.stats.flushes += 1
        if len(self.l0) > self.l0_limit:
            self.compact()

    def compact(self) -> None:
        """Merge all of L0 with L1 into one run, dropping shadowed values
        and tombstones."""
        merged: Dict[bytes, bytes] = {}
        sources: List[SsTable] = []
        if self.l1 is not None:
            sources.append(self.l1)
        sources.extend(reversed(self.l0))  # oldest first, newest overwrite
        for table in sources:
            for key, value in table.items():
                merged[key] = value
                self.stats.bytes_compacted += len(key) + len(value)
        survivors = sorted(
            (k, v) for k, v in merged.items() if v != _TOMBSTONE
        )
        self.l1 = SsTable(survivors) if survivors else None
        self.l0 = []
        self.stats.compactions += 1

    # -- reads ---------------------------------------------------------------
    def get(self, key: bytes) -> Optional[bytes]:
        key = bytes(key)
        if key in self._memtable:
            value = self._memtable[key]
            return None if value == _TOMBSTONE else value
        for table in self.l0:
            value = table.get(key)
            if value is not None:
                return None if value == _TOMBSTONE else value
        if self.l1 is not None:
            value = self.l1.get(key)
            if value is not None and value != _TOMBSTONE:
                return value
        return None

    def search_cost(self, key: bytes) -> int:
        """Number of distinct storage runs consulted for this key — each is
        a potential network/flash round trip when disaggregated."""
        key = bytes(key)
        cost = 0
        if key in self._memtable:
            return 1
        cost += 1  # memtable check
        for table in self.l0:
            cost += 1
            if table.get(key) is not None:
                return cost
        if self.l1 is not None:
            cost += 1
        return cost

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        merged: Dict[bytes, bytes] = {}
        if self.l1 is not None:
            merged.update(self.l1.items())
        for table in reversed(self.l0):
            merged.update(table.items())
        merged.update(self._memtable)
        for key in sorted(merged):
            if merged[key] != _TOMBSTONE:
                yield key, merged[key]
