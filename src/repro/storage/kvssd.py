"""KV-SSD: the device speaks get/put, not blocks (paper §2, §2.4, [28]).

The device runs an LSM tree beside the flash: puts land in an in-device
memtable with a write-ahead log append; gets consult the memtable and then
SSTable runs, each run costing a flash read. Flushed SSTables serialize to
actual namespace blocks, so the on-flash state is real bytes.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.errors import CapacityError
from repro.datastruct.lsm import LsmTree, SsTable
from repro.hw.nvme.commands import NvmeCommand, NvmeOpcode
from repro.hw.nvme.controller import NvmeController
from repro.hw.nvme.namespace import LBA_SIZE
from repro.sim import Simulator
from repro.transport.rpc import RpcClient, RpcServer

#: In-device KV engine time per command (index walk, request parsing) —
#: the processing a one-sided RDMA read of a cached value bypasses.
KV_REQUEST_PROCESSING = 2e-6


class KvSsd:
    """The device-level KV engine bound to one NVMe controller."""

    def __init__(
        self,
        sim: Simulator,
        controller: NvmeController,
        namespace_id: int = 1,
        wal_start_lba: int = 0,
        sstable_start_lba: int = 1024,
        memtable_limit: int = 256,
    ):
        self.sim = sim
        self.controller = controller
        self.namespace_id = namespace_id
        self.qp = controller.create_queue_pair()
        controller.start()
        self._metrics = sim.telemetry.unique_scope(
            f"kvssd.{controller.name}"
        )
        self.lsm = LsmTree(
            memtable_limit=memtable_limit, metrics=self._metrics.scope("lsm")
        )
        self._wal_lba = wal_start_lba
        self._sstable_lba = sstable_start_lba
        self._sstable_extents: List[Tuple[int, int]] = []  # (lba, blocks)
        self._gets = self._metrics.counter("gets")
        self._puts = self._metrics.counter("puts")

    @property
    def gets(self) -> int:
        return self._gets.value

    @property
    def puts(self) -> int:
        return self._puts.value

    # -- device commands (timed processes) ------------------------------------
    def _wal_append(self, key: bytes, value: bytes, tombstone: bool):
        """Process: one durable write-ahead record."""
        record = (
            len(key).to_bytes(4, "little")
            + len(value).to_bytes(4, "little")
            + (b"\x01" if tombstone else b"\x00")
            + key
            + value
        )
        completion = yield self.qp.submit(
            NvmeCommand(
                NvmeOpcode.WRITE,
                namespace_id=self.namespace_id,
                lba=self._wal_lba,
                data=record,
            )
        )
        if not completion.ok:
            raise CapacityError("WAL append failed")
        self._wal_lba += max(1, (len(record) + LBA_SIZE - 1) // LBA_SIZE)

    def put(self, key: bytes, value: bytes):
        """Process: WAL append + memtable insert; flush spills to flash."""
        with self.sim.tracer.span(
            "kv.put", "kvssd", device=self.controller.name,
        ):
            yield self.sim.timeout(KV_REQUEST_PROCESSING)
            yield from self._wal_append(key, value, tombstone=False)
            flushes_before = self.lsm.stats.flushes
            self.lsm.put(key, value)
            if self.lsm.stats.flushes > flushes_before:
                yield from self._persist_newest_sstable()
            self._puts.inc()

    def get(self, key: bytes):
        """Process: memtable first, then one flash read per run consulted."""
        with self.sim.tracer.span(
            "kv.get", "kvssd", device=self.controller.name,
        ) as span:
            yield self.sim.timeout(KV_REQUEST_PROCESSING)
            runs_consulted = self.lsm.search_cost(key) - 1  # memtable is free
            span.annotate(runs_consulted=max(0, runs_consulted))
            for _ in range(max(0, runs_consulted)):
                yield self.qp.submit(
                    NvmeCommand(
                        NvmeOpcode.READ, namespace_id=self.namespace_id, lba=0
                    )
                )
            self._gets.inc()
            return self.lsm.get(key)

    def delete(self, key: bytes):
        yield self.sim.timeout(KV_REQUEST_PROCESSING)
        yield from self._wal_append(key, b"", tombstone=True)
        self.lsm.delete(key)
        return True

    def scan(self, start: bytes, end: bytes, limit: int = 100):
        """Process: ordered range scan."""
        results = []
        for key, value in self.lsm.items():
            if start <= key < end:
                results.append((key, value))
                if len(results) >= limit:
                    break
        # One flash read per SSTable run touched by the scan.
        for _ in range(len(self.lsm.l0) + (1 if self.lsm.l1 else 0)):
            yield self.qp.submit(
                NvmeCommand(
                    NvmeOpcode.READ, namespace_id=self.namespace_id, lba=0
                )
            )
        return results

    def _persist_newest_sstable(self):
        image = self.lsm.l0[0].serialize()
        completion = yield self.qp.submit(
            NvmeCommand(
                NvmeOpcode.WRITE,
                namespace_id=self.namespace_id,
                lba=self._sstable_lba,
                data=image,
            )
        )
        if not completion.ok:
            raise CapacityError("SSTable persist failed")
        blocks = max(1, (len(image) + LBA_SIZE - 1) // LBA_SIZE)
        self._sstable_extents.append((self._sstable_lba, blocks))
        self._sstable_lba += blocks

    def recover_from_wal(self, wal_start_lba: int = 0):
        """Process: replay the write-ahead log after a power cut.

        Rebuilds the in-device LSM state from the durable WAL alone
        (records are idempotent, so replaying over flushed SSTables is
        safe). Returns the number of records applied.
        """
        namespace = self.controller.namespaces[self.namespace_id]
        lba = wal_start_lba
        applied = 0
        # Same metric scope: counters stay cumulative across the recovery.
        fresh = LsmTree(
            memtable_limit=self.lsm.memtable_limit,
            metrics=self._metrics.scope("lsm"),
        )
        wal_limit = min(namespace.capacity_blocks, self._sstable_lba)
        while lba < wal_limit:
            completion = yield self.qp.submit(
                NvmeCommand(
                    NvmeOpcode.READ, namespace_id=self.namespace_id, lba=lba
                )
            )
            if not completion.ok:
                break
            head = completion.data
            key_len = int.from_bytes(head[0:4], "little")
            value_len = int.from_bytes(head[4:8], "little")
            if key_len == 0:
                break  # zeroed block: end of the log
            total = 9 + key_len + value_len
            blocks = max(1, (total + LBA_SIZE - 1) // LBA_SIZE)
            raw = namespace.read_blocks(lba, blocks)
            tombstone = raw[8] == 1
            key = raw[9 : 9 + key_len]
            value = raw[9 + key_len : 9 + key_len + value_len]
            if tombstone:
                fresh.delete(key)
            else:
                fresh.put(key, value)
            applied += 1
            lba += blocks
        self.lsm = fresh
        self._wal_lba = lba  # new appends continue past the replayed log
        return applied

    def recover_sstables(self):
        """Process: reload persisted SSTables after a restart."""
        restored: List[SsTable] = []
        for lba, blocks in self._sstable_extents:
            completion = yield self.qp.submit(
                NvmeCommand(
                    NvmeOpcode.READ,
                    namespace_id=self.namespace_id,
                    lba=lba,
                    block_count=blocks,
                )
            )
            restored.append(SsTable.deserialize(completion.data))
        return restored


class KvSsdService:
    """Exports a KvSsd over the Willow-style RPC interface."""

    def __init__(self, server: RpcServer, device: KvSsd):
        self.device = device
        server.register("kv.get", device.get)
        server.register("kv.put", device.put)
        server.register("kv.delete", device.delete)
        server.register("kv.scan", device.scan)
        # Health probe: answers iff the DPU is alive and reachable, used by
        # failover clients to steer around dead replicas.
        server.register("kv.ping", lambda: True)


class KvSsdClient:
    """Client stub for a remote KV-SSD."""

    def __init__(self, client: RpcClient, target_address: str):
        self.client = client
        self.target = target_address

    def get(self, key: bytes, expected_value_size: int = 128):
        value = yield from self.client.call(
            self.target, "kv.get", bytes(key),
            request_size=32 + len(key), response_size=expected_value_size,
        )
        return value

    def put(self, key: bytes, value: bytes):
        yield from self.client.call(
            self.target, "kv.put", bytes(key), bytes(value),
            request_size=32 + len(key) + len(value), response_size=16,
        )

    def delete(self, key: bytes):
        yield from self.client.call(
            self.target, "kv.delete", bytes(key),
            request_size=32 + len(key), response_size=16,
        )

    def scan(self, start: bytes, end: bytes, limit: int = 100):
        results = yield from self.client.call(
            self.target, "kv.scan", bytes(start), bytes(end), limit,
            request_size=64, response_size=limit * 64,
        )
        return results
