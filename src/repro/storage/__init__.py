"""Storage services exported by network-attached Hyperion DPUs (§2.4).

* :mod:`repro.storage.nvmeof` — block-level remote access (NVMe-oF), the
  baseline "storage-with-network" capability of Table 1;
* :mod:`repro.storage.kvssd` — a key-value SSD: the device exports get/put
  instead of blocks, with an LSM tree running next to the flash;
* :mod:`repro.storage.corfu` — a Corfu-style shared log: sequencer +
  write-once chain-replicated log units, the fault-tolerant ordered-log
  abstraction the paper proposes exporting from network-attached SSDs.
"""

from repro.storage.nvmeof import NvmeOfTarget, NvmeOfInitiator
from repro.storage.kvssd import KvSsd, KvSsdService, KvSsdClient
from repro.storage.corfu import CorfuSequencer, CorfuLogUnit, CorfuClient

__all__ = [
    "NvmeOfTarget",
    "NvmeOfInitiator",
    "KvSsd",
    "KvSsdService",
    "KvSsdClient",
    "CorfuSequencer",
    "CorfuLogUnit",
    "CorfuClient",
]
