"""NVMe over Fabrics: block commands shipped across the network.

The target side runs on the DPU: incoming capsules go straight from the
NIC to the NVMe queues with no host software. The initiator is whatever
client machine wants remote blocks.
"""

from __future__ import annotations


from repro.common.errors import ProtocolError
from repro.hw.nvme.commands import NvmeCommand, NvmeOpcode
from repro.hw.nvme.controller import NvmeController, NvmeQueuePair
from repro.hw.nvme.namespace import LBA_SIZE
from repro.sim import Simulator
from repro.transport.rpc import RpcClient, RpcServer


class NvmeOfTarget:
    """Exports one NVMe controller's namespaces over an RPC server."""

    def __init__(self, sim: Simulator, server: RpcServer, controller: NvmeController):
        self.sim = sim
        self.controller = controller
        self.qp: NvmeQueuePair = controller.create_queue_pair()
        controller.start()
        server.register("nvmeof.read", self._read)
        server.register("nvmeof.write", self._write)
        server.register("nvmeof.flush", self._flush)
        self.commands_served = 0

    def _submit(self, command: NvmeCommand):
        completion = yield self.qp.submit(command)
        self.commands_served += 1
        if not completion.ok:
            raise ProtocolError(f"NVMe error: {completion.status.name}")
        return completion

    def _read(self, namespace_id: int, lba: int, block_count: int):
        completion = yield from self._submit(
            NvmeCommand(
                NvmeOpcode.READ,
                namespace_id=namespace_id,
                lba=lba,
                block_count=block_count,
            )
        )
        return completion.data

    def _write(self, namespace_id: int, lba: int, data: bytes):
        yield from self._submit(
            NvmeCommand(
                NvmeOpcode.WRITE, namespace_id=namespace_id, lba=lba, data=data
            )
        )
        return True

    def _flush(self, namespace_id: int):
        yield from self._submit(
            NvmeCommand(NvmeOpcode.FLUSH, namespace_id=namespace_id)
        )
        return True


class NvmeOfInitiator:
    """Client-side block access to a remote target."""

    def __init__(self, client: RpcClient, target_address: str):
        self.client = client
        self.target = target_address

    def read(self, lba: int, block_count: int = 1, namespace_id: int = 1):
        """Process: returns the block bytes."""
        data = yield from self.client.call(
            self.target,
            "nvmeof.read",
            namespace_id,
            lba,
            block_count,
            request_size=64,
            response_size=block_count * LBA_SIZE,
        )
        return data

    def write(self, lba: int, data: bytes, namespace_id: int = 1):
        """Process: write bytes at an LBA."""
        yield from self.client.call(
            self.target,
            "nvmeof.write",
            namespace_id,
            lba,
            bytes(data),
            request_size=64 + len(data),
            response_size=16,
        )

    def flush(self, namespace_id: int = 1):
        yield from self.client.call(
            self.target, "nvmeof.flush", namespace_id,
            request_size=64, response_size=16,
        )
