"""Remote file-system access served by the DPU (paper §2.4).

"remote file system access acceleration with DPUs using virtio-fs" (DPFS):
the file system lives on the DPU's flash and the DPU itself resolves paths
and serves reads — the client machine keeps no FS state and runs no FS
code. Handlers use the annotation walker, so the read path is the same
CPU-free machinery as experiment E9.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import ProtocolError
from repro.fs.ext4 import HyperExtFs
from repro.fs.spiffy import LayoutWalker, ext4_annotation
from repro.hw.nvme.commands import NvmeCommand, NvmeOpcode
from repro.hw.nvme.controller import NvmeController
from repro.sim import Simulator
from repro.transport.rpc import RpcClient, RpcServer


class RemoteFsServer:
    """Exports one HyperExt file system over RPC, DPU-side."""

    def __init__(
        self,
        sim: Simulator,
        server: RpcServer,
        fs: HyperExtFs,
        controller: Optional[NvmeController] = None,
    ):
        self.sim = sim
        self.fs = fs
        self.controller = controller
        self.qp = None
        if controller is not None:
            self.qp = controller.create_queue_pair()
            controller.start()
        server.register("fs.lookup", self._lookup)
        server.register("fs.read", self._read)
        server.register("fs.readdir", self._readdir)
        server.register("fs.stat", self._stat)
        server.register("fs.write", self._write)
        server.register("fs.mkdir", self._mkdir)
        self.reads_served = 0

    def _charged_walker(self):
        blocks = [0]

        def read_blocks(lba: int, count: int) -> bytes:
            blocks[0] += count
            return self.fs.namespace.read_blocks(lba, count)

        return LayoutWalker(ext4_annotation(), read_blocks), blocks

    def _charge(self, block_reads: int):
        if self.qp is None:
            return
        for _ in range(block_reads):
            completion = yield self.qp.submit(NvmeCommand(NvmeOpcode.READ, lba=0))
            assert completion.ok

    # -- handlers (all run at the DPU) --------------------------------------
    def _lookup(self, path: str):
        walker, blocks = self._charged_walker()
        try:
            size, pieces = walker.resolve_file(path)
        except FileNotFoundError:
            raise ProtocolError(f"no such file: {path}")
        yield from self._charge(blocks[0])
        return {"size": size, "extents": pieces}

    def _read(self, path: str, offset: int = 0, length: Optional[int] = None):
        walker, blocks = self._charged_walker()
        try:
            data = walker.read_file(path)
        except FileNotFoundError:
            raise ProtocolError(f"no such file: {path}")
        yield from self._charge(blocks[0])
        self.reads_served += 1
        end = len(data) if length is None else offset + length
        return data[offset:end]

    def _readdir(self, path: str) -> List[str]:
        return self.fs.listdir(path)

    def _stat(self, path: str) -> Dict[str, int]:
        inode = self.fs.lookup(path)
        mode, size, __ = self.fs.read_inode(inode)
        return {"inode": inode, "mode": mode, "size": size}

    def _write(self, path: str, data: bytes):
        inode = self.fs.create_file(path, bytes(data))
        if self.controller is not None:
            # Charge the flash program time for the blocks just written
            # (the functional write already landed via the fs layer).
            blocks = max(1, -(-len(data) // 4096))
            for index in range(blocks):
                yield from self.controller.flash.program_page(index)
        return inode

    def _mkdir(self, path: str) -> int:
        return self.fs.mkdir(path)


class RemoteFsClient:
    """Client stub: a stateless, FS-code-free view of the remote tree."""

    def __init__(self, client: RpcClient, server_address: str):
        self.client = client
        self.server = server_address

    def read(self, path: str, offset: int = 0, length: Optional[int] = None,
             expected_size: int = 4096):
        data = yield from self.client.call(
            self.server, "fs.read", path, offset, length,
            request_size=64 + len(path), response_size=expected_size,
        )
        return data

    def write(self, path: str, data: bytes):
        inode = yield from self.client.call(
            self.server, "fs.write", path, bytes(data),
            request_size=64 + len(path) + len(data), response_size=16,
        )
        return inode

    def readdir(self, path: str):
        entries = yield from self.client.call(
            self.server, "fs.readdir", path,
            request_size=64, response_size=512,
        )
        return entries

    def stat(self, path: str):
        meta = yield from self.client.call(
            self.server, "fs.stat", path,
            request_size=64, response_size=64,
        )
        return meta

    def mkdir(self, path: str):
        inode = yield from self.client.call(
            self.server, "fs.mkdir", path,
            request_size=64, response_size=16,
        )
        return inode
