"""Atomic multi-segment transactions over the single-level store.

Paper §2.4: network-attached SSDs should export "atomic writes [128] with
transactional interfaces" and Boxwood-style abstractions. This is a
redo-log implementation: a transaction's writes stage in DRAM, commit
appends a self-describing record to a durable log segment (commit marker
last), and only then do the writes apply in place. Recovery replays
committed records and ignores torn tails, so a power cut anywhere leaves
every transaction all-or-nothing.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional

from repro.common.errors import ProtocolError
from repro.common.ids import ObjectId
from repro.memory.store import SingleLevelStore

_RECORD_HEAD = struct.Struct("<QII")  # txn id, write count, body length
_WRITE_HEAD = struct.Struct("<16sQI")  # oid, offset, length
_COMMIT = struct.Struct("<QI")  # txn id, crc32 of body

#: Byte budget of the redo log segment.
DEFAULT_LOG_BYTES = 1 << 20


@dataclass
class _StagedWrite:
    oid: ObjectId
    offset: int
    data: bytes


class Transaction:
    """A handle for staging writes; obtained from ``TransactionLog.begin``."""

    def __init__(self, txn_id: int, log: "TransactionLog"):
        self.txn_id = txn_id
        self._log = log
        self._writes: List[_StagedWrite] = []
        self.state = "open"

    def write(self, oid: ObjectId, data: bytes, offset: int = 0) -> None:
        if self.state != "open":
            raise ProtocolError(f"transaction {self.txn_id} is {self.state}")
        # Validate the target eagerly so commit cannot half-fail.
        segment = self._log.store.table.lookup(oid)
        if offset < 0 or offset + len(data) > segment.size:
            raise ProtocolError("staged write outside segment bounds")
        if not segment.durable:
            raise ProtocolError("transactions may only touch durable segments")
        self._writes.append(_StagedWrite(oid, offset, bytes(data)))

    def commit(self):
        """Process: make all staged writes durable atomically."""
        if self.state != "open":
            raise ProtocolError(f"transaction {self.txn_id} is {self.state}")
        yield from self._log._commit(self)
        self.state = "committed"

    def abort(self) -> None:
        if self.state != "open":
            raise ProtocolError(f"transaction {self.txn_id} is {self.state}")
        self._writes.clear()
        self.state = "aborted"


class TransactionLog:
    """The redo log plus commit/recovery protocol over a store."""

    def __init__(
        self,
        store: SingleLevelStore,
        log_oid: Optional[ObjectId] = None,
        log_bytes: int = DEFAULT_LOG_BYTES,
    ):
        self.store = store
        if log_oid is not None and log_oid in store.table:
            self.log_segment = store.table.lookup(log_oid)
        else:
            self.log_segment = store.allocate(
                log_bytes, durable=True, oid=log_oid
            )
        self._cursor = self._scan_end()
        self._next_txn = self._highest_txn() + 1
        self.commits = 0

    # -- public API --------------------------------------------------------
    def begin(self) -> Transaction:
        txn = Transaction(self._next_txn, self)
        self._next_txn += 1
        return txn

    def _commit(self, txn: Transaction):
        body_parts = []
        for staged in txn._writes:
            body_parts.append(
                _WRITE_HEAD.pack(
                    staged.oid.to_bytes(), staged.offset, len(staged.data)
                )
            )
            body_parts.append(staged.data)
        body = b"".join(body_parts)
        head = _RECORD_HEAD.pack(txn.txn_id, len(txn._writes), len(body))
        commit_marker = _COMMIT.pack(txn.txn_id, zlib.crc32(body))
        record = head + body + commit_marker
        if self._cursor + len(record) > self.log_segment.size:
            raise ProtocolError("transaction log full (checkpoint needed)")
        # 1. Durable redo record — the commit marker is written with it;
        #    a torn write is detected by the CRC at recovery.
        yield from self.store.timed_write(
            self.log_segment.oid, record, offset=self._cursor
        )
        self._cursor += len(record)
        # 2. Apply in place.
        for staged in txn._writes:
            yield from self.store.timed_write(
                staged.oid, staged.data, offset=staged.offset
            )
        self.commits += 1

    # -- recovery ------------------------------------------------------------
    def recover(self) -> int:
        """Replay committed records in order; returns how many applied."""
        applied = 0
        for txn_id, writes in self._committed_records():
            for oid, offset, data in writes:
                if oid in self.store.table:
                    self.store.write(oid, data, offset=offset)
            applied += 1
        return applied

    # -- log scanning ----------------------------------------------------------
    def _records(self):
        """Yield (txn_id, end_offset, writes, crc_ok) for each whole record."""
        cursor = 0
        raw = self.store.read(self.log_segment.oid)
        while cursor + _RECORD_HEAD.size <= len(raw):
            txn_id, count, body_len = _RECORD_HEAD.unpack_from(raw, cursor)
            if txn_id == 0 and count == 0 and body_len == 0:
                return  # zeroed tail: end of log
            record_end = cursor + _RECORD_HEAD.size + body_len + _COMMIT.size
            if record_end > len(raw):
                return  # torn tail
            body = raw[cursor + _RECORD_HEAD.size:
                       cursor + _RECORD_HEAD.size + body_len]
            marker_txn, crc = _COMMIT.unpack_from(
                raw, cursor + _RECORD_HEAD.size + body_len
            )
            crc_ok = marker_txn == txn_id and crc == zlib.crc32(body)
            writes = []
            if crc_ok:
                at = 0
                for _ in range(count):
                    oid_raw, offset, length = _WRITE_HEAD.unpack_from(body, at)
                    at += _WRITE_HEAD.size
                    writes.append(
                        (ObjectId.from_bytes(oid_raw), offset,
                         body[at : at + length])
                    )
                    at += length
            yield txn_id, record_end, writes, crc_ok
            if not crc_ok:
                return  # stop at the first corrupt record
            cursor = record_end

    def _committed_records(self):
        for txn_id, __, writes, crc_ok in self._records():
            if crc_ok:
                yield txn_id, writes

    def _scan_end(self) -> int:
        end = 0
        for __, record_end, ___, crc_ok in self._records():
            if crc_ok:
                end = record_end
        return end

    def _highest_txn(self) -> int:
        highest = 0
        for txn_id, __ in self._committed_records():
            highest = max(highest, txn_id)
        return highest
