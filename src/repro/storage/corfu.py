"""A Corfu-style shared log over network-attached flash (paper §2.4, [20]).

Three roles, all CPU-free on the DPU side:

* **Sequencer** — hands out monotonically increasing log positions (a pure
  network service; its counter is soft state reconstructible from the log);
* **Log units** — write-once position-addressed flash storage; an attempt
  to overwrite a filled position is rejected, which is what makes the log's
  ordering authoritative;
* **Client** — reserves a position, then chain-writes the entry to every
  replica; reads hit the head replica and fail over on fault injection.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import ProtocolError
from repro.hw.nvme.commands import NvmeCommand, NvmeOpcode
from repro.hw.nvme.controller import NvmeController
from repro.sim import Simulator
from repro.transport.rpc import RpcClient, RpcError, RpcServer


class CorfuSequencer:
    """Issues log positions; one RPC per append."""

    def __init__(self, server: RpcServer):
        self._next_position = 0
        server.register("corfu.next", self._next)
        server.register("corfu.tail", self._tail)

    def _next(self, count: int = 1) -> int:
        position = self._next_position
        self._next_position += count
        return position

    def _tail(self) -> int:
        return self._next_position


class CorfuLogUnit:
    """Write-once storage for log entries, backed by NVMe flash.

    With ``use_zone_append=True`` the unit's namespace must be a
    :class:`~repro.hw.nvme.zns.ZonedNamespace` and every entry lands via
    ZONE_APPEND — the device picks the LBA, which is the natural fit the
    paper's "KV-SSD, Corfu-SSD" + ZNS combination points at.
    """

    def __init__(
        self,
        sim: Simulator,
        server: RpcServer,
        controller: NvmeController,
        namespace_id: int = 1,
        blocks_per_entry: int = 1,
        use_zone_append: bool = False,
    ):
        self.sim = sim
        self.controller = controller
        self.namespace_id = namespace_id
        self.blocks_per_entry = blocks_per_entry
        self.use_zone_append = use_zone_append
        self.qp = controller.create_queue_pair()
        controller.start()
        self._written: Dict[int, int] = {}  # position -> lba
        self._next_lba = 0
        self._active_zone = 0
        self.failed = False
        server.register("corfu.write", self._write)
        server.register("corfu.read", self._read)
        server.register("corfu.filled", self._filled)

    def fail(self) -> None:
        """Fault injection: the unit stops serving."""
        self.failed = True

    def recover(self) -> None:
        self.failed = False

    def _check_alive(self) -> None:
        if self.failed:
            raise ProtocolError("log unit failed")

    def _write(self, position: int, data: bytes):
        self._check_alive()
        if position in self._written:
            raise ProtocolError(f"position {position} already written")
        if self.use_zone_append:
            # Device-chosen placement: append into the active zone; when it
            # fills, roll forward to the next zone (the log-structured way).
            namespace = self.controller.namespaces[self.namespace_id]
            zone_count = len(namespace.zones)
            lba = None
            while self._active_zone < zone_count:
                zone_start = namespace.zones[self._active_zone].start_lba
                completion = yield self.qp.submit(
                    NvmeCommand(
                        NvmeOpcode.ZONE_APPEND,
                        namespace_id=self.namespace_id,
                        lba=zone_start,
                        data=bytes(data),
                    )
                )
                if completion.ok:
                    lba = completion.result_lba
                    break
                self._active_zone += 1  # zone full: move on
            if lba is None:
                raise ProtocolError("zone append failed: namespace full")
        else:
            lba = self._next_lba
            self._next_lba += self.blocks_per_entry
            completion = yield self.qp.submit(
                NvmeCommand(
                    NvmeOpcode.WRITE,
                    namespace_id=self.namespace_id,
                    lba=lba,
                    data=bytes(data),
                )
            )
            if not completion.ok:
                raise ProtocolError("flash write failed")
        self._written[position] = lba
        return True

    def _read(self, position: int):
        self._check_alive()
        lba = self._written.get(position)
        if lba is None:
            raise ProtocolError(f"position {position} not written")
        completion = yield self.qp.submit(
            NvmeCommand(
                NvmeOpcode.READ,
                namespace_id=self.namespace_id,
                lba=lba,
                block_count=self.blocks_per_entry,
            )
        )
        if not completion.ok:
            raise ProtocolError("flash read failed")
        return completion.data

    def _filled(self, position: int) -> bool:
        self._check_alive()
        return position in self._written


class CorfuClient:
    """Appends and reads against a sequencer and a replica chain."""

    def __init__(
        self,
        client: RpcClient,
        sequencer_address: str,
        log_unit_addresses: List[str],
    ):
        if not log_unit_addresses:
            raise ProtocolError("need at least one log unit")
        self.client = client
        self.sequencer = sequencer_address
        self.log_units = list(log_unit_addresses)
        self.appends = 0

    def append(self, data: bytes):
        """Process: reserve a position, chain-write all replicas; returns
        the assigned position."""
        position = yield from self.client.call(
            self.sequencer, "corfu.next", request_size=16, response_size=16
        )
        for unit in self.log_units:
            yield from self.client.call(
                unit, "corfu.write", position, bytes(data),
                request_size=32 + len(data), response_size=16,
            )
        self.appends += 1
        return position

    def read(self, position: int, entry_size: int = 4096):
        """Process: read from the first live replica."""
        last_error: Optional[Exception] = None
        for unit in self.log_units:
            try:
                data = yield from self.client.call(
                    unit, "corfu.read", position,
                    request_size=24, response_size=entry_size,
                )
                return data
            except RpcError as exc:
                last_error = exc
        raise ProtocolError(f"no replica served position {position}: {last_error}")

    def tail(self):
        """Process: current log tail from the sequencer."""
        position = yield from self.client.call(
            self.sequencer, "corfu.tail", request_size=16, response_size=16
        )
        return position
