"""TCP: connection-oriented, reliable, in-order byte-stream messages.

The model keeps the costs that matter at datapath scale: a 3-way handshake
before first use, MSS segmentation, cumulative ACK processing, per-segment
software/firmware cost at both ends, and go-back-N retransmission on loss.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.common.errors import ProtocolError
from repro.hw.net.frames import Frame, MAX_FRAME_PAYLOAD
from repro.hw.net.port import NetworkPort
from repro.sim import Event, Simulator, Store

#: IP + TCP headers.
TCP_HEADER = 40
MSS = MAX_FRAME_PAYLOAD - TCP_HEADER
#: Protocol processing per segment (checksums, state machine).
SEGMENT_PROCESSING = 500e-9
#: Default retransmission timeout, sized for intra-rack RTTs. Stacks on
#: WAN-RTT paths must pass a larger ``rto`` to ``TcpStack`` or every
#: segment retransmits spuriously before the ACK can possibly arrive.
RTO = 200e-6

_conn_ids = itertools.count()


@dataclass
class _Syn:
    conn_id: int


@dataclass
class _SynAck:
    conn_id: int


@dataclass
class _DataSegment:
    conn_id: int
    message_id: int
    index: int
    total: int
    payload: Any
    payload_size: int


@dataclass
class _Ack:
    conn_id: int
    message_id: int
    index: int


class TcpConnection:
    """One established connection; created via ``TcpStack.connect``."""

    def __init__(self, stack: "TcpStack", peer: str, conn_id: int):
        self.stack = stack
        self.peer = peer
        self.conn_id = conn_id
        self.rx: Store = Store(stack.sim)
        self._message_ids = itertools.count()
        self._acks: Dict[Tuple[int, int], Event] = {}
        self._reassembly: Dict[int, Dict[int, _DataSegment]] = {}
        self.messages_sent = 0
        self.retransmissions = 0

    def send(self, payload: Any, size: int):
        """Process: reliably deliver one message to the peer."""
        sim = self.stack.sim
        message_id = next(self._message_ids)
        total = max(1, -(-size // MSS))
        remaining = size
        for index in range(total):
            chunk = min(MSS, remaining)
            remaining -= chunk
            segment = _DataSegment(
                self.conn_id, message_id, index, total,
                payload if index == 0 else None, size,
            )
            yield sim.timeout(SEGMENT_PROCESSING)
            ack_event = Event(sim)
            self._acks[(message_id, index)] = ack_event
            attempts = 0
            while True:
                yield from self.stack.port.send(
                    Frame(self.stack.address, self.peer, segment, chunk + TCP_HEADER)
                )
                timeout = sim.timeout(self.stack.rto)
                outcome = yield sim.any_of([ack_event, timeout])
                if ack_event in outcome:
                    break
                attempts += 1
                self.retransmissions += 1
                if attempts > 16:
                    raise ProtocolError("TCP gave up after 16 retransmissions")
        self.messages_sent += 1

    def recv(self):
        """Event: next ``(payload, size)`` message."""
        return self.rx.get()

    # -- internal ------------------------------------------------------------
    def _on_segment(self, segment: _DataSegment):
        sim = self.stack.sim
        yield sim.timeout(SEGMENT_PROCESSING)
        ack = _Ack(self.conn_id, segment.message_id, segment.index)
        yield from self.stack.port.send(
            Frame(self.stack.address, self.peer, ack, TCP_HEADER)
        )
        parts = self._reassembly.setdefault(segment.message_id, {})
        if segment.index in parts:
            return  # duplicate after retransmission
        parts[segment.index] = segment
        if len(parts) == segment.total:
            del self._reassembly[segment.message_id]
            yield self.rx.put((parts[0].payload, parts[0].payload_size))

    def _on_ack(self, ack: _Ack) -> None:
        event = self._acks.pop((ack.message_id, ack.index), None)
        if event is not None and not event.triggered:
            event.succeed(None)


class TcpStack:
    """Per-endpoint TCP state: listening, connections, demux."""

    def __init__(self, sim: Simulator, port: NetworkPort, rto: float = RTO):
        if rto <= 0:
            raise ProtocolError("rto must be positive")
        self.sim = sim
        self.port = port
        self.rto = rto
        self.connections: Dict[int, TcpConnection] = {}
        self.accept_queue: Store = Store(sim)
        self._pending_connect: Dict[int, Event] = {}
        sim.process(self._rx_loop())

    @property
    def address(self) -> str:
        return self.port.address

    def connect(self, peer: str):
        """Process: 3-way handshake (SYN retransmitted on loss)."""
        conn_id = next(_conn_ids)
        done = Event(self.sim)
        self._pending_connect[conn_id] = done
        attempts = 0
        while True:
            yield from self.port.send(
                Frame(self.address, peer, _Syn(conn_id), TCP_HEADER)
            )
            timeout = self.sim.timeout(self.rto)
            outcome = yield self.sim.any_of([done, timeout])
            if done in outcome:
                break  # SYN-ACK received
            attempts += 1
            if attempts > 16:
                raise ProtocolError("TCP connect gave up after 16 SYNs")
        connection = TcpConnection(self, peer, conn_id)
        self.connections[conn_id] = connection
        # Final ACK of the handshake.
        yield from self.port.send(
            Frame(self.address, peer, _Ack(conn_id, -1, -1), TCP_HEADER)
        )
        return connection

    def accept(self):
        """Event: next incoming TcpConnection."""
        return self.accept_queue.get()

    def _rx_loop(self):
        while True:
            frame = yield self.port.receive()
            message = frame.payload
            if isinstance(message, _Syn):
                if message.conn_id not in self.connections:
                    connection = TcpConnection(self, frame.src, message.conn_id)
                    self.connections[message.conn_id] = connection
                    yield self.accept_queue.put(connection)
                # Duplicate SYNs (retransmissions) just re-trigger the ack.
                yield from self.port.send(
                    Frame(self.address, frame.src, _SynAck(message.conn_id), TCP_HEADER)
                )
            elif isinstance(message, _SynAck):
                waiter = self._pending_connect.pop(message.conn_id, None)
                if waiter is not None:
                    waiter.succeed(None)
            elif isinstance(message, _DataSegment):
                connection = self.connections.get(message.conn_id)
                if connection is not None:
                    self.sim.process(connection._on_segment(message))
            elif isinstance(message, _Ack):
                connection = self.connections.get(message.conn_id)
                if connection is not None and message.index >= 0:
                    connection._on_ack(message)
