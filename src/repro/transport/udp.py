"""UDP: unreliable datagrams with MTU fragmentation and reassembly."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.hw.net.frames import Frame, MAX_FRAME_PAYLOAD
from repro.hw.net.port import NetworkPort
from repro.sim import Simulator, Store

#: IP + UDP headers.
UDP_HEADER = 28

_datagram_ids = itertools.count()


@dataclass
class _Fragment:
    datagram_id: int
    index: int
    total: int
    payload: Any  # carried only on fragment 0
    payload_size: int


class UdpSocket:
    """A datagram endpoint bound to one network port.

    Datagrams larger than the MTU fragment across frames; the receiver
    reassembles by datagram id. There is no reliability: a dropped fragment
    silently kills the datagram (as with real UDP/IP fragmentation).
    """

    def __init__(self, sim: Simulator, port: NetworkPort):
        self.sim = sim
        self.port = port
        self.rx: Store = Store(sim)
        self._partial: Dict[Tuple[str, int], Dict[int, _Fragment]] = {}
        self.datagrams_sent = 0
        self.datagrams_received = 0
        sim.process(self._rx_loop())

    @property
    def address(self) -> str:
        return self.port.address

    def sendto(self, dst: str, payload: Any, size: int):
        """Process: transmit one datagram of modeled ``size`` bytes."""
        datagram_id = next(_datagram_ids)
        mtu_payload = MAX_FRAME_PAYLOAD - UDP_HEADER
        total = max(1, -(-size // mtu_payload))
        remaining = size
        for index in range(total):
            chunk = min(mtu_payload, remaining)
            remaining -= chunk
            fragment = _Fragment(
                datagram_id=datagram_id,
                index=index,
                total=total,
                payload=payload if index == 0 else None,
                payload_size=size,
            )
            frame = Frame(self.port.address, dst, fragment, chunk + UDP_HEADER)
            yield from self.port.send(frame)
        self.datagrams_sent += 1

    def _rx_loop(self):
        while True:
            frame = yield self.port.receive()
            fragment = frame.payload
            if not isinstance(fragment, _Fragment):
                continue  # not UDP traffic
            if fragment.total == 1:
                self.datagrams_received += 1
                yield self.rx.put((frame.src, fragment.payload, fragment.payload_size))
                continue
            key = (frame.src, fragment.datagram_id)
            parts = self._partial.setdefault(key, {})
            parts[fragment.index] = fragment
            if len(parts) == fragment.total:
                del self._partial[key]
                head = parts[0]
                self.datagrams_received += 1
                yield self.rx.put((frame.src, head.payload, head.payload_size))

    def recvfrom(self):
        """Event: next ``(src, payload, size)`` datagram."""
        return self.rx.get()
