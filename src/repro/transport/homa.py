"""HOMA: a receiver-driven, message-oriented datacenter transport.

Following Ousterhout's design (cited in paper §2): the first RTTbytes of a
message go out *unscheduled* (no permission needed), so short messages
complete in one flight; the remainder waits for receiver GRANTs, letting
receivers enforce SRPT-like priority. Short RPCs — the common case in the
paper's workloads — beat TCP because they skip handshakes and ACK clocks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.hw.net.frames import Frame, MAX_FRAME_PAYLOAD
from repro.hw.net.port import NetworkPort
from repro.sim import Event, Simulator, Store

HOMA_HEADER = 40
#: Bytes a sender may push without a grant (~one 100 GbE bandwidth-delay).
RTT_BYTES = 10_000

_msg_ids = itertools.count()


@dataclass
class _HomaData:
    message_id: int
    offset: int
    total_size: int
    payload: Any  # carried on the first packet only


@dataclass
class _HomaGrant:
    message_id: int
    granted_up_to: int


class HomaSocket:
    """A message-oriented endpoint with unscheduled/scheduled transmission."""

    def __init__(self, sim: Simulator, port: NetworkPort,
                 rtt_bytes: int = RTT_BYTES):
        self.sim = sim
        self.port = port
        self.rtt_bytes = rtt_bytes
        self.rx: Store = Store(sim)
        self._grants: Dict[int, Event] = {}
        self._incoming: Dict[Tuple[str, int], int] = {}  # received byte counts
        self._payloads: Dict[Tuple[str, int], Any] = {}
        self._granted: set = set()
        self.messages_sent = 0
        self.unscheduled_only = 0
        sim.process(self._rx_loop())

    @property
    def address(self) -> str:
        return self.port.address

    def send(self, dst: str, payload: Any, size: int):
        """Process: transmit one message (unscheduled head, granted tail)."""
        message_id = next(_msg_ids)
        mtu = MAX_FRAME_PAYLOAD - HOMA_HEADER
        sent = 0
        # Unscheduled region: fire immediately.
        unscheduled = min(size, self.rtt_bytes)
        first = True
        while sent < unscheduled or first:
            chunk = min(mtu, max(0, unscheduled - sent)) if not first else min(mtu, max(1, unscheduled))
            data = _HomaData(message_id, sent, size, payload if first else None)
            yield from self.port.send(
                Frame(self.address, dst, data, chunk + HOMA_HEADER)
            )
            sent += chunk
            first = False
        if sent >= size:
            self.messages_sent += 1
            self.unscheduled_only += 1
            return
        # Scheduled region: wait for the receiver's grant, then stream.
        grant_event = Event(self.sim)
        self._grants[message_id] = grant_event
        yield grant_event
        while sent < size:
            chunk = min(mtu, size - sent)
            data = _HomaData(message_id, sent, size, None)
            yield from self.port.send(
                Frame(self.address, dst, data, chunk + HOMA_HEADER)
            )
            sent += chunk
        self.messages_sent += 1

    def recv(self):
        """Event: next ``(src, payload, size)`` message."""
        return self.rx.get()

    def _rx_loop(self):
        while True:
            frame = yield self.port.receive()
            message = frame.payload
            if isinstance(message, _HomaGrant):
                waiter = self._grants.pop(message.message_id, None)
                if waiter is not None and not waiter.triggered:
                    waiter.succeed(None)
                continue
            if not isinstance(message, _HomaData):
                continue
            key = (frame.src, message.message_id)
            if message.payload is not None:
                self._payloads[key] = message.payload
            chunk = frame.payload_size - HOMA_HEADER
            received = self._incoming.get(key, 0) + chunk
            self._incoming[key] = received
            # Issue a grant once the unscheduled region has landed.
            if (
                message.total_size > self.rtt_bytes
                and received >= min(self.rtt_bytes, message.total_size)
                and received < message.total_size
                and key not in self._granted
            ):
                self._granted.add(key)
                grant = _HomaGrant(message.message_id, message.total_size)
                self.sim.process(self._send_grant(frame.src, grant))
            if received >= message.total_size:
                del self._incoming[key]
                self._granted.discard(key)
                payload = self._payloads.pop(key, None)
                yield self.rx.put((frame.src, payload, message.total_size))

    def _send_grant(self, dst: str, grant: _HomaGrant):
        yield from self.port.send(Frame(self.address, dst, grant, HOMA_HEADER))
