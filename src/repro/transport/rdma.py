"""RDMA: one-sided reads and writes against registered memory regions.

One-sided operations complete entirely in the remote NIC — no remote
software runs — which is why disaggregated designs (paper §1(3), §2.4) lean
on them. The model charges a small fixed remote-NIC latency instead of a
request-handler round through a CPU.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.errors import CapacityError, ProtocolError
from repro.hw.net.frames import Frame, MAX_FRAME_PAYLOAD
from repro.hw.net.port import NetworkPort
from repro.sim import Event, Simulator

#: InfiniBand/RoCE transport headers.
RDMA_HEADER = 58
#: NIC-internal processing per operation (no CPU involved).
NIC_PROCESSING = 600e-9

_op_ids = itertools.count()


class MemoryRegion:
    """A registered, remotely-accessible buffer with an rkey."""

    def __init__(self, rkey: int, buffer: bytearray):
        self.rkey = rkey
        self.buffer = buffer

    def read(self, offset: int, size: int) -> bytes:
        if offset < 0 or offset + size > len(self.buffer):
            raise CapacityError("RDMA read out of region bounds")
        return bytes(self.buffer[offset : offset + size])

    def write(self, offset: int, data: bytes) -> None:
        if offset < 0 or offset + len(data) > len(self.buffer):
            raise CapacityError("RDMA write out of region bounds")
        self.buffer[offset : offset + len(data)] = data


@dataclass
class _RdmaRequest:
    op_id: int
    kind: str  # "read" | "write"
    rkey: int
    offset: int
    size: int
    data: Optional[bytes] = None


@dataclass
class _RdmaResponse:
    op_id: int
    ok: bool
    data: Optional[bytes] = None


class RdmaNic:
    """An RDMA-capable NIC bound to one port; serves one-sided ops."""

    def __init__(self, sim: Simulator, port: NetworkPort):
        self.sim = sim
        self.port = port
        self.regions: Dict[int, MemoryRegion] = {}
        self._completions: Dict[int, Event] = {}
        self._next_rkey = itertools.count(1)
        self.remote_ops_served = 0
        sim.process(self._rx_loop())

    @property
    def address(self) -> str:
        return self.port.address

    def register_region(self, buffer: bytearray) -> MemoryRegion:
        region = MemoryRegion(next(self._next_rkey), buffer)
        self.regions[region.rkey] = region
        return region

    # -- one-sided verbs -------------------------------------------------------
    def read(self, peer: str, rkey: int, offset: int, size: int):
        """Process: RDMA READ; returns the remote bytes."""
        response = yield from self._issue(
            peer, _RdmaRequest(next(_op_ids), "read", rkey, offset, size),
            request_size=RDMA_HEADER,
        )
        if not response.ok:
            raise ProtocolError("remote RDMA read failed")
        return response.data

    def write(self, peer: str, rkey: int, offset: int, data: bytes):
        """Process: RDMA WRITE of ``data`` into the remote region."""
        response = yield from self._issue(
            peer,
            _RdmaRequest(next(_op_ids), "write", rkey, offset, len(data), bytes(data)),
            request_size=RDMA_HEADER + len(data),
        )
        if not response.ok:
            raise ProtocolError("remote RDMA write failed")

    def _issue(self, peer: str, request: _RdmaRequest, request_size: int):
        done = Event(self.sim)
        self._completions[request.op_id] = done
        # Large transfers fragment at the link layer; model as chunked frames.
        remaining = request_size
        while remaining > 0:
            chunk = min(MAX_FRAME_PAYLOAD, remaining)
            remaining -= chunk
            payload = request if remaining == 0 else None
            yield from self.port.send(Frame(self.address, peer, payload, chunk))
        response = yield done
        return response

    # -- remote side -----------------------------------------------------------
    def _rx_loop(self):
        while True:
            frame = yield self.port.receive()
            message = frame.payload
            if isinstance(message, _RdmaRequest):
                self.sim.process(self._serve(frame.src, message))
            elif isinstance(message, _RdmaResponse):
                waiter = self._completions.pop(message.op_id, None)
                if waiter is not None:
                    waiter.succeed(message)

    def _serve(self, peer: str, request: _RdmaRequest):
        yield self.sim.timeout(NIC_PROCESSING)
        region = self.regions.get(request.rkey)
        if region is None:
            response = _RdmaResponse(request.op_id, ok=False)
            size = RDMA_HEADER
        elif request.kind == "read":
            try:
                data = region.read(request.offset, request.size)
                response = _RdmaResponse(request.op_id, ok=True, data=data)
                size = RDMA_HEADER + request.size
            except CapacityError:
                response = _RdmaResponse(request.op_id, ok=False)
                size = RDMA_HEADER
        else:
            try:
                region.write(request.offset, request.data or b"")
                response = _RdmaResponse(request.op_id, ok=True)
                size = RDMA_HEADER
            except CapacityError:
                response = _RdmaResponse(request.op_id, ok=False)
                size = RDMA_HEADER
        self.remote_ops_served += 1
        remaining = size
        while remaining > 0:
            chunk = min(MAX_FRAME_PAYLOAD, remaining)
            remaining -= chunk
            payload = response if remaining == 0 else None
            yield from self.port.send(Frame(self.address, peer, payload, chunk))
