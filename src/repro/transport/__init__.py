"""Network transports: UDP, TCP, RDMA, HOMA, and a Willow-style RPC layer.

Paper §2: "The end-to-end hardware path can be specialized with ...
an application-defined network transport (TCP, UDP, RDMA, HOMA)". Each
transport charges its own realistic costs — handshakes, segmentation, ACKs,
grants, one-sided completions — so the KV-SSD experiment (E12) can sweep
them and show where each wins.
"""

from repro.transport.udp import UdpSocket
from repro.transport.tcp import TcpStack, TcpConnection
from repro.transport.rdma import RdmaNic, MemoryRegion
from repro.transport.homa import HomaSocket
from repro.transport.rpc import (
    MAX_BATCH_OPS,
    BatchOp,
    RetryBudget,
    RetryPolicy,
    RpcClient,
    RpcServer,
    RpcError,
)

__all__ = [
    "UdpSocket",
    "TcpStack",
    "TcpConnection",
    "RdmaNic",
    "MemoryRegion",
    "HomaSocket",
    "RpcClient",
    "RpcServer",
    "RpcError",
    "RetryBudget",
    "RetryPolicy",
    "BatchOp",
    "MAX_BATCH_OPS",
]
