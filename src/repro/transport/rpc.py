"""A Willow-style flexible RPC layer over any datagram-like transport.

Paper §2.4: "we take inspiration from the flexible RPC interface pioneered
by Willow. The RPC interface can be specialized end-to-end with network,
storage, and application-level protocols." Servers register named handlers
(which may be simulation processes touching flash, segments, or pipelines);
clients call them over UDP, HOMA, or a TCP adapter — the E12 sweep.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.common.errors import ConfigurationError, ProtocolError
from repro.sim import Event, Simulator

RPC_HEADER = 16


class RpcError(ProtocolError):
    """A remote handler raised, or the method does not exist."""


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for RPC retransmissions.

    The wait before retransmission ``n`` (0-based) is
    ``base * multiplier**n`` capped at ``max_interval``, then jittered by
    ``±jitter`` (a fraction). Jitter draws come from an RNG seeded with
    ``(seed, rpc id)``, so a run's retransmit schedule is reproducible
    while concurrent calls still decorrelate — the fix for retry storms
    the fixed retransmit interval invited.
    """

    base: float = 1e-3
    multiplier: float = 2.0
    max_interval: float = 64e-3
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base <= 0 or self.multiplier < 1 or self.max_interval < self.base:
            raise ConfigurationError("invalid retry policy intervals")
        if not 0 <= self.jitter < 1:
            raise ConfigurationError("jitter must be in [0, 1)")

    def rng_for(self, rpc_id: int) -> random.Random:
        return random.Random(f"{self.seed}/{rpc_id}")

    def interval(self, attempt: int, rng: random.Random) -> float:
        raw = min(self.base * self.multiplier ** attempt, self.max_interval)
        if self.jitter == 0:
            return raw
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


@dataclass
class RpcRequest:
    """The wire request: id, method name, arguments, expected reply size."""

    rpc_id: int
    method: str
    args: tuple
    response_size: int


@dataclass
class RpcResponse:
    """The wire response: matching id, result or marshalled error."""

    rpc_id: int
    ok: bool
    result: Any = None
    error: str = ""


class _DatagramAdapter:
    """Uniform sendto/recv interface over UDP and HOMA sockets."""

    def __init__(self, socket: Any):
        self.socket = socket

    @property
    def address(self) -> str:
        return self.socket.address

    def sendto(self, dst: str, payload: Any, size: int):
        if hasattr(self.socket, "sendto"):
            yield from self.socket.sendto(dst, payload, size)
        else:
            yield from self.socket.send(dst, payload, size)

    def recv(self):
        if hasattr(self.socket, "recvfrom"):
            return self.socket.recvfrom()
        return self.socket.recv()


class RpcServer:
    """Dispatches incoming requests to registered handler processes.

    A handler is ``fn(*args)`` returning either a plain value or a generator
    (a simulation process, e.g. one that performs NVMe commands); generator
    handlers are driven to completion before the response is sent — the
    "run-to-completion data path" of §2.4.
    """

    def __init__(self, sim: Simulator, socket: Any):
        self.sim = sim
        self.transport = _DatagramAdapter(socket)
        self._handlers: Dict[str, Callable] = {}
        self._metrics = sim.telemetry.unique_scope(
            f"rpc.server.{self.transport.address}"
        )
        self._requests_served = self._metrics.counter("requests_served")
        sim.process(self._serve_loop())

    @property
    def requests_served(self) -> int:
        return self._requests_served.value

    @property
    def address(self) -> str:
        return self.transport.address

    def register(self, method: str, handler: Callable) -> None:
        if method in self._handlers:
            raise ProtocolError(f"handler for {method!r} already registered")
        self._handlers[method] = handler

    def _serve_loop(self):
        while True:
            src, request, __ = yield self.transport.recv()
            if isinstance(request, RpcRequest):
                self.sim.process(self._handle(src, request))

    def _handle(self, src: str, request: RpcRequest):
        handler = self._handlers.get(request.method)
        if handler is None:
            response = RpcResponse(
                request.rpc_id, ok=False, error=f"no method {request.method!r}"
            )
            yield from self.transport.sendto(src, response, RPC_HEADER)
            return
        with self.sim.tracer.span(
            "rpc.handle", "transport",
            method=request.method, server=self.transport.address,
        ):
            try:
                outcome = handler(*request.args)
                if hasattr(outcome, "send"):  # a generator: run it in sim time
                    outcome = yield self.sim.process(outcome)
                response = RpcResponse(request.rpc_id, ok=True, result=outcome)
            except Exception as exc:  # noqa: BLE001 - marshalled to the client
                response = RpcResponse(request.rpc_id, ok=False, error=str(exc))
            self._requests_served.inc()
            yield from self.transport.sendto(
                src, response, RPC_HEADER + request.response_size
            )


class RpcClient:
    """Issues calls and matches responses by rpc id."""

    def __init__(self, sim: Simulator, socket: Any):
        self.sim = sim
        self.transport = _DatagramAdapter(socket)
        self._pending: Dict[int, Event] = {}
        # Per-client ids: rpc ids only need to be unique within this
        # client's pending table, and a module-global counter would leak
        # state across runs into RetryPolicy's per-id jitter RNG —
        # breaking same-seed => byte-identical telemetry.
        self._rpc_ids = itertools.count()
        self._metrics = sim.telemetry.unique_scope(
            f"rpc.client.{self.transport.address}"
        )
        self._calls = self._metrics.counter("calls")
        self._retransmits = self._metrics.counter("retransmits")
        self._deadline_exceeded = self._metrics.counter("deadline_exceeded")
        self._call_latency = self._metrics.histogram("call_latency")
        sim.process(self._rx_loop())

    @property
    def retransmits(self) -> int:
        return self._retransmits.value

    @property
    def deadline_exceeded(self) -> int:
        return self._deadline_exceeded.value

    def _rx_loop(self):
        while True:
            __, response, __ = yield self.transport.recv()
            if isinstance(response, RpcResponse):
                waiter = self._pending.pop(response.rpc_id, None)
                if waiter is not None:
                    waiter.succeed(response)

    def call(
        self,
        server: str,
        method: str,
        *args: Any,
        request_size: int = 64,
        response_size: int = 64,
        timeout: Optional[float] = None,
        retries: int = 0,
        deadline: Optional[float] = None,
        policy: Optional[RetryPolicy] = None,
    ):
        """Process: one RPC; returns the handler's result or raises RpcError.

        With ``timeout`` set, an unanswered request is retransmitted up to
        ``retries`` times (needed over lossy datagram transports; handlers
        must be idempotent, as with any at-least-once RPC). A
        :class:`RetryPolicy` replaces the fixed retransmit interval with
        exponential backoff + jitter (``timeout`` then seeds the policy's
        first interval if the policy leaves ``base`` at its default).

        ``deadline`` bounds the *whole call* in simulated seconds: when the
        budget runs out — even with ``timeout=None``, which otherwise waits
        forever on a dead server — the call raises
        ``RpcError("... deadline exceeded")``.
        """
        request = RpcRequest(next(self._rpc_ids), method, args, response_size)
        done = Event(self.sim)
        self._pending[request.rpc_id] = done
        started = self.sim.now
        rng = policy.rng_for(request.rpc_id) if policy is not None else None
        attempts = 0
        self._calls.inc()
        with self.sim.tracer.span(
            "rpc.call", "transport", method=method, server=server,
        ) as span:
            while True:
                yield from self.transport.sendto(
                    server, request, RPC_HEADER + request_size
                )
                if timeout is None and policy is None and deadline is None:
                    response = yield done
                    break
                # How long to wait before this attempt is declared lost.
                if policy is not None:
                    wait = policy.interval(attempts, rng)
                elif timeout is not None:
                    wait = timeout
                else:
                    wait = deadline  # no retransmission: just bound the wait
                if deadline is not None:
                    remaining = deadline - (self.sim.now - started)
                    if remaining <= 0:
                        self._pending.pop(request.rpc_id, None)
                        self._deadline_exceeded.inc()
                        raise RpcError(
                            f"{method} to {server}: deadline exceeded"
                        )
                    wait = min(wait, remaining)
                outcome = yield self.sim.any_of([done, self.sim.timeout(wait)])
                if done in outcome:
                    response = done.value
                    break
                if deadline is not None and self.sim.now - started >= deadline:
                    self._pending.pop(request.rpc_id, None)
                    self._deadline_exceeded.inc()
                    raise RpcError(f"{method} to {server}: deadline exceeded")
                attempts += 1
                if timeout is None and policy is None:
                    continue  # deadline-only calls do not retransmit
                if attempts > retries:
                    self._pending.pop(request.rpc_id, None)
                    raise RpcError(
                        f"{method} to {server} timed out after "
                        f"{attempts} attempt(s)"
                    )
                self._retransmits.inc()
            if attempts:
                span.annotate(retransmits=attempts)
        self._call_latency.observe(self.sim.now - started)
        if not response.ok:
            raise RpcError(response.error)
        return response.result
